"""Unit tests for the area/power/efficiency models."""

import pytest

from repro.power import (
    ACCEL_AREA_UM2,
    ChipModel,
    CORTEX_A7,
    EfficiencyModel,
    POWER_BREAKDOWN,
    RELATED_WORK,
    SENSORTAG,
    StitchAreaModel,
    related_work_table,
)
from repro.power.platforms import GESTURE_DEADLINE_MS, stitch_platform


class TestAreaComposition:
    def test_patches_compose_to_table3_nofusion(self):
        model = StitchAreaModel()
        assert model.patches_area_um2() == pytest.approx(
            ACCEL_AREA_UM2["Stitch w/o fusion"], rel=0.01
        )

    def test_stitch_total_composes_to_table3(self):
        model = StitchAreaModel()
        assert model.stitch_area_um2() == pytest.approx(
            ACCEL_AREA_UM2["Stitch"], rel=0.01
        )

    def test_locus_composes_to_table3(self):
        model = StitchAreaModel()
        assert model.locus_area_um2() == pytest.approx(
            ACCEL_AREA_UM2["LOCUS"], rel=0.01
        )

    def test_locus_is_7_64x_stitch(self):
        assert StitchAreaModel().locus_over_stitch() == pytest.approx(7.64, rel=0.02)

    def test_all_relative_errors_small(self):
        for name, error in StitchAreaModel().relative_error().items():
            assert error < 0.01, name


class TestChipModel:
    def test_chip_area_about_34_mm2(self):
        assert ChipModel().chip_area_mm2() == pytest.approx(33.7, rel=0.02)

    def test_accel_area_fraction_is_half_percent(self):
        assert ChipModel().accel_area_fraction() == pytest.approx(0.005, rel=0.01)

    def test_power_numbers_match_table1(self):
        chip = ChipModel()
        assert chip.total_power_mw() == 139.5
        assert chip.nofusion_power_mw() == 108.0
        assert chip.baseline_power_mw() == pytest.approx(107.4, abs=0.5)

    def test_power_breakdown_sums_to_one(self):
        assert sum(POWER_BREAKDOWN.values()) == pytest.approx(1.0)

    def test_locus_power_exceeds_stitch(self):
        chip = ChipModel()
        assert chip.locus_power_mw() > chip.total_power_mw()


class TestEfficiency:
    def test_perf_per_watt_matches_fig14_anchor(self):
        # Paper: 2.3x speedup with the 23 % power overhead -> 1.77x.
        model = EfficiencyModel()
        assert model.perf_per_watt_vs_baseline(2.3) == pytest.approx(1.77, rel=0.01)

    def test_area_efficiency_nearly_equals_speedup(self):
        model = EfficiencyModel()
        assert model.perf_per_area_vs_baseline(2.3) == pytest.approx(2.29, rel=0.01)

    def test_vs_a7_anchors(self):
        # Paper Section V: Stitch at 7.62 ms vs A7 at 13 ms -> 1.71x
        # throughput and ~5.7x perf/W.
        model = EfficiencyModel()
        tput = model.throughput_vs_a7(7.62e-3, 13e-3)
        assert tput == pytest.approx(1.71, rel=0.01)
        ppw = model.perf_per_watt_vs_a7(7.62e-3, 13e-3)
        assert ppw == pytest.approx(tput / (139.5 / 469.0), rel=0.01)
        assert 5.0 < ppw < 6.5


class TestPlatforms:
    def test_published_measurements(self):
        assert SENSORTAG.gesture_ms == 577.0
        assert CORTEX_A7.power_mw == 469.0

    def test_deadline_logic(self):
        assert not SENSORTAG.meets_deadline()
        assert not CORTEX_A7.meets_deadline()
        assert stitch_platform(7.62).meets_deadline()
        assert not stitch_platform(GESTURE_DEADLINE_MS).meets_deadline()

    def test_perf_per_watt_ordering(self):
        # The SensorTag is efficient but far too slow; Stitch beats the
        # A7 on perf/W by a wide margin.
        stitch = stitch_platform(7.62)
        assert stitch.perf_per_watt() > CORTEX_A7.perf_per_watt()


class TestRelatedWork:
    def test_stitch_unique_position(self):
        stitch = next(a for a in RELATED_WORK if a.name == "Stitch")
        assert stitch.sharable and stitch.heterogeneous
        assert stitch.integration == "tight"
        others = [a for a in RELATED_WORK if a.name != "Stitch"]
        assert not any(a.sharable for a in others)

    def test_stitch_smallest_tight_area(self):
        tight = [a for a in RELATED_WORK if a.integration == "tight" and a.area_mm2]
        smallest = min(tight, key=lambda a: a.area_mm2)
        assert smallest.name == "Stitch"

    def test_table_renders_all_rows(self):
        text = related_work_table()
        for arch in RELATED_WORK:
            assert arch.name in text
