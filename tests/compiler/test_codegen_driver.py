"""Integration tests: profiling -> ISE -> codegen -> measured speedup."""

import pytest

from repro.compiler import KernelCompiler, profile_kernel
from repro.compiler.codegen import CodegenError, ImmPool
from repro.compiler.driver import ALL_OPTIONS, LOCUS_OPTION, PatchOption, SINGLE_OPTIONS
from repro.core import AT_MA, AT_SA
from repro.isa import Asm, Op, assemble
from repro.mem import SPM_BASE


def sum_of_squares_kernel(n=32):
    """sum += spm[i]*spm[i] over n elements, with a shift flourish."""
    asm = Asm("sumsq")
    asm.movi("r1", SPM_BASE)       # pointer
    asm.movi("r2", SPM_BASE + 4 * n)
    asm.movi("r6", 0)              # accumulator
    loop = asm.label("loop")
    asm.lw("r3", 0, "r1")
    asm.mul("r4", "r3", "r3")
    asm.srai("r5", "r4", 2)
    asm.add("r6", "r6", "r5")
    asm.addi("r1", "r1", 4)
    asm.bne("r1", "r2", loop)
    asm.halt()
    program = asm.assemble()

    class Kernel:
        name = "sumsq"
        live_out_regs = frozenset({6})

        def __init__(self):
            self.program = program
            self.n = n

        def setup(self, core):
            core.memory.load(SPM_BASE, [i + 1 for i in range(n)])

        def result(self, core):
            return [core.regs[6]]

    return Kernel()


class TestProfiler:
    def test_hot_block_is_the_loop(self):
        kernel = sum_of_squares_kernel()
        profile = profile_kernel(kernel.program, kernel.setup)
        hot = profile.hot_blocks()
        assert len(hot) == 1
        assert hot[0].weight > 0.9
        assert hot[0].entries == 32

    def test_spm_only_detection(self):
        kernel = sum_of_squares_kernel()
        profile = profile_kernel(kernel.program, kernel.setup)
        loop = profile.hot_blocks()[0].block
        load_index = next(
            loop.start + pos for pos, instr in enumerate(loop.instructions)
            if instr.op is Op.LW
        )
        assert load_index in profile.spm_only

    def test_non_halting_kernel_rejected(self):
        program = assemble("loop: jmp loop")
        with pytest.raises(RuntimeError):
            profile_kernel(program, max_instructions=1000)


class TestImmPool:
    def test_free_registers_found(self):
        program = assemble("add r1, r2, r3\nhalt")
        pool = ImmPool.for_program(program)
        reg = pool.get(42)
        assert reg not in (0, 1, 2, 3)

    def test_streaming_wrapper_registers_never_pooled(self):
        # r10-r13 belong to the stream wrapper even when the standalone
        # kernel leaves them untouched.
        program = assemble("add r1, r2, r3\nhalt")
        pool = ImmPool.for_program(program)
        taken = set()
        value = 100
        while True:
            try:
                taken.add(pool.get(value))
            except CodegenError:
                break
            value += 1
        assert taken  # some registers are available...
        assert 11 not in taken  # ...but never the wrapper's item counter

    def test_same_value_same_register(self):
        pool = ImmPool([14, 15])
        assert pool.get(7) == pool.get(7)
        assert pool.get(8) != pool.get(7)

    def test_zero_uses_r0(self):
        pool = ImmPool([14])
        assert pool.get(0) == 0

    def test_exhaustion(self):
        pool = ImmPool([14])
        pool.get(1)
        with pytest.raises(CodegenError):
            pool.get(2)
        assert not pool.can_allocate([3])
        assert pool.can_allocate([1])

    def test_prologue(self):
        pool = ImmPool([14, 15])
        pool.get(5)
        movis = pool.prologue()
        assert len(movis) == 1
        assert movis[0].op is Op.MOVI and movis[0].imm == 5


class TestRewrite:
    def test_rewritten_kernel_matches_and_speeds_up(self):
        kernel = sum_of_squares_kernel()
        compiler = KernelCompiler(kernel)
        compiled = compiler.compile(PatchOption("AT-MA", AT_MA))
        assert compiled.speedup > 1.0
        assert compiled.mappings

    def test_fused_option_at_least_as_fast(self):
        kernel = sum_of_squares_kernel()
        compiler = KernelCompiler(kernel)
        single = compiler.compile(PatchOption("AT-MA", AT_MA))
        fused = compiler.compile(PatchOption("AT-MA+AT-SA", AT_MA, AT_SA))
        assert fused.cycles <= single.cycles

    def test_all_options_compile_and_validate(self):
        kernel = sum_of_squares_kernel(n=8)
        compiler = KernelCompiler(kernel)
        table = compiler.compile_options(ALL_OPTIONS + (LOCUS_OPTION,))
        assert len(table) == len(ALL_OPTIONS) + 1
        for compiled in table.values():
            assert compiled.speedup >= 0.9

    def test_cix_present_in_rewritten_program(self):
        kernel = sum_of_squares_kernel()
        compiled = KernelCompiler(kernel).compile(PatchOption("AT-MA", AT_MA))
        ops = [instr.op for instr in compiled.program]
        assert Op.CIX in ops

    def test_branch_targets_remapped(self):
        kernel = sum_of_squares_kernel()
        compiled = KernelCompiler(kernel).compile(PatchOption("AT-MA", AT_MA))
        program = compiled.program
        for instr in program:
            if instr.is_branch() and instr.op is not Op.JR:
                assert 0 <= instr.target < len(program)

    def test_locus_cannot_take_memory_ops(self):
        kernel = sum_of_squares_kernel()
        compiled = KernelCompiler(kernel).compile(LOCUS_OPTION)
        for mapping in compiled.mappings:
            sig = mapping.candidate.signature()
            assert "T" not in sig

    def test_best_option_selects_maximum_speedup(self):
        kernel = sum_of_squares_kernel(n=8)
        compiler = KernelCompiler(kernel)
        best = compiler.best_option(SINGLE_OPTIONS)
        table = compiler.compile_options(SINGLE_OPTIONS)
        assert best.speedup == max(c.speedup for c in table.values())
