"""Driver versioning: one validated executable per patch option."""

import pytest

from repro.compiler.driver import (
    ALL_OPTIONS,
    FUSED_OPTIONS,
    KernelCompiler,
    MiscompileError,
    PatchOption,
    SINGLE_OPTIONS,
    _first_divergence,
)
from repro.core.patches import AT_AS, AT_MA
from repro.provenance import CompileReport
from repro.workloads import make_kernel


@pytest.fixture(scope="module")
def fir_versions():
    report = CompileReport("fir")
    compiler = KernelCompiler(make_kernel("fir"), report=report)
    compiled = compiler.compile_options(ALL_OPTIONS)
    return compiler, compiled, report


class TestVersioning:
    def test_one_version_per_option(self, fir_versions):
        _, compiled, report = fir_versions
        assert sorted(compiled) == sorted(o.name for o in ALL_OPTIONS)
        assert sorted(report.versions) == sorted(compiled)

    def test_all_versions_bit_exact(self, fir_versions):
        _, _, report = fir_versions
        assert all(
            v.validated is True for v in report.versions.values()
        )

    def test_fused_options_prefer_pair_then_fall_back(self):
        option = PatchOption("AT-MA+AT-AS", AT_MA, AT_AS)
        assert option.targets() == [(AT_MA, AT_AS), AT_MA]
        single = PatchOption("AT-MA", AT_MA)
        assert single.targets() == [AT_MA]

    def test_fused_fallback_flag_is_consistent(self, fir_versions):
        # A fused option whose candidates cannot cross the pair still
        # compiles — its mappings are single-patch and the version says
        # so — and a version with fused mappings never claims fallback.
        _, compiled, report = fir_versions
        for option in FUSED_OPTIONS:
            version = report.versions[option.name]
            assert version.fused
            assert version.mappings == len(compiled[option.name].mappings)
            if version.fallback_single:
                assert version.fused_mappings == 0 and version.mappings > 0
            if version.fused_mappings:
                assert not version.fallback_single

    def test_single_options_never_fuse(self, fir_versions):
        _, compiled, _ = fir_versions
        for option in SINGLE_OPTIONS:
            assert not compiled[option.name].uses_fusion

    def test_versions_cached_by_option_name(self, fir_versions):
        compiler, compiled, _ = fir_versions
        again = compiler.compile(ALL_OPTIONS[0])
        assert again is compiled[ALL_OPTIONS[0].name]


class TestMiscompileError:
    def test_first_divergence_in_sequences(self):
        assert _first_divergence([1, 2, 3], [1, 9, 3]) == ("[1]", 2, 9)
        assert _first_divergence([[1], [2, 3]], [[1], [2, 4]]) == (
            "[1][1]", 3, 4
        )
        assert _first_divergence([1], [1, 2]) == (".length", 1, 2)
        assert _first_divergence([1, 2], [1, 2]) is None

    def test_first_divergence_in_dicts(self):
        expected = {"mem": [1, 2], "reg": 7}
        actual = {"mem": [1, 5], "reg": 7}
        assert _first_divergence(expected, actual) == ("['mem'][1]", 2, 5)
        assert _first_divergence({"a": 1}, {}) == ("['a']", 1, "<absent>")

    def test_miscompile_error_names_kernel_option_and_word(self):
        error = MiscompileError.from_results(
            "fir", "AT-MA", [0, 1, 2], [0, 1, 99]
        )
        assert error.kernel == "fir"
        assert error.option == "AT-MA"
        assert error.divergence == ("[2]", 2, 99)
        assert "fir @ AT-MA" in str(error)
        assert "diverges at word [2]" in str(error)
        assert "expected 2" in str(error) and "got 99" in str(error)

    def test_tampered_reference_raises_located_miscompile(self):
        # Regression: a real validation failure must surface the kernel,
        # the option and the first diverging word — not a bare assert.
        compiler = KernelCompiler(make_kernel("fir"))
        reference = compiler._reference
        assert isinstance(reference, (list, tuple)) or hasattr(
            reference, "__iter__"
        )
        tampered = list(reference)
        tampered[0] = (
            tampered[0] + 1 if isinstance(tampered[0], int)
            else [v + 1 for v in tampered[0]]
            if isinstance(tampered[0], list) else tampered[0]
        )
        compiler._reference = (
            tuple(tampered) if isinstance(reference, tuple) else tampered
        )
        with pytest.raises(MiscompileError) as excinfo:
            compiler.compile(ALL_OPTIONS[0])
        error = excinfo.value
        assert error.kernel == "fir"
        assert error.option == ALL_OPTIONS[0].name
        assert error.divergence is not None
        assert "diverges at word" in str(error)

    def test_validation_failure_recorded_in_report(self):
        report = CompileReport("fir")
        compiler = KernelCompiler(make_kernel("fir"), report=report)
        reference = compiler._reference
        tampered = list(reference)
        tampered[-1] = None  # guaranteed mismatch whatever the payload
        compiler._reference = (
            tuple(tampered) if isinstance(reference, tuple) else tampered
        )
        with pytest.raises(MiscompileError):
            compiler.compile(ALL_OPTIONS[0])
        version = report.versions[ALL_OPTIONS[0].name]
        assert version.validated is False
        assert version.wall_seconds > 0
