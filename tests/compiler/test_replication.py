"""Tests for const-region replication (remote-LMAU fused loads).

The paper places different arrays in different tiles' scratchpads
(Section III-C's RealBitData/ImagBitData example); our compiler's
equivalent is replicating *read-only* regions into the remote tile so
a fused pattern's second load can run on the remote patch's LMAU.
"""

import pytest

from repro.compiler import profile_kernel
from repro.compiler.driver import ALL_OPTIONS, KernelCompiler
from repro.core.fusion import FusedConfig
from repro.workloads import make_kernel


@pytest.fixture(scope="module")
def conv_compilers():
    with_rep = KernelCompiler(make_kernel("2dconv"), allow_replication=True)
    without = KernelCompiler(make_kernel("2dconv"), allow_replication=False)
    return with_rep, without


class TestReplicableDetection:
    def test_profiler_reports_ranges(self):
        kernel = make_kernel("fir")
        profile = profile_kernel(kernel.program, kernel.setup)
        assert profile.mem_ranges
        for lo, hi in profile.mem_ranges.values():
            assert lo <= hi

    def test_const_confined_loads_found(self):
        kernel = make_kernel("fir")
        profile = profile_kernel(kernel.program, kernel.setup)
        const_regions = [r for r, _ in kernel.consts]
        replicable = profile.replicable_loads(const_regions)
        assert replicable  # the tap loads are confined to the h region
        for region in replicable.values():
            assert region.name == "h"

    def test_input_region_loads_not_replicable(self):
        kernel = make_kernel("fir")
        profile = profile_kernel(kernel.program, kernel.setup)
        const_regions = [r for r, _ in kernel.consts]
        replicable = profile.replicable_loads(const_regions)
        # The sample loads walk the (mutable) x region: never replicable.
        sample_pcs = {
            pc for pc, (lo, hi) in profile.mem_ranges.items()
            if lo >= kernel.x.addr and hi < kernel.x.end
        }
        assert sample_pcs.isdisjoint(replicable)


class TestReadOnlyGate:
    def test_mutated_const_region_never_replicable(self):
        # The ifft kernel's feature region is loaded as a "const" but
        # the update passes store back into it; a replica would go
        # stale, so the profiler must refuse it (regression test for a
        # miscompile the bit-exact validator caught).
        kernel = make_kernel("ifft")
        profile = profile_kernel(kernel.program, kernel.setup)
        const_regions = [r for r, _ in kernel.consts]
        replicable = profile.replicable_loads(const_regions)
        assert all(r.name != "feature" for r in replicable.values())

    def test_ifft_compiles_clean_with_replication(self):
        compiler = KernelCompiler(make_kernel("ifft"), allow_replication=True)
        compiled = compiler.best_option(ALL_OPTIONS)
        assert compiled.speedup >= 1.0  # validation inside compile()


class TestReplicationEffects:
    def test_conv_fusion_gains_from_replication(self, conv_compilers):
        with_rep, without = conv_compilers
        best_with = with_rep.best_option(ALL_OPTIONS)
        best_without = without.best_option(ALL_OPTIONS)
        assert best_with.speedup > best_without.speedup

    def test_replicated_regions_recorded(self, conv_compilers):
        with_rep, _ = conv_compilers
        compiled = with_rep.best_option(ALL_OPTIONS)
        assert any(r.name == "coef" for r in compiled.replicated_regions)

    def test_remote_lmau_config_present(self, conv_compilers):
        with_rep, _ = conv_compilers
        compiled = with_rep.best_option(ALL_OPTIONS)
        remote_loads = [
            cfg for cfg in compiled.cfg_table
            if isinstance(cfg, FusedConfig) and cfg.cfg_b.uses_lmau()
        ]
        assert remote_loads

    def test_without_replication_no_remote_lmau(self, conv_compilers):
        _, without = conv_compilers
        for option_name, compiled in without.compile_options(ALL_OPTIONS).items():
            for cfg in compiled.cfg_table:
                if isinstance(cfg, FusedConfig):
                    assert not cfg.cfg_b.uses_lmau(), option_name

    def test_results_still_validate(self, conv_compilers):
        # compile() raises MiscompileError on any divergence, so this
        # is implicitly checked; assert the flag explicitly anyway.
        with_rep, _ = conv_compilers
        compiled = with_rep.best_option(ALL_OPTIONS)
        assert compiled.speedup >= 1.0

    def test_stores_never_cross(self, conv_compilers):
        with_rep, _ = conv_compilers
        from repro.core.config import TMode
        for compiled in with_rep.compile_options(ALL_OPTIONS).values():
            for cfg in compiled.cfg_table:
                if isinstance(cfg, FusedConfig):
                    assert cfg.cfg_b.t in (
                        TMode.OFF, TMode.LOAD
                    ), "remote stores are forbidden"
