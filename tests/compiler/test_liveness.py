"""Unit tests for the CFG liveness analysis."""

from repro.compiler.liveness import (
    block_successors,
    block_use_def,
    liveness,
    successor_map,
)
from repro.isa import assemble


class TestSuccessors:
    def test_fallthrough_and_branch(self):
        program = assemble("""
            movi r1, 0
        loop:
            addi r1, r1, 1
            bne r1, r2, loop
            halt
        """)
        blocks = program.basic_blocks()
        assert block_successors(program, blocks[0]) == [1]
        assert sorted(block_successors(program, blocks[1])) == [1, 2]
        assert block_successors(program, blocks[2]) == []

    def test_jmp_has_single_successor(self):
        program = assemble("jmp end\nnop\nend: halt")
        blocks = program.basic_blocks()
        assert block_successors(program, blocks[0]) == [2]

    def test_jr_conservative(self):
        program = assemble("jr r1\nhalt")
        blocks = program.basic_blocks()
        assert block_successors(program, blocks[0]) == [0, 1]

    def test_jal_targets_callee_and_fallthrough(self):
        program = assemble("jal sub\nmovi r1, 1\nhalt\nsub: jr lr")
        blocks = program.basic_blocks()
        assert sorted(block_successors(program, blocks[0])) == [1, 2]

    def test_precomputed_maps_match_default(self):
        program = assemble("""
            movi r1, 0
        loop:
            addi r1, r1, 1
            bne r1, r2, loop
            halt
        """)
        blocks = program.basic_blocks()
        start_to_index = {b.start: b.index for b in blocks}
        for block in blocks:
            assert block_successors(program, block) == block_successors(
                program, block, blocks, start_to_index
            )


class TestSuccessorMap:
    def test_matches_per_block_queries(self):
        program = assemble("""
            movi r1, 0
        loop:
            addi r1, r1, 1
            bne r1, r2, loop
            jmp out
        out:
            halt
        """)
        blocks = program.basic_blocks()
        succs = successor_map(program, blocks)
        assert set(succs) == {b.index for b in blocks}
        for block in blocks:
            assert succs[block.index] == block_successors(program, block)

    def test_liveness_computes_blocks_once(self):
        # Regression: liveness used to rebuild the leader map for every
        # block (quadratic in block count).  The CFG must be derived
        # from a single basic_blocks() pass over the program.
        lines = []
        for i in range(40):
            lines.append(f"b{i}:")
            lines.append("    addi r1, r1, 1")
            lines.append(f"    bne r1, r2, b{i}")
        lines.append("    halt")
        program = assemble("\n".join(lines))

        class CountingProgram:
            def __init__(self, inner):
                self._inner = inner
                self.calls = 0

            def basic_blocks(self):
                self.calls += 1
                return self._inner.basic_blocks()

        counting = CountingProgram(program)
        live_in, live_out = liveness(counting, exit_live=frozenset())
        assert counting.calls == 1
        assert len(live_in) == 41  # 40 loop blocks + the halt block


class TestUseDef:
    def test_upward_exposed_only(self):
        program = assemble("movi r1, 5\nadd r2, r1, r3\nhalt")
        use, define = block_use_def(program.basic_blocks()[0])
        assert 3 in use and 1 not in use  # r1 defined before its use
        assert define == {1, 2}


class TestLiveness:
    def test_loop_carried_register_live(self):
        program = assemble("""
            movi r1, 0
            movi r3, 5
        loop:
            addi r1, r1, 1
            bne r1, r3, loop
            halt
        """)
        live_in, live_out = liveness(program, exit_live=frozenset())
        loop_index = 1
        assert 1 in live_in[loop_index]   # the counter crosses the back edge
        assert 3 in live_in[loop_index]   # the bound too
        assert 1 in live_out[loop_index]

    def test_dead_temporary_not_live(self):
        program = assemble("""
            movi r1, 0
            movi r3, 5
        loop:
            mul r4, r1, r1
            addi r1, r1, 1
            bne r1, r3, loop
            halt
        """)
        _, live_out = liveness(program, exit_live=frozenset())
        assert 4 not in live_out[1]  # r4 recomputed every iteration

    def test_exit_live_reaches_final_block(self):
        program = assemble("movi r6, 7\nhalt")
        _, live_out = liveness(program, exit_live=frozenset({6}))
        assert 6 in live_out[0]
        _, live_out = liveness(program, exit_live=frozenset())
        assert 6 not in live_out[0]

    def test_branch_condition_live_across_blocks(self):
        program = assemble("""
            movi r1, 1
            beq r1, r2, done
            add r3, r2, r2
        done:
            halt
        """)
        live_in, _ = liveness(program, exit_live=frozenset())
        assert 2 in live_in[0]  # r2 never defined: live from entry
