"""Unit tests for candidate -> patch mapping."""

from repro.compiler import DFG, map_candidate
from repro.compiler.ise import Candidate
from repro.core import AT_AS, AT_MA, AT_SA, FusedConfig, PatchConfig
from repro.core.executor import PatchExecutor
from repro.core.patches import LOCUS_SFU
from repro.isa import assemble
from repro.mem import MemorySystem


def make_candidate(source, node_ids=None, spm_only=frozenset()):
    program = assemble(source)
    dfg = DFG(program.basic_blocks()[0], spm_only=spm_only)
    if node_ids is None:
        node_ids = {node.id for node in dfg.eligible_nodes()}
    return Candidate(dfg, node_ids)


class TestSinglePatchMapping:
    def test_add_shift_on_at_as(self):
        candidate = make_candidate("add r1, r2, r3\nsll r4, r1, r5\nmovi r1, 0\nhalt")
        mapping = map_candidate(candidate, AT_AS)
        assert mapping is not None
        assert isinstance(mapping.config, PatchConfig)
        assert mapping.config.ptype == AT_AS

    def test_add_shift_not_on_at_sa_order(self):
        # {AT-SA} has shift *before* the late ALU; add->sll needs A then S
        # and the first ALU feeds only the chain... the SA tail cannot
        # realize A (pos0) -> S (pos2) -> nothing: actually A(0)->S(2) is
        # legal.  What SA cannot do is shift-then-add with the add first.
        candidate = make_candidate("add r1, r2, r3\nsll r4, r1, r5\nmovi r1, 0\nhalt")
        assert map_candidate(candidate, AT_SA) is not None

    def test_shift_add_chain_prefers_sa(self):
        candidate = make_candidate("srl r1, r2, r3\nadd r4, r1, r5\nmovi r1, 0\nhalt")
        # shift (pos 2) -> add (pos 3) on AT-SA.
        assert map_candidate(candidate, AT_SA) is not None
        # AT-AS would need shift at pos 3 feeding an add -- impossible.
        assert map_candidate(candidate, AT_AS) is None

    def test_mul_add_on_at_ma_only(self):
        candidate = make_candidate("mul r1, r2, r3\nadd r4, r1, r5\nmovi r1, 0\nhalt")
        assert map_candidate(candidate, AT_MA) is not None
        assert map_candidate(candidate, AT_AS) is None
        assert map_candidate(candidate, AT_SA) is None

    def test_three_op_chain_uses_first_alu(self):
        # add -> mul -> add : A(0) M(2) A(3) on AT-MA.
        candidate = make_candidate(
            "add r1, r2, r3\nmul r4, r1, r5\nadd r6, r4, r7\nmovi r1, 0\nmovi r4, 0\nhalt"
        )
        mapping = map_candidate(candidate, AT_MA)
        assert mapping is not None
        assert mapping.config.active_positions() == [0, 2, 3]

    def test_load_compute_chain(self):
        # lw (SPM) -> mul -> add : T(1) M(2) A(3).
        source = "lw r1, 0(r2)\nmul r3, r1, r4\nadd r5, r3, r6\nmovi r1, 0\nmovi r3, 0\nhalt"
        candidate = make_candidate(source, spm_only={0})
        mapping = map_candidate(candidate, AT_MA)
        assert mapping is not None
        assert mapping.config.uses_lmau()

    def test_load_with_offset_consumes_first_alu(self):
        # lw 8(r2) needs ADD(r2, 8) at pos 0 then T.
        source = "lw r1, 8(r2)\nmul r3, r1, r4\nmovi r1, 0\nhalt"
        candidate = make_candidate(source, spm_only={0})
        mapping = map_candidate(candidate, AT_MA)
        assert mapping is not None
        assert mapping.config.u0 is not None
        assert ("imm", 8) in mapping.ext_binding

    def test_mem_on_patch_without_lmau_fails(self):
        source = "lw r1, 0(r2)\nmul r3, r1, r4\nmovi r1, 0\nhalt"
        candidate = make_candidate(source, spm_only={0})
        assert map_candidate(candidate, LOCUS_SFU) is None

    def test_compute_chain_on_locus_sfu(self):
        candidate = make_candidate(
            "add r1, r2, r3\nmul r4, r1, r5\nmovi r1, 0\nhalt"
        )
        mapping = map_candidate(candidate, LOCUS_SFU)
        assert mapping is not None
        assert mapping.config.ptype == LOCUS_SFU

    def test_non_commutative_chain_into_in2(self):
        # r5 - (r2+r3): the chain value is the subtrahend, entering the
        # late ALU through in2's chain select.
        candidate = make_candidate("add r1, r2, r3\nsub r4, r5, r1\nmovi r1, 0\nhalt")
        mapping = map_candidate(candidate, AT_MA)
        assert mapping is not None

    def test_squaring_pattern_maps(self):
        candidate = make_candidate("add r1, r2, r3\nmul r4, r1, r1\nmovi r1, 0\nhalt")
        mapping = map_candidate(candidate, AT_MA)
        assert mapping is not None

    def test_two_outputs_exposed(self):
        # add (used later) feeding a second add; both values escape.
        source = (
            "add r1, r2, r3\n"
            "add r4, r1, r5\n"
            "xor r6, r1, r4\n"
            "halt"
        )
        candidate = make_candidate(source, node_ids={0, 1})
        mapping = map_candidate(candidate, AT_MA)
        assert mapping is not None
        assert len(mapping.out_binding) == 2

    def test_three_outputs_impossible(self):
        source = (
            "add r1, r2, r3\n"
            "sub r4, r1, r2\n"
            "xor r5, r1, r2\n"
            "and r6, r1, r2\n"
            "halt"
        )
        candidate = make_candidate(source, node_ids={0, 1, 2})
        # 0 feeds 1, 2 and the outside 'and'; 0, 1, 2 all live out -> 3 outs.
        assert len(candidate.outputs) == 3
        assert map_candidate(candidate, (AT_MA, AT_MA)) is None


class TestFusedMapping:
    def test_four_op_chain_needs_fusion(self):
        source = (
            "add r1, r2, r3\n"
            "sll r4, r1, r5\n"
            "add r6, r4, r2\n"
            "srl r8, r6, r5\n"
            "movi r1, 0\nmovi r4, 0\nmovi r6, 0\nhalt"
        )
        candidate = make_candidate(source)
        assert candidate.size == 4
        assert map_candidate(candidate, AT_AS) is None
        mapping = map_candidate(candidate, (AT_AS, AT_AS))
        assert mapping is not None
        assert isinstance(mapping.config, FusedConfig)

    def test_fused_result_matches_software(self):
        source = (
            "add r1, r2, r3\n"
            "sll r4, r1, r5\n"
            "add r6, r4, r2\n"
            "srl r8, r6, r5\n"
            "movi r1, 0\nmovi r4, 0\nmovi r6, 0\nhalt"
        )
        candidate = make_candidate(source)
        mapping = map_candidate(candidate, (AT_AS, AT_AS))
        executor = PatchExecutor([mapping.config], MemorySystem.stitch())
        # operands: resolve ext binding refs against a register file view
        regs = {2: 10, 3: 5, 5: 2}
        ins = []
        for ref in mapping.ext_binding:
            if ref is None:
                ins.append(0)
            elif ref[0] == "reg":
                ins.append(regs[ref[1]])
            else:
                ins.append(ref[1])
        outs = executor.execute(0, ins)
        expected = (((10 + 5) << 2) + 10) >> 2
        assert outs[0] == expected

    def test_mul_chain_with_shift_tail(self):
        # mul -> add -> sra: MA tail on A, SA tail on B.
        source = (
            "mul r1, r2, r3\n"
            "add r4, r1, r5\n"
            "sra r6, r4, r7\n"
            "movi r1, 0\nmovi r4, 0\nhalt"
        )
        candidate = make_candidate(source)
        assert map_candidate(candidate, (AT_MA, AT_SA)) is not None
        assert map_candidate(candidate, (AT_MA, AT_AS)) is not None

    def test_memory_stays_on_origin_patch(self):
        # Two SPM loads cannot both map (one LMAU on the origin).
        source = (
            "lw r1, 0(r2)\n"
            "lw r3, 0(r4)\n"
            "add r5, r1, r3\n"
            "movi r1, 0\nmovi r3, 0\nhalt"
        )
        candidate = make_candidate(source, spm_only={0, 1})
        assert map_candidate(candidate, (AT_MA, AT_MA)) is None

    def test_a_outputs_both_feed_b(self):
        # (r2+r3) and ((r2+r3) loaded?) -- simpler: A computes add chain
        # tap and end; B combines them.
        source = (
            "add r1, r2, r3\n"    # node 0 -> a_out1 (head tap)
            "sll r4, r1, r5\n"    # node 1 -> a_out0 (chain end)
            "xor r6, r1, r4\n"    # node 2 on B consumes both
            "movi r1, 0\nmovi r4, 0\nhalt"
        )
        candidate = make_candidate(source)
        mapping = map_candidate(candidate, (AT_AS, AT_AS))
        assert mapping is not None

    def test_unfusible_type_rejected(self):
        candidate = make_candidate("add r1, r2, r3\nsll r4, r1, r5\nmovi r1, 0\nhalt")
        assert map_candidate(candidate, (LOCUS_SFU, LOCUS_SFU)) is None


class TestMappingMetadata:
    def test_ext_binding_within_four(self):
        candidate = make_candidate("add r1, r2, r3\nsll r4, r1, r5\nmovi r1, 0\nhalt")
        mapping = map_candidate(candidate, AT_AS)
        bound = [ref for ref in mapping.ext_binding if ref is not None]
        assert 1 <= len(bound) <= 4

    def test_out_binding_registers(self):
        candidate = make_candidate("add r1, r2, r3\nsll r4, r1, r5\nmovi r1, 0\nhalt")
        mapping = map_candidate(candidate, AT_AS)
        assert mapping.out_binding[0] == 4
