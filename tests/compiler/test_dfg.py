"""Unit tests for DFG construction over basic blocks."""

from repro.compiler import DFG
from repro.isa import Op, assemble


def block_dfg(source, spm_only=frozenset()):
    program = assemble(source)
    blocks = program.basic_blocks()
    return DFG(blocks[0], spm_only=spm_only)


class TestConstruction:
    def test_value_edges_follow_defs(self):
        dfg = block_dfg("add r1, r2, r3\nmul r4, r1, r1\nhalt")
        mul = dfg.nodes[1]
        assert mul.value_pred_ids() == [0, 0]
        assert dfg.consumers(0) == [1, 1]

    def test_live_in_registers_are_reg_refs(self):
        dfg = block_dfg("add r1, r2, r3\nhalt")
        assert dfg.nodes[0].inputs == (("reg", 2), ("reg", 3))

    def test_immediate_forms(self):
        dfg = block_dfg("addi r1, r2, 5\nhalt")
        assert dfg.nodes[0].inputs == (("reg", 2), ("imm", 5))
        assert dfg.nodes[0].base is Op.ADD

    def test_mov_is_wiring(self):
        dfg = block_dfg("add r1, r2, r3\nmov r4, r1\nsub r5, r4, r2\nhalt")
        assert len(dfg.nodes) == 2  # mov is not a node
        sub = dfg.nodes[1]
        assert ("node", 0) in sub.inputs

    def test_movi_folds_constants(self):
        dfg = block_dfg("movi r1, 7\nadd r2, r1, r3\nhalt")
        assert dfg.nodes[0].inputs == (("imm", 7), ("reg", 3))

    def test_r0_reads_become_zero_constants(self):
        dfg = block_dfg("add r1, r0, r2\nhalt")
        assert dfg.nodes[0].inputs == (("imm", 0), ("reg", 2))

    def test_memory_nodes_and_order(self):
        dfg = block_dfg("lw r1, 4(r2)\nsw r1, 0(r3)\nhalt")
        load, store = dfg.nodes
        assert load.is_mem and load.mem_offset == 4
        assert store.inputs[0] == ("node", 0)  # stored value
        assert dfg.mem_order == [0, 1]

    def test_live_out_marks_final_defs(self):
        dfg = block_dfg("add r1, r2, r3\nadd r1, r1, r1\nhalt")
        assert not dfg.nodes[0].live_out
        assert dfg.nodes[1].live_out

    def test_branch_reads_count_as_uses(self):
        dfg = block_dfg("add r1, r2, r3\nbeq r1, r0, out\nout: halt")
        assert dfg.nodes[0].uses == [1]


class TestEligibility:
    def test_spm_safety_gates_memory_nodes(self):
        source = "lw r1, 0(r2)\nadd r3, r1, r1\nhalt"
        without = block_dfg(source)
        assert [n.op for n in without.eligible_nodes()] == [Op.ADD]
        program = assemble(source)
        with_spm = DFG(program.basic_blocks()[0], spm_only={0})
        assert len(with_spm.eligible_nodes()) == 2

    def test_sltu_not_mappable(self):
        dfg = block_dfg("sltu r1, r2, r3\nadd r4, r1, r1\nhalt")
        assert [n.op for n in dfg.eligible_nodes()] == [Op.ADD]


class TestCandidateQueries:
    def test_external_inputs_dedup(self):
        dfg = block_dfg("add r1, r2, r2\nmul r3, r1, r2\nhalt")
        refs = dfg.external_inputs({0, 1})
        assert refs == [("reg", 2)]

    def test_mem_offset_counts_as_input(self):
        dfg = block_dfg("lw r1, 8(r2)\nadd r3, r1, r1\nhalt", spm_only=frozenset({0}))
        refs = dfg.external_inputs({0, 1})
        assert ("imm", 8) in refs

    def test_outputs_external_consumer(self):
        # r1 is overwritten afterwards so the add is not live out; the
        # mul feeds the sub outside the candidate.
        dfg = block_dfg(
            "add r1, r2, r3\nmul r4, r1, r1\nsub r5, r4, r2\nmovi r1, 0\nhalt"
        )
        assert dfg.outputs({0, 1}) == [1]

    def test_outputs_live_out(self):
        dfg = block_dfg("add r1, r2, r3\nmul r4, r1, r1\nhalt")
        # Both are final defs of their registers, hence live out.
        assert dfg.outputs({0, 1}) == [0, 1]

    def test_convexity_violation(self):
        dfg = block_dfg(
            "add r1, r2, r3\n"     # node 0
            "sltu r4, r1, r2\n"    # node 1 (outside any candidate)
            "mul r5, r4, r1\n"     # node 2
            "halt"
        )
        assert not dfg.is_convex({0, 2})
        assert dfg.is_convex({0, 1, 2})

    def test_mem_span_violation(self):
        source = (
            "lw r1, 0(r2)\n"   # node 0 (SPM)
            "sw r1, 0(r4)\n"   # node 1 (not SPM-safe, outside)
            "lw r3, 4(r2)\n"   # node 2 (SPM)
            "add r5, r1, r3\nhalt"
        )
        program = assemble(source)
        dfg = DFG(program.basic_blocks()[0], spm_only={0, 2})
        assert not dfg.is_convex({0, 2, 3})
        assert dfg.is_convex({2, 3})
