"""Unit tests for ISE candidate enumeration."""

from repro.compiler import DFG, enumerate_candidates
from repro.isa import assemble


def candidates_of(source, spm_only=frozenset(), **kwargs):
    program = assemble(source)
    dfg = DFG(program.basic_blocks()[0], spm_only=spm_only)
    return dfg, enumerate_candidates(dfg, **kwargs)


class TestEnumeration:
    def test_simple_chain_enumerated(self):
        _, cands = candidates_of(
            "add r1, r2, r3\nsll r4, r1, r5\nmovi r1, 0\nmovi r4, 0\nhalt"
        )
        # Only one eligible pair {add, sll}; both dead afterwards except
        # the chain's own uses.
        assert any(c.size == 2 for c in cands)

    def test_each_subgraph_once(self):
        _, cands = candidates_of(
            "add r1, r2, r3\nadd r4, r1, r3\nadd r5, r4, r3\nhalt"
        )
        seen = [c.node_ids for c in cands]
        assert len(seen) == len(set(seen))

    def test_respects_input_limit(self):
        source = (
            "add r1, r2, r3\n"
            "add r4, r5, r6\n"
            "add r7, r8, r9\n"
            "add r10, r1, r4\n"
            "add r11, r10, r7\n"
            "halt"
        )
        _, cands = candidates_of(source)
        for candidate in cands:
            assert len(candidate.inputs) <= 4

    def test_respects_output_limit(self):
        # A producer feeding three external consumers still yields only
        # candidates with <= 2 outputs.
        source = (
            "add r1, r2, r3\n"
            "mul r4, r1, r1\n"
            "sub r5, r1, r2\n"
            "xor r6, r1, r2\n"
            "halt"
        )
        _, cands = candidates_of(source)
        for candidate in cands:
            assert len(candidate.outputs) <= 2

    def test_larger_candidates_first(self):
        _, cands = candidates_of(
            "add r1, r2, r3\nadd r4, r1, r3\nadd r5, r4, r3\nhalt"
        )
        sizes = [c.size for c in cands]
        assert sizes == sorted(sizes, reverse=True)

    def test_max_size_respected(self):
        source = "\n".join(
            f"add r1, r1, r2" for _ in range(12)
        ) + "\nhalt"
        _, cands = candidates_of(source, max_size=4)
        assert max(c.size for c in cands) <= 4

    def test_signature_orders_by_position(self):
        dfg, cands = candidates_of(
            "mul r1, r2, r3\nadd r4, r1, r5\nsrl r6, r4, r7\n"
            "movi r1, 0\nmovi r4, 0\nhalt"
        )
        full = next(c for c in cands if c.size == 3)
        assert full.signature() == "MAS"

    def test_store_only_candidate_allowed(self):
        source = "add r1, r2, r3\nsw r1, 0(r4)\nmovi r1, 0\nhalt"
        _, cands = candidates_of(source, spm_only={1})
        pair = [c for c in cands if c.size == 2]
        assert pair and pair[0].outputs == []

    def test_limit_truncates_enumeration(self):
        source = "\n".join("add r1, r1, r2" for _ in range(20)) + "\nhalt"
        _, few = candidates_of(source, limit=10)
        _, many = candidates_of(source, limit=10000)
        assert len(few) <= len(many)
