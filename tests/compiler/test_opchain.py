"""Unit tests for the op-chain LCS study (Section III-A machinery)."""

import pytest

from repro.compiler import DFG, critical_path_classes, lcs_rounds
from repro.compiler.opchain import OpChainRound, patch_mix_from_rounds
from repro.isa import assemble


def path_of(source, spm_only=frozenset()):
    program = assemble(source)
    return critical_path_classes(DFG(program.basic_blocks()[0], spm_only=spm_only))


class TestCriticalPath:
    def test_linear_chain(self):
        assert path_of(
            "mul r1, r2, r3\nadd r4, r1, r5\nsrl r6, r4, r7\nhalt"
        ) == "MAS"

    def test_parallel_branches_take_longest(self):
        source = (
            "add r1, r2, r3\n"          # short branch
            "mul r4, r5, r6\n"          # long branch: M -> A -> S
            "add r7, r4, r2\n"
            "sll r8, r7, r3\n"
            "halt"
        )
        assert path_of(source) == "MAS"

    def test_memory_in_path(self):
        assert path_of(
            "lw r1, 0(r2)\nadd r3, r1, r4\nhalt", spm_only={0}
        ) == "TA"

    def test_moves_excluded(self):
        assert path_of("mov r1, r2\nadd r3, r1, r4\nhalt") == "A"

    def test_empty_block(self):
        assert path_of("halt") == ""


class TestLcsRounds:
    def test_common_pair_found(self):
        rounds = lcs_rounds({
            "k1": ["ATMA"], "k2": ["ATAS"], "k3": ["XATX".replace('X','S')],
        })
        assert rounds[0].chain == "AT"
        assert rounds[0].rate == pytest.approx(1.0)

    def test_excision_reveals_next_chain(self):
        rounds = lcs_rounds({"k1": ["ATMA"], "k2": ["ATMA"]}, max_len=2)
        chains = [r.chain for r in rounds]
        assert chains[0] in ("AT", "MA", "TM")
        assert len(chains) >= 2

    def test_rates_over_kernel_population(self):
        rounds = lcs_rounds(
            {"a": ["ATAT"], "b": ["SS"], "c": ["SS"], "d": ["SS"]}, max_len=2
        )
        by_chain = {r.chain: r.rate for r in rounds}
        assert by_chain.get("AT") == pytest.approx(0.25)
        assert by_chain.get("SS") == pytest.approx(0.75)

    def test_empty_input(self):
        assert lcs_rounds({}) == []

    def test_max_rounds_respected(self):
        rounds = lcs_rounds({"k": ["ASMTASMTASMT"]}, max_rounds=3)
        assert len(rounds) <= 3


class TestPatchMix:
    def paper_rounds(self):
        return [
            OpChainRound("AT", 0.957, 22),
            OpChainRound("MA", 0.478, 11),
            OpChainRound("AA", 0.348, 8),
            OpChainRound("AS", 0.217, 5),
            OpChainRound("SA", 0.217, 5),
        ]

    def test_reproduces_paper_8_4_4(self):
        mix = patch_mix_from_rounds(self.paper_rounds())
        assert mix == {"MA": 8, "AS": 4, "SA": 4}

    def test_mix_sums_to_tiles(self):
        mix = patch_mix_from_rounds(self.paper_rounds(), num_tiles=16)
        assert sum(mix.values()) == 16

    def test_no_tail_chains(self):
        assert patch_mix_from_rounds([OpChainRound("AT", 1.0, 10)]) == {}
