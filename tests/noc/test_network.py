"""Unit tests for packets and the NoC timing models."""

import pytest

from repro.noc import (
    LINK_CYCLES,
    Network,
    Packet,
    ROUTER_STAGES,
    packetize,
)
from repro.noc.packet import MAX_WORDS_PER_PACKET, WORDS_PER_FLIT


PER_HOP = ROUTER_STAGES + LINK_CYCLES


class TestPackets:
    def test_control_packet_single_flit(self):
        packet = Packet(0, 1, 0)
        assert packet.flits == 1
        assert packet.is_control()

    def test_data_packet_five_flits(self):
        # Table II: data packets are 5 flits (head + 4 payload).
        packet = Packet(0, 1, MAX_WORDS_PER_PACKET)
        assert packet.flits == 5

    def test_partial_payload_rounds_to_flits(self):
        packet = Packet(0, 1, 1)
        assert packet.payload_flits == 1
        packet = Packet(0, 1, WORDS_PER_FLIT + 1)
        assert packet.payload_flits == 2

    def test_packetize_splits_long_messages(self):
        packets = packetize(0, 1, MAX_WORDS_PER_PACKET * 2 + 3)
        assert [p.payload_words for p in packets] == [16, 16, 3]
        assert [p.sequence for p in packets] == [0, 1, 2]

    def test_packetize_zero_words_is_control(self):
        packets = packetize(0, 1, 0)
        assert len(packets) == 1 and packets[0].is_control()

    def test_oversized_payload_rejected(self):
        with pytest.raises(ValueError):
            Packet(0, 1, MAX_WORDS_PER_PACKET + 1)
        with pytest.raises(ValueError):
            packetize(0, 1, -1)


class TestAnalyticLatency:
    def test_single_hop_control(self):
        net = Network()
        assert net.uncontended_latency(0, 1, 0) == PER_HOP

    def test_single_hop_full_packet(self):
        net = Network()
        assert net.uncontended_latency(0, 1, 16) == PER_HOP + 4

    def test_latency_scales_with_hops(self):
        net = Network()
        close = net.uncontended_latency(0, 1, 4)
        far = net.uncontended_latency(0, 15, 4)
        assert far - close == 5 * PER_HOP

    def test_multi_packet_serialization(self):
        net = Network()
        one = net.uncontended_latency(0, 1, 16)
        two = net.uncontended_latency(0, 1, 32)
        assert two - one == 5  # one extra 5-flit packet streams behind


class TestLinkReservationModel:
    def test_matches_analytic_when_uncontended(self):
        for nwords in (0, 1, 4, 16, 35):
            for dst in (1, 5, 15):
                net = Network()
                arrival, _ = net.send(0, dst, nwords, time=100)
                assert arrival == 100 + net.uncontended_latency(0, dst, nwords)

    def test_contention_delays_second_packet(self):
        net = Network()
        first, _ = net.send(0, 3, 16, time=0)
        # A competing message from tile 1 crosses links (1,2),(2,3) the
        # first message also uses.
        second, _ = net.send(1, 3, 16, time=0)
        lone = Network()
        alone, _ = lone.send(1, 3, 16, time=0)
        assert second > alone

    def test_no_contention_on_disjoint_links(self):
        net = Network()
        net.send(0, 1, 16, time=0)
        busy, _ = net.send(4, 5, 16, time=0)
        lone = Network()
        alone, _ = lone.send(4, 5, 16, time=0)
        assert busy == alone

    def test_injection_done_before_arrival(self):
        net = Network()
        arrival, injection_done = net.send(0, 15, 32, time=0)
        assert injection_done < arrival

    def test_loopback_costs_serialization_only(self):
        net = Network()
        arrival, done = net.send(3, 3, 16, time=10)
        assert arrival == done == 10 + 5

    def test_contention_disabled_mode(self):
        net = Network(contention=False)
        arrival, _ = net.send(0, 3, 16, time=0)
        assert arrival == net.uncontended_latency(0, 3, 16)

    def test_stats_accumulate(self):
        net = Network()
        net.send(0, 3, 40, time=0)
        assert net.packets_sent == 3
        assert net.flits_sent == 5 + 5 + 3  # 16+16+8 words
        net.reset()
        assert net.packets_sent == 0
