"""Unit tests for the mesh topology and XY routing."""

import pytest

from repro.noc import Mesh


class TestMeshGeometry:
    def test_default_is_4x4(self):
        mesh = Mesh()
        assert mesh.num_tiles == 16

    def test_coords_roundtrip(self):
        mesh = Mesh(4, 4)
        for tile in range(16):
            x, y = mesh.coords(tile)
            assert mesh.tile_at(x, y) == tile

    def test_paper_numbering(self):
        mesh = Mesh()
        assert mesh.paper_tile(0) == 1       # top-left is tile 1
        assert mesh.from_paper(16) == 15
        assert mesh.coords(mesh.from_paper(2)) == (1, 0)

    def test_corner_neighbors(self):
        mesh = Mesh()
        assert sorted(mesh.neighbors(0)) == [1, 4]
        assert sorted(mesh.neighbors(15)) == [11, 14]

    def test_center_neighbors(self):
        mesh = Mesh()
        assert sorted(mesh.neighbors(5)) == [1, 4, 6, 9]

    def test_invalid_tiles_rejected(self):
        mesh = Mesh()
        with pytest.raises(ValueError):
            mesh.coords(16)
        with pytest.raises(ValueError):
            mesh.tile_at(4, 0)
        with pytest.raises(ValueError):
            Mesh(0, 4)


class TestRouting:
    def test_hop_count_is_manhattan(self):
        mesh = Mesh()
        assert mesh.hop_count(0, 15) == 6
        assert mesh.hop_count(0, 0) == 0
        assert mesh.hop_count(3, 12) == 6

    def test_xy_route_goes_x_first(self):
        mesh = Mesh()
        # tile 0 is (0,0); tile 9 is (1,2): route x to 1, then y down.
        assert mesh.xy_route(0, 9) == [0, 1, 5, 9]

    def test_route_endpoints_inclusive(self):
        mesh = Mesh()
        path = mesh.xy_route(2, 2)
        assert path == [2]

    def test_route_links(self):
        mesh = Mesh()
        links = mesh.route_links(0, 2)
        assert links == [(0, 1), (1, 2)]

    def test_route_length_matches_hops(self):
        mesh = Mesh()
        for src in range(16):
            for dst in range(16):
                assert len(mesh.route_links(src, dst)) == mesh.hop_count(src, dst)

    def test_negative_direction_route(self):
        mesh = Mesh()
        assert mesh.xy_route(15, 0) == [15, 14, 13, 12, 8, 4, 0]
