"""Smoke tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_run_command(self, tmp_path, capsys):
        source = tmp_path / "prog.s"
        source.write_text(
            "movi r1, 6\nmovi r2, 7\nmul r3, r1, r2\nhalt\n"
        )
        main(["run", str(source)])
        out = capsys.readouterr().out
        assert "stopped: halt" in out
        assert "'r3': 42" in out

    def test_compile_command_single_option(self, capsys):
        main(["compile", "fir", "--option", "AT-MA"])
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "AT-MA" in out
        assert "x" in out

    def test_compile_unknown_option_exits(self):
        with pytest.raises(SystemExit):
            main(["compile", "fir", "--option", "NOPE"])

    def test_unknown_app_exits(self):
        with pytest.raises(SystemExit):
            main(["app", "APP9"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
