"""Smoke tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_run_command(self, tmp_path, capsys):
        source = tmp_path / "prog.s"
        source.write_text(
            "movi r1, 6\nmovi r2, 7\nmul r3, r1, r2\nhalt\n"
        )
        main(["run", str(source)])
        out = capsys.readouterr().out
        assert "stopped: halt" in out
        assert "'r3': 42" in out

    def test_compile_command_single_option(self, capsys):
        main(["compile", "fir", "--option", "AT-MA"])
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "AT-MA" in out
        assert "x" in out

    def test_compile_unknown_option_exits(self):
        with pytest.raises(SystemExit):
            main(["compile", "fir", "--option", "NOPE"])

    def test_unknown_app_exits(self):
        with pytest.raises(SystemExit):
            main(["app", "APP9"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


KERNEL_SOURCE = """\
    movi r1, 0x100
    movi r5, 0
    movi r6, 4
loop:
    lw   r2, 0(r1)
    add  r5, r5, r2
    addi r1, r1, 4
    addi r6, r6, -1
    bne  r6, r0, loop
    halt
"""


class TestTelemetryCli:
    def run_traced(self, tmp_path, capsys, extra=()):
        source = tmp_path / "kernel.s"
        source.write_text(KERNEL_SOURCE)
        trace = tmp_path / "out.json"
        main(["run", str(source), "--trace", str(trace), *extra])
        return trace, capsys.readouterr().out

    def test_run_stats_prints_exact_attribution(self, tmp_path, capsys):
        source = tmp_path / "kernel.s"
        source.write_text(KERNEL_SOURCE)
        main(["run", str(source), "--stats"])
        out = capsys.readouterr().out
        assert "compute" in out and "memory_stall" in out
        assert "attribution" in out
        assert "V500" not in out  # measured run verifies clean

    def test_run_trace_is_valid_chrome_json(self, tmp_path, capsys):
        import json

        trace, out = self.run_traced(tmp_path, capsys)
        assert "chrome trace written" in out
        doc = json.loads(trace.read_text())
        events = doc["traceEvents"]
        assert events, "trace must not be empty"
        # Track structure: a metadata event names the tile's thread and
        # every span/instant carries the Chrome-required fields.
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "thread_name"
                   and e["args"]["name"] == "tile 0" for e in meta)
        spans = [e for e in events if e["ph"] == "X"]
        assert spans, "the run slice must appear as a span"
        for span in spans:
            assert span["dur"] >= 0 and span["ts"] >= 0
            assert {"pid", "tid", "name"} <= set(span)
        instants = [e for e in events if e["ph"] == "i"]
        assert instants, "cache misses must appear as instants"

    def test_app_stats_reports_rollup(self, capsys):
        main(["app", "APP4", "--stats", "--items", "1"])
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "attribution" in out
        assert "V500" not in out

    def test_run_gz_trace(self, tmp_path, capsys):
        import gzip
        import json

        source = tmp_path / "kernel.s"
        source.write_text(KERNEL_SOURCE)
        trace = tmp_path / "out.json.gz"
        main(["run", str(source), "--trace", str(trace)])
        assert trace.read_bytes()[:2] == b"\x1f\x8b"
        with gzip.open(trace, "rt", encoding="utf-8") as handle:
            assert json.load(handle)["traceEvents"]

    def test_run_timeseries_is_monotonic(self, tmp_path, capsys):
        import json

        source = tmp_path / "kernel.s"
        source.write_text(KERNEL_SOURCE)
        out_path = tmp_path / "series.json"
        main(["run", str(source), "--timeseries", str(out_path),
              "--interval", "16"])
        out = capsys.readouterr().out
        assert "time series written" in out
        payload = json.loads(out_path.read_text())
        assert payload["interval"] == 16
        samples = payload["tiles"]["0"]
        indices = [s["index"] for s in samples]
        assert indices == sorted(indices)
        assert all(s["end"] - s["start"] == 16 for s in samples)
        assert all("energy_nj" in s for s in samples)


class TestProfileCli:
    def test_profile_kernel_summary(self, capsys):
        main(["profile", "fft"])
        out = capsys.readouterr().out
        assert "reconciled" in out
        assert "loop@fft_bf" in out
        assert "V900" not in out

    def test_profile_annotate(self, capsys):
        main(["profile", "fir", "--annotate"])
        out = capsys.readouterr().out
        assert "cycles" in out and "share" in out and "retired" in out
        assert "fir" in out and "halt" in out

    def test_profile_json_reconciles(self, capsys):
        import json

        main(["profile", "fir", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["reconciled"] is True
        assert doc["target"] == "fir"
        tile = doc["tiles"]["0"]
        assert tile["total_cycles"] == tile["profiled_cycles"]
        assert not doc["diagnostics"]["diagnostics"]

    def test_profile_folded(self, capsys):
        main(["profile", "fir", "--folded"])
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)

    def test_profile_unknown_target_exits(self):
        with pytest.raises(SystemExit):
            main(["profile", "no-such-thing"])


class TestCritpathCli:
    def test_critpath_kernel_summary(self, capsys):
        main(["critpath", "fir"])
        out = capsys.readouterr().out
        assert "makespan:" in out and "(complete)" in out
        assert "critical path:" in out
        assert "DOES NOT RECONCILE" not in out

    def test_critpath_json_reconciles(self, capsys):
        import json

        main(["critpath", "fir", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["target"] == "fir"
        assert doc["partial"] is False
        analysis = doc["analysis"]
        assert analysis["reconciled"] is True
        assert analysis["consistent"] is True
        assert analysis["critical_cycles"] == doc["measured_cycles"]
        assert not doc["diagnostics"]["diagnostics"]

    def test_critpath_gantt(self, capsys):
        main(["critpath", "fir", "--gantt", "--width", "40"])
        out = capsys.readouterr().out
        assert "tile   0 |" in out
        assert "uppercase = critical path" in out

    def test_critpath_whatif_and_validation(self, capsys):
        main(["critpath", "fir", "--what-if", "dram_latency*2",
              "--validate", "dram_latency*2"])
        out = capsys.readouterr().out
        assert "what-if ['dram_latency*2']" in out
        assert "drift +0.0000%" in out

    def test_critpath_out_artifact(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "capture.json"
        main(["critpath", "fir", "--out", str(out_path)])
        capsys.readouterr()
        doc = json.loads(out_path.read_text())
        assert doc["analysis"]["reconciled"] is True
        from repro.verify import check_critpath_capture

        assert check_critpath_capture(doc).ok(strict=True)

    def test_critpath_bad_whatif_exits(self):
        with pytest.raises(SystemExit):
            main(["critpath", "fir", "--what-if", "warp_drive*9"])

    def test_critpath_unknown_target_exits(self):
        with pytest.raises(SystemExit):
            main(["critpath", "no-such-thing"])


class TestMonitorCli:
    def test_monitor_kernel(self, capsys):
        main(["monitor", "fir", "--interval", "64"])
        out = capsys.readouterr().out
        assert "stall timeline" in out
        assert "tile 0" in out
        assert "V901" not in out

    def test_monitor_saved_capture(self, tmp_path, capsys):
        source = tmp_path / "kernel.s"
        source.write_text(KERNEL_SOURCE)
        series = tmp_path / "series.json"
        main(["run", str(source), "--timeseries", str(series),
              "--interval", "16"])
        capsys.readouterr()
        main(["monitor", str(series)])
        out = capsys.readouterr().out
        assert "stall timeline" in out

    def test_monitor_reads_gzipped_capture(self, tmp_path, capsys):
        import gzip
        import json

        from repro.telemetry import TimeSeries

        ts = TimeSeries(interval=100)
        ts.tile_sample(0, 0, {"cycles": 100, "instructions": 90,
                              "memory_stall": 10})
        path = tmp_path / "series.json.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            json.dump(ts.to_dict(), handle)
        main(["monitor", str(path)])
        out = capsys.readouterr().out
        assert "stall timeline" in out
        assert "tile 0" in out

    def test_monitor_rejects_bad_capture(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"interval": 0, "tiles": {}}')
        with pytest.raises(SystemExit):
            main(["monitor", str(bad)])
        assert "V901" in capsys.readouterr().out
