"""Smoke tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_run_command(self, tmp_path, capsys):
        source = tmp_path / "prog.s"
        source.write_text(
            "movi r1, 6\nmovi r2, 7\nmul r3, r1, r2\nhalt\n"
        )
        main(["run", str(source)])
        out = capsys.readouterr().out
        assert "stopped: halt" in out
        assert "'r3': 42" in out

    def test_compile_command_single_option(self, capsys):
        main(["compile", "fir", "--option", "AT-MA"])
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "AT-MA" in out
        assert "x" in out

    def test_compile_unknown_option_exits(self):
        with pytest.raises(SystemExit):
            main(["compile", "fir", "--option", "NOPE"])

    def test_unknown_app_exits(self):
        with pytest.raises(SystemExit):
            main(["app", "APP9"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


KERNEL_SOURCE = """\
    movi r1, 0x100
    movi r5, 0
    movi r6, 4
loop:
    lw   r2, 0(r1)
    add  r5, r5, r2
    addi r1, r1, 4
    addi r6, r6, -1
    bne  r6, r0, loop
    halt
"""


class TestTelemetryCli:
    def run_traced(self, tmp_path, capsys, extra=()):
        source = tmp_path / "kernel.s"
        source.write_text(KERNEL_SOURCE)
        trace = tmp_path / "out.json"
        main(["run", str(source), "--trace", str(trace), *extra])
        return trace, capsys.readouterr().out

    def test_run_stats_prints_exact_attribution(self, tmp_path, capsys):
        source = tmp_path / "kernel.s"
        source.write_text(KERNEL_SOURCE)
        main(["run", str(source), "--stats"])
        out = capsys.readouterr().out
        assert "compute" in out and "memory_stall" in out
        assert "attribution" in out
        assert "V500" not in out  # measured run verifies clean

    def test_run_trace_is_valid_chrome_json(self, tmp_path, capsys):
        import json

        trace, out = self.run_traced(tmp_path, capsys)
        assert "chrome trace written" in out
        doc = json.loads(trace.read_text())
        events = doc["traceEvents"]
        assert events, "trace must not be empty"
        # Track structure: a metadata event names the tile's thread and
        # every span/instant carries the Chrome-required fields.
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "thread_name"
                   and e["args"]["name"] == "tile 0" for e in meta)
        spans = [e for e in events if e["ph"] == "X"]
        assert spans, "the run slice must appear as a span"
        for span in spans:
            assert span["dur"] >= 0 and span["ts"] >= 0
            assert {"pid", "tid", "name"} <= set(span)
        instants = [e for e in events if e["ph"] == "i"]
        assert instants, "cache misses must appear as instants"

    def test_app_stats_reports_rollup(self, capsys):
        main(["app", "APP4", "--stats", "--items", "1"])
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "attribution" in out
        assert "V500" not in out
