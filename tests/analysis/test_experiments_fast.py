"""The fast (model-only) experiment drivers run green end to end."""

import pytest

from repro.analysis.experiments import (
    run_fig13_breakdown,
    run_table3_area,
    run_table4_timing,
    run_table5_relatedwork,
)
from repro.analysis.experiments.ablations import run_ablation_hoplimit


@pytest.mark.parametrize(
    "driver",
    [
        run_table3_area,
        run_table4_timing,
        run_table5_relatedwork,
        run_fig13_breakdown,
        run_ablation_hoplimit,
    ],
)
def test_driver_all_records_hold(driver):
    report = driver()
    assert report.records, "an experiment must compare something"
    assert report.all_hold(), [r.name for r in report.failures()]


def test_reports_render_markdown():
    report = run_table4_timing()
    text = report.to_markdown()
    assert report.exp_id in text
    assert "4.63" in text


def test_critical_path_record_tight():
    report = run_table4_timing()
    record = next(r for r in report.records if "critical path" in r.name)
    assert record.paper == 4.63
    assert abs(record.measured - 4.63) < 0.01
