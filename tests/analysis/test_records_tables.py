"""Unit tests for experiment records and table rendering."""

from repro.analysis import ExperimentRecord, ExperimentReport, render_table


class TestRecords:
    def test_ratio_within_tolerance_holds(self):
        record = ExperimentRecord("x", 2.0, 2.4, tolerance=0.25)
        assert record.holds()

    def test_ratio_outside_tolerance_fails(self):
        record = ExperimentRecord("x", 2.0, 3.1, tolerance=0.25)
        assert not record.holds()

    def test_default_tolerance_is_half(self):
        assert ExperimentRecord("x", 2.0, 2.9).holds()
        assert not ExperimentRecord("x", 2.0, 3.2).holds()

    def test_direction_compare(self):
        assert ExperimentRecord("x", 1.5, 1.01, compare="direction").holds()
        assert not ExperimentRecord("x", 1.5, 0.9, compare="direction").holds()

    def test_exact_compare(self):
        assert ExperimentRecord("x", "8/4/4", "8/4/4", compare="exact").holds()
        assert not ExperimentRecord("x", 1, 2, compare="exact").holds()

    def test_info_always_holds(self):
        assert ExperimentRecord("x", None, 123, compare="info").holds()

    def test_zero_paper_value(self):
        assert ExperimentRecord("x", 0, 0.1, tolerance=0.2).holds()
        assert not ExperimentRecord("x", 0, 0.5, tolerance=0.2).holds()


class TestReport:
    def make(self):
        report = ExperimentReport("Fig. X", "demo")
        report.add("good", 1.0, 1.1, "x", tolerance=0.2)
        report.add("bad", 1.0, 9.9, "x", tolerance=0.2)
        return report

    def test_failures_listed(self):
        report = self.make()
        assert not report.all_hold()
        assert [r.name for r in report.failures()] == ["bad"]

    def test_markdown_contains_rows_and_status(self):
        text = self.make().to_markdown()
        assert "Fig. X" in text
        assert "| good |" in text
        assert "NO" in text

    def test_summary_counts(self):
        assert "1/2" in self.make().summary()


class TestRenderTable:
    def test_alignment_and_floats(self):
        text = render_table(
            ["name", "value"], [("a", 1.23456), ("long-name", 2.0)],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.235" in text
        assert "2" in text

    def test_all_rows_present(self):
        rows = [(f"k{i}", i) for i in range(5)]
        text = render_table(["k", "v"], rows)
        for name, _ in rows:
            assert name in text
