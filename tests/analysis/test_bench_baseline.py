"""The committed bench baselines stay well-formed and fully accounted."""

import json
from pathlib import Path

BASELINES = Path(__file__).resolve().parents[2] / "benchmarks" / "baselines"


class TestCommittedBaselines:
    def test_fig11_baseline_shape(self):
        payload = json.loads((BASELINES / "BENCH_fig11.json").read_text())
        assert payload["bench"] == "fig11"
        assert payload["schema"] == 1
        assert len(payload["kernels"]) == 15  # the Figure 11 axis
        for name, entry in payload["kernels"].items():
            assert entry["baseline_cycles"] > 0, name
            assert entry["best_speedup"] >= entry["best_single"]["speedup"]
            assert entry["best_speedup"] >= 1.0, name

    def test_fig11_accounts_for_every_candidate(self):
        # The PR's acceptance criterion: on every Fig. 11 kernel,
        # accepted + rejected-with-reason candidates equal the
        # enumeration total (recorded at baseline-generation time and
        # re-proven by tests/provenance on live compiles).
        payload = json.loads((BASELINES / "BENCH_fig11.json").read_text())
        unaccounted = [
            name for name, entry in payload["kernels"].items()
            if entry["candidates_accounted"] is not True
        ]
        assert unaccounted == []

    def test_fig12_baseline_shape(self):
        payload = json.loads((BASELINES / "BENCH_fig12.json").read_text())
        assert payload["bench"] == "fig12"
        assert sorted(payload["apps"]) == ["APP1", "APP2", "APP3", "APP4"]
        for name, entry in payload["apps"].items():
            throughputs = entry["throughputs"]
            assert throughputs["baseline"] == 1.0
            # Fusion never loses to not fusing (stitch_best invariant).
            assert throughputs["Stitch"] >= throughputs["Stitch w/o fusion"]
            assert entry["winning_variant"] in {
                "greedy-all", "singles-only", "singles+upgrade",
            }
