"""Golden test: the default platform reproduces the committed bench.

The platform refactor's acceptance criterion is bit-identical behaviour
on the stitch preset: re-measuring Figure-11 kernels live must land
*exactly* on the committed ``benchmarks/baselines/BENCH_fig11.json``
numbers (wall-clock fields excluded — those depend on the machine).
A fast kernel subset keeps the test cheap; the CI bench gate covers
the full axis.
"""

import json
from pathlib import Path

from repro.analysis.bench import WALL_FIELDS, bench_fig11

BASELINES = Path(__file__).resolve().parents[2] / "benchmarks" / "baselines"

# Cheap-to-compile kernels (sub-second each).
GOLDEN_KERNELS = ("specfilter", "svm", "update")


def _strip_wall(entry):
    return {k: v for k, v in entry.items() if k not in WALL_FIELDS}


class TestGoldenBench:
    def test_stitch_preset_reproduces_committed_fig11(self):
        committed = json.loads(
            (BASELINES / "BENCH_fig11.json").read_text()
        )["kernels"]
        fresh = bench_fig11(kernels=GOLDEN_KERNELS, seed=1)["kernels"]
        for name in GOLDEN_KERNELS:
            assert _strip_wall(fresh[name]) == _strip_wall(committed[name]), (
                f"{name}: live measurement drifted from the committed "
                f"baseline — the platform refactor is not bit-identical"
            )
