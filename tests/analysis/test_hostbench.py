"""Unit tests for the host-throughput bench and its regression gate."""

from repro.analysis.hostbench import (
    bench_host,
    compare_host,
    render_host,
)


def payload(fir_fast=2_000_000, fir_ref=250_000, agg_fast=1_000_000,
            agg_ref=200_000, instructions=50_000, speedup=None):
    if speedup is None:
        speedup = round(agg_fast / agg_ref, 3)
    return {
        "bench": "host",
        "schema": 1,
        "repeats": 3,
        "targets": {
            "fir": {
                "instructions": instructions,
                "reference_instr_per_second": fir_ref,
                "fast_instr_per_second": fir_fast,
                "fast_speedup": round(fir_fast / fir_ref, 3),
            },
        },
        "aggregate": {
            "reference_instr_per_second": agg_ref,
            "fast_instr_per_second": agg_fast,
            "fast_speedup": speedup,
        },
    }


class TestCompareHost:
    def test_identical_payloads_pass(self):
        regressions, notes = compare_host(payload(), payload())
        assert regressions == []
        assert notes  # drifts are reported even at 0%

    def test_aggregate_fast_drop_regresses(self):
        regressions, _ = compare_host(
            payload(agg_fast=800_000), payload(agg_fast=1_000_000)
        )
        assert any("aggregate.fast_instr_per_second" in r
                   for r in regressions)

    def test_aggregate_fast_improvement_is_a_note(self):
        regressions, notes = compare_host(
            payload(agg_fast=2_000_000), payload(agg_fast=1_000_000)
        )
        assert regressions == []
        assert any("aggregate.fast_instr_per_second" in n for n in notes)

    def test_per_target_fast_drop_is_note_only(self):
        # Single-kernel wall times are too noisy to gate; only the
        # pooled aggregate fails CI.
        regressions, notes = compare_host(
            payload(fir_fast=1_000_000), payload(fir_fast=2_000_000)
        )
        assert regressions == []
        assert any("targets.fir.fast_instr_per_second" in n for n in notes)

    def test_reference_throughput_never_gates(self):
        # The reference interpreter is the oracle, not the product.
        regressions, notes = compare_host(
            payload(fir_ref=100_000, agg_ref=80_000, speedup=12.5),
            payload(),
        )
        assert regressions == []
        assert any("reference_instr_per_second" in n for n in notes)

    def test_instruction_count_change_regresses(self):
        regressions, _ = compare_host(
            payload(instructions=50_001), payload(instructions=50_000)
        )
        assert any("simulated count changed" in r for r in regressions)

    def test_speedup_below_floor_regresses(self):
        regressions, _ = compare_host(
            payload(speedup=1.4), payload(), min_speedup=2.0
        )
        assert any("below the 2.0x floor" in r for r in regressions)

    def test_speedup_above_floor_is_a_note(self):
        regressions, notes = compare_host(
            payload(speedup=3.0), payload(speedup=5.0), min_speedup=2.0
        )
        assert regressions == []
        assert any("aggregate.fast_speedup" in n for n in notes)

    def test_missing_target_regresses(self):
        current = payload()
        del current["targets"]["fir"]
        regressions, _ = compare_host(current, payload())
        assert any("targets.fir" in r and "missing" in r
                   for r in regressions)

    def test_missing_aggregate_key_regresses(self):
        current = payload()
        del current["aggregate"]["fast_instr_per_second"]
        regressions, _ = compare_host(current, payload())
        assert any("aggregate.fast_instr_per_second" in r and "missing" in r
                   for r in regressions)

    def test_tolerance_is_respected(self):
        base = payload(agg_fast=1_000_000)
        slight = payload(agg_fast=950_000)  # -5%
        regressions, _ = compare_host(slight, base, tolerance=0.10)
        assert regressions == []
        regressions, _ = compare_host(slight, base, tolerance=0.02)
        assert any("aggregate.fast_instr_per_second" in r
                   for r in regressions)

    def test_floor_applies_without_baseline_speedup(self):
        base = payload()
        del base["aggregate"]["fast_speedup"]
        regressions, _ = compare_host(
            payload(speedup=1.0), base, min_speedup=2.0
        )
        assert any("below the 2.0x floor" in r for r in regressions)


class TestRenderHost:
    def test_renders_targets_and_total(self):
        text = render_host(payload())
        assert "fir" in text
        assert "TOTAL" in text
        assert "speedup" in text


class TestBenchHost:
    def test_single_kernel_payload_shape(self):
        result = bench_host(kernels=("fir",), app=None, repeats=1)
        row = result["targets"]["fir"]
        assert row["instructions"] > 0
        assert row["fast_speedup"] > 1.0
        assert result["aggregate"]["fast_speedup"] > 1.0
        assert result["bench"] == "host"
