"""Unit tests for the tile-map rendering."""

from repro.analysis.viz import placement_map, plan_map, stitch_paths
from repro.core.stitching import BASELINE, stitch_application


def fabricated_plan():
    cycles = {
        0: {BASELINE: 1000, "AT-MA+AT-AS": 400},
        1: {BASELINE: 900, "AT-SA": 500},
        **{sid: {BASELINE: 10} for sid in range(2, 16)},
    }
    return stitch_application("viz-test", cycles)


class TestPlacementMap:
    def test_all_sixteen_tiles_rendered(self):
        text = placement_map()
        for number in range(1, 17):
            assert f"{number:>2} " in text or f"[{number} " in text

    def test_patch_mix_visible(self):
        text = placement_map()
        assert text.count("AT-MA") == 8
        assert text.count("AT-AS") == 4
        assert text.count("AT-SA") == 4


class TestPlanMap:
    def test_accelerated_tiles_marked(self):
        plan = fabricated_plan()
        text = plan_map(plan)
        assert "*" in text          # stage 0/1 accelerated on their tiles
        assert "~" in text          # a remote patch was lent
        assert "s0" in text

    def test_stitch_paths_listed(self):
        plan = fabricated_plan()
        text = stitch_paths(plan)
        assert "stage 0" in text
        assert "->" in text

    def test_no_fusion_message(self):
        cycles = {sid: {BASELINE: 10} for sid in range(16)}
        plan = stitch_application("none", cycles)
        assert "no fused pairs" in stitch_paths(plan)
