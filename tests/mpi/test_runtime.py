"""Unit tests for the message-passing runtime."""

import pytest

from repro.cpu import Core, STOP_HALT, STOP_RECV
from repro.isa import assemble
from repro.mem import MemorySystem
from repro.mpi import MessagePassing


class TestChannels:
    def test_send_then_recv(self):
        fabric = MessagePassing()
        fabric.send(0, 1, [10, 20, 30], now=0)
        result = fabric.try_recv(0, 1, 3, now=1000)
        assert result is not None
        values, finish = result
        assert values == [10, 20, 30]
        assert finish >= 1000

    def test_recv_blocks_until_enough_words(self):
        fabric = MessagePassing()
        fabric.send(0, 1, [1, 2], now=0)
        assert fabric.try_recv(0, 1, 3, now=0) is None
        fabric.send(0, 1, [3], now=0)
        values, _ = fabric.try_recv(0, 1, 3, now=0)
        assert values == [1, 2, 3]

    def test_channels_are_pairwise(self):
        fabric = MessagePassing()
        fabric.send(0, 2, [5], now=0)
        assert fabric.try_recv(1, 2, 1, now=0) is None
        values, _ = fabric.try_recv(0, 2, 1, now=0)
        assert values == [5]

    def test_fifo_order_preserved(self):
        fabric = MessagePassing()
        fabric.send(0, 1, [1], now=0)
        fabric.send(0, 1, [2], now=0)
        values, _ = fabric.try_recv(0, 1, 2, now=0)
        assert values == [1, 2]

    def test_recv_finish_respects_arrival(self):
        fabric = MessagePassing()
        fabric.send(0, 15, [1], now=0)  # 6 hops away
        _, finish = fabric.try_recv(0, 15, 1, now=0)
        latency = fabric.network.uncontended_latency(0, 15, 1)
        assert finish >= latency

    def test_earliest_ready(self):
        fabric = MessagePassing()
        assert fabric.earliest_ready(1) is None
        fabric.send(0, 1, [1], now=0)
        assert fabric.earliest_ready(1) is not None

    def test_pending_words(self):
        fabric = MessagePassing()
        fabric.send(0, 1, [1, 2], now=0)
        fabric.send(2, 1, [3], now=0)
        assert fabric.pending_words(1) == 3
        assert fabric.pending_words() == 3

    def test_invalid_tiles_rejected(self):
        fabric = MessagePassing()
        with pytest.raises(ValueError):
            fabric.port(16)
        with pytest.raises(ValueError):
            fabric.send(0, 99, [1], now=0)


class TestCoresOverFabric:
    def test_producer_consumer_programs(self):
        producer_src = """
            movi r1, 1       ; peer tile
            movi r2, 0x100   ; buffer
            movi r3, 4       ; words
            movi r4, 42
            sw   r4, 0(r2)
            sw   r4, 4(r2)
            sw   r4, 8(r2)
            sw   r4, 12(r2)
            send r1, r2, r3
            halt
        """
        consumer_src = """
            movi r1, 0       ; peer tile
            movi r2, 0x200
            movi r3, 4
            recv r1, r2, r3
            lw   r4, 12(r2)
            halt
        """
        fabric = MessagePassing()
        producer = Core(
            assemble(producer_src), MemorySystem.stitch(),
            comm=fabric.port(0), core_id=0,
        )
        consumer = Core(
            assemble(consumer_src), MemorySystem.stitch(),
            comm=fabric.port(1), core_id=1,
        )
        # Consumer first: blocks on recv.
        assert consumer.run().reason == STOP_RECV
        assert producer.run().reason == STOP_HALT
        assert consumer.run().reason == STOP_HALT
        assert consumer.regs[4] == 42

    def test_receiver_time_advances_past_arrival(self):
        fabric = MessagePassing()
        sender = Core(
            assemble("movi r1, 1\nmovi r2, 0x100\nmovi r3, 1\nsend r1, r2, r3\nhalt"),
            MemorySystem.stitch(), comm=fabric.port(0),
        )
        receiver = Core(
            assemble("movi r1, 0\nmovi r2, 0x100\nmovi r3, 1\nrecv r1, r2, r3\nhalt"),
            MemorySystem.stitch(), comm=fabric.port(1),
        )
        sender.run()
        receiver.run()
        # The receiver executed only 5 cheap instructions but must wait
        # for the network delivery initiated by the sender.
        latency = fabric.network.uncontended_latency(0, 1, 1)
        assert receiver.cycles >= latency
