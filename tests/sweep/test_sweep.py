"""Tests for the design-space sweep runner and the built-in studies."""

import pytest

from repro.platform import PlatformConfig
from repro.sweep import (
    STUDIES,
    make_points,
    run_point,
    run_sweep,
    smoke_points,
    sweep_to_json,
)
from repro.sweep.runner import ring_expected, ring_programs


def _point(config, kernel="specfilter"):
    return {
        "id": f"{config.name}/{kernel}",
        "config": config.to_dict(),
        "workload": {"kind": "kernel", "name": kernel, "seed": 1},
    }


class TestRunner:
    def test_kernel_point_reports_metrics(self):
        record = run_point(_point(PlatformConfig.stitch()))
        assert "error" not in record
        metrics = record["metrics"]
        assert metrics["cycles"] > metrics["instructions"] > 0
        assert 0 <= metrics["icache_hit_rate"] <= 1

    def test_point_is_a_pure_function_of_its_dict(self):
        point = _point(PlatformConfig.stitch())
        assert run_point(point) == run_point(dict(point))

    def test_dram_latency_moves_cycles(self):
        slow = PlatformConfig.baseline().derive(
            "slow", mem={"dram_latency": 100}
        )
        fast = PlatformConfig.baseline().derive(
            "fast", mem={"dram_latency": 10}
        )
        slow_cycles = run_point(_point(slow))["metrics"]["cycles"]
        fast_cycles = run_point(_point(fast))["metrics"]["cycles"]
        assert slow_cycles > fast_cycles
        # Timing changed; results did not.
        assert (run_point(_point(slow))["metrics"]["result_checksum"]
                == run_point(_point(fast))["metrics"]["result_checksum"])

    def test_workload_failure_is_captured_not_raised(self):
        point = _point(PlatformConfig.stitch())
        point["workload"]["name"] = "no-such-kernel"
        record = run_point(point)
        assert "metrics" not in record
        assert "no-such-kernel" in record["error"]

    def test_unknown_workload_kind_is_captured(self):
        point = _point(PlatformConfig.stitch())
        point["workload"]["kind"] = "quantum"
        assert "quantum" in run_point(point)["error"]

    def test_duplicate_point_ids_rejected(self):
        point = _point(PlatformConfig.stitch())
        with pytest.raises(ValueError, match="duplicate"):
            run_sweep([point, dict(point)])

    def test_parallel_equals_serial(self):
        points = smoke_points()
        serial = run_sweep(points, workers=1)
        parallel = run_sweep(points, workers=2)
        assert sweep_to_json(serial) == sweep_to_json(parallel)
        assert serial["errors"] == 0
        assert serial["points"] == len(points)

    def test_results_preserve_submission_order(self):
        points = smoke_points()
        payload = run_sweep(points)
        assert [r["id"] for r in payload["results"]] == [
            p["id"] for p in points
        ]


class TestTelemetryMerge:
    def telemetry_points(self):
        points = []
        for kernel in ("fir", "specfilter"):
            point = _point(PlatformConfig.stitch(), kernel=kernel)
            point["workload"]["telemetry"] = True
            points.append(point)
        return points

    def test_point_carries_flat_stats(self):
        record = run_point(self.telemetry_points()[0])
        flat = record["stats"]
        assert flat["counters"]["kernel.cycles"] == (
            record["metrics"]["cycles"]
        )
        assert flat["counters"]["kernel.attribution.compute"] > 0

    def test_untagged_point_stays_lean(self):
        record = run_point(_point(PlatformConfig.stitch()))
        assert "stats" not in record

    def test_sweep_merges_stats_total(self):
        payload = run_sweep(self.telemetry_points())
        total = payload["stats_total"]["counters"]
        per_point = [r["stats"]["counters"] for r in payload["results"]]
        assert total["kernel.cycles"] == sum(
            c["kernel.cycles"] for c in per_point
        )

    def test_parallel_merge_equals_serial(self):
        points = self.telemetry_points()
        serial = run_sweep(points, workers=1)
        parallel = run_sweep(points, workers=2)
        assert sweep_to_json(serial) == sweep_to_json(parallel)
        assert "stats_total" in serial

    def test_payload_without_telemetry_has_no_total(self):
        assert "stats_total" not in run_sweep(smoke_points())

    def test_ring_point_telemetry(self):
        config = PlatformConfig.stitch().derive(
            "m2", noc={"mesh_width": 2, "mesh_height": 2}
        )
        record = run_point({
            "id": "ring", "config": config.to_dict(),
            "workload": {"kind": "ring", "telemetry": True},
        })
        assert "error" not in record, record.get("error")
        assert record["stats"]["counters"]


class TestRingWorkload:
    @pytest.mark.parametrize("width,height", [(2, 2), (8, 8)])
    def test_ring_bit_exact_across_mesh_sizes(self, width, height):
        """The message-passing ring computes the exact token on any
        mesh, and two independent runs are bit-identical."""
        config = PlatformConfig.stitch().derive(
            f"m{width}x{height}",
            noc={"mesh_width": width, "mesh_height": height},
        )
        point = {
            "id": "ring",
            "config": config.to_dict(),
            "workload": {"kind": "ring", "laps": 2},
        }
        first = run_point(point)
        second = run_point(point)
        assert "error" not in first, first.get("error")
        assert first == second
        metrics = first["metrics"]
        assert metrics["tiles"] == width * height
        assert metrics["token"] == metrics["token_expected"]
        assert metrics["token"] == ring_expected(width * height, laps=2)

    def test_bigger_rings_take_longer(self):
        results = {}
        for width in (2, 4):
            config = PlatformConfig.stitch().derive(
                f"m{width}", noc={"mesh_width": width, "mesh_height": width}
            )
            results[width] = run_point({
                "id": "r", "config": config.to_dict(),
                "workload": {"kind": "ring"},
            })["metrics"]["makespan"]
        assert results[4] > results[2]

    def test_ring_programs_reject_single_tile(self):
        with pytest.raises(ValueError):
            ring_programs(1)


class TestStudies:
    def test_all_studies_produce_unique_valid_points(self):
        points = make_points()
        ids = [p["id"] for p in points]
        assert len(ids) == len(set(ids))
        for point in points:
            PlatformConfig.from_dict(point["config"])  # validates

    def test_study_names(self):
        assert sorted(STUDIES) == ["dcache", "dram", "mesh"]
        with pytest.raises(KeyError):
            make_points(["warp-drive"])

    def test_mesh_study_runs_clean(self):
        payload = run_sweep(make_points(["mesh"]))
        assert payload["errors"] == 0
        spans = [r["metrics"]["makespan"] for r in payload["results"]]
        assert spans == sorted(spans)  # bigger mesh, longer ring

    def test_smoke_points_are_small(self):
        points = smoke_points()
        assert len(points) == 4  # 2 configs x 2 kernels
        payload = run_sweep(points)
        assert payload["errors"] == 0
