"""Partial-graph finalization: deadlocks and exhausted round budgets."""

from repro.critpath.recorder import KIND_BLOCKED, KIND_CUT
from repro.critpath.runner import record_system, recording_telemetry
from repro.isa import assemble
from repro.sim import StitchSystem
from repro.verify import Report, check_critpath


def deadlocked_run():
    """Two tiles, each receive-waiting on the other forever."""
    wait = ("movi r1, {peer}\nmovi r2, 0x100\nmovi r3, 1\n"
            "recv r1, r2, r3\nhalt")
    telemetry, recorder = recording_telemetry()
    system = StitchSystem(telemetry=telemetry)
    system.load(0, assemble(wait.format(peer=1)))
    system.load(1, assemble(wait.format(peer=0)))
    return record_system("deadlock-pair", system, recorder)


def budget_cut_run():
    """A handshake cut off by a budget too small for one round trip."""
    producer = assemble("""
        movi r1, 1
        movi r2, 0x100
        movi r3, 2
        movi r4, 42
        sw   r4, 0(r2)
        sw   r4, 4(r2)
        send r1, r2, r3
        halt
    """)
    consumer = assemble("""
        movi r1, 0
        movi r2, 0x200
        movi r3, 2
        recv r1, r2, r3
        halt
    """)
    telemetry, recorder = recording_telemetry()
    system = StitchSystem(telemetry=telemetry)
    system.load(0, producer)
    system.load(1, consumer)
    return record_system("budget-cut", system, recorder,
                         max_instructions_per_slice=1, max_rounds=2)


class TestDeadlock:
    def test_run_is_partial_with_deadlock_outcome(self):
        run = deadlocked_run()
        assert run.partial
        assert run.graph.outcome == "deadlock"
        assert run.graph.partial()
        assert "Deadlock" in type(run.error).__name__

    def test_partial_graph_still_reconciles(self):
        run = deadlocked_run()
        assert run.analysis.reconciled()
        assert run.analysis.consistent()
        assert run.measured == run.graph.makespan

    def test_blocked_terminals_recorded(self):
        run = deadlocked_run()
        terminals = {r.tile: r for r in run.graph.records
                     if r.kind == KIND_BLOCKED}
        assert set(terminals) == {0, 1}
        assert terminals[0].peer == 1
        assert terminals[1].peer == 0

    def test_frontier_names_peer_words_and_snapshot(self):
        run = deadlocked_run()
        frontier = run.analysis.frontier()
        assert set(frontier) == {0, 1}
        for tile, info in frontier.items():
            assert info["peer"] == 1 - tile
            assert info["words"] == 1
            assert info["cycles"] >= 0
            assert "snapshot" in info

    def test_verifier_accepts_partial_graph(self):
        run = deadlocked_run()
        report = Report()
        check_critpath(run.graph, run.analysis, measured=run.measured,
                       report=report)
        assert not report.errors()


class TestBudgetCut:
    def test_run_is_partial_with_budget_outcome(self):
        run = budget_cut_run()
        assert run.partial
        assert run.graph.outcome == "budget"
        assert "budget" in str(run.error)

    def test_cut_tiles_get_terminals(self):
        run = budget_cut_run()
        # Every live tile gets a terminal record — blocked if it was in
        # a receive wait, cut if it was still runnable when the budget
        # expired.
        terminals = [r for r in run.graph.records
                     if r.kind in (KIND_BLOCKED, KIND_CUT)]
        assert {r.tile for r in terminals} == {0, 1}

    def test_partial_graph_reconciles_and_verifies(self):
        run = budget_cut_run()
        assert run.analysis.reconciled()
        assert run.analysis.consistent()
        report = Report()
        check_critpath(run.graph, run.analysis, measured=run.measured,
                       report=report)
        assert not report.errors()

    def test_frontier_carries_scheduler_snapshot(self):
        run = budget_cut_run()
        assert run.graph.snapshot.get("rounds") == 2
        frontier = run.analysis.frontier()
        for info in frontier.values():
            if "snapshot" in info:
                assert info["snapshot"]["cycles"] >= 0

    def test_to_dict_reports_partial_and_error(self):
        run = budget_cut_run()
        payload = run.to_dict()
        assert payload["partial"] is True
        assert "RoundBudgetError" in payload["error"]
        assert payload["analysis"]["outcome"] == "budget"
