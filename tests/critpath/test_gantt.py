"""ASCII Gantt chart and textual summary rendering."""

from repro.critpath import analyze, render_gantt, render_summary
from repro.critpath.gantt import LEGEND
from repro.critpath.runner import record_system, recording_telemetry
from repro.sim import StitchSystem
from repro.sweep.runner import ring_programs


def recorded_ring(laps=2):
    telemetry, recorder = recording_telemetry()
    system = StitchSystem(telemetry=telemetry)
    for tile, program in ring_programs(4, laps=laps).items():
        system.load(tile, program)
    return record_system("ring4", system, recorder)


class TestGantt:
    def test_one_row_per_tile_plus_axis_and_legend(self):
        run = recorded_ring()
        chart = render_gantt(run.graph, run.analysis, width=60)
        lines = chart.splitlines()
        tiles = run.graph.tiles()
        rows = [line for line in lines if line.startswith("tile ")]
        assert len(rows) == len(tiles)
        for tile, row in zip(tiles, rows):
            assert row.startswith(f"tile {tile:>3} |")
            assert row.endswith("|")
        assert lines[-1] == LEGEND
        axis = lines[-2]
        assert "0" in axis and str(run.graph.makespan) in axis

    def test_rows_share_a_width(self):
        run = recorded_ring()
        chart = render_gantt(run.graph, run.analysis, width=48)
        rows = [line for line in chart.splitlines()
                if line.startswith("tile ")]
        widths = {len(row) for row in rows}
        assert len(widths) == 1

    def test_critical_path_is_highlighted_uppercase(self):
        run = recorded_ring()
        chart = render_gantt(run.graph, run.analysis, width=72)
        # The run reconciles, so the path covers real cycles on some
        # tile — at least one emphasized glyph must appear.
        assert any(glyph in chart for glyph in "#SWD")

    def test_width_floor(self):
        run = recorded_ring(laps=1)
        chart = render_gantt(run.graph, run.analysis, width=1)
        rows = [line for line in chart.splitlines()
                if line.startswith("tile ")]
        assert all(len(row) >= 16 for row in rows)


class TestSummary:
    def test_summary_names_makespan_and_shares(self):
        run = recorded_ring()
        text = render_summary(run.graph, run.analysis)
        assert f"makespan: {run.graph.makespan} cycles (complete)" in text
        assert f"critical path: {run.analysis.total} cycles" in text
        assert "DOES NOT RECONCILE" not in text
        shares = run.analysis.attribution()["tile_critical_cycles"]
        busiest = max(shares, key=shares.get)
        assert f"tile {busiest}: {shares[busiest]} critical cycles" in text

    def test_summary_flags_broken_reconciliation(self):
        run = recorded_ring()
        # Corrupt a built edge weight: the tight back-walk breaks and
        # the summary must say so rather than print a wrong share table.
        target = next(e for e in run.graph.edges
                      if e.kind == "compute" and e.weight > 0)
        target.weight -= 1
        broken = analyze(run.graph)
        assert not broken.reconciled()
        text = render_summary(run.graph, broken)
        assert "DOES NOT RECONCILE (V1000)" in text

    def test_summary_reports_blocked_frontier(self):
        from tests.critpath.test_partial import deadlocked_run

        run = deadlocked_run()
        text = render_summary(run.graph, run.analysis)
        assert "blocked frontier (partial run):" in text
        assert "tile 0: waiting on tile 1 for 1 word(s)" in text
