"""What-if parsing and logical-clock replay."""

import pytest

from repro.critpath import (
    WhatIfError,
    WhatIfInfeasible,
    WhatIfSpec,
    project,
)
from repro.critpath.recorder import KIND_SEND
from repro.critpath.runner import (
    record_kernel,
    record_system,
    recording_telemetry,
    validate_whatif,
)
from repro.sim import StitchSystem
from repro.sweep.runner import ring_programs


def recorded_ring(laps=2):
    telemetry, recorder = recording_telemetry()
    system = StitchSystem(telemetry=telemetry)
    for tile, program in ring_programs(4, laps=laps).items():
        system.load(tile, program)
    return record_system("ring4", system, recorder)


def recorded_handshake(words=4):
    """One multi-word producer -> consumer message (for capacity tests)."""
    from repro.isa import assemble

    stores = "\n".join(f"sw r4, {4 * i}(r2)" for i in range(words))
    producer = assemble(f"""
        movi r1, 1
        movi r2, 0x100
        movi r3, {words}
        movi r4, 9
        {stores}
        send r1, r2, r3
        halt
    """)
    consumer = assemble(f"""
        movi r1, 0
        movi r2, 0x200
        movi r3, {words}
        recv r1, r2, r3
        halt
    """)
    telemetry, recorder = recording_telemetry()
    system = StitchSystem(telemetry=telemetry)
    system.load(0, producer)
    system.load(1, consumer)
    return record_system("handshake", system, recorder)


class TestParsing:
    def test_scale_and_set_clauses(self):
        spec = WhatIfSpec.parse(
            ["compute*0.5", "tile3.compute*2", "dram_latency=60",
             "link_latency*2", "drain*0.5", "cix*1.5",
             "channel_capacity=64"]
        )
        assert spec.compute_scale == 0.5
        assert spec.tile_compute_scale == {3: 2.0}
        assert spec.dram == ("=", 60.0)
        assert spec.link_scale == 2.0
        assert spec.drain_scale == 0.5
        assert spec.cix_scale == 1.5
        assert spec.channel_capacity == 64

    def test_whitespace_tolerated(self):
        spec = WhatIfSpec.parse(["dram_latency * 2"])
        assert spec.dram == ("*", 2.0)

    @pytest.mark.parametrize("expression", [
        "nonsense",                 # no operator
        "compute/2",                # unsupported operator
        "compute*lots",             # non-numeric value
        "compute*-1",               # negative factor
        "tile3.compute=5",          # tiles only scale
        "channel_capacity=0",       # capacity must be >= 1
        "channel_capacity=2.5",     # capacity must be integral
        "warp_drive*9",             # unknown target
    ])
    def test_malformed_expressions_raise(self, expression):
        with pytest.raises(WhatIfError):
            WhatIfSpec.parse([expression])

    def test_error_names_supported_targets(self):
        with pytest.raises(WhatIfError, match="dram_latency"):
            WhatIfSpec.parse(["warp_drive*9"])


class TestReplay:
    def test_identity_reproduces_baseline(self):
        run = recorded_ring()
        for identity in ([], ["compute*1"], ["link_latency*1"]):
            projection = project(run.graph, identity)
            assert projection["projected_cycles"] == run.measured

    def test_compute_scaling_moves_makespan(self):
        run = recorded_ring()
        faster = project(run.graph, ["compute*0.5"])
        slower = project(run.graph, ["compute*2"])
        assert faster["projected_cycles"] < run.measured
        assert slower["projected_cycles"] > run.measured
        assert slower["speedup"] < 1.0 < faster["speedup"]

    def test_tile_scaling_targets_one_tile(self):
        run = recorded_ring()
        projection = project(run.graph, ["tile1.compute*0.5"])
        per_tile = projection["per_tile"]
        assert per_tile["1"]["projected"] < per_tile["1"]["baseline"]

    def test_link_scaling_slows_cross_tile_paths(self):
        run = recorded_ring()
        slower = project(run.graph, ["link_latency*4"])
        assert slower["projected_cycles"] > run.measured

    def test_capacity_at_message_size_matches_baseline(self):
        run = recorded_ring()
        largest = max(r.words for r in run.graph.records
                      if r.kind == KIND_SEND)
        # The ring is a strict handshake: channels never hold more than
        # one message, so a capacity that fits one is no constraint.
        projection = project(run.graph,
                             [f"channel_capacity={largest}"])
        assert projection["projected_cycles"] == run.measured

    def test_capacity_below_message_size_is_infeasible(self):
        # Sends inject atomically, so a 1-word buffer can never hold a
        # 4-word message: no schedule exists, and the replay must say
        # so instead of producing a bogus number.
        run = recorded_handshake(words=4)
        largest = max(r.words for r in run.graph.records
                      if r.kind == KIND_SEND)
        assert largest == 4
        with pytest.raises(WhatIfInfeasible):
            project(run.graph, ["channel_capacity=1"])

    def test_dram_whatif_needs_platform_metadata(self):
        run = recorded_ring()
        run.graph.meta.pop("dram_latency", None)
        with pytest.raises(WhatIfError, match="dram_latency"):
            project(run.graph, ["dram_latency*2"])


class TestValidation:
    def test_kernel_dram_whatif_matches_rerun_exactly(self):
        run = record_kernel("fir")
        comparison = validate_whatif(run, ["dram_latency*2"])
        assert comparison["projected_cycles"] == comparison["actual_cycles"]
        assert comparison["drift"] == 0.0
        assert comparison["within_2pct"]

    def test_validate_rejects_non_platform_whatifs(self):
        run = record_kernel("fir")
        with pytest.raises(WhatIfError, match="dram_latency"):
            validate_whatif(run, ["compute*0.5"])
