"""Recorder + graph construction over real co-simulations."""

import json

import pytest

from repro.critpath import (
    COUNTER_FIELDS,
    DependencyGraph,
    NULL_RECORDER,
    analyze,
)
from repro.critpath.recorder import KIND_HALT, KIND_RECV, KIND_SEND
from repro.critpath.runner import record_system, recording_telemetry
from repro.isa import assemble
from repro.sim import StitchSystem
from repro.sweep.runner import ring_programs


def recorded_ring(laps=2, **system_kwargs):
    telemetry, recorder = recording_telemetry()
    system = StitchSystem(telemetry=telemetry, **system_kwargs)
    for tile, program in ring_programs(4, laps=laps).items():
        system.load(tile, program)
    return record_system("ring4", system, recorder)


class TestRecording:
    def test_ring_reconciles_exactly(self):
        run = recorded_ring()
        analysis = run.analysis
        assert analysis.reconciled()
        assert analysis.consistent()
        assert analysis.total == run.measured == run.graph.makespan

    def test_contention_off_also_reconciles(self):
        run = recorded_ring(contention=False)
        assert run.analysis.reconciled()
        assert run.analysis.consistent()

    def test_record_kinds_and_program_order(self):
        run = recorded_ring(laps=1)
        for tile in run.graph.tiles():
            records = run.graph.tile_records(tile)
            assert records[-1].kind == KIND_HALT
            assert [r.seq for r in records] == list(range(len(records)))
            assert all(r.issue <= r.end for r in records)
            ends = [r.end for r in records]
            assert ends == sorted(ends)

    def test_recv_sources_name_the_real_sender(self):
        run = recorded_ring(laps=1)
        records = run.graph.records
        for record in records:
            if record.kind != KIND_RECV:
                continue
            assert record.sources, "every ring recv has a recorded source"
            binding = records[record.binding]
            assert binding.kind == KIND_SEND
            assert binding.tile == record.peer
            assert binding.peer == record.tile

    def test_counter_deltas_partition_known_fields(self):
        run = recorded_ring(laps=1)
        for record in run.graph.records:
            assert set(record.counters) <= set(COUNTER_FIELDS)

    def test_send_crossings_recorded_under_contention(self):
        run = recorded_ring(laps=1)
        sends = [r for r in run.graph.records
                 if r.kind == KIND_SEND and r.tile != r.peer]
        assert sends
        assert any(send.crossings for send in sends)

    def test_noc_edge_weight_is_flight_beyond_injection(self):
        run = recorded_ring(laps=1)
        graph = run.graph
        noc = [e for e in graph.edges if e.kind == "noc"]
        assert noc
        for edge in noc:
            recv = graph.records[edge.record]
            binding = graph.records[recv.binding]
            assert edge.weight == recv.ready - binding.end


class TestJsonRoundTrip:
    def test_round_trip_preserves_analysis(self):
        run = recorded_ring()
        payload = json.loads(json.dumps(run.graph.to_dict()))
        rebuilt = DependencyGraph.from_dict(payload)
        again = analyze(rebuilt)
        assert again.total == run.analysis.total
        assert again.reconciled() and again.consistent()
        assert [s.kind for s in again.steps] == [
            s.kind for s in run.analysis.steps
        ]

    def test_tampered_makespan_is_rejected(self):
        run = recorded_ring(laps=1)
        payload = run.graph.to_dict()
        payload["makespan"] += 1
        with pytest.raises(ValueError, match="makespan mismatch"):
            DependencyGraph.from_dict(payload)

    def test_unknown_schema_is_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            DependencyGraph.from_dict({"schema": 99})


class TestNullRecorder:
    def test_disabled_recorder_is_inert(self):
        assert not NULL_RECORDER.enabled
        NULL_RECORDER.send(0, 1, 4, 10, 12, (0,) * len(COUNTER_FIELDS))
        NULL_RECORDER.fabric_send(0, 1, 4, 10, 15, 12)
        NULL_RECORDER.tile_done(0, 20, "halt", (0,) * len(COUNTER_FIELDS))
        NULL_RECORDER.finish("complete")
        assert len(NULL_RECORDER) == 0
        assert NULL_RECORDER.makespan() == 0

    def test_plain_run_records_nothing(self):
        system = StitchSystem()
        wait = assemble("movi r1, 1\nmovi r2, 0x100\nmovi r3, 1\n"
                        "sw r1, 0(r2)\nsend r1, r2, r3\nhalt")
        sink = assemble("movi r1, 0\nmovi r2, 0x200\nmovi r3, 1\n"
                        "recv r1, r2, r3\nhalt")
        system.load(0, wait)
        system.load(1, sink)
        system.run()
        assert len(system.telemetry.recorder) == 0
