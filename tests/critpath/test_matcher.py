"""Unit tests for the FIFO word-provenance matcher."""

from repro.critpath import ChannelMatcher


class TestChannelMatcher:
    def test_single_push_single_pop(self):
        matcher = ChannelMatcher()
        matcher.push(0, 1, "a", 4)
        assert matcher.pop(0, 1, 4) == [("a", 4)]
        assert matcher.pending(0, 1) == 0

    def test_pop_spans_pushes_in_fifo_order(self):
        matcher = ChannelMatcher()
        matcher.push(0, 1, "a", 2)
        matcher.push(0, 1, "b", 3)
        assert matcher.pop(0, 1, 4) == [("a", 2), ("b", 2)]
        assert matcher.pending(0, 1) == 1

    def test_last_entry_is_binding_contributor(self):
        matcher = ChannelMatcher()
        matcher.push(0, 1, "first", 1)
        matcher.push(0, 1, "second", 1)
        sources = matcher.pop(0, 1, 2)
        assert sources[-1][0] == "second"

    def test_channels_are_independent(self):
        matcher = ChannelMatcher()
        matcher.push(0, 1, "a", 2)
        matcher.push(1, 0, "b", 2)
        assert matcher.pop(1, 0, 2) == [("b", 2)]
        assert matcher.pending(0, 1) == 2

    def test_partial_pop_keeps_remainder(self):
        matcher = ChannelMatcher()
        matcher.push(0, 1, "a", 5)
        assert matcher.pop(0, 1, 2) == [("a", 2)]
        assert matcher.pop(0, 1, 3) == [("a", 3)]

    def test_undersupplied_pop_returns_partial_provenance(self):
        matcher = ChannelMatcher()
        matcher.push(0, 1, "a", 1)
        assert matcher.pop(0, 1, 4) == [("a", 1)]
        assert matcher.pending(0, 1) == 0

    def test_zero_word_push_is_ignored(self):
        matcher = ChannelMatcher()
        matcher.push(0, 1, "a", 0)
        assert matcher.pop(0, 1, 1) == []
