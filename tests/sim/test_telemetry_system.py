"""System-level telemetry: roll-ups, result reprs, deadlock snapshots."""

import pytest

from repro.cpu import STOP_HALT, STOP_LIMIT
from repro.isa import assemble
from repro.sim import DeadlockError, RunResults, StitchSystem
from repro.sim.system import TileResult
from repro.telemetry import ATTRIBUTION_BUCKETS, Telemetry

from tests.sim.test_system import consumer_source, producer_source


def handshake_system(telemetry=None):
    system = StitchSystem(telemetry=telemetry)
    system.load(0, producer_source(1, 0x100, 2, 42))
    system.load(1, consumer_source(0, 0x200, 2))
    return system


class TestRollUp:
    def test_every_run_carries_stats(self):
        results = handshake_system().run()
        assert isinstance(results, RunResults)
        assert results.stats.total_cycles() == sum(r.cycles for r in results)
        assert results.stats.attribution_ok()

    def test_attribution_matches_tiles(self):
        results = handshake_system().run()
        for result in results:
            tile = results.stats.tiles[result.tile]
            total = sum(tile[bucket] for bucket in ATTRIBUTION_BUCKETS)
            assert total == result.cycles == tile["total"]

    def test_cache_stats_are_per_run_deltas(self):
        system = handshake_system()
        first = system.run().stats.caches["icache"]
        assert first["misses"] > 0
        # Reload the same programs: the caches stay warm, and the
        # roll-up must report only this run's activity, not the
        # lifetime counters.
        system.load(0, producer_source(1, 0x100, 2, 42))
        system.load(1, consumer_source(0, 0x200, 2))
        second = system.run().stats.caches["icache"]
        assert second["misses"] < first["misses"]

    def test_fabric_and_noc_counters(self):
        stats = handshake_system().run().stats
        assert stats.noc["packets"] >= 1
        assert stats.noc["flits"] >= 2
        assert stats.fabric["channel_high_water"][(0, 1)] >= 2

    def test_populate_mirrors_into_registry(self):
        telemetry = Telemetry()
        results = handshake_system(telemetry=telemetry).run()
        snap = telemetry.stats.snapshot()
        assert snap["tile0"]["core"]["total"] == results[0].cycles
        assert "icache" in snap["mem"]

    def test_breakdown_sums_to_one(self):
        breakdown = handshake_system().run().stats.breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)


class TestTileResult:
    def test_limit_reason_is_not_reported_as_blocked(self):
        # A tile stopped by the slice budget used to repr as "blocked".
        result = TileResult(3, 500, 500, STOP_LIMIT)
        assert "limit" in repr(result)
        assert "blocked" not in repr(result)

    def test_reason_survives_round_trip(self):
        system = StitchSystem()
        system.load(0, assemble("loop: jmp loop"))
        with pytest.raises(RuntimeError):
            system.run(max_instructions_per_slice=10, max_rounds=3)

    def test_repr_with_attribution_lists_stalls(self):
        telemetry = Telemetry()
        results = handshake_system(telemetry=telemetry).run()
        text = repr(results[1])
        assert "halted" in text
        assert "comm=" in text and "mem=" in text

    def test_repr_without_telemetry_has_no_stall_noise(self):
        results = handshake_system().run()
        assert all(r.reason == STOP_HALT for r in results)
        assert "stalls" not in repr(results[0])


class TestDeadlockSnapshot:
    def build(self):
        wait = "movi r1, {peer}\nmovi r2, 0x100\nmovi r3, {words}\nrecv r1, r2, r3\nhalt"
        system = StitchSystem(telemetry=Telemetry())
        system.load(0, assemble(wait.format(peer=1, words=2)))
        system.load(1, assemble(wait.format(peer=0, words=3)))
        return system

    def test_snapshot_names_blocked_tiles_and_channels(self):
        with pytest.raises(DeadlockError) as excinfo:
            self.build().run()
        snapshot = excinfo.value.snapshot
        assert sorted(snapshot) == [0, 1]
        assert snapshot[0]["waiting_on"] == 1
        assert snapshot[0]["words_needed"] == 2
        assert snapshot[1]["waiting_on"] == 0
        assert snapshot[1]["words_needed"] == 3
        assert snapshot[0]["pending"] == {}  # nothing queued toward tile 0

    def test_message_names_tiles_and_counts(self):
        with pytest.raises(DeadlockError) as excinfo:
            self.build().run()
        message = str(excinfo.value)
        assert "tiles [0, 1] blocked" in message
        assert "tile 0 needs 2 word(s) from tile 1" in message

    def test_partial_channel_appears_in_snapshot(self):
        # Tile 0 sends one word; tile 1 needs three -> stuck with a
        # non-empty channel, which the snapshot must surface.
        system = StitchSystem(telemetry=Telemetry())
        system.load(0, producer_source(1, 0x100, 1, 5))
        system.load(1, consumer_source(0, 0x200, 3))
        with pytest.raises(DeadlockError) as excinfo:
            system.run()
        snapshot = excinfo.value.snapshot
        assert snapshot[1]["pending"] == {0: 1}
        assert "channel holds 1" in str(excinfo.value)

    def test_deadlock_traced(self):
        telemetry = Telemetry()
        wait = "movi r1, {peer}\nmovi r2, 0x100\nmovi r3, 1\nrecv r1, r2, r3\nhalt"
        system = StitchSystem(telemetry=telemetry)
        system.load(0, assemble(wait.format(peer=1)))
        system.load(1, assemble(wait.format(peer=0)))
        with pytest.raises(DeadlockError):
            system.run()
        names = [e.name for e in telemetry.tracer.events]
        assert sum(name.startswith("DEADLOCK") for name in names) == 2


class TestTracerIntegration:
    def test_run_emits_comm_and_span_events(self):
        telemetry = Telemetry()
        handshake_system(telemetry=telemetry).run()
        names = {e.name for e in telemetry.tracer.events}
        assert "send->1" in names
        assert "recv<-0" in names
        tracks = telemetry.tracer.tracks()
        assert ("tiles", 0) in tracks and ("tiles", 1) in tracks

    def test_reset_stats_zeroes_components(self):
        system = handshake_system()
        system.run()
        system.reset_stats()
        assert system.fabric.network.stats()["packets"] == 0
        assert system.memories[0].icache.hits == 0
