"""Integration: full 16-tile applications across architectures.

These are the heaviest tests in the suite (each builds and runs the
real co-simulation); one representative app keeps them affordable.
"""

import pytest

from repro.sim.baselines import (
    ARCH_BASELINE,
    ARCH_LOCUS,
    ARCH_NOFUSE,
    ARCH_STITCH,
    AppEvaluator,
)
from repro.workloads.apps import all_apps, app4_transport


@pytest.fixture(scope="module")
def evaluator():
    return AppEvaluator(app4_transport())


class TestApp4:
    def test_architecture_ordering(self, evaluator):
        t = evaluator.normalized_throughputs()
        assert t[ARCH_BASELINE] == 1.0
        assert t[ARCH_LOCUS] > 1.0
        assert t[ARCH_NOFUSE] >= t[ARCH_LOCUS] * 0.95
        assert t[ARCH_STITCH] >= t[ARCH_NOFUSE]

    def test_stitch_plan_uses_fusion(self, evaluator):
        plan = evaluator.plan(ARCH_STITCH)
        assert plan.accelerated()

    def test_cosim_outputs_match_baseline(self, evaluator):
        base = evaluator.final_outputs(ARCH_BASELINE, items=2)
        accel = evaluator.final_outputs(ARCH_STITCH, items=2)
        assert base == accel

    def test_cosim_agrees_with_analytic_model(self, evaluator):
        analytic = evaluator.cycles_per_item(ARCH_BASELINE)
        measured = evaluator.cosim_cycles_per_item(
            ARCH_BASELINE, warm_items=2, total_items=4
        )
        # The analytic model ignores hop latency and contention; allow
        # a generous band but require the right magnitude.
        assert measured == pytest.approx(analytic, rel=0.25)

    def test_cosim_speedup_direction(self, evaluator):
        base = evaluator.cosim_cycles_per_item(ARCH_BASELINE, 2, 4)
        stitch = evaluator.cosim_cycles_per_item(ARCH_STITCH, 2, 4)
        assert stitch < base


class TestAllAppsShape:
    def test_every_app_structurally_valid(self):
        for app in all_apps():
            assert len(app.stages) == 16
            assert app.source_stages()
            # every stage reachable or a source; channels acyclic
            order = {s.id: 0 for s in app.stages}
            for _ in range(16):
                for channel in app.channels:
                    order[channel.dst] = max(
                        order[channel.dst], order[channel.src] + 1
                    )
            assert max(order.values()) < 16  # no cycles blew up
