"""Unit tests for AppEvaluator's planning logic (fabricated tables).

The heavy compile path is covered by the integration module; these
tests inject cycle tables directly so the architecture-plan logic is
exercised in milliseconds.
"""

from repro.core.stitching import BASELINE
from repro.sim.baselines import (
    ARCH_BASELINE,
    ARCH_LOCUS,
    ARCH_NOFUSE,
    ARCH_STITCH,
    AppEvaluator,
    _structural_key,
)
from repro.workloads import make_kernel
from repro.workloads.apps import app4_transport


def fabricated_evaluator():
    evaluator = AppEvaluator(app4_transport())
    tables = {}
    for sid in range(16):
        heavy = sid < 4
        tables[sid] = {
            BASELINE: 10_000 if heavy else 2_000,
            "LOCUS-SFU": 9_000 if heavy else 1_900,
            "AT-MA": 8_000 if heavy else 1_500,
            "AT-AS": 8_500 if heavy else 1_600,
            "AT-MA+AT-AS": 6_000 if heavy else 1_200,
        }
    evaluator._tables = tables
    evaluator._compiled = {sid: {} for sid in range(16)}
    return evaluator


class TestPlans:
    def test_baseline_plan_unaccelerated(self):
        plan = fabricated_evaluator().plan(ARCH_BASELINE)
        assert all(a.option == BASELINE for a in plan.assignments.values())
        assert plan.bottleneck_cycles() == 10_000

    def test_locus_plan_uses_locus_cycles(self):
        plan = fabricated_evaluator().plan(ARCH_LOCUS)
        assert all(a.option == "LOCUS-SFU" for a in plan.assignments.values())
        assert plan.bottleneck_cycles() == 9_000

    def test_nofuse_plan_single_patches_only(self):
        plan = fabricated_evaluator().plan(ARCH_NOFUSE)
        for assignment in plan.assignments.values():
            assert "+" not in assignment.option
        assert plan.bottleneck_cycles() == 8_000

    def test_stitch_plan_fuses_heavy_stages(self):
        plan = fabricated_evaluator().plan(ARCH_STITCH)
        heavy = [plan.assignments[sid] for sid in range(4)]
        assert all(a.option == "AT-MA+AT-AS" for a in heavy)
        assert plan.bottleneck_cycles() == 6_000

    def test_throughput_ordering(self):
        speedups = fabricated_evaluator().normalized_throughputs()
        assert (
            speedups[ARCH_BASELINE]
            <= speedups[ARCH_LOCUS]
            <= speedups[ARCH_NOFUSE]
            <= speedups[ARCH_STITCH]
        )

    def test_pipeline_includes_comm(self):
        evaluator = fabricated_evaluator()
        pipeline = evaluator.pipeline(ARCH_BASELINE)
        # aesdec stages send three 16-word messages per item.
        source = next(s for s in pipeline.stages if s.name.startswith("aesdec"))
        assert source.comm_cycles > 0


class TestStructuralKey:
    def test_seed_ignored(self):
        a = make_kernel("fir", seed=1)
        b = make_kernel("fir", seed=9)
        assert _structural_key(a) == _structural_key(b)

    def test_params_distinguish(self):
        a = make_kernel("2dconv")
        b = make_kernel("2dconv")
        b.width = 8  # pretend a different build
        assert _structural_key(a) != _structural_key(b)
