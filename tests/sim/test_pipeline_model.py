"""Unit tests for the analytic pipeline throughput model."""

import pytest

from repro.sim import PipelineModel, StageTiming


class TestStageTiming:
    def test_comm_cycles_counts_flits(self):
        stage = StageTiming("s", 1000, recv_words=[16], send_words=[16])
        # receive: 16 words = 4 flits drain; send: 5-flit packet.
        assert stage.comm_cycles == 4 + 5
        assert stage.stage_cycles == 1009

    def test_no_comm(self):
        stage = StageTiming("s", 500)
        assert stage.comm_cycles == 0

    def test_multi_channel(self):
        stage = StageTiming("s", 0, recv_words=[4, 4], send_words=[])
        assert stage.comm_cycles == 2


class TestPipelineModel:
    def stages(self):
        return [
            StageTiming("fast", 100),
            StageTiming("slow", 1000),
            StageTiming("mid", 500),
        ]

    def test_bottleneck(self):
        model = PipelineModel(self.stages())
        assert model.bottleneck().name == "slow"
        assert model.cycles_per_item() == 1000

    def test_throughput_at_frequency(self):
        model = PipelineModel(self.stages())
        assert model.throughput(200e6) == pytest.approx(200e6 / 1000)
        assert model.time_per_item_ms(200e6) == pytest.approx(1000 / 200e6 * 1e3)

    def test_fill_latency_sums(self):
        model = PipelineModel(self.stages())
        assert model.fill_latency() == 1600

    def test_speedup_over(self):
        fast = PipelineModel([StageTiming("s", 500)])
        slow = PipelineModel([StageTiming("s", 1000)])
        assert fast.speedup_over(slow) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PipelineModel([])
