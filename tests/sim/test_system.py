"""Unit tests for the multi-core co-simulator and stream wrapping."""

import pytest

from repro.cpu import Core
from repro.isa import assemble
from repro.mem import MemorySystem, SPM_BASE
from repro.sim import (
    DeadlockError,
    RoundBudgetError,
    StitchSystem,
    wrap_streaming,
)
from repro.workloads import make_kernel
from repro.workloads.base import Region


def producer_source(peer, addr, words, value):
    return assemble(f"""
        movi r1, {peer}
        movi r2, {addr}
        movi r3, {words}
        movi r4, {value}
        sw   r4, 0(r2)
        sw   r4, 4(r2)
        send r1, r2, r3
        halt
    """)


def consumer_source(peer, addr, words):
    return assemble(f"""
        movi r1, {peer}
        movi r2, {addr}
        movi r3, {words}
        recv r1, r2, r3
        lw   r4, 0(r2)
        halt
    """)


class TestCoSim:
    def test_two_tile_handshake(self):
        system = StitchSystem()
        system.load(0, producer_source(1, 0x100, 2, 42))
        system.load(1, consumer_source(0, 0x200, 2))
        results = system.run()
        assert all(r.halted for r in results)
        assert system.cores[1].regs[4] == 42

    def test_receiver_waits_for_network(self):
        system = StitchSystem()
        system.load(0, producer_source(15, 0x100, 2, 7))  # corner to corner
        system.load(15, consumer_source(0, 0x200, 2))
        system.run()
        latency = system.fabric.network.uncontended_latency(0, 15, 2)
        assert system.cores[15].cycles >= latency

    def test_chain_of_three(self):
        relay = assemble("""
            movi r1, 0
            movi r2, 0x100
            movi r3, 2
            recv r1, r2, r3
            movi r1, 2
            send r1, r2, r3
            halt
        """)
        system = StitchSystem()
        system.load(0, producer_source(1, 0x100, 2, 9))
        system.load(1, relay)
        system.load(2, consumer_source(1, 0x300, 2))
        system.run()
        assert system.cores[2].regs[4] == 9

    def test_deadlock_detected(self):
        # Two tiles each waiting for the other.
        wait = "movi r1, {peer}\nmovi r2, 0x100\nmovi r3, 1\nrecv r1, r2, r3\nhalt"
        system = StitchSystem()
        system.load(0, assemble(wait.format(peer=1)))
        system.load(1, assemble(wait.format(peer=0)))
        with pytest.raises(DeadlockError):
            system.run()

    def test_round_budget_exceeded_is_typed_with_snapshot(self):
        # A tiny budget cannot cover even one handshake; unlike a
        # deadlock, progress was still possible when the budget ran out.
        system = StitchSystem()
        system.load(0, producer_source(1, 0x100, 2, 42))
        system.load(1, consumer_source(0, 0x200, 2))
        with pytest.raises(RoundBudgetError) as excinfo:
            system.run(max_instructions_per_slice=1, max_rounds=2)
        error = excinfo.value
        assert isinstance(error, RuntimeError)  # old catch sites still work
        assert "2-round budget" in str(error)
        snapshot = error.snapshot
        assert snapshot["rounds"] == 2
        # Both tiles appear in the snapshot, as runnable or blocked.
        seen = set(snapshot["pending_tiles"]) | set(snapshot["blocked_tiles"])
        assert seen == {0, 1}
        for entry in snapshot["blocked_tiles"].values():
            assert entry["words_queued"] >= 0
            assert entry["cycles"] >= 0

    def test_generous_budget_still_completes(self):
        system = StitchSystem()
        system.load(0, producer_source(1, 0x100, 2, 42))
        system.load(1, consumer_source(0, 0x200, 2))
        results = system.run(max_rounds=100_000)
        assert all(r.halted for r in results)

    def test_makespan_is_max_tile_cycles(self):
        system = StitchSystem()
        system.load(0, producer_source(1, 0x100, 2, 1))
        system.load(1, consumer_source(0, 0x200, 2))
        results = system.run()
        assert system.makespan(results) == max(r.cycles for r in results)

    def test_partial_message_then_completion(self):
        # Producer sends 1 word, later 2 more; consumer needs 3.
        producer = assemble("""
            movi r1, 1
            movi r2, 0x100
            movi r3, 1
            movi r4, 5
            sw   r4, 0(r2)
            send r1, r2, r3
            movi r3, 2
            send r1, r2, r3
            halt
        """)
        consumer = assemble("""
            movi r1, 0
            movi r2, 0x200
            movi r3, 3
            recv r1, r2, r3
            halt
        """)
        system = StitchSystem()
        system.load(0, producer)
        system.load(1, consumer)
        results = system.run()
        assert all(r.halted for r in results)


class TestStreaming:
    def test_wrapped_kernel_repeats(self):
        kernel = make_kernel("specfilter", seed=5)
        program = wrap_streaming(kernel.program, [], [], items=3)
        core = Core(program, MemorySystem.stitch())
        kernel.setup(core)
        outcome = core.run(max_instructions=1_000_000)
        assert outcome.reason == "halt"
        assert kernel.result(core) == kernel.reference()
        single = Core(kernel.program, MemorySystem.stitch())
        kernel.setup(single)
        single.run(max_instructions=1_000_000)
        assert core.instret > 2.5 * single.instret

    def test_wrapped_program_streams_data(self):
        # Producer tile streams two items into a consumer's region.
        region = Region("buf", SPM_BASE, 2)
        producer_body = assemble(f"""
            movi r2, {SPM_BASE}
            lw   r4, 0(r2)
            addi r4, r4, 1
            sw   r4, 0(r2)
            sw   r4, 4(r2)
            halt
        """)
        consumer_body = assemble(f"""
            movi r2, {SPM_BASE}
            lw   r4, 0(r2)
            halt
        """)
        producer = wrap_streaming(producer_body, [], [(1, region)], items=2)
        consumer = wrap_streaming(consumer_body, [(0, region)], [], items=2)
        system = StitchSystem()
        system.load(0, producer)
        system.load(1, consumer)
        system.run()
        assert system.cores[1].regs[4] == 2  # second item's value

    def test_requires_trailing_halt(self):
        program = assemble("nop\nnop")
        with pytest.raises(ValueError):
            wrap_streaming(program, [], [], items=1)

    def test_branch_targets_shifted(self):
        kernel = make_kernel("fir", seed=2)
        wrapped = wrap_streaming(kernel.program, [], [], items=2)
        for instr in wrapped:
            if instr.is_branch() and instr.target is not None:
                assert 0 <= instr.target < len(wrapped)

    def test_cfg_table_preserved(self):
        from repro.compiler.driver import KernelCompiler, PatchOption
        from repro.core import AT_MA

        kernel = make_kernel("fir", seed=2)
        compiled = KernelCompiler(kernel).compile(PatchOption("AT-MA", AT_MA))
        wrapped = wrap_streaming(compiled.program, [], [], items=2)
        assert wrapped.cfg_table == compiled.cfg_table
