"""Stitching provenance: the StitchTrace threaded through Algorithm 1."""

import json

from repro.core.stitching import (
    BASELINE,
    stitch_application,
    stitch_best,
    upgrade_plan,
)
from repro.provenance import (
    CHOSEN,
    PLACED,
    StitchTrace,
    VariantTrace,
)

TABLES = {
    0: {BASELINE: 1000, "AT-MA": 600, "AT-MA+AT-AS": 400},
    1: {BASELINE: 900, "AT-AS": 700},
    2: {BASELINE: 1200, "AT-MA": 500, "AT-SA": 800, "AT-MA+AT-MA": 300},
    3: {BASELINE: 400},
}


class TestVariantTrace:
    def test_rounds_mirror_placements(self):
        trace = VariantTrace("greedy")
        plan = stitch_application("t", TABLES, trace=trace)
        placed_options = [r.placed for r in trace.placements()]
        accelerated = {a.option for a in plan.accelerated()}
        assert set(placed_options) == accelerated
        assert len(placed_options) == len(plan.accelerated())

    def test_placed_round_carries_cycle_delta(self):
        trace = VariantTrace("greedy")
        stitch_application("t", TABLES, trace=trace)
        for round_rec in trace.placements():
            assert round_rec.cycles_after < round_rec.cycles_before
            winning = round_rec.attempts[-1]
            assert winning.name == round_rec.placed
            assert winning.outcome == PLACED

    def test_exactly_one_chosen_alternative_per_placement(self):
        trace = VariantTrace("greedy")
        stitch_application("t", TABLES, trace=trace)
        for round_rec in trace.placements():
            winning = round_rec.attempts[-1]
            chosen = [
                a for a in winning.alternatives if a.outcome == CHOSEN
            ]
            assert len(chosen) == 1

    def test_fused_placement_records_path_probes(self):
        trace = VariantTrace("greedy")
        plan = stitch_application("t", TABLES, trace=trace)
        fused = {a.option for a in plan.fused_pairs()}
        assert fused  # the table offers strictly better fused options
        for round_rec in trace.placements():
            if "+" not in round_rec.placed:
                continue
            winning = round_rec.attempts[-1]
            assert winning.path_probes
            chosen = winning.chosen()
            assert chosen.hops == len(chosen.path) - 1

    def test_trace_does_not_change_the_plan(self):
        with_trace = stitch_application(
            "t", TABLES, trace=VariantTrace("greedy")
        )
        without = stitch_application("t", TABLES)
        assert {
            sid: (a.tile, a.option, a.remote_tile, a.cycles)
            for sid, a in with_trace.assignments.items()
        } == {
            sid: (a.tile, a.option, a.remote_tile, a.cycles)
            for sid, a in without.assignments.items()
        }

    def test_stop_reason_always_set(self):
        trace = VariantTrace("greedy")
        stitch_application("t", TABLES, trace=trace)
        assert trace.stopped is not None
        assert trace.bottleneck_cycles is not None


class TestStitchBestTrace:
    def test_three_variants_and_a_winner(self):
        trace = StitchTrace("t")
        plan = stitch_best("t", TABLES, trace=trace)
        assert [v.name for v in trace.variants] == [
            "greedy-all", "singles-only", "singles+upgrade",
        ]
        winner = trace.winner()
        assert winner is not None
        assert winner.bottleneck_cycles == plan.bottleneck_cycles()
        assert sum(1 for v in trace.variants if v.winner) == 1

    def test_winner_has_minimal_bottleneck(self):
        trace = StitchTrace("t")
        stitch_best("t", TABLES, trace=trace)
        cycles = [v.bottleneck_cycles for v in trace.variants]
        assert trace.winner().bottleneck_cycles == min(cycles)

    def test_singles_variant_never_fuses(self):
        trace = StitchTrace("t")
        stitch_best("t", TABLES, trace=trace)
        singles = trace.variants[1]
        for round_rec in singles.rounds:
            for attempt in round_rec.attempts:
                assert "+" not in attempt.name

    def test_upgrade_rounds_continue_the_base_variant(self):
        trace = StitchTrace("t")
        singles = {
            name for sid in TABLES for name in TABLES[sid]
            if name != BASELINE and "+" not in name
        }
        variant = trace.variant("singles+upgrade")
        plan = stitch_application("t", TABLES, allowed=singles, trace=variant)
        before = len(variant.rounds)
        upgrade_plan(plan, TABLES, trace=variant)
        # The upgrade pass appends its rounds (if any) to the same trace
        # and refreshes the final bottleneck.
        assert len(variant.rounds) >= before
        assert variant.bottleneck_cycles == plan.bottleneck_cycles()

    def test_to_dict_json_round_trips(self):
        trace = StitchTrace("t")
        stitch_best("t", TABLES, trace=trace)
        payload = json.loads(json.dumps(trace.to_dict()))
        assert payload["app"] == "t"
        assert payload["winner"] in {
            "greedy-all", "singles-only", "singles+upgrade",
        }
        assert len(payload["variants"]) == 3
        for variant in payload["variants"]:
            for round_rec in variant["rounds"]:
                assert round_rec["cycles_before"] is not None

    def test_render_marks_winner_and_chosen(self):
        trace = StitchTrace("t")
        plan = stitch_best("t", TABLES, trace=trace)
        text = trace.render(plan=plan)
        assert "<< winner" in text
        assert ">>" in text
        assert "Stitching for" in text  # plan.describe() appended
