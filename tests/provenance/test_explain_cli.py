"""The ``repro explain`` and ``repro bench`` command-line surfaces."""

import json

import pytest

from repro.__main__ import main
from repro.analysis.bench import (
    bench_fig11,
    compare_bench,
    load_bench,
    write_bench,
)


class TestExplainKernel:
    def test_narrative_accounts_for_all_candidates(self, capsys):
        main(["explain", "fir", "--option", "AT-MA"])
        out = capsys.readouterr().out
        assert "compile provenance for fir" in out
        assert "selected" in out and "rejected" in out
        assert "NOT FULLY ACCOUNTED" not in out
        assert "verify compile report fir: clean" in out

    def test_json_is_machine_readable(self, capsys):
        main(["explain", "fir", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernel"] == "fir"
        assert payload["accounted"] is True
        totals = payload["candidate_totals"]
        assert totals["selected"] + totals["rejected"] == totals["enumerated"]
        assert len(payload["versions"]) == 13  # 12 patch options + LOCUS

    def test_dot_writes_a_dfg(self, tmp_path, capsys):
        prefix = str(tmp_path / "fir")
        main(["explain", "fir", "--option", "AT-MA", "--dot", prefix])
        dot = (tmp_path / "fir.dfg.dot").read_text()
        assert dot.startswith("digraph")
        assert "cluster_block" in dot

    def test_verbose_lists_rejections(self, capsys):
        main(["explain", "fir", "--option", "AT-MA", "--verbose"])
        out = capsys.readouterr().out
        assert "rejected " in out

    def test_unknown_target_exits(self):
        with pytest.raises(SystemExit):
            main(["explain", "nope"])


class TestExplainApp:
    def test_narrative_names_winner_and_plan(self, capsys):
        main(["explain", "APP1"])
        out = capsys.readouterr().out
        assert "stitching provenance for APP1" in out
        assert "<< winner" in out
        assert "Stitching for APP1-gesture/Stitch:" in out

    def test_json_includes_trace_and_plan(self, capsys):
        main(["explain", "APP1", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["app"] == "APP1"
        assert len(payload["variants"]) == 3
        assert payload["plan"]["bottleneck_cycles"] > 0
        assert payload["plan"]["assignments"]

    def test_dot_writes_a_mesh_plan(self, tmp_path, capsys):
        prefix = str(tmp_path / "app1")
        main(["explain", "APP1", "--dot", prefix])
        dot = (tmp_path / "app1.plan.dot").read_text()
        assert dot.startswith("graph")
        assert "pos=" in dot  # pinned mesh coordinates


class TestBench:
    @pytest.fixture(scope="class")
    def fig11(self):
        return bench_fig11(["fir"])

    def test_payload_shape(self, fig11):
        entry = fig11["kernels"]["fir"]
        assert entry["baseline_cycles"] > 0
        assert entry["best_speedup"] >= entry["best_single"]["speedup"]
        assert entry["candidates_accounted"] is True
        assert entry["compile_wall_seconds"] > 0
        assert entry["simulated_cycles_per_second"] > 0

    def test_write_load_round_trip(self, fig11, tmp_path):
        path = write_bench(fig11, str(tmp_path / "BENCH_fig11.json"))
        assert load_bench(path) == json.loads(json.dumps(fig11))

    def test_identical_payloads_compare_clean(self, fig11):
        regressions, notes = compare_bench(fig11, fig11)
        assert regressions == [] and notes == []

    def test_speedup_regression_detected(self, fig11):
        baseline = json.loads(json.dumps(fig11))
        baseline["kernels"]["fir"]["best_speedup"] *= 1.5
        regressions, _ = compare_bench(fig11, baseline)
        assert any("best_speedup" in line for line in regressions)

    def test_cycle_increase_is_a_regression(self, fig11):
        baseline = json.loads(json.dumps(fig11))
        baseline["kernels"]["fir"]["baseline_cycles"] = int(
            baseline["kernels"]["fir"]["baseline_cycles"] * 0.5
        )
        regressions, _ = compare_bench(fig11, baseline)
        assert any("baseline_cycles" in line for line in regressions)

    def test_wall_clock_drift_is_ignored(self, fig11):
        baseline = json.loads(json.dumps(fig11))
        baseline["kernels"]["fir"]["compile_wall_seconds"] = 9999.0
        baseline["kernels"]["fir"]["simulated_cycles_per_second"] = 1
        regressions, notes = compare_bench(fig11, baseline)
        assert regressions == [] and notes == []

    def test_in_tolerance_drift_is_a_note(self, fig11):
        baseline = json.loads(json.dumps(fig11))
        baseline["kernels"]["fir"]["best_speedup"] *= 1.01
        regressions, notes = compare_bench(fig11, baseline)
        assert regressions == []
        assert any("best_speedup" in line for line in notes)

    def test_missing_kernel_is_a_regression(self, fig11):
        baseline = json.loads(json.dumps(fig11))
        baseline["kernels"]["ghost"] = {"best_speedup": 2.0}
        regressions, _ = compare_bench(fig11, baseline)
        assert any("ghost" in line for line in regressions)

    def test_cli_writes_and_checks(self, tmp_path, capsys):
        out = tmp_path / "out"
        main(["bench", "--out", str(out), "--kernels", "fir",
              "--skip-fig12"])
        assert (out / "BENCH_fig11.json").is_file()
        capsys.readouterr()
        main(["bench", "--out", str(tmp_path / "out2"), "--kernels", "fir",
              "--skip-fig12", "--check", str(out)])
        assert "within" in capsys.readouterr().out

    def test_cli_exits_on_regression(self, tmp_path, capsys):
        out = tmp_path / "base"
        main(["bench", "--out", str(out), "--kernels", "fir",
              "--skip-fig12"])
        baseline = load_bench(str(out / "BENCH_fig11.json"))
        baseline["kernels"]["fir"]["best_speedup"] = 99.0
        write_bench(baseline, str(out / "BENCH_fig11.json"))
        with pytest.raises(SystemExit):
            main(["bench", "--out", str(tmp_path / "cur"), "--kernels",
                  "fir", "--skip-fig12", "--check", str(out)])
        assert "REGRESSION" in capsys.readouterr().out
