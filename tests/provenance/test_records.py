"""Compile provenance: the CompileReport threaded through the driver."""

import json

import pytest

from repro.compiler.driver import (
    ALL_OPTIONS,
    KernelCompiler,
    LOCUS_OPTION,
    SINGLE_OPTIONS,
)
from repro.provenance import (
    NULL_REPORT,
    NULL_VERSION,
    REJECTED,
    SELECTED,
    CompileReport,
)
from repro.workloads import make_kernel

OPTIONS = SINGLE_OPTIONS + (ALL_OPTIONS[3], LOCUS_OPTION)


@pytest.fixture(scope="module")
def fir_report():
    report = CompileReport("fir")
    compiler = KernelCompiler(make_kernel("fir"), report=report)
    compiler.compile_options(OPTIONS)
    return report


class TestAccounting:
    def test_every_candidate_is_accounted_for(self, fir_report):
        assert fir_report.accounted()
        for version in fir_report.versions.values():
            for block in version.blocks:
                decided = len(block.selected()) + len(block.rejected())
                assert decided == block.enumerated == len(block.candidates)

    def test_totals_add_up(self, fir_report):
        totals = fir_report.candidate_totals()
        assert totals["enumerated"] > 0
        assert totals["selected"] + totals["rejected"] == totals["enumerated"]

    def test_every_rejection_carries_a_reason(self, fir_report):
        for version in fir_report.versions.values():
            for block in version.blocks:
                for record in block.candidates:
                    assert record.status in (SELECTED, REJECTED)
                    if record.status == REJECTED:
                        assert record.reason

    def test_enumeration_tally_covers_feasible_candidates(self, fir_report):
        # Every feasibility-tested subgraph is either rejected with a
        # bucketed reason or becomes a candidate handed to the selector.
        for version in fir_report.versions.values():
            for block in version.blocks:
                enum = block.enumeration
                assert block.enumerated == (
                    enum.visited - enum.total_rejected()
                )

    def test_selected_records_name_their_target(self, fir_report):
        version = fir_report.versions["AT-MA"]
        targets = {
            record.target
            for block in version.blocks for record in block.selected()
        }
        assert targets == {"AT-MA"}


class TestVersions:
    def test_one_version_per_option(self, fir_report):
        assert sorted(fir_report.versions) == sorted(o.name for o in OPTIONS)

    def test_all_versions_validated_bit_exact(self, fir_report):
        for version in fir_report.versions.values():
            assert version.validated is True

    def test_cycles_and_speedup_recorded(self, fir_report):
        for version in fir_report.versions.values():
            assert version.cycles > 0
            assert version.baseline_cycles == fir_report.baseline_cycles
            assert version.speedup >= 1.0

    def test_best_version_is_max_speedup(self, fir_report):
        best = fir_report.best_version()
        assert best.speedup == max(
            v.speedup for v in fir_report.versions.values()
        )

    def test_wall_seconds_accumulate(self, fir_report):
        for version in fir_report.versions.values():
            assert version.wall_seconds > 0
        assert fir_report.total_wall_seconds() > 0


class TestPhases:
    def test_kernel_level_phases(self, fir_report):
        assert [span.name for span in fir_report.phases] == [
            "profile", "liveness", "reference",
        ]

    def test_per_version_phases(self, fir_report):
        for version in fir_report.versions.values():
            names = [span.name for span in version.phases]
            for expected in ("enumerate", "select", "rewrite", "measure",
                             "validate"):
                assert expected in names

    def test_phases_mirrored_into_stats(self, fir_report):
        snapshot = fir_report.stats.snapshot()
        compile_tree = snapshot["compile"]["fir"]
        assert compile_tree["profile"]["seconds"]["count"] == 1
        assert compile_tree["AT-MA"]["measure"]["seconds"]["count"] >= 1

    def test_phases_mirrored_onto_tracer(self, fir_report):
        tracks = fir_report.tracer.tracks()
        assert ("compiler", "fir") in tracks
        names = {event.name for event in fir_report.tracer.events}
        assert "profile" in names
        assert "AT-MA.measure" in names


class TestSerialization:
    def test_to_dict_json_round_trips(self, fir_report):
        payload = json.loads(json.dumps(fir_report.to_dict()))
        assert payload["kernel"] == "fir"
        assert payload["accounted"] is True
        assert set(payload["versions"]) == set(fir_report.versions)
        version = payload["versions"]["AT-MA"]
        assert version["validated"] is True
        assert version["blocks"][0]["accounted"] is True

    def test_render_mentions_every_version(self, fir_report):
        text = fir_report.render()
        for name in fir_report.versions:
            assert name in text
        assert "bit-exact ok" in text
        assert "NOT FULLY ACCOUNTED" not in text


class TestNullReport:
    def test_null_report_swallows_everything(self):
        NULL_REPORT.baseline_cycles = 123
        assert NULL_REPORT.baseline_cycles is None
        assert NULL_REPORT.version(OPTIONS[0]) is NULL_VERSION
        assert NULL_VERSION.block(0, 1.0) is None
        NULL_VERSION.wall_seconds = 9.0
        assert NULL_VERSION.wall_seconds == 0.0
        with NULL_REPORT.phase("anything"):
            pass
        assert NULL_REPORT.accounted()

    def test_driver_without_report_matches_with_report(self, fir_report):
        compiler = KernelCompiler(make_kernel("fir"))
        compiled = compiler.compile(OPTIONS[0])
        assert compiled.cycles == fir_report.versions[OPTIONS[0].name].cycles
