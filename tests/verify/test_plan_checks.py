"""Stitch-plan checks: hand-built plans per rule plus real stitched plans."""

from types import SimpleNamespace

import pytest

from repro.core.patches import AT_MA, PatchType
from repro.core.placement import DEFAULT_PLACEMENT, Placement
from repro.core.stitching import (
    BASELINE,
    Assignment,
    StitchPlan,
    stitch_best,
)
from repro.core.units import UnitKind
from repro.isa.instructions import Op
from repro.mem.spm import SPM_BASE
from repro.verify import check_plan
from repro.workloads.base import Region


def make_plan(*assignments):
    return StitchPlan("test-app", {a.stage_id: a for a in assignments},
                      network=None)


def fused(stage, tile, option, remote, path, cycles=100):
    return Assignment(stage, tile, option, remote, path, cycles)


def baseline(stage, tile, cycles=100):
    return Assignment(stage, tile, BASELINE, None, None, cycles)


# Default placement, for reference (tile: type):
#   0 AT-MA  1 AT-AS  2 AT-MA  3 AT-SA
#   4 AT-MA  5 AT-MA  6 AT-SA  7 AT-AS
#   8 AT-MA  9 AT-AS 10 AT-MA 11 AT-SA


class TestNetworkRules:
    def test_disjoint_fusions_clean(self):
        plan = make_plan(
            fused(0, 0, "AT-MA+AT-AS", 1, [0, 1]),
            fused(1, 2, "AT-MA+AT-SA", 3, [2, 3]),
        )
        report = check_plan(plan, DEFAULT_PLACEMENT)
        assert report.ok(strict=True), report.render()

    def test_v301_shared_link(self):
        plan = make_plan(
            fused(0, 0, "AT-MA+AT-AS", 9, [0, 1, 5, 9]),
            fused(1, 2, "AT-MA+AT-MA", 5, [2, 1, 5]),  # shares link (1,5)
        )
        report = check_plan(plan, DEFAULT_PLACEMENT)
        assert "V301" in report.codes()

    def test_v301_reverse_direction_also_contends(self):
        # Round trips reserve both directions: a second pair crossing
        # the same wire the other way still contends.
        plan = make_plan(
            fused(0, 0, "AT-MA+AT-AS", 1, [0, 1]),
            fused(1, 5, "AT-MA+AT-MA", 4, [5, 1, 0, 4]),  # crosses (1,0)
        )
        report = check_plan(plan, DEFAULT_PLACEMENT)
        assert "V301" in report.codes()

    def test_v302_hop_budget(self):
        plan = make_plan(
            fused(0, 0, "AT-MA+AT-AS", 7, [0, 1, 2, 3, 7]),  # 4 hops
        )
        report = check_plan(plan, DEFAULT_PLACEMENT)
        assert "V302" in report.codes()

    def test_v303_delay_budget(self):
        # A (hypothetically) slow AT-MA implementation blows the 5 ns
        # clock at 3 hops even though the hop budget holds.
        slow = PatchType(
            "AT-MA",
            (UnitKind.ALU, UnitKind.LMAU, UnitKind.MUL, UnitKind.ALU),
            delay_ns=3.5, area_um2=4152,
        )
        placement = Placement(tuple([slow] * 16))
        plan = make_plan(fused(0, 0, "AT-MA+AT-MA", 3, [0, 1, 2, 3]))
        report = check_plan(plan, placement)
        assert "V303" in report.codes()

    def test_fast_types_within_delay_budget(self):
        plan = make_plan(fused(0, 0, "AT-MA+AT-AS", 9, [0, 1, 5, 9]))
        report = check_plan(plan, DEFAULT_PLACEMENT)
        assert report.ok(strict=True), report.render()


class TestStructureRules:
    def test_v308_duplicate_tile(self):
        plan = make_plan(baseline(0, 4), baseline(1, 4))
        report = check_plan(plan, DEFAULT_PLACEMENT)
        assert "V308" in report.codes()

    def test_v308_baseline_with_path(self):
        bad = Assignment(0, 4, BASELINE, 5, [4, 5], 100)
        report = check_plan(make_plan(bad), DEFAULT_PLACEMENT)
        assert "V308" in report.codes()

    def test_v308_fused_without_path(self):
        bad = Assignment(0, 0, "AT-MA+AT-AS", 1, None, 100)
        report = check_plan(make_plan(bad), DEFAULT_PLACEMENT)
        assert "V308" in report.codes()

    def test_v308_path_endpoint_mismatch(self):
        bad = fused(0, 0, "AT-MA+AT-AS", 1, [0, 4, 5, 1])
        ok = check_plan(make_plan(bad), DEFAULT_PLACEMENT)
        assert ok.ok(strict=True)  # 0 -> 1 via 4,5 is legal (just longer)
        worse = fused(1, 2, "AT-MA+AT-SA", 3, [2, 6])  # ends at 6, not 3
        report = check_plan(make_plan(worse), DEFAULT_PLACEMENT)
        assert "V308" in report.codes()

    def test_v308_type_mismatch(self):
        bad = fused(0, 1, "AT-MA+AT-AS", 7, [1, 5, 6, 7])  # tile 1 is AT-AS
        report = check_plan(make_plan(bad), DEFAULT_PLACEMENT)
        assert "V308" in report.codes()

    def test_v308_patch_double_spend(self):
        plan = make_plan(
            fused(0, 0, "AT-MA+AT-AS", 1, [0, 1]),
            fused(1, 2, "AT-MA+AT-AS", 1, [2, 1]),  # tile 1's patch again
        )
        report = check_plan(plan, DEFAULT_PLACEMENT)
        assert "V308" in report.codes()

    def test_locus_options_not_patch_accounted(self):
        # LOCUS per-core SFUs are not drawn from the shared patch pool:
        # every tile may use its own simultaneously.
        plan = make_plan(
            Assignment(0, 0, "LOCUS-SFU", None, None, 100),
            Assignment(1, 1, "LOCUS-SFU", None, None, 100),
        )
        report = check_plan(plan, DEFAULT_PLACEMENT)
        assert report.ok(strict=True), report.render()


def stub_kernel(name="stub", inputs=(), consts=(), outputs=()):
    return SimpleNamespace(
        name=name,
        inputs=[(r, None) for r in inputs],
        consts=[(r, None) for r in consts],
        outputs=list(outputs),
    )


class TestMemoryRules:
    def test_v304_footprint_exceeds_spm(self):
        kernel = stub_kernel(inputs=[Region("big", SPM_BASE, 2000)])
        plan = make_plan(baseline(0, 0))
        report = check_plan(plan, DEFAULT_PLACEMENT, stage_kernels={0: kernel})
        assert "V304" in report.codes()

    def test_v305_overlapping_regions(self):
        kernel = stub_kernel(
            inputs=[Region("a", SPM_BASE, 10)],
            outputs=[Region("b", SPM_BASE + 16, 10)],  # overlaps a
        )
        plan = make_plan(baseline(0, 0))
        report = check_plan(plan, DEFAULT_PLACEMENT, stage_kernels={0: kernel})
        assert "V305" in report.codes()

    def test_in_place_region_not_self_overlapping(self):
        # In-place kernels list one region as both input and output;
        # that must not read as an overlap.
        state = Region("state", SPM_BASE, 16)
        kernel = stub_kernel(inputs=[state], outputs=[state])
        plan = make_plan(baseline(0, 0))
        report = check_plan(plan, DEFAULT_PLACEMENT, stage_kernels={0: kernel})
        assert report.ok(strict=True), report.render()

    def test_disjoint_regions_clean(self):
        kernel = stub_kernel(
            inputs=[Region("a", SPM_BASE, 10)],
            consts=[Region("c", SPM_BASE + 40, 10)],
            outputs=[Region("b", SPM_BASE + 80, 10)],
        )
        plan = make_plan(baseline(0, 0))
        report = check_plan(plan, DEFAULT_PLACEMENT, stage_kernels={0: kernel})
        assert report.ok(strict=True)

    def test_v306_replication_of_writable_region(self):
        data = Region("data", SPM_BASE, 8)
        compiled = SimpleNamespace(
            kernel=stub_kernel(inputs=[data]),
            replicated_regions=(data,),  # an input, not a const
            mappings=[],
        )
        plan = make_plan(baseline(0, 0))
        report = check_plan(plan, DEFAULT_PLACEMENT,
                            stage_compiled={0: compiled})
        assert "V306" in report.codes()

    def test_replication_of_const_region_clean(self):
        coeffs = Region("coeffs", SPM_BASE, 8)
        compiled = SimpleNamespace(
            kernel=stub_kernel(consts=[coeffs]),
            replicated_regions=(coeffs,),
            mappings=[],
        )
        plan = make_plan(baseline(0, 0))
        report = check_plan(plan, DEFAULT_PLACEMENT,
                            stage_compiled={0: compiled})
        assert report.ok(strict=True)

    def test_v307_remote_store(self):
        node = SimpleNamespace(op=Op.SW)
        mapping = SimpleNamespace(
            candidate=SimpleNamespace(dfg=SimpleNamespace(nodes={3: node})),
            remote_node_ids=(3,),
        )
        compiled = SimpleNamespace(
            kernel=stub_kernel(), replicated_regions=(), mappings=[mapping],
        )
        plan = make_plan(baseline(0, 0))
        report = check_plan(plan, DEFAULT_PLACEMENT,
                            stage_compiled={0: compiled})
        assert "V307" in report.codes()

    def test_remote_load_clean(self):
        node = SimpleNamespace(op=Op.LW)
        mapping = SimpleNamespace(
            candidate=SimpleNamespace(dfg=SimpleNamespace(nodes={3: node})),
            remote_node_ids=(3,),
        )
        compiled = SimpleNamespace(
            kernel=stub_kernel(), replicated_regions=(), mappings=[mapping],
        )
        plan = make_plan(baseline(0, 0))
        report = check_plan(plan, DEFAULT_PLACEMENT,
                            stage_compiled={0: compiled})
        assert report.ok(strict=True)


SYNTHETIC_CYCLES = {
    0: {"baseline": 100, "AT-MA": 60, "AT-MA+AT-AS": 40},
    1: {"baseline": 90, "AT-SA": 70},
    2: {"baseline": 50},
}


class TestStitcherOutputVerifies:
    def test_stitch_best_plan_is_clean(self):
        plan = stitch_best("synthetic", SYNTHETIC_CYCLES)
        report = check_plan(plan, DEFAULT_PLACEMENT)
        assert report.ok(strict=True), report.render()

    def test_stitch_best_verify_flag_passes_through(self):
        plan = stitch_best("synthetic", SYNTHETIC_CYCLES, verify=True)
        assert plan.bottleneck_cycles() <= 100

    def test_homogeneous_placement_plan_is_clean(self):
        placement = Placement.homogeneous(AT_MA)
        cycles = {0: {"baseline": 100, "AT-MA+AT-MA": 40}}
        plan = stitch_best("homog", cycles, placement=placement)
        report = check_plan(plan, placement)
        assert report.ok(strict=True), report.render()


class TestRegionDedupHelper:
    def test_duplicate_listing_collapses(self):
        from repro.verify.plan_checks import _stage_regions

        state = Region("state", SPM_BASE, 16)
        kernel = stub_kernel(inputs=[state], outputs=[state])
        assert _stage_regions(kernel) == [state]


@pytest.mark.parametrize("path", [[0], []])
def test_timing_rejects_degenerate_paths(path):
    from repro.interpatch import timing

    with pytest.raises(ValueError):
        timing.path_hops(path)
