"""V9xx profiler/time-series rules: red fixtures plus clean real runs."""

from repro.cpu import Core
from repro.isa import assemble
from repro.mem import MemorySystem
from repro.profile import CycleProfile
from repro.telemetry import TimeSeries
from repro.verify import (
    RULES,
    Severity,
    check_profile,
    check_profile_run,
    check_timeseries,
)

SOURCE = """\
    movi r1, 4
loop:
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
"""


def profiled_core():
    core = Core(assemble(SOURCE, name="probe"), MemorySystem.stitch(),
                profile_cycles=True)
    assert core.run().reason == "halt"
    return core


class TestRegistry:
    def test_v9xx_rules_registered(self):
        for code in ("V900", "V901"):
            assert code in RULES
            assert RULES[code].severity is Severity.ERROR
            assert RULES[code].pass_name == "profile-checks"


class TestV900Profile:
    def test_clean_on_real_run(self):
        profile = CycleProfile.from_core(profiled_core())
        assert check_profile(profile).ok(strict=True)

    def test_doctored_histogram_fires(self):
        core = profiled_core()
        profile = CycleProfile.from_core(core)
        pc = next(iter(profile.pc_cycles))
        cycles, retired = profile.pc_cycles[pc]
        profile.pc_cycles[pc] = (cycles + 5, retired)
        report = check_profile(profile)
        assert report.codes() == ["V900"]
        assert "+5" in report.errors()[0].message

    def test_cross_check_against_external_total(self):
        profile = CycleProfile.from_core(profiled_core())
        report = check_profile(profile, total_cycles=profile.total_cycles + 1)
        assert "V900" in report.codes()

    def test_run_rollup_missing_tile_fires(self):
        profile = CycleProfile.from_core(profiled_core())

        class FakeStats:
            tiles = {}

        report = check_profile_run({0: profile}, FakeStats())
        assert "V900" in report.codes()
        assert "no attribution" in report.errors()[0].message

    def test_run_rollup_agreeing_is_clean(self):
        core = profiled_core()
        profile = CycleProfile.from_core(core)

        class FakeStats:
            tiles = {core.core_id: {"total": core.cycles}}

        assert check_profile_run(
            {core.core_id: profile}, FakeStats()
        ).ok(strict=True)


class TestV901Timeseries:
    def payload(self):
        ts = TimeSeries(interval=100)
        ts.tile_sample(0, 0, {"cycles": 100, "instructions": 80})
        ts.tile_sample(0, 100, {"cycles": 100, "instructions": 90})
        ts.link_flits((0, 1), 50, 5)
        return ts.to_dict()

    def test_clean_capture(self):
        assert check_timeseries(self.payload()).ok(strict=True)

    def test_accepts_live_timeseries(self):
        ts = TimeSeries(interval=64)
        ts.tile_sample(2, 0, {"cycles": 64})
        assert check_timeseries(ts).ok(strict=True)

    def test_non_positive_interval_fires(self):
        report = check_timeseries({"interval": 0, "tiles": {}})
        assert report.codes() == ["V901"]

    def test_non_monotonic_indices_fire(self):
        payload = self.payload()
        samples = payload["tiles"]["0"]
        payload["tiles"]["0"] = [samples[1], samples[0]]
        report = check_timeseries(payload)
        assert "V901" in report.codes()
        assert "strictly increasing" in report.errors()[0].message

    def test_window_mismatch_fires(self):
        payload = self.payload()
        payload["tiles"]["0"][0]["end"] += 1
        report = check_timeseries(payload)
        assert "V901" in report.codes()
        assert "spans" in report.errors()[0].message

    def test_link_series_also_checked(self):
        payload = self.payload()
        payload["noc"]["links"]["0->1"][0]["start"] = 7
        report = check_timeseries(payload)
        assert "V901" in report.codes()
        assert "link 0->1" in report.errors()[0].loc
