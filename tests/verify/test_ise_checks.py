"""ISE/cix checks: red fixtures per rule plus a clean compiled kernel."""

from types import SimpleNamespace

from repro.core.config import PatchConfig, TMode
from repro.core.fusion import B_OUT0, FusedConfig
from repro.core.patches import AT_AS, AT_MA, LOCUS_SFU
from repro.isa import assemble
from repro.verify import check_ises


def load_cfg(ptype=AT_MA):
    return PatchConfig(ptype, t=TMode.LOAD)


class TestV201PortBudget:
    def test_cix_with_too_many_inputs(self):
        program = assemble(
            "movi r1, 1\nmovi r2, 2\nmovi r3, 3\nmovi r4, 4\n"
            "cix 0, (r5), (r1, r2, r3, r4)\nhalt",
            name="wide",
        )
        program[4].ins.append(6)  # the assembler caps at 4; force 5
        report = check_ises(program, cfg_table=[load_cfg()])
        assert "V201" in report.codes()

    def test_cix_with_too_many_outputs(self):
        program = assemble("movi r1, 1\ncix 0, (r5, r6), (r1)\nhalt")
        program[1].outs.append(7)
        report = check_ises(program, cfg_table=[load_cfg()])
        assert "V201" in report.codes()

    def test_candidate_exceeding_ports(self):
        program = assemble("halt")
        candidate = SimpleNamespace(
            inputs=[1, 2, 3, 4, 5], outputs=[6],
            node_ids=(0,), dfg=SimpleNamespace(is_convex=lambda ids: True),
        )
        mapping = SimpleNamespace(candidate=candidate)
        report = check_ises(program, cfg_table=[], mappings=[mapping])
        assert "V201" in report.codes()


class TestV202Convexity:
    def test_non_convex_mapping(self):
        program = assemble("halt")
        candidate = SimpleNamespace(
            inputs=[1], outputs=[2],
            node_ids=(0, 2), dfg=SimpleNamespace(is_convex=lambda ids: False),
        )
        mapping = SimpleNamespace(candidate=candidate)
        report = check_ises(program, cfg_table=[], mappings=[mapping])
        assert report.codes() == ["V202"]

    def test_convex_mapping_clean(self):
        program = assemble("halt")
        candidate = SimpleNamespace(
            inputs=[1], outputs=[2],
            node_ids=(0,), dfg=SimpleNamespace(is_convex=lambda ids: True),
        )
        mapping = SimpleNamespace(candidate=candidate)
        assert check_ises(program, mappings=[mapping]).ok(strict=True)


class TestV203Encoding:
    def test_valid_config_roundtrips(self):
        program = assemble("halt")
        report = check_ises(program, cfg_table=[load_cfg()])
        assert report.ok(strict=True)

    def test_tampered_encoding_detected(self):
        class Tampered(PatchConfig):
            def encode(self):
                return super().encode() ^ 0b1

        program = assemble("halt")
        report = check_ises(program, cfg_table=[Tampered(AT_MA, t=TMode.LOAD)])
        assert report.codes() == ["V203"]

    def test_valid_fused_config_clean(self):
        fused = FusedConfig(
            load_cfg(AT_MA), load_cfg(AT_AS),
            b_ext=("ext0", "ext1", "ext2", "ext3"), outs=(B_OUT0,),
        )
        report = check_ises(assemble("halt"), cfg_table=[fused])
        assert report.ok(strict=True)

    def test_fused_control_word_overflow(self):
        class Oversized(FusedConfig):
            def control_bits(self):
                return 1 << 40  # exceeds the 38 control wires

        fused = Oversized(
            load_cfg(AT_MA), load_cfg(AT_AS),
            b_ext=("ext0", "ext1", "ext2", "ext3"), outs=(B_OUT0,),
        )
        report = check_ises(assemble("halt"), cfg_table=[fused])
        assert "V203" in report.codes()

    def test_locus_configs_exempt(self):
        # Conventional SFU configs live outside the 19-bit encoding.
        stub = SimpleNamespace(ptype=LOCUS_SFU)
        report = check_ises(assemble("halt"), cfg_table=[stub])
        assert report.ok(strict=True)


class TestV204PoolRegisters:
    ORIGINAL = "movi r1, 1\nadd r2, r1, r1\nhalt"

    def test_pool_register_read_by_plain_instruction(self):
        compiled = assemble(
            "movi r5, 7\ncix 0, (r2), (r5)\nadd r2, r5, r1\nhalt",
            name="leaky",
        )
        report = check_ises(
            compiled, cfg_table=[load_cfg()],
            original_program=assemble(self.ORIGINAL),
        )
        assert "V204" in report.codes()

    def test_pool_register_written_twice(self):
        compiled = assemble(
            "movi r5, 7\nmovi r5, 8\ncix 0, (r2), (r5)\nhalt"
        )
        report = check_ises(
            compiled, cfg_table=[load_cfg()],
            original_program=assemble(self.ORIGINAL),
        )
        assert "V204" in report.codes()

    def test_pool_register_written_by_non_movi(self):
        compiled = assemble(
            "movi r1, 1\nadd r5, r1, r1\ncix 0, (r2), (r5)\nhalt"
        )
        report = check_ises(
            compiled, cfg_table=[load_cfg()],
            original_program=assemble(self.ORIGINAL),
        )
        assert "V204" in report.codes()

    def test_disciplined_pool_register_clean(self):
        compiled = assemble("movi r5, 7\ncix 0, (r2), (r5)\nhalt")
        report = check_ises(
            compiled, cfg_table=[load_cfg()],
            original_program=assemble(self.ORIGINAL),
        )
        assert report.ok(strict=True)


class TestV205CfgTable:
    def test_cix_index_out_of_range(self):
        program = assemble("movi r1, 1\ncix 2, (r5), (r1)\nhalt")
        report = check_ises(program, cfg_table=[load_cfg()])
        assert "V205" in report.codes()

    def test_in_range_index_clean(self):
        program = assemble("movi r1, 1\ncix 0, (r5), (r1)\nhalt")
        assert check_ises(program, cfg_table=[load_cfg()]).ok(strict=True)


class TestCompiledKernelClean:
    def test_fir_artifacts_pass(self):
        from repro.sim.baselines import compile_kernel_options
        from repro.verify import verify_compiled
        from repro.workloads import make_kernel

        kernel = make_kernel("fir")
        _, compiled = compile_kernel_options(kernel)
        assert compiled
        for artifact in compiled.values():
            report = verify_compiled(artifact)
            assert report.ok(strict=True), report.render()
