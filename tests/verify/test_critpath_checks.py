"""V1000/V1001: critical-path reconciliation and causality checks.

Well-formed recordings reconcile *by construction* (chain edges are
tight by definition), so these tests corrupt a built graph's edge
weights to exercise each rule: shrinking a weight breaks the tight
back-walk (V1000), growing one makes its slack negative (V1001).
"""

import json

import pytest

from repro.critpath import analyze
from repro.critpath.graph import COMPUTE
from repro.critpath.runner import record_system, recording_telemetry
from repro.sim import StitchSystem
from repro.sweep.runner import ring_programs
from repro.verify import RULES, check_critpath, check_critpath_capture
from repro.verify.diagnostics import Severity


@pytest.fixture(scope="module")
def ring_run():
    telemetry, recorder = recording_telemetry()
    system = StitchSystem(telemetry=telemetry)
    for tile, program in ring_programs(4, laps=2).items():
        system.load(tile, program)
    return record_system("ring4", system, recorder)


def rebuilt(ring_run):
    """A private copy of the run's graph (fixtures are module-scoped)."""
    from repro.critpath import DependencyGraph

    return DependencyGraph.from_dict(ring_run.graph.to_dict())


def compute_edge(graph):
    return next(e for e in graph.edges
                if e.kind == COMPUTE and e.weight > 2)


class TestRegistry:
    def test_rules_registered_with_severity(self):
        for code in ("V1000", "V1001"):
            assert code in RULES
            assert RULES[code].severity is Severity.ERROR
            assert RULES[code].pass_name == "critpath-checks"


class TestCleanRuns:
    def test_clean_graph_yields_no_diagnostics(self, ring_run):
        report = check_critpath(ring_run.graph, ring_run.analysis,
                                measured=ring_run.measured)
        assert report.ok(strict=True)

    def test_analysis_is_recomputed_when_omitted(self, ring_run):
        report = check_critpath(ring_run.graph)
        assert report.ok(strict=True)


class TestV1000:
    def test_shrunk_edge_breaks_reconciliation(self, ring_run):
        graph = rebuilt(ring_run)
        compute_edge(graph).weight -= 2
        analysis = analyze(graph)
        assert not analysis.reconciled()
        report = check_critpath(graph, analysis)
        codes = [d.code for d in report.errors()]
        assert "V1000" in codes

    def test_measured_mismatch_fires_even_on_clean_graph(self, ring_run):
        report = check_critpath(ring_run.graph, ring_run.analysis,
                                measured=ring_run.measured + 1)
        diagnostics = report.errors()
        assert [d.code for d in diagnostics] == ["V1000"]
        assert "disagrees with the simulator" in diagnostics[0].message

    def test_message_reports_signed_drift(self, ring_run):
        graph = rebuilt(ring_run)
        compute_edge(graph).weight -= 2
        report = check_critpath(graph)
        message = report.errors()[0].message
        assert "drift" in message and "-" in message


class TestV1001:
    def test_grown_edge_creates_negative_slack(self, ring_run):
        graph = rebuilt(ring_run)
        compute_edge(graph).weight += 5
        analysis = analyze(graph)
        assert analysis.negative_edges
        report = check_critpath(graph, analysis)
        codes = {d.code for d in report.errors()}
        assert "V1001" in codes
        assert any("effect precedes cause" in d.message
                   for d in report.errors())

    def test_violation_flood_is_truncated(self, ring_run):
        graph = rebuilt(ring_run)
        grown = 0
        for edge in graph.edges:
            if edge.kind == COMPUTE:
                edge.weight += 5
                grown += 1
        assert grown > 6
        report = check_critpath(graph)
        listed = [d for d in report.errors()
                  if "effect precedes cause" in d.message]
        assert len(listed) <= 5
        assert any("more causality violation" in d.message
                   for d in report.errors())


class TestCaptureArtifacts:
    def test_saved_capture_round_trips_clean(self, ring_run, tmp_path):
        path = tmp_path / "capture.json"
        path.write_text(json.dumps(ring_run.to_dict()))
        payload = json.loads(path.read_text())
        report = check_critpath_capture(payload)
        assert report.ok(strict=True)

    def test_capture_analysis_block_is_not_trusted(self, ring_run):
        payload = ring_run.to_dict()
        # Lie in the stored analysis; the checker re-derives everything
        # from the record stream, so the lie must not mask a mismatch...
        payload["analysis"]["reconciled"] = False
        assert check_critpath_capture(payload).ok(strict=True)
        # ...and a wrong measured_cycles must be caught.
        payload["measured_cycles"] += 7
        report = check_critpath_capture(payload)
        assert [d.code for d in report.errors()] == ["V1000"]
