"""Program lint: one red fixture per rule plus clean kernel passes."""

import pytest

from repro.isa import assemble
from repro.verify import lint_program
from repro.workloads import KERNEL_FACTORIES, make_kernel


class TestV101NeverWritten:
    def test_read_of_unwritten_register(self):
        program = assemble("add r1, r2, r3\nhalt", name="bad")
        report = lint_program(program)
        assert "V101" in report.codes()
        messages = " ".join(d.message for d in report)
        assert "r2" in messages and "r3" in messages

    def test_allowed_live_in_suppresses(self):
        program = assemble("add r1, r2, r3\nhalt", name="harness")
        report = lint_program(program, allowed_live_in=(2, 3))
        assert report.ok(strict=True)

    def test_written_register_not_flagged(self):
        program = assemble("movi r2, 1\nadd r1, r2, r2\nhalt")
        assert lint_program(program).ok(strict=True)


class TestV102Unreachable:
    def test_skipped_block_warns(self):
        program = assemble("jmp end\nnop\nend: halt", name="dead")
        report = lint_program(program)
        assert report.codes() == ["V102"]
        assert report.ok() and not report.ok(strict=True)

    def test_loop_body_reachable(self):
        program = assemble("""
            movi r1, 0
            movi r3, 5
        loop:
            addi r1, r1, 1
            bne r1, r3, loop
            halt
        """)
        assert "V102" not in lint_program(program).codes()


class TestV103ZeroWrite:
    def test_write_to_r0_warns(self):
        program = assemble("movi r1, 1\nadd r0, r1, r1\nhalt")
        report = lint_program(program)
        assert report.codes() == ["V103"]
        assert report.ok()  # warning only


class TestV104BadTarget:
    def test_out_of_range_target(self):
        program = assemble("movi r1, 1\njmp top\ntop: halt", name="oob")
        program[1].target = 99  # corrupt the resolved target
        report = lint_program(program)
        assert "V104" in report.codes()
        assert not report.ok()

    def test_negative_target(self):
        program = assemble("movi r1, 0\njmp top\ntop: halt")
        program[1].target = -2
        report = lint_program(program)
        assert "V104" in report.codes()

    def test_bad_targets_suppress_cfg_rules(self):
        # With a broken CFG the reachability/liveness rules would lie;
        # the lint must report V104 alone and stop.
        program = assemble("jmp top\nadd r1, r2, r3\ntop: halt")
        program[0].target = 50
        report = lint_program(program)
        assert report.codes() == ["V104"]


class TestV105StreamCounter:
    def test_kernel_touching_r11(self):
        program = assemble("movi r11, 5\nhalt", name="greedy")
        report = lint_program(program, kernel_conventions=True)
        assert "V105" in report.codes()

    def test_rule_off_without_kernel_conventions(self):
        program = assemble("movi r11, 5\nhalt")
        assert "V105" not in lint_program(program).codes()


class TestV106CommOperands:
    def test_uninitialized_send_operands(self):
        program = assemble("send r1, r2, r3\nhalt", name="stale")
        report = lint_program(program, kernel_conventions=True)
        assert "V106" in report.codes()

    def test_reinitialized_operands_clean(self):
        program = assemble(
            "movi r1, 1\nmovi r2, 2\nmovi r3, 3\nsend r1, r2, r3\nhalt"
        )
        report = lint_program(program, kernel_conventions=True)
        assert "V106" not in report.codes()

    def test_rule_off_without_kernel_conventions(self):
        program = assemble("send r1, r2, r3\nhalt")
        assert "V106" not in lint_program(program).codes()


class TestMisc:
    def test_empty_program_clean(self):
        assert lint_program(assemble("")).ok(strict=True)

    def test_report_threading(self):
        from repro.verify import Report

        shared = Report("shared")
        out = lint_program(assemble("movi r11, 2\nhalt"),
                           kernel_conventions=True, report=shared)
        assert out is shared and len(shared) == 1


class TestKernelSuiteClean:
    """Acceptance: every shipped kernel body lints strictly clean."""

    @pytest.mark.parametrize("name", sorted(KERNEL_FACTORIES))
    def test_kernel_lints_clean(self, name):
        kernel = make_kernel(name)
        report = lint_program(
            kernel.program,
            kernel_conventions=True,
            exit_live=kernel.live_out_regs,
        )
        assert report.ok(strict=True), report.render()
