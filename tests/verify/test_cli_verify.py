"""End-to-end tests for ``python -m repro verify`` and its exit codes."""

import json

import pytest

from repro.__main__ import main


CLEAN_SOURCE = "movi r1, 6\nmovi r2, 7\nmul r3, r1, r2\nhalt\n"
DIRTY_SOURCE = "add r1, r2, r3\nhalt\n"          # V101 x2 (errors)
WARN_SOURCE = "jmp end\nnop\nend: halt\n"        # V102 (warning only)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.s"
    path.write_text(CLEAN_SOURCE)
    return str(path)


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "dirty.s"
    path.write_text(DIRTY_SOURCE)
    return str(path)


class TestTargets:
    def test_source_file_clean(self, clean_file, capsys):
        main(["verify", clean_file])
        assert "clean" in capsys.readouterr().out

    def test_source_file_findings_printed(self, dirty_file, capsys):
        main(["verify", dirty_file])  # no --strict: reports, exits 0
        out = capsys.readouterr().out
        assert "V101" in out and "error" in out

    def test_kernel_lint_only(self, capsys):
        main(["verify", "fir", "--no-compile"])
        assert "clean" in capsys.readouterr().out

    def test_app_name_case_insensitive(self, capsys):
        main(["verify", "app2", "--strict"])  # full app verification
        assert "clean" in capsys.readouterr().out

    def test_unknown_target_exits(self):
        with pytest.raises(SystemExit):
            main(["verify", "no-such-thing"])

    def test_missing_target_exits(self):
        with pytest.raises(SystemExit):
            main(["verify"])


class TestStrictExitCodes:
    def test_strict_clean_returns_zero(self, clean_file):
        main(["verify", clean_file, "--strict"])  # no SystemExit

    def test_strict_errors_exit_one(self, dirty_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", dirty_file, "--strict"])
        assert excinfo.value.code == 1

    def test_strict_warnings_exit_one(self, tmp_path):
        path = tmp_path / "warn.s"
        path.write_text(WARN_SOURCE)
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", str(path), "--strict"])
        assert excinfo.value.code == 1

    def test_without_strict_warnings_pass(self, tmp_path, capsys):
        path = tmp_path / "warn.s"
        path.write_text(WARN_SOURCE)
        main(["verify", str(path)])
        assert "V102" in capsys.readouterr().out


class TestOutputModes:
    def test_json_output(self, dirty_file, capsys):
        main(["verify", dirty_file, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert any(d["code"] == "V101" for d in payload["diagnostics"])

    def test_json_clean(self, clean_file, capsys):
        main(["verify", clean_file, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["diagnostics"] == []

    def test_rules_listing(self, capsys):
        main(["verify", "--rules"])
        out = capsys.readouterr().out
        for code in ("V101", "V201", "V301", "V401", "V100", "V200"):
            assert code in out
        assert "program-lint" in out and "mpi-checks" in out

    def test_assembler_error_reported_not_raised(self, tmp_path, capsys):
        path = tmp_path / "syntax.s"
        path.write_text("nop\nfrob r1, r2\n")
        main(["verify", str(path)])
        out = capsys.readouterr().out
        assert "V100" in out and "unknown mnemonic" in out
