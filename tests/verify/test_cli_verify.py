"""End-to-end tests for ``python -m repro verify`` and its exit codes."""

import json

import pytest

from repro.__main__ import main


CLEAN_SOURCE = "movi r1, 6\nmovi r2, 7\nmul r3, r1, r2\nhalt\n"
DIRTY_SOURCE = "add r1, r2, r3\nhalt\n"          # V101 x2 (errors)
WARN_SOURCE = "jmp end\nnop\nend: halt\n"        # V102 (warning only)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.s"
    path.write_text(CLEAN_SOURCE)
    return str(path)


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "dirty.s"
    path.write_text(DIRTY_SOURCE)
    return str(path)


class TestTargets:
    def test_source_file_clean(self, clean_file, capsys):
        main(["verify", clean_file])
        assert "clean" in capsys.readouterr().out

    def test_source_file_findings_printed(self, dirty_file, capsys):
        # Error-severity findings exit 1 even without --strict.
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", dirty_file])
        assert excinfo.value.code == 1
        out = capsys.readouterr().out
        assert "V101" in out and "error" in out

    def test_kernel_lint_only(self, capsys):
        main(["verify", "fir", "--no-compile"])
        assert "clean" in capsys.readouterr().out

    def test_app_name_case_insensitive(self, capsys):
        main(["verify", "app2", "--strict"])  # full app verification
        assert "clean" in capsys.readouterr().out

    def test_unknown_target_exits(self):
        with pytest.raises(SystemExit):
            main(["verify", "no-such-thing"])

    def test_missing_target_exits(self):
        with pytest.raises(SystemExit):
            main(["verify"])


class TestStrictExitCodes:
    def test_strict_clean_returns_zero(self, clean_file):
        main(["verify", clean_file, "--strict"])  # no SystemExit

    def test_strict_errors_exit_one(self, dirty_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", dirty_file, "--strict"])
        assert excinfo.value.code == 1

    def test_strict_warnings_exit_two(self, tmp_path):
        # Warnings-only in strict mode exits 2, distinguishing it from
        # hard errors (exit 1).
        path = tmp_path / "warn.s"
        path.write_text(WARN_SOURCE)
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", str(path), "--strict"])
        assert excinfo.value.code == 2

    def test_without_strict_warnings_pass(self, tmp_path, capsys):
        path = tmp_path / "warn.s"
        path.write_text(WARN_SOURCE)
        main(["verify", str(path)])
        assert "V102" in capsys.readouterr().out


DEEP_SOURCE = (                 # clean to the lint; V800 to the interpreter
    "movi r1, 64\n"
    "lw r4, 0(r1)\n"
    "beq r4, r0, skip\n"
    "movi r2, 5\n"
    "skip:\n"
    "add r3, r2, r1\n"
    "halt\n"
)


class TestDeep:
    def test_deep_finds_path_sensitive_error(self, tmp_path, capsys):
        path = tmp_path / "deep.s"
        path.write_text(DEEP_SOURCE)
        main(["verify", str(path)])  # shallow lint: clean, exit 0
        assert "clean" in capsys.readouterr().out
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", str(path), "--deep"])
        assert excinfo.value.code == 1
        out = capsys.readouterr().out
        assert "V800" in out and "witness path" in out

    def test_strict_implies_deep(self, tmp_path):
        path = tmp_path / "deep.s"
        path.write_text(DEEP_SOURCE)
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", str(path), "--strict"])
        assert excinfo.value.code == 1

    def test_dump_cfg_writes_dot(self, tmp_path, capsys):
        path = tmp_path / "deep.s"
        path.write_text(DEEP_SOURCE)
        prefix = str(tmp_path / "deep")
        with pytest.raises(SystemExit):
            main(["verify", str(path), "--deep", "--dump-cfg", prefix])
        dot = (tmp_path / "deep.cfg.dot").read_text()
        assert dot.startswith("digraph")
        assert "entry state" in dot     # interval annotations present
        assert "->" in dot

    def test_dump_cfg_kernel_target(self, tmp_path, capsys):
        prefix = str(tmp_path / "fir")
        main(["verify", "fir", "--no-compile", "--deep",
              "--dump-cfg", prefix])
        assert (tmp_path / "fir.cfg.dot").exists()


class TestOutputModes:
    def test_json_output(self, dirty_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", dirty_file, "--json"])
        assert excinfo.value.code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert any(d["code"] == "V101" for d in payload["diagnostics"])

    def test_json_clean(self, clean_file, capsys):
        main(["verify", clean_file, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["diagnostics"] == []

    def test_rules_listing(self, capsys):
        main(["verify", "--rules"])
        out = capsys.readouterr().out
        for code in ("V101", "V201", "V301", "V401", "V100", "V200"):
            assert code in out
        assert "program-lint" in out and "mpi-checks" in out

    def test_assembler_error_reported_not_raised(self, tmp_path, capsys):
        path = tmp_path / "syntax.s"
        path.write_text("nop\nfrob r1, r2\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", str(path)])
        assert excinfo.value.code == 1
        out = capsys.readouterr().out
        assert "V100" in out and "unknown mnemonic" in out
