"""V600-V602: compile-provenance consistency rules."""

import pytest

from repro.core.stitching import Assignment, StitchPlan
from repro.provenance import (
    REJECT_OVERLAP,
    REJECTED,
    SELECTED,
    CandidateRecord,
    CompileReport,
)
from repro.verify import check_compile_report, check_report_against_plan
from repro.verify.diagnostics import RULES


class FakeOption:
    def __init__(self, name, fused=False):
        self.name = name
        self.fused = fused


class FakeCandidate:
    """Just enough surface for CandidateRecord.of()."""

    def __init__(self, node_ids=(0, 1)):
        self.node_ids = frozenset(node_ids)
        self.inputs = [("reg", 1), ("reg", 2)]
        self.outputs = [3]
        self.size = len(self.node_ids)

    def signature(self):
        return "MA"


def make_report(enumerated=2):
    report = CompileReport("k")
    version = report.version(FakeOption("AT-MA"))
    block = version.block(0, 1.0)
    block.decide(FakeCandidate((0, 1)), SELECTED, target="AT-MA")
    block.decide(FakeCandidate((1, 2)), REJECTED, reason=REJECT_OVERLAP)
    block.enumerated = enumerated
    version.measured(500, 1000, [])
    version.note_validation(True)
    return report


class TestRegistration:
    def test_rules_registered(self):
        for code in ("V600", "V601", "V602"):
            assert code in RULES
            assert RULES[code].pass_name == "report-checks"


class TestV600:
    def test_accounted_report_is_clean(self):
        assert check_compile_report(make_report()).ok(strict=True)

    def test_missing_decisions_flagged(self):
        report = make_report(enumerated=3)
        result = check_compile_report(report)
        assert result.codes() == ["V600"]
        assert "3 candidates enumerated but only 2 decided" in (
            result.diagnostics[0].message
        )

    def test_unclosed_block_flagged(self):
        report = make_report()
        block = next(iter(report.versions.values())).blocks[0]
        block.enumerated = None
        result = check_compile_report(report)
        assert result.codes() == ["V600"]


class TestV601:
    def test_rejection_without_reason_flagged(self):
        report = make_report(enumerated=3)
        block = next(iter(report.versions.values())).blocks[0]
        block.candidates.append(
            CandidateRecord("AA", (4, 5), 2, 2, 1, REJECTED, reason=None)
        )
        result = check_compile_report(report)
        assert result.codes() == ["V601"]

    def test_unknown_reason_flagged(self):
        report = make_report(enumerated=3)
        block = next(iter(report.versions.values())).blocks[0]
        block.candidates.append(
            CandidateRecord("AA", (4, 5), 2, 2, 1, REJECTED,
                            reason="cosmic-rays")
        )
        result = check_compile_report(report)
        assert result.codes() == ["V601"]
        assert "cosmic-rays" in result.diagnostics[0].message


class TestV602:
    def plan(self, cycles=500, option="AT-MA"):
        assignments = {
            0: Assignment(0, 2, option, None, None, cycles),
            1: Assignment(1, 0, "baseline", None, None, 900),
        }
        return StitchPlan("app", assignments, network=None)

    def test_consistent_plan_is_clean(self):
        result = check_report_against_plan(
            self.plan(), {"k": make_report()}, {0: "k", 1: "k"}
        )
        assert result.ok(strict=True)

    def test_cycle_mismatch_flagged(self):
        result = check_report_against_plan(
            self.plan(cycles=999), {"k": make_report()}, {0: "k", 1: "k"}
        )
        assert result.codes() == ["V602"]
        assert "999" in result.diagnostics[0].message

    def test_unmeasured_option_flagged(self):
        result = check_report_against_plan(
            self.plan(option="AT-SA"), {"k": make_report()}, {0: "k", 1: "k"}
        )
        assert result.codes() == ["V602"]

    def test_missing_report_flagged(self):
        result = check_report_against_plan(
            self.plan(), {}, {0: "k", 1: "k"}
        )
        assert result.codes() == ["V602"]

    def test_unvalidated_version_flagged(self):
        report = make_report()
        report.versions["AT-MA"].validated = None
        result = check_report_against_plan(
            self.plan(), {"k": report}, {0: "k", 1: "k"}
        )
        assert result.codes() == ["V602"]
        assert "validated=None" in result.diagnostics[0].message

    def test_baseline_assignments_skipped(self):
        result = check_report_against_plan(
            self.plan(), {"k": make_report()}, {0: "k"}
        )
        # stage 1 is baseline: no kernel lookup, no finding.
        assert result.ok(strict=True)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def real_report(self):
        from repro.compiler.driver import SINGLE_OPTIONS, KernelCompiler
        from repro.workloads import make_kernel

        report = CompileReport("fir")
        KernelCompiler(make_kernel("fir"), report=report).compile_options(
            SINGLE_OPTIONS
        )
        return report

    def test_real_compile_report_is_clean(self, real_report):
        assert check_compile_report(real_report).ok(strict=True)
