"""Dynamic cross-check of the abstract interpreter.

The soundness contract: every value a register actually takes during
concrete execution lies inside the static interval the analysis
computed for the instruction that wrote it.  The harness single-steps
:class:`repro.cpu.Core` over real kernels and checks each retired
write against :meth:`Analysis.post_write_intervals`.
"""

import time

import pytest

from repro.cpu import Core
from repro.mem import MemorySystem
from repro.sim.baselines import compile_kernel_options
from repro.verify.absint import analyze_program, contains
from repro.verify.dataflow_checks import check_dataflow
from repro.workloads import KERNEL_FACTORIES, make_kernel
from repro.workloads.apps import APP_FACTORIES

# Small kernels whose compiled variants are cheap to single-step too.
SMALL_KERNELS = ("pool", "specfilter", "update")


def signed32(value):
    return value - (1 << 32) if value >= (1 << 31) else value


def assert_execution_within_bounds(program, kernel=None,
                                   max_steps=400_000):
    analysis = analyze_program(program)
    assert analysis is not None, program.name
    bounds = analysis.post_write_intervals()
    core = Core(program, MemorySystem.stitch())
    if kernel is not None:
        kernel.setup(core)
    steps = 0
    checked = 0
    while not core.halted and steps < max_steps:
        pc = core.pc
        core.run(max_instructions=1)
        steps += 1
        for reg, ival in bounds.get(pc, {}).items():
            value = signed32(core.regs[reg])
            assert ival is not None and contains(ival, value), (
                f"{program.name}@{pc}: r{reg}={value} escapes the "
                f"static interval {ival}"
            )
            checked += 1
    assert core.halted, f"{program.name} did not halt in {max_steps} steps"
    assert checked, f"{program.name}: no writes were cross-checked"
    return checked


@pytest.mark.parametrize("name", sorted(KERNEL_FACTORIES))
def test_kernel_execution_stays_in_static_intervals(name):
    kernel = make_kernel(name, seed=3)
    assert_execution_within_bounds(kernel.program, kernel)


@pytest.mark.parametrize("name", SMALL_KERNELS)
def test_compiled_variants_stay_in_static_intervals(name):
    from repro.core.executor import PatchExecutor

    kernel = make_kernel(name, seed=3)
    _, compiled = compile_kernel_options(kernel, allow_replication=True)
    for option_name, artifact in sorted(compiled.items()):
        analysis = analyze_program(artifact.program)
        assert analysis is not None, option_name
        bounds = analysis.post_write_intervals()
        memory = MemorySystem.stitch()
        replica = MemorySystem.stitch()
        for region, words in getattr(kernel, "consts", []):
            replica.load(region.addr, words)
        patch = PatchExecutor(
            artifact.cfg_table, memory, replica_memory=replica
        )
        core = Core(artifact.program, memory, patch=patch)
        kernel.setup(core)
        steps = 0
        while not core.halted and steps < 400_000:
            pc = core.pc
            core.run(max_instructions=1)
            steps += 1
            for reg, ival in bounds.get(pc, {}).items():
                value = signed32(core.regs[reg])
                assert ival is not None and contains(ival, value), (
                    f"{name}@{option_name}@{pc}: r{reg}={value} "
                    f"escapes {ival}"
                )
        assert core.halted, f"{name}@{option_name}"


def test_full_suite_analysis_under_ten_seconds():
    # The acceptance budget covers pure analysis: every kernel body,
    # every compiled variant, every app stage body (compilation itself
    # is cached suite-wide and excluded).
    subjects = []
    for name in sorted(KERNEL_FACTORIES):
        kernel = make_kernel(name, seed=1)
        subjects.append((kernel.program, None, kernel.live_out_regs))
        _, compiled = compile_kernel_options(kernel, allow_replication=True)
        for artifact in compiled.values():
            subjects.append(
                (artifact.program, artifact.cfg_table,
                 kernel.live_out_regs)
            )
    for name in sorted(APP_FACTORIES):
        for stage in APP_FACTORIES[name](seed=1).stages:
            subjects.append(
                (stage.kernel.program, None, stage.kernel.live_out_regs)
            )
    start = time.monotonic()
    for program, cfg_table, exit_live in subjects:
        check_dataflow(program, cfg_table=cfg_table, exit_live=exit_live)
    elapsed = time.monotonic() - start
    assert len(subjects) > 200
    assert elapsed < 10.0, f"{len(subjects)} programs took {elapsed:.1f}s"
