"""MPI deadlock detection over static channel graphs."""

from types import SimpleNamespace

import pytest

from repro.verify import check_app_channels
from repro.workloads.apps import APP_FACTORIES


class KernelStub:
    def __init__(self, **regions):
        self._regions = regions

    def get_region(self, name):
        if name not in self._regions:
            raise KeyError(name)
        return SimpleNamespace(nwords=self._regions[name])


def stage(sid, **regions):
    return SimpleNamespace(id=sid, kernel=KernelStub(**regions))


def channel(src, src_region, dst, dst_region):
    return SimpleNamespace(
        src=src, src_region=src_region, dst=dst, dst_region=dst_region
    )


def app(stages, channels, name="fake-app"):
    return SimpleNamespace(name=name, stages=stages, channels=channels)


class TestV401Cycles:
    def test_two_stage_cycle(self):
        fixture = app(
            [stage(0, out=8, inp=8), stage(1, out=8, inp=8)],
            [channel(0, "out", 1, "inp"), channel(1, "out", 0, "inp")],
        )
        report = check_app_channels(fixture)
        assert report.codes() == ["V401"]
        assert not report.ok()

    def test_longer_cycle_reported_once(self):
        fixture = app(
            [stage(i, out=4, inp=4) for i in range(3)],
            [channel(0, "out", 1, "inp"), channel(1, "out", 2, "inp"),
             channel(2, "out", 0, "inp")],
        )
        report = check_app_channels(fixture)
        assert [d.code for d in report] == ["V401"]

    def test_linear_pipeline_clean(self):
        fixture = app(
            [stage(i, out=4, inp=4) for i in range(4)],
            [channel(i, "out", i + 1, "inp") for i in range(3)],
        )
        assert check_app_channels(fixture).ok(strict=True)

    def test_diamond_is_acyclic(self):
        fixture = app(
            [stage(i, out=4, inp=4) for i in range(4)],
            [channel(0, "out", 1, "inp"), channel(0, "out", 2, "inp"),
             channel(1, "out", 3, "inp"), channel(2, "out", 3, "inp")],
        )
        assert check_app_channels(fixture).ok(strict=True)


class TestV402SizeMismatch:
    def test_unmatched_word_counts(self):
        fixture = app(
            [stage(0, out=16), stage(1, inp=8)],
            [channel(0, "out", 1, "inp")],
        )
        report = check_app_channels(fixture)
        assert report.codes() == ["V402"]
        assert "16 words" in report.errors()[0].message

    def test_unknown_region_tolerated(self):
        # A region the stage does not declare cannot be size-checked;
        # the pass stays quiet rather than guessing.
        fixture = app(
            [stage(0, out=16), stage(1)],
            [channel(0, "out", 1, "mystery")],
        )
        assert check_app_channels(fixture).ok(strict=True)


class TestV403SelfChannel:
    def test_self_loop(self):
        fixture = app(
            [stage(0, out=4, inp=4)],
            [channel(0, "out", 0, "inp")],
        )
        report = check_app_channels(fixture)
        assert report.codes() == ["V403"]


class TestShippedAppsClean:
    @pytest.mark.parametrize("name", sorted(APP_FACTORIES))
    def test_app_channel_graph_clean(self, name):
        fixture = APP_FACTORIES[name](seed=1)
        report = check_app_channels(fixture)
        assert report.ok(strict=True), report.render()
