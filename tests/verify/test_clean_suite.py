"""Acceptance: the shipped workloads verify clean.

Every kernel of the suite — across all patch options — and every
application's stitch plan must produce zero error-severity diagnostics.
These tests share the compile cache with the rest of the suite, so the
marginal cost is one verification sweep, not a recompilation.
"""

import pytest

from repro.verify import verify_app, verify_kernel
from repro.workloads import KERNEL_FACTORIES, make_kernel
from repro.workloads.apps import APP_FACTORIES


@pytest.mark.parametrize("name", sorted(KERNEL_FACTORIES))
def test_kernel_verifies_clean_across_all_options(name):
    report = verify_kernel(make_kernel(name))
    assert report.ok(strict=True), report.render()


@pytest.mark.parametrize("name", sorted(APP_FACTORIES))
def test_app_verifies_with_zero_errors(name):
    report = verify_app(APP_FACTORIES[name](seed=1))
    assert report.errors() == [], report.render()
    assert report.ok(), report.render()


@pytest.mark.parametrize("name", sorted(KERNEL_FACTORIES))
def test_kernel_deep_verifies_clean_across_all_options(name):
    # The abstract interpreter (V800 family) over the body and every
    # compiled artifact: not a single diagnostic, warnings included.
    report = verify_kernel(make_kernel(name), deep=True)
    assert report.ok(strict=True), report.render()


@pytest.mark.parametrize("name", sorted(APP_FACTORIES))
def test_app_deep_verifies_clean(name):
    report = verify_app(APP_FACTORIES[name](seed=1), deep=True)
    assert report.ok(strict=True), report.render()
