"""Unit tests for the diagnostics framework (rules, Report, rendering)."""

import pytest

from repro.verify import (
    RULES,
    Diagnostic,
    Report,
    Severity,
    VerificationError,
    register_rule,
    require_clean,
)


class TestRegistry:
    def test_core_rules_registered(self):
        for code in ("V100", "V101", "V104", "V200", "V201", "V203",
                     "V301", "V304", "V308", "V401", "V402", "V403"):
            assert code in RULES
            assert RULES[code].code == code

    def test_duplicate_code_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            register_rule("V101", Severity.ERROR, "again", "program-lint")

    def test_rule_severities_match_contract(self):
        assert RULES["V101"].severity is Severity.ERROR
        assert RULES["V102"].severity is Severity.WARNING
        assert RULES["V103"].severity is Severity.WARNING

    def test_unregistered_diagnostic_code_rejected(self):
        with pytest.raises(ValueError, match="unregistered"):
            Diagnostic("V999", Severity.ERROR, "here", "boom")


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_str_lowercase(self):
        assert str(Severity.ERROR) == "error"
        assert str(Severity.WARNING) == "warning"


class TestReport:
    def test_emit_defaults_to_rule_severity(self):
        report = Report("x")
        diag = report.emit("V101", "x@0", "read of r9")
        assert diag.severity is Severity.ERROR
        assert report.errors() == [diag]

    def test_emit_severity_override(self):
        report = Report("x")
        diag = report.emit("V101", "x@0", "downgraded", severity=Severity.WARNING)
        assert diag.severity is Severity.WARNING
        assert report.errors() == []
        assert report.warnings() == [diag]

    def test_ok_ignores_warnings_unless_strict(self):
        report = Report("x")
        report.emit("V102", "x@4", "dead block")
        assert report.ok()
        assert not report.ok(strict=True)

    def test_ok_false_on_error(self):
        report = Report("x")
        report.emit("V101", "x@0", "bad")
        assert not report.ok()
        assert not report.ok(strict=True)

    def test_empty_report_is_clean(self):
        report = Report("x")
        assert report.ok() and report.ok(strict=True)
        assert "clean" in report.render()
        assert len(report) == 0

    def test_render_counts_and_lines(self):
        report = Report("fir")
        report.emit("V101", "fir@0", "r9 never written")
        report.emit("V102", "fir@7", "dead")
        text = report.render()
        assert "1 error(s), 1 warning(s)" in text
        assert "error: V101: fir@0: r9 never written" in text
        assert "warning: V102: fir@7: dead" in text

    def test_to_dict_machine_readable(self):
        report = Report("fir")
        report.emit("V101", "fir@0", "bad")
        payload = report.to_dict()
        assert payload["subject"] == "fir"
        assert payload["ok"] is False
        assert payload["diagnostics"] == [{
            "code": "V101",
            "severity": "error",
            "loc": "fir@0",
            "message": "bad",
        }]

    def test_codes_sorted_unique(self):
        report = Report("x")
        report.emit("V102", "a", "m")
        report.emit("V101", "b", "m")
        report.emit("V101", "c", "m")
        assert report.codes() == ["V101", "V102"]

    def test_extend_merges(self):
        a, b = Report("a"), Report("b")
        b.emit("V101", "b@0", "m")
        a.extend(b)
        assert len(a) == 1
        assert list(a)[0].code == "V101"


class TestRequireClean:
    def test_raises_with_report_attached(self):
        report = Report("x")
        report.emit("V101", "x@0", "bad")
        with pytest.raises(VerificationError) as excinfo:
            require_clean(report)
        assert excinfo.value.report is report
        assert "V101" in str(excinfo.value)

    def test_passes_clean_report_through(self):
        report = Report("x")
        assert require_clean(report) is report

    def test_strict_rejects_warnings(self):
        report = Report("x")
        report.emit("V103", "x@0", "writes r0")
        require_clean(report)  # non-strict tolerates warnings
        with pytest.raises(VerificationError):
            require_clean(report, strict=True)
