"""V5xx telemetry-consistency rules: red fixtures plus clean real runs."""

from repro.cpu import Core
from repro.isa import assemble
from repro.mem import MemorySystem
from repro.sim import StitchSystem
from repro.verify import (
    RULES,
    Severity,
    check_core,
    check_cycle_attribution,
    check_run,
)


def attribution(compute=10, memory=0, icache=0, branch=0, comm=0,
                total=None, instructions=None):
    buckets = {
        "compute": compute,
        "memory_stall": memory,
        "icache_stall": icache,
        "branch_bubble": branch,
        "comm_blocked": comm,
    }
    buckets["total"] = (
        total if total is not None else sum(buckets.values())
    )
    if instructions is not None:
        buckets["instructions"] = instructions
    return buckets


class TestRegistry:
    def test_v5xx_rules_registered(self):
        for code in ("V500", "V501", "V502"):
            assert code in RULES
        assert RULES["V500"].severity is Severity.ERROR
        assert RULES["V501"].severity is Severity.ERROR
        assert RULES["V502"].severity is Severity.WARNING


class TestV500Sum:
    def test_drift_fires(self):
        report = check_cycle_attribution(attribution(compute=10, total=12))
        assert report.codes() == ["V500"]
        assert "drift" in report.errors()[0].message

    def test_exact_sum_is_clean(self):
        report = check_cycle_attribution(attribution(compute=7, icache=30))
        assert report.ok(strict=True)


class TestV501Negative:
    def test_negative_bucket_fires(self):
        report = check_cycle_attribution(attribution(comm=-3))
        assert "V501" in report.codes()


class TestV502IssueSlots:
    def test_compute_above_instret_warns(self):
        report = check_cycle_attribution(
            attribution(compute=10, instructions=8)
        )
        assert report.codes() == ["V502"]
        assert report.ok() and not report.ok(strict=True)

    def test_without_instret_not_checked(self):
        report = check_cycle_attribution(attribution(compute=10))
        assert report.ok(strict=True)


class TestRealArtifacts:
    def test_real_core_is_clean(self):
        core = Core(
            assemble("movi r1, 0\nloop: addi r1, r1, 1\nslti r2, r1, 9\n"
                     "bne r2, r0, loop\nhalt"),
            MemorySystem.stitch(),
        )
        core.run()
        assert check_core(core).ok(strict=True)

    def test_doctored_core_fires(self):
        core = Core(assemble("movi r1, 1\nhalt"), MemorySystem.stitch())
        core.run()
        core.stall_branch += 5  # simulate instrumentation drift
        report = check_core(core)
        assert report.codes() == ["V500"]

    def test_real_run_is_clean(self):
        from tests.sim.test_system import consumer_source, producer_source

        system = StitchSystem()
        system.load(0, producer_source(1, 0x100, 2, 3))
        system.load(1, consumer_source(0, 0x200, 2))
        results = system.run()
        report = check_run(results)
        assert report.ok(strict=True), report.render()

    def test_check_run_accepts_bare_stats(self):
        system = StitchSystem()
        system.load(0, Core(assemble("halt"), MemorySystem.stitch()).program)
        results = system.run()
        assert check_run(results.stats).ok(strict=True)

    def test_doctored_run_names_the_tile(self):
        system = StitchSystem()
        system.load(5, assemble("movi r1, 2\nhalt"))
        results = system.run()
        results.stats.tiles[5]["compute"] += 1
        report = check_run(results)
        assert "V500" in report.codes()
        assert report.errors()[0].loc == "tile 5"
