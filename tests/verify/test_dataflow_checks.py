"""The V800 rule family: deliberately broken fixtures for each rule."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction, Op
from repro.isa.program import Program
from repro.platform import DEFAULT_PLATFORM
from repro.verify import check_dataflow

SPM_BASE = DEFAULT_PLATFORM.mem.spm_base
SPM_BYTES = DEFAULT_PLATFORM.mem.spm_bytes


def run(source, name="t", **kwargs):
    return check_dataflow(assemble(source, name=name), **kwargs)


def codes(report):
    return [d.code for d in report.diagnostics]


class TestV800InitBeforeUse:
    def test_write_on_one_path_only(self):
        # r2 is written only when the loaded value is non-zero; the
        # fall-through path reaches the read with r2 undefined.
        report = run(
            """
            movi r1, 64
            lw r4, 0(r1)
            beq r4, r0, skip
            movi r2, 5
            skip:
            add r3, r2, r1
            halt
            """
        )
        assert codes(report) == ["V800"]
        diag = report.diagnostics[0]
        assert "r2" in diag.message
        assert "witness path" in diag.message
        # The witness must name the path that skips the write (block
        # #1 holds the `movi r2, 5`).
        assert "#0 -> #2" in diag.message

    def test_fully_initialized_is_clean(self):
        report = run(
            """
            movi r1, 10
            movi r2, 0
            loop:
            add r2, r2, r1
            addi r1, r1, -1
            bne r1, r0, loop
            halt
            """
        )
        assert codes(report) == []

    def test_refinement_prunes_false_positive(self):
        # The branch condition is statically decided (r1 == 1 never
        # equals zero), so the only feasible path writes r2 first: no
        # V800 even though a graph path skips the write.
        report = run(
            """
            movi r1, 1
            beq r1, r0, skip
            movi r2, 5
            skip:
            add r3, r2, r1
            halt
            """
        )
        assert "V800" not in codes(report)

    def test_allowed_live_in_suppresses(self):
        report = run(
            "add r3, r2, r1\nhalt\n", allowed_live_in=(1, 2)
        )
        assert codes(report) == []


class TestV801SpmBounds:
    def test_store_past_window(self):
        report = run(
            f"""
            movi r1, {SPM_BASE + SPM_BYTES}
            sw r1, 0(r1)
            halt
            """
        )
        assert codes(report) == ["V801"]
        message = report.diagnostics[0].message
        assert "witness path" in message
        assert f"{SPM_BASE:#x}" in message

    def test_load_offset_pushes_out(self):
        report = run(
            f"""
            movi r1, {SPM_BASE}
            lw r2, {SPM_BYTES}(r1)
            halt
            """
        )
        assert codes(report) == ["V801"]

    def test_last_word_in_window_is_clean(self):
        report = run(
            f"""
            movi r1, {SPM_BASE + SPM_BYTES - 4}
            lw r2, 0(r1)
            halt
            """
        )
        assert codes(report) == []

    def test_widened_loop_index_does_not_fire(self):
        # The address interval covers the whole window after widening —
        # it intersects valid addresses, so the provable-violation rule
        # must stay silent.
        report = run(
            f"""
            movi r1, {SPM_BASE}
            movi r2, 1024
            loop:
            lw r3, 0(r1)
            addi r1, r1, 4
            addi r2, r2, -1
            bne r2, r0, loop
            halt
            """,
            exit_live=frozenset({3}),
        )
        assert codes(report) == []

    def test_non_spm_address_is_clean(self):
        report = run("movi r1, 64\nlw r2, 0(r1)\nhalt\n")
        assert codes(report) == []


class TestV802ControlWords:
    def test_inline_immediate_overflow(self):
        # The assembler caps inline cfg immediates at 16 bits, so an
        # overflowing word must be built programmatically.
        program = Program(
            [
                Instruction(Op.MOVI, rd=1, imm=3),
                Instruction(Op.CIX, cfg=1 << 19, outs=(2,), ins=(1,)),
                Instruction(Op.HALT),
            ],
            name="v802",
        )
        report = check_dataflow(program)
        assert codes(report) == ["V802"]
        message = report.diagnostics[0].message
        assert "19-bit" in message and "witness path" in message

    def test_inline_immediate_in_range(self):
        program = Program(
            [
                Instruction(Op.MOVI, rd=1, imm=3),
                Instruction(Op.CIX, cfg=(1 << 19) - 1, outs=(2,), ins=(1,)),
                Instruction(Op.HALT),
            ],
            name="v802ok",
        )
        assert codes(check_dataflow(program)) == []

    def test_unreachable_cix_not_flagged(self):
        program = Program(
            [
                Instruction(Op.HALT),
                Instruction(Op.CIX, cfg=1 << 19, outs=(2,), ins=(1,)),
            ],
            name="v802dead",
        )
        assert codes(check_dataflow(program)) == []


class TestV803DeadStores:
    def test_back_to_back_writes(self):
        report = run(
            """
            movi r1, 7
            movi r1, 9
            add r2, r1, r1
            halt
            """,
            exit_live=frozenset({2}),
        )
        assert codes(report) == ["V803"]
        assert "movi r1, 7" in report.diagnostics[0].message

    def test_exit_live_result_not_flagged(self):
        report = run(
            "movi r1, 7\nhalt\n", exit_live=frozenset({1})
        )
        assert codes(report) == []


class TestV804SemanticReachability:
    def test_one_sided_branch(self):
        report = run(
            """
            movi r1, 3
            bne r1, r0, go
            movi r2, 1
            go:
            halt
            """
        )
        assert codes(report) == ["V804"]
        assert "one-sided" in report.diagnostics[0].message

    def test_graph_unreachable_is_not_v804(self):
        # Blocks no edge reaches at all are the lint's V102; V804 is
        # only for feasibility, so it stays quiet here.
        report = run("jmp end\nnop\nend:\nhalt\n")
        assert codes(report) == []


class TestV805LoopBounds:
    def test_loop_without_exit(self):
        report = run("spin:\naddi r1, r1, 1\njmp spin\n",
                     allowed_live_in=(1,))
        assert codes(report) == ["V805"]
        assert "no exit edge" in report.diagnostics[0].message

    def test_loop_invariant_exit(self):
        report = run(
            """
            movi r1, 1
            movi r2, 2
            loop:
            addi r3, r3, 1
            bne r1, r2, loop
            halt
            """,
            allowed_live_in=(3,),
            exit_live=frozenset({3}),
        )
        assert "V805" in codes(report)
        assert "loop-invariant" in [
            d for d in report.diagnostics if d.code == "V805"
        ][0].message

    def test_counted_loop_is_clean(self):
        report = run(
            """
            movi r1, 16
            loop:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
            """
        )
        assert codes(report) == []


class TestEdgeCases:
    def test_empty_program(self):
        assert codes(check_dataflow(Program([], name="empty"))) == []

    def test_broken_targets_bail_quietly(self):
        # Out-of-range branch target is V104 (program lint); the
        # dataflow pass must not crash or double-report.
        program = Program(
            [Instruction(Op.JMP, target=99), Instruction(Op.HALT)],
            name="broken",
        )
        assert codes(check_dataflow(program)) == []

    def test_report_is_returned_and_reused(self):
        from repro.verify import Report

        report = Report("shared")
        out = run("movi r1, 1\nhalt\n", report=report)
        assert out is report


@pytest.mark.parametrize("code", ["V800", "V801", "V802"])
def test_error_severity(code):
    from repro.verify import RULES, Severity

    assert RULES[code].severity is Severity.ERROR


@pytest.mark.parametrize("code", ["V803", "V804", "V805"])
def test_warning_severity(code):
    from repro.verify import RULES, Severity

    assert RULES[code].severity is Severity.WARNING
