"""Tests for the V700-family platform verification pass."""

from repro.platform import PlatformConfig
from repro.verify import RULES, check_platform


class TestCheckPlatform:
    def test_presets_are_clean(self):
        assert check_platform(PlatformConfig.stitch()).ok(strict=True)
        assert check_platform(PlatformConfig.baseline()).ok(strict=True)

    def test_config_issues_become_diagnostics(self):
        cfg = PlatformConfig.stitch().derive(
            "clash", mem={"spm_base": 0x0800_0000}
        )
        report = check_platform(cfg)
        assert not report.ok()
        assert "V700" in report.codes()
        (diag,) = [d for d in report if d.code == "V700"]
        assert "overlaps the code window" in diag.message

    def test_v703_fused_path_misses_clock(self):
        # A 50 MHz-fast clock cannot close the 3-hop fused path.
        cfg = PlatformConfig.stitch().derive(
            "fastclock", fabric={"clock_ns": 1.0}
        )
        report = check_platform(cfg)
        assert "V703" in report.codes()
        assert any("max_fusion_hops" in d.message for d in report)

    def test_tighter_clock_that_still_fits_stays_clean(self):
        # The worst pair ({AT-MA, AT-MA}) at 3 hops needs 4.89 ns, so a
        # 4.9 ns clock is still closable.
        cfg = PlatformConfig.stitch().derive(
            "tight", fabric={"clock_ns": 4.9}
        )
        assert check_platform(cfg).ok(strict=True)

    def test_v703_skipped_when_v704_already_fires(self):
        cfg = PlatformConfig.stitch().derive(
            "nohops", fabric={"max_fusion_hops": 0}
        )
        report = check_platform(cfg)
        assert "V704" in report.codes()
        assert "V703" not in report.codes()

    def test_v700_family_registered(self):
        for code in ("V700", "V701", "V702", "V703", "V704", "V705", "V706"):
            assert code in RULES
            assert RULES[code].pass_name == "platform"
