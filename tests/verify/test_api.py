"""Entry-point tests: verify_source / verify_kernel / opt-in compile hooks."""

import pytest

from repro.verify import VerificationError, verify_kernel, verify_source
from repro.workloads import make_kernel


class TestVerifySource:
    def test_clean_source(self):
        report = verify_source("movi r1, 1\nadd r2, r1, r1\nhalt\n",
                               name="ok.s")
        assert report.ok(strict=True)

    def test_syntax_error_becomes_v100(self):
        report = verify_source("nop\nbogus r1, r2\n", name="broken.s")
        assert report.codes() == ["V100"]
        diag = report.errors()[0]
        assert diag.loc == "broken.s:2"
        assert "unknown mnemonic" in diag.message

    def test_lint_findings_surface(self):
        report = verify_source("add r1, r2, r3\nhalt\n", name="uninit.s")
        assert "V101" in report.codes()

    def test_allowed_live_in_forwarded(self):
        report = verify_source(
            "add r1, r2, r3\nhalt\n", name="h.s", allowed_live_in=(2, 3)
        )
        assert report.ok(strict=True)


class TestVerifyKernel:
    def test_lint_only_is_fast_and_clean(self):
        report = verify_kernel(make_kernel("fir"), compile_options=False)
        assert report.ok(strict=True), report.render()

    def test_full_verification_clean(self):
        report = verify_kernel(make_kernel("fir"))
        assert report.ok(strict=True), report.render()


class TestV200CompileFailure:
    def test_compile_error_becomes_v200(self, monkeypatch):
        from repro.compiler.driver import MiscompileError
        import repro.sim.baselines as baselines

        def explode(kernel, options=None, allow_replication=False):
            raise MiscompileError("accelerated output differs from reference")

        monkeypatch.setattr(baselines, "compile_kernel_options", explode)
        report = verify_kernel(make_kernel("fir"))
        assert "V200" in report.codes()
        assert not report.ok()


class TestCompilerOptIn:
    def test_kernel_compiler_verify_flag(self):
        from repro.compiler.driver import KernelCompiler, SINGLE_OPTIONS

        compiler = KernelCompiler(make_kernel("fir"), verify=True)
        compiled = compiler.compile(SINGLE_OPTIONS[0])
        assert compiled.cycles > 0  # verification passed silently

    def test_kernel_compiler_verify_rejects_bad_body(self):
        from repro.compiler.driver import KernelCompiler, SINGLE_OPTIONS
        from repro.isa import assemble

        kernel = make_kernel("fir")
        compiler = KernelCompiler(kernel, verify=True)
        compiler.verify = False
        compiled = compiler.compile(SINGLE_OPTIONS[0])
        compiler.verify = True
        # Sabotage the cached body: a kernel touching the r11 stream
        # counter violates the streaming convention (V105).
        kernel._program = assemble(
            "movi r11, 3\n" + kernel.program.text(), name=kernel.name
        )
        with pytest.raises(VerificationError) as excinfo:
            compiler._verify(compiled)
        assert "V105" in excinfo.value.report.codes()
