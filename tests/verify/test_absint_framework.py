"""Unit tests for the abstract-interpretation framework itself."""

from repro.isa.assembler import assemble
from repro.verify.absint import (
    CFG,
    TOP,
    analyze_program,
    cfg_dot,
    contains,
    interval,
    join,
    meet,
    render_trace,
    widen,
)


class TestIntervalLattice:
    def test_join_and_meet(self):
        a, b = interval(0, 10), interval(5, 20)
        assert join(a, b) == (0, 20)
        assert meet(a, b) == (5, 10)
        assert meet(interval(0, 1), interval(5, 6)) is None

    def test_bottom_propagates(self):
        assert join(None, interval(1, 2)) == (1, 2)
        assert meet(None, interval(1, 2)) is None

    def test_widen_hits_thresholds(self):
        old, new = interval(0, 10), interval(0, 11)
        widened = widen(old, new, thresholds=(-1, 0, 16, 100))
        assert widened == (0, 16)

    def test_widen_stable_when_contained(self):
        old = interval(0, 16)
        assert widen(old, interval(2, 10), thresholds=(0, 16)) == old

    def test_contains(self):
        assert contains(TOP, -(1 << 31))
        assert contains(interval(3, 3), 3)
        assert not contains(interval(3, 3), 4)


class TestCFG:
    def test_diamond(self):
        program = assemble(
            """
            movi r1, 64
            lw r2, 0(r1)
            beq r2, r0, right
            addi r3, r2, 1
            jmp join
            right:
            addi r3, r2, 2
            join:
            halt
            """
        )
        cfg = CFG(program)
        assert len(cfg.blocks) == 4
        assert sorted(e.dst for e in cfg.out_edges[0]) == [1, 2]
        assert cfg.loops == ()
        # Both arms flow into the join block.
        assert sorted(e.src for e in cfg.in_edges[3]) == [1, 2]

    def test_loop_detection(self):
        program = assemble(
            """
            movi r1, 8
            loop:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
            """
        )
        cfg = CFG(program)
        assert len(cfg.loops) == 1
        loop = cfg.loops[0]
        assert loop.header == 1
        assert loop.blocks == frozenset({1})
        exits = loop.exits(cfg)
        assert [e.dst for e in exits] == [2]

    def test_branch_to_fallthrough_keeps_both_edges(self):
        program = assemble(
            """
            movi r1, 1
            beq r1, r0, next
            next:
            halt
            """
        )
        cfg = CFG(program)
        kinds = sorted(e.kind for e in cfg.out_edges[0])
        assert kinds == ["fall", "taken"]


class TestAnalysis:
    def test_counted_loop_interval_is_exact(self):
        program = assemble(
            """
            movi r1, 8
            loop:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
            """
        )
        analysis = analyze_program(program)
        # At loop entry the counter is confined by the movi/threshold
        # widening, not blown out to TOP.
        header_state = analysis.block_in[1]
        lo, hi = header_state.get(1)
        assert 1 <= lo and hi <= 8

    def test_infeasible_edge_pruned(self):
        program = assemble(
            """
            movi r1, 3
            beq r1, r0, dead
            halt
            dead:
            movi r2, 1
            halt
            """
        )
        analysis = analyze_program(program)
        unreachable = analysis.semantically_unreachable()
        assert unreachable, "the r1==0 arm should be infeasible"
        assert all(
            (0, b) not in analysis.feasible_edges for b in unreachable
        )

    def test_trace_renders(self):
        program = assemble("movi r1, 1\nhalt\n")
        analysis = analyze_program(program)
        assert render_trace(analysis.trace_to(0)) == "#0"

    def test_dot_output_shape(self):
        program = assemble(
            """
            movi r1, 8
            loop:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
            """
        )
        dot = cfg_dot(analyze_program(program))
        assert dot.startswith("digraph")
        assert "peripheries=2" in dot      # the loop header
        assert 'label="T"' in dot and 'label="F"' in dot
        assert "entry state" in dot
