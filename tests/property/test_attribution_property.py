"""Property: every core cycle lands in exactly one attribution bucket.

The acceptance check for the telemetry layer: for any program, on any
slice schedule, ``compute + memory_stall + icache_stall + branch_bubble
+ comm_blocked == cycles`` holds *exactly* — across real suite kernels
and a full 16-tile stitched application.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import ATTRIBUTION_BUCKETS, Core, STOP_HALT, STOP_LIMIT
from repro.mem import MemorySystem
from repro.sim.baselines import ARCH_STITCH, AppEvaluator
from repro.verify import check_core, check_run
from repro.workloads import make_kernel
from repro.workloads.apps import app4_transport

# Three structurally different kernels: dense compute (2dconv),
# data-dependent control flow (dtw) and table-driven loads (aes).
KERNEL_NAMES = ("2dconv", "dtw", "aes")


def assert_exact(core):
    attribution = core.attribution()
    assert sum(attribution[b] for b in ATTRIBUTION_BUCKETS) == core.cycles, (
        f"attribution drifted: {attribution} != {core.cycles}"
    )
    assert check_core(core).ok(strict=True)


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_kernel_attribution_exact(name):
    kernel = make_kernel(name, seed=3)
    core = Core(kernel.program, MemorySystem.stitch())
    kernel.setup(core)
    assert core.run(max_instructions=3_000_000).reason == STOP_HALT
    assert_exact(core)
    assert core.instret == core.attribution()["compute"]


@settings(max_examples=12, deadline=None)
@given(
    name=st.sampled_from(KERNEL_NAMES),
    seed=st.integers(min_value=1, max_value=50),
    slice_size=st.integers(min_value=997, max_value=100_000),
)
def test_attribution_invariant_under_any_slicing(name, seed, slice_size):
    """The invariant is slice-schedule independent: stopping and
    resuming the core at arbitrary points never loses a cycle."""
    kernel = make_kernel(name, seed=seed)
    core = Core(kernel.program, MemorySystem.stitch())
    kernel.setup(core)
    for _ in range(3_000_000 // slice_size + 2):
        outcome = core.run(max_instructions=slice_size)
        assert_exact(core)
        if outcome.reason != STOP_LIMIT:
            break
    assert outcome.reason == STOP_HALT
    assert kernel.result(core) == kernel.reference()


@pytest.fixture(scope="module")
def app_results():
    evaluator = AppEvaluator(app4_transport())
    system, _ = evaluator.build_system(ARCH_STITCH, items=2, telemetry=True)
    return system.run()


class TestStitchedApp:
    def test_every_tile_sums_exactly(self, app_results):
        for result in app_results:
            a = result.attribution
            assert a is not None
            assert sum(a[b] for b in ATTRIBUTION_BUCKETS) == result.cycles

    def test_rollup_agrees_with_tiles(self, app_results):
        stats = app_results.stats
        assert stats.attribution_ok()
        assert stats.total_cycles() == sum(r.cycles for r in app_results)

    def test_verifier_passes_strict(self, app_results):
        assert check_run(app_results).ok(strict=True)

    def test_patches_and_comm_visible(self, app_results):
        totals = app_results.stats.attribution_totals()
        assert totals["comm_blocked"] > 0  # tiles really exchange data
        assert app_results.stats.patch["executions"] > 0
