"""Property-based tests: Algorithm 1's plan invariants.

Whatever the cycle tables, a plan must be physically realizable: one
kernel per tile, each patch used at most once, fused paths routed over
adjacent tiles within the hop budget, and never slower than baseline.
"""

from hypothesis import given, settings, strategies as st

from repro.core import DEFAULT_PLACEMENT
from repro.core.fusion import MAX_FUSION_HOPS
from repro.core.stitching import BASELINE, stitch_best

_OPTIONS = [
    "AT-MA", "AT-AS", "AT-SA",
    "AT-MA+AT-AS", "AT-AS+AT-AS", "AT-MA+AT-MA", "AT-SA+AT-MA",
]


@st.composite
def cycle_tables(draw):
    count = draw(st.integers(min_value=1, max_value=16))
    tables = {}
    for sid in range(count):
        baseline = draw(st.integers(min_value=100, max_value=100_000))
        table = {BASELINE: baseline}
        for name in draw(st.lists(st.sampled_from(_OPTIONS), max_size=5,
                                  unique=True)):
            factor = draw(st.floats(min_value=0.3, max_value=1.2))
            table[name] = max(1, int(baseline * factor))
        tables[sid] = table
    return tables


class TestPlanInvariants:
    @settings(max_examples=60, deadline=None)
    @given(cycle_tables())
    def test_plan_is_physically_realizable(self, tables):
        plan = stitch_best("prop", tables)
        placement = DEFAULT_PLACEMENT

        # One stage per tile.
        tiles = [a.tile for a in plan.assignments.values()]
        assert len(tiles) == len(set(tiles))

        used_patches = set()
        for assignment in plan.assignments.values():
            table = tables[assignment.stage_id]
            # Cycles must match the chosen option's table entry.
            assert assignment.cycles == table.get(
                assignment.option, table[BASELINE]
            )
            # Never slower than baseline.
            assert assignment.cycles <= table[BASELINE]
            if assignment.option == BASELINE:
                continue
            local = assignment.option.split("+", 1)[0]
            assert placement.type_of(assignment.tile).name == local
            assert assignment.tile not in used_patches
            used_patches.add(assignment.tile)
            if assignment.remote_tile is not None:
                remote = assignment.option.split("+", 1)[1]
                assert placement.type_of(assignment.remote_tile).name == remote
                assert assignment.remote_tile not in used_patches
                used_patches.add(assignment.remote_tile)
                path = assignment.path
                assert path[0] == assignment.tile
                assert path[-1] == assignment.remote_tile
                assert len(path) - 1 <= MAX_FUSION_HOPS
                for a, b in zip(path, path[1:]):
                    assert b in placement.mesh.neighbors(a)

    @settings(max_examples=40, deadline=None)
    @given(cycle_tables())
    def test_bottleneck_never_above_baseline_bottleneck(self, tables):
        plan = stitch_best("prop", tables)
        baseline_bottleneck = max(t[BASELINE] for t in tables.values())
        assert plan.bottleneck_cycles() <= baseline_bottleneck

    @settings(max_examples=40, deadline=None)
    @given(cycle_tables())
    def test_fusion_never_loses_to_singles(self, tables):
        singles = {n for n in _OPTIONS if "+" not in n}
        full = stitch_best("prop", tables)
        restricted = stitch_best("prop", tables, allowed=singles)
        assert full.bottleneck_cycles() <= restricted.bottleneck_cycles()
