"""Properties of the abstract interpreter over random programs.

Two generators built on :class:`repro.isa.builder.Asm`:

* straight-line programs — random ALU/immediate ops over a window of
  registers, every register seeded with ``movi`` first, and
* single-loop programs — a seeded counted loop around a random body.

Properties:

* **soundness** — concrete execution (single-stepped on a real
  :class:`repro.cpu.Core`) never writes a value outside the static
  interval computed for that instruction, and
* **no false V800** — a fully-initialized program never triggers the
  init-before-use rule (nor V801/V802: no memory ops or cix are
  generated).
"""

from hypothesis import given, settings, strategies as st

from repro.cpu import Core, STOP_HALT
from repro.isa.builder import Asm
from repro.mem import MemorySystem
from repro.verify.absint import analyze_program, contains
from repro.verify.dataflow_checks import check_dataflow

# r1..r6: generated programs stay inside this window, so every register
# they read is one they seeded first.
REGS = (1, 2, 3, 4, 5, 6)

ALU_OPS = ("add", "sub", "and_", "or_", "xor", "slt", "sltu",
           "seq", "mul")
IMM_OPS = ("addi", "andi", "ori", "xori", "slti")
SHIFT_OPS = ("slli", "srli", "srai")

op3 = st.tuples(
    st.sampled_from(ALU_OPS),
    st.sampled_from(REGS),
    st.sampled_from(REGS),
    st.sampled_from(REGS),
)
op_imm = st.tuples(
    st.sampled_from(IMM_OPS),
    st.sampled_from(REGS),
    st.sampled_from(REGS),
    st.integers(min_value=-2048, max_value=2047),
)
op_shift = st.tuples(
    st.sampled_from(SHIFT_OPS),
    st.sampled_from(REGS),
    st.sampled_from(REGS),
    st.integers(min_value=0, max_value=31),
)
body_op = st.one_of(op3, op_imm, op_shift)

seeds = st.lists(
    st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
    min_size=len(REGS), max_size=len(REGS),
)


def build_straight_line(seed_values, ops):
    asm = Asm("prop-straight")
    for reg, value in zip(REGS, seed_values):
        asm.movi(reg, value)
    for mnemonic, rd, ra, rb_or_imm in ops:
        getattr(asm, mnemonic)(rd, ra, rb_or_imm)
    asm.halt()
    return asm.assemble()


def build_single_loop(seed_values, trip_count, ops):
    # r7 is the counter — outside REGS, so the body cannot clobber it.
    asm = Asm("prop-loop")
    for reg, value in zip(REGS, seed_values):
        asm.movi(reg, value)
    asm.movi(7, trip_count)
    top = asm.label("loop")
    for mnemonic, rd, ra, rb_or_imm in ops:
        getattr(asm, mnemonic)(rd, ra, rb_or_imm)
    asm.addi(7, 7, -1)
    asm.bne(7, 0, top)
    asm.halt()
    return asm.assemble()


def signed32(value):
    return value - (1 << 32) if value >= (1 << 31) else value


def assert_sound_and_clean(program):
    analysis = analyze_program(program)
    assert analysis is not None
    bounds = analysis.post_write_intervals()

    core = Core(program, MemorySystem.stitch())
    while not core.halted:
        pc = core.pc
        assert core.run(max_instructions=1).reason in (STOP_HALT, "limit")
        for reg, ival in bounds.get(pc, {}).items():
            value = signed32(core.regs[reg])
            assert ival is not None and contains(ival, value), (
                f"{program.name}@{pc}: r{reg}={value} escapes {ival}\n"
                f"{chr(10).join(i.text() for i in program)}"
            )

    report = check_dataflow(program)
    hard = [d for d in report.diagnostics
            if d.code in ("V800", "V801", "V802")]
    assert hard == [], report.render()


@settings(max_examples=60, deadline=None)
@given(seed_values=seeds, ops=st.lists(body_op, min_size=0, max_size=20))
def test_straight_line_soundness_and_no_false_v800(seed_values, ops):
    assert_sound_and_clean(build_straight_line(seed_values, ops))


@settings(max_examples=40, deadline=None)
@given(
    seed_values=seeds,
    trip_count=st.integers(min_value=1, max_value=50),
    ops=st.lists(body_op, min_size=0, max_size=10),
)
def test_single_loop_soundness_and_no_false_v800(seed_values, trip_count,
                                                 ops):
    assert_sound_and_clean(
        build_single_loop(seed_values, trip_count, ops)
    )


@settings(max_examples=40, deadline=None)
@given(
    seed_values=seeds,
    trip_count=st.integers(min_value=1, max_value=50),
    ops=st.lists(body_op, min_size=0, max_size=10),
)
def test_counted_loop_has_provable_bound(seed_values, trip_count, ops):
    # The generated loop decrements a seeded counter: V805 must never
    # fire, whatever the body does.
    program = build_single_loop(seed_values, trip_count, ops)
    report = check_dataflow(program)
    assert "V805" not in [d.code for d in report.diagnostics], (
        report.render()
    )
