"""Property-based differential testing: fast loop vs reference.

Hypothesis generates random straight-line bodies and counted loops
over the scalar ISA (ALU, shifts, SPM loads/stores) and asserts the
pre-decoded fast loop finishes in *exactly* the reference
interpreter's state — registers, cycles, instret, every stall bucket,
and the cache/SPM counters.  The fixed-kernel suite in
``tests/cpu/test_engine_differential.py`` covers realistic programs;
this one hunts the weird corners (unwrapped MOVI values feeding
shifts, r0 writes, back-to-back taken branches) the kernels never
emit.
"""

from hypothesis import given, settings, strategies as st

from repro.cpu.core import Core
from repro.isa import assemble
from repro.mem import MemorySystem, SPM_BASE

i32 = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)
imm12 = st.integers(min_value=-2048, max_value=2047)
# r14 is reserved as the SPM base pointer; r15 is the jal link register.
reg = st.integers(min_value=0, max_value=13)
shift = st.integers(min_value=0, max_value=31)
# 16 SPM words are preloaded; offsets stay inside them.
spm_offset = st.integers(min_value=0, max_value=15).map(lambda i: i * 4)

_R3_OPS = ("add", "sub", "and", "or", "xor", "slt", "sltu", "seq", "mul",
           "mulh", "sll", "srl", "sra")
_IMM_OPS = ("addi", "andi", "ori", "xori", "slti")
_SHIFT_OPS = ("slli", "srli", "srai")


@st.composite
def instruction(draw, dest=reg):
    """One random scalar instruction as assembly text.

    ``dest`` bounds the *written* register so loop harnesses can fence
    off their trip-count registers; sources always range over r0-r13.
    """
    form = draw(st.sampled_from(("r3", "imm", "shift", "movi", "mov",
                                 "lw", "sw")))
    if form == "r3":
        op = draw(st.sampled_from(_R3_OPS))
        return f"{op} r{draw(dest)}, r{draw(reg)}, r{draw(reg)}"
    if form == "imm":
        op = draw(st.sampled_from(_IMM_OPS))
        return f"{op} r{draw(dest)}, r{draw(reg)}, {draw(imm12)}"
    if form == "shift":
        op = draw(st.sampled_from(_SHIFT_OPS))
        return f"{op} r{draw(dest)}, r{draw(reg)}, {draw(shift)}"
    if form == "movi":
        return f"movi r{draw(dest)}, {draw(i32)}"
    if form == "mov":
        return f"mov r{draw(dest)}, r{draw(reg)}"
    if form == "lw":
        return f"lw r{draw(dest)}, {draw(spm_offset)}(r14)"
    return f"sw r{draw(reg)}, {draw(spm_offset)}(r14)"


#: Loop bodies may only write r0-r11, keeping r12/r13 (trip counters)
#: loop-carried.
loop_safe = instruction(dest=st.integers(min_value=0, max_value=11))


def run_both(source, init_regs, spm_words):
    states = []
    for engine in ("reference", "fast"):
        memory = MemorySystem.stitch()
        memory.load(SPM_BASE, spm_words)
        core = Core(assemble(source), memory, engine=engine)
        for index, value in enumerate(init_regs, start=1):
            core.regs[index] = value
        core.regs[14] = SPM_BASE
        outcome = core.run(max_instructions=200_000)
        states.append({
            "reason": outcome.reason,
            "regs": list(core.regs),
            "pc": core.pc,
            "cycles": core.cycles,
            "instret": core.instret,
            "stalls": (core.stall_memory, core.stall_icache,
                       core.stall_branch, core.stall_comm),
            "icache": (memory.icache.hits, memory.icache.misses),
            "dcache": (memory.dcache.hits, memory.dcache.misses),
            "spm": (memory.spm.reads, memory.spm.writes,
                    list(memory.spm._words)),
        })
    return states


class TestFastVsReference:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(instruction(), min_size=1, max_size=40),
        st.lists(i32, min_size=13, max_size=13),
        st.lists(i32, min_size=16, max_size=16),
    )
    def test_straight_line(self, body, init_regs, spm_words):
        source = "\n".join(body + ["halt"])
        reference, fast = run_both(source, init_regs, spm_words)
        assert fast == reference

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(loop_safe, min_size=1, max_size=12),
        st.integers(min_value=1, max_value=50),
        st.lists(i32, min_size=13, max_size=13),
        st.lists(i32, min_size=16, max_size=16),
    )
    def test_counted_loop(self, body, trips, init_regs, spm_words):
        # r12/r13 carry the trip count (loop bodies never write them),
        # so the loop always terminates.
        source = "\n".join(
            ["movi r12, 0", f"movi r13, {trips}", "loop:"]
            + body
            + ["addi r12, r12, 1", "bne r12, r13, loop", "halt"]
        )
        reference, fast = run_both(source, init_regs, spm_words)
        assert fast == reference

    @settings(max_examples=20, deadline=None)
    @given(st.lists(instruction(), min_size=1, max_size=10))
    def test_limit_stop_state_identical(self, body):
        # Stop mid-program via max_instructions: the fast loop's
        # deferred write-back must still leave identical partial state.
        source = "\n".join(body * 3 + ["halt"])
        states = []
        for engine in ("reference", "fast"):
            core = Core(assemble(source), MemorySystem.stitch(),
                        engine=engine)
            core.regs[14] = SPM_BASE
            core.run(max_instructions=max(1, len(body)))
            states.append((list(core.regs), core.pc, core.cycles,
                           core.instret, core.halted))
        assert states[0] == states[1]
