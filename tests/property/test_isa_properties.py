"""Property-based tests: ISA semantics and the assembler."""

from hypothesis import given, settings, strategies as st

from repro.isa import Op, eval_alu, eval_mul, eval_shift, wrap32
from repro.isa.assembler import assemble

i32 = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)
anyint = st.integers(min_value=-(1 << 40), max_value=1 << 40)


class TestWrap32Properties:
    @given(anyint)
    def test_idempotent(self, x):
        assert wrap32(wrap32(x)) == wrap32(x)

    @given(anyint)
    def test_range(self, x):
        assert -(1 << 31) <= wrap32(x) < (1 << 31)

    @given(anyint, anyint)
    def test_congruent_mod_2_32(self, x, y):
        if (x - y) % (1 << 32) == 0:
            assert wrap32(x) == wrap32(y)


class TestAluAlgebra:
    @given(i32, i32)
    def test_add_commutes(self, a, b):
        assert eval_alu(Op.ADD, a, b) == eval_alu(Op.ADD, b, a)

    @given(i32, i32)
    def test_sub_is_add_of_negation(self, a, b):
        neg_b = eval_alu(Op.SUB, 0, b)
        assert eval_alu(Op.SUB, a, b) == eval_alu(Op.ADD, a, neg_b)

    @given(i32, i32)
    def test_xor_involution(self, a, b):
        assert eval_alu(Op.XOR, eval_alu(Op.XOR, a, b), b) == a

    @given(i32)
    def test_and_or_identity(self, a):
        assert eval_alu(Op.AND, a, -1) == a
        assert eval_alu(Op.OR, a, 0) == a

    @given(i32, i32)
    def test_slt_antisymmetric(self, a, b):
        if a != b:
            assert eval_alu(Op.SLT, a, b) != eval_alu(Op.SLT, b, a)

    @given(i32, i32)
    def test_seq_iff_equal(self, a, b):
        assert eval_alu(Op.SEQ, a, b) == (1 if a == b else 0)


class TestShiftMulAlgebra:
    @given(i32, st.integers(min_value=0, max_value=31))
    def test_shift_left_then_arith_right_preserves_sign(self, a, s):
        shifted = eval_shift(Op.SRA, a, s)
        assert (shifted < 0) == (a < 0) or shifted == 0 or a >= 0

    @given(i32, st.integers(min_value=0, max_value=31))
    def test_srl_nonnegative(self, a, s):
        if s > 0:
            assert eval_shift(Op.SRL, a, s) >= 0

    @given(i32, st.integers(min_value=0, max_value=30))
    def test_sll_is_mul_by_power_of_two(self, a, s):
        assert eval_shift(Op.SLL, a, s) == eval_mul(Op.MUL, a, wrap32(1 << s))

    @given(i32, i32)
    def test_mul_commutes(self, a, b):
        assert eval_mul(Op.MUL, a, b) == eval_mul(Op.MUL, b, a)

    @given(i32, i32)
    def test_mulh_mul_compose_full_product(self, a, b):
        low = eval_mul(Op.MUL, a, b) & 0xFFFFFFFF
        high = eval_mul(Op.MULH, a, b)
        assert (high << 32) + low == a * b


@st.composite
def straightline_program(draw):
    """Random straight-line ALU programs over r1..r9 ending in halt."""
    lines = []
    count = draw(st.integers(min_value=1, max_value=12))
    ops = ("add", "sub", "and", "or", "xor", "slt", "mul")
    for _ in range(count):
        op = draw(st.sampled_from(ops))
        rd = draw(st.integers(min_value=1, max_value=9))
        ra = draw(st.integers(min_value=0, max_value=9))
        rb = draw(st.integers(min_value=0, max_value=9))
        lines.append(f"{op} r{rd}, r{ra}, r{rb}")
    lines.append("halt")
    return "\n".join(lines)


class TestAssemblerProperties:
    @settings(max_examples=50)
    @given(straightline_program())
    def test_text_roundtrip(self, source):
        program = assemble(source)
        again = assemble(program.text())
        assert [i.text() for i in again] == [i.text() for i in program]

    @settings(max_examples=50)
    @given(straightline_program())
    def test_blocks_partition_program(self, source):
        program = assemble(source)
        covered = []
        for block in program.basic_blocks():
            covered.extend(range(block.start, block.end))
        assert covered == list(range(len(program)))
