"""Property: the PC profiler is an exact twin of cycle attribution.

The acceptance check for the profiler layer: for any kernel, on any
slice schedule, the retired-cycle histogram sums to ``core.cycles``
*exactly* — and on a full 16-tile stitched application every tile's
profile reconciles with the SystemStats roll-up while the interval
samples re-sum to the end-of-run totals.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import ATTRIBUTION_BUCKETS, Core, STOP_HALT, STOP_LIMIT
from repro.mem import MemorySystem
from repro.profile import CycleProfile, profile_kernel_cycles
from repro.sim.baselines import ARCH_STITCH, AppEvaluator
from repro.telemetry import Telemetry, TimeSeries
from repro.verify import check_profile, check_profile_run, check_timeseries
from repro.workloads import make_kernel
from repro.workloads.apps import app4_transport

# Same structural spread as the attribution property tests.
KERNEL_NAMES = ("2dconv", "dtw", "aes")


def assert_reconciled(core):
    profile = CycleProfile.from_core(core)
    assert profile.profiled_cycles() == core.cycles, (
        f"profiler drifted: {profile.profiled_cycles()} != {core.cycles}"
    )
    assert profile.retired_instructions() == core.instret
    assert check_profile(profile).ok(strict=True)
    return profile


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_kernel_profile_reconciles_exactly(name):
    profile, core = profile_kernel_cycles(name, seed=3)
    assert profile.reconciles()
    assert profile.profiled_cycles() == core.cycles
    # The profiler and the attribution counters describe the same run.
    attribution = core.attribution()
    assert sum(attribution[b] for b in ATTRIBUTION_BUCKETS) == (
        profile.profiled_cycles()
    )
    # Block folding loses nothing either.
    assert sum(b.cycles for b in profile.blocks) == core.cycles
    assert sum(b.retired for b in profile.blocks) == core.instret


@settings(max_examples=10, deadline=None)
@given(
    name=st.sampled_from(KERNEL_NAMES),
    seed=st.integers(min_value=1, max_value=50),
    slice_size=st.integers(min_value=997, max_value=100_000),
)
def test_profile_invariant_under_any_slicing(name, seed, slice_size):
    """Stopping and resuming the core at arbitrary points never loses
    a profiled cycle: the histogram stays exact at every pause."""
    kernel = make_kernel(name, seed=seed)
    core = Core(kernel.program, MemorySystem.stitch(), profile_cycles=True)
    kernel.setup(core)
    for _ in range(3_000_000 // slice_size + 2):
        outcome = core.run(max_instructions=slice_size)
        assert_reconciled(core)
        if outcome.reason != STOP_LIMIT:
            break
    assert outcome.reason == STOP_HALT


@pytest.fixture(scope="module")
def app_run():
    evaluator = AppEvaluator(app4_transport())
    telemetry = Telemetry(timeseries=TimeSeries(interval=512))
    system, _ = evaluator.build_system(
        ARCH_STITCH, items=2, telemetry=telemetry, profile_cycles=True
    )
    results = system.run()
    profiles = {
        core.core_id: CycleProfile.from_core(core)
        for core in system.cores
        if core is not None
    }
    return profiles, results, telemetry.timeseries


class TestStitchedApp:
    def test_every_tile_reconciles(self, app_run):
        profiles, results, _ts = app_run
        assert len(profiles) == 16
        for result in results:
            profile = profiles[result.tile]
            assert profile.reconciles()
            assert profile.profiled_cycles() == result.cycles

    def test_profiles_match_stats_rollup(self, app_run):
        profiles, results, _ts = app_run
        tiles = results.stats.tiles
        for tile, profile in profiles.items():
            assert profile.profiled_cycles() == tiles[tile]["total"]
        assert check_profile_run(profiles, results).ok(strict=True)

    def test_interval_samples_resum_to_totals(self, app_run):
        """Acceptance: per-interval cycle sums equal end-of-run totals."""
        profiles, results, ts = app_run
        assert check_timeseries(ts).ok(strict=True)
        for result in results:
            totals = ts.tile_totals(result.tile)
            assert totals["cycles"] == result.cycles
            assert totals["instructions"] == result.instructions
            indices = [index for index, _ in ts.tile_series(result.tile)]
            assert indices == sorted(set(indices))  # strictly increasing
