"""Property-based tests: compiler invariants on random programs.

The heavyweight invariant — rewritten programs compute the same values
— runs on randomly generated SPM-loop kernels across all patch options.
"""

from hypothesis import given, settings, strategies as st

from repro.compiler import DFG, enumerate_candidates, map_candidate
from repro.compiler.driver import ALL_OPTIONS, KernelCompiler
from repro.core import AT_AS, AT_MA, AT_SA
from repro.isa import Asm, assemble
from repro.mem import SPM_BASE


@st.composite
def loop_kernels(draw):
    """Random SPM map-loops: y[i] = f(x[i]) with a random op chain."""
    chain = draw(st.lists(
        st.sampled_from(["add", "sub", "xor", "mul", "srai", "slli", "and"]),
        min_size=1, max_size=5,
    ))
    consts = draw(st.lists(
        st.integers(min_value=1, max_value=127),
        min_size=len(chain), max_size=len(chain),
    ))
    n = 16
    asm = Asm("hyp")
    asm.movi("r1", SPM_BASE)
    asm.movi("r2", SPM_BASE + 4 * n)
    for index in range(len(chain)):
        asm.movi(f"r{6 + index % 3}", consts[index])
    loop = asm.label("loop")
    asm.lw("r3", 0, "r1")
    for index, op in enumerate(chain):
        reg = f"r{6 + index % 3}"
        if op in ("srai", "slli"):
            getattr(asm, op)("r3", "r3", consts[index] % 8 + 1)
        else:
            getattr(asm, op if op != "and" else "and_")("r3", "r3", reg)
    asm.sw("r3", 256, "r1")
    asm.addi("r1", "r1", 4)
    asm.bne("r1", "r2", loop)
    asm.halt()
    data = draw(st.lists(
        st.integers(min_value=-(1 << 20), max_value=1 << 20),
        min_size=n, max_size=n,
    ))
    program = asm.assemble()

    class Kernel:
        name = "hyp"
        live_out_regs = frozenset()

        def __init__(self):
            self.program = program

        def setup(self, core):
            core.memory.load(SPM_BASE, data)

        def result(self, core):
            return core.memory.dump(SPM_BASE + 256, n)

    return Kernel()


class TestCompilerInvariants:
    @settings(max_examples=15, deadline=None)
    @given(loop_kernels())
    def test_every_option_preserves_semantics(self, kernel):
        """compile() raises MiscompileError on any mismatch, so merely
        compiling all 12 options is the assertion."""
        compiler = KernelCompiler(kernel)
        table = compiler.compile_options(ALL_OPTIONS)
        assert all(c.speedup >= 0.8 for c in table.values())

    @settings(max_examples=15, deadline=None)
    @given(loop_kernels())
    def test_speedups_never_below_baseline_structurally(self, kernel):
        compiler = KernelCompiler(kernel)
        compiled = compiler.best_option(ALL_OPTIONS)
        # A cix never replaces fewer than two instructions, so accepted
        # rewrites cannot be slower.
        assert compiled.cycles <= compiler.baseline_cycles


@st.composite
def random_blocks(draw):
    ops3 = ("add", "sub", "xor", "and", "or", "mul", "sll", "srl")
    count = draw(st.integers(min_value=2, max_value=10))
    lines = []
    for _ in range(count):
        op = draw(st.sampled_from(ops3))
        rd = draw(st.integers(min_value=1, max_value=8))
        ra = draw(st.integers(min_value=1, max_value=8))
        rb = draw(st.integers(min_value=1, max_value=8))
        lines.append(f"{op} r{rd}, r{ra}, r{rb}")
    lines.append("halt")
    return assemble("\n".join(lines))


class TestCandidateInvariants:
    @settings(max_examples=40, deadline=None)
    @given(random_blocks())
    def test_candidates_respect_constraints(self, program):
        dfg = DFG(program.basic_blocks()[0])
        for candidate in enumerate_candidates(dfg):
            assert 2 <= candidate.size <= 8
            assert len(candidate.inputs) <= 4
            assert len(candidate.outputs) <= 2
            assert dfg.is_convex(candidate.node_ids)

    @settings(max_examples=25, deadline=None)
    @given(random_blocks())
    def test_mappings_use_only_member_ops(self, program):
        dfg = DFG(program.basic_blocks()[0])
        for candidate in enumerate_candidates(dfg)[:10]:
            for target in (AT_MA, AT_AS, AT_SA, (AT_MA, AT_AS)):
                mapping = map_candidate(candidate, target)
                if mapping is None:
                    continue
                # outputs bind member registers (or r0 placeholders)
                member_regs = {
                    dfg.nodes[n].out_reg for n in candidate.node_ids
                }
                for reg in mapping.out_binding:
                    assert reg == 0 or reg in member_regs
