"""Property-based tests: patch configs, executor and interpatch NoC."""

from hypothesis import given, settings, strategies as st

from repro.core import AT_AS, AT_MA, AT_SA, PatchConfig, UnitConfig
from repro.core.executor import evaluate_patch
from repro.core.units import Source
from repro.interpatch import InterPatchNetwork, ReservationError, find_path
from repro.isa import Op, eval_alu, wrap32
from repro.noc import Mesh

i32 = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)
ptypes = st.sampled_from([AT_MA, AT_AS, AT_SA])
first_ops = st.sampled_from([Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SLT, Op.SEQ])
ext_sources = st.sampled_from(Source.EXTS)


@st.composite
def u0_configs(draw):
    ptype = draw(ptypes)
    cfg = PatchConfig(
        ptype,
        u0=UnitConfig(draw(first_ops), draw(ext_sources), draw(ext_sources)),
    )
    return cfg


class TestConfigProperties:
    @settings(max_examples=100)
    @given(u0_configs())
    def test_encode_decode_roundtrip(self, cfg):
        assert PatchConfig.decode(cfg.ptype, cfg.encode()) == cfg

    @settings(max_examples=100)
    @given(u0_configs(), st.lists(i32, min_size=4, max_size=4))
    def test_u0_matches_alu_semantics(self, cfg, ext):
        out0, out1 = evaluate_patch(cfg, ext, None)
        lhs = ext[Source.ext_index(cfg.u0.in1)]
        rhs = ext[Source.ext_index(cfg.u0.in2)]
        assert out0 == eval_alu(cfg.u0.op, lhs, rhs)
        assert out1 is None

    @settings(max_examples=100)
    @given(u0_configs(), st.lists(i32, min_size=4, max_size=4))
    def test_outputs_always_32_bit(self, cfg, ext):
        out0, _ = evaluate_patch(cfg, ext, None)
        assert wrap32(out0) == out0

    @settings(max_examples=60)
    @given(ptypes, st.lists(i32, min_size=4, max_size=4))
    def test_aa_pattern_equals_two_alu_ops(self, ptype, ext):
        # {AA}: u0 add then final-ALU sub via the chain.
        final = 3 if ptype.kinds()[3].value == "A" else 2
        kwargs = {"u0": UnitConfig(Op.ADD, Source.EXT0, Source.EXT1)}
        if ptype.unit(final).kind.value != "A":
            return  # AT-AS ends in a shifter; use position 2 instead
        kwargs[f"u{final}"] = UnitConfig(Op.SUB, Source.CHAIN, Source.EXT2)
        cfg = PatchConfig(ptype, **kwargs)
        out0, out1 = evaluate_patch(cfg, ext, None)
        expected = eval_alu(Op.SUB, eval_alu(Op.ADD, ext[0], ext[1]), ext[2])
        assert out0 == expected
        assert out1 == eval_alu(Op.ADD, ext[0], ext[1])


class TestPathfinderProperties:
    @settings(max_examples=60)
    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
    )
    def test_path_validity(self, src, dst):
        mesh = Mesh()
        if src == dst:
            return
        path = find_path(mesh, src, dst, max_hops=6)
        assert path is not None
        assert path[0] == src and path[-1] == dst
        for a, b in zip(path, path[1:]):
            assert b in mesh.neighbors(a)
        assert len(path) - 1 == mesh.hop_count(src, dst)  # shortest

    @settings(max_examples=30)
    @given(st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)),
        min_size=1, max_size=8,
    ))
    def test_reservations_never_conflict(self, requests):
        """Whatever the stitch sequence, reserved link sets stay disjoint."""
        net = InterPatchNetwork()
        total_links = set()
        for src, dst in requests:
            if src == dst:
                continue
            path = find_path(net.mesh, src, dst,
                             reserved_links=net.reserved_links)
            if path is None:
                continue
            try:
                net.stitch(path)
            except ReservationError:
                continue  # switch-port conflict: rejected atomically
            links = set(zip(path, path[1:]))
            links |= {(b, a) for a, b in links}
            assert not (links - net.reserved_links)
            assert not (links & total_links)
            total_links |= links
