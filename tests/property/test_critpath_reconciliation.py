"""ISSUE 8 acceptance property: exact critical-path reconciliation.

For every recorded target the critical path must sum to the measured
end-to-end cycle count *exactly* (V1000), every edge must have
non-negative slack (V1001), and a DRAM-latency what-if projection must
agree with an actual re-run of the simulator at the changed latency.
These are run over single-tile kernels and the full 16-tile APP4
co-simulation, so the property covers both graph shapes: a pure
compute chain and a deep cross-tile mesh.
"""

import pytest

from repro.critpath.runner import record_target, validate_whatif
from repro.verify import check_critpath

KERNELS = ("fir", "fft", "2dconv")
APPS = ("APP4",)


@pytest.fixture(scope="module")
def runs():
    return {target: record_target(target)
            for target in KERNELS + APPS}


class TestExactReconciliation:
    @pytest.mark.parametrize("target", KERNELS + APPS)
    def test_critical_path_equals_makespan(self, runs, target):
        run = runs[target]
        analysis = run.analysis
        assert analysis.total == run.measured, (
            f"{target}: critical path {analysis.total} != measured "
            f"{run.measured}"
        )
        assert analysis.reconciled()
        assert run.graph.makespan == run.measured

    @pytest.mark.parametrize("target", KERNELS + APPS)
    def test_all_slack_is_non_negative(self, runs, target):
        run = runs[target]
        analysis = run.analysis
        assert analysis.consistent()
        assert not analysis.negative_edges
        assert not analysis.backward_edges
        assert not analysis.cycle_nodes
        for index, edge in enumerate(run.graph.edges):
            assert run.graph.slack(edge) >= 0
            total_float = analysis.float_by_edge[index]
            assert total_float >= 0

    @pytest.mark.parametrize("target", KERNELS + APPS)
    def test_verifier_agrees(self, runs, target):
        run = runs[target]
        report = check_critpath(run.graph, run.analysis,
                                measured=run.measured)
        assert report.ok(strict=True)

    def test_app_graph_spans_all_tiles(self, runs):
        run = runs["APP4"]
        assert len(run.graph.tiles()) == 16
        assert any(e.kind == "noc" for e in run.graph.edges)


class TestWhatIfAgainstRerun:
    @pytest.mark.parametrize("target,expression", [
        ("fft", "dram_latency*2"),
        ("APP4", "dram_latency=60"),
    ])
    def test_projection_matches_rerun_within_2pct(self, runs, target,
                                                  expression):
        comparison = validate_whatif(runs[target], [expression])
        assert comparison["within_2pct"], comparison
        # The replay model is exact for DRAM latency — every miss and
        # writeback costs precisely one latency — so the drift is zero,
        # well inside the 2% acceptance bound.
        assert comparison["drift"] == 0.0
        assert comparison["projected_cycles"] == comparison["actual_cycles"]

    def test_identity_projection_is_baseline(self, runs):
        for target in KERNELS:
            run = runs[target]
            projection = run.project(["dram_latency*1"])
            assert projection["projected_cycles"] == run.measured
