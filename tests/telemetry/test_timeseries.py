"""Unit tests for the fixed-interval TimeSeries collector."""

import json

import pytest

from repro.cpu import Core
from repro.mem import MemorySystem
from repro.power.chip import EnergyModel
from repro.telemetry import NULL_TIMESERIES, TimeSeries
from repro.verify import check_timeseries
from repro.workloads import make_kernel


class TestBinning:
    def test_samples_land_in_their_interval(self):
        ts = TimeSeries(interval=100)
        ts.tile_sample(0, 0, {"cycles": 10})
        ts.tile_sample(0, 150, {"cycles": 20})
        ts.tile_sample(0, 199, {"cycles": 5})
        series = dict(ts.tile_series(0))
        assert series[0] == {"cycles": 10}
        assert series[1] == {"cycles": 25}  # both land in [100, 200)

    def test_link_flits_accumulate_per_interval(self):
        ts = TimeSeries(interval=100)
        ts.link_flits((0, 1), 10, 3)
        ts.link_flits((0, 1), 90, 2)
        ts.link_flits((0, 1), 110, 7)
        assert ts.links[(0, 1)] == {0: 5, 1: 7}

    def test_channel_occupancy_keeps_high_water(self):
        ts = TimeSeries(interval=100)
        ts.channel_occupancy(0, 1, 10, 4)
        ts.channel_occupancy(0, 1, 20, 9)
        ts.channel_occupancy(0, 1, 30, 2)
        assert ts.channels[(0, 1)] == {0: 9}

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(interval=0)
        with pytest.raises(ValueError):
            TimeSeries(capacity=0)

    def test_tile_totals_sum_fields(self):
        ts = TimeSeries(interval=10)
        ts.tile_sample(3, 0, {"cycles": 10, "instructions": 8})
        ts.tile_sample(3, 10, {"cycles": 10, "instructions": 6})
        assert ts.tile_totals(3) == {"cycles": 20, "instructions": 14}


class TestRingBuffer:
    def test_eviction_counts_dropped_intervals(self):
        ts = TimeSeries(interval=10, capacity=3)
        for i in range(5):
            ts.tile_sample(0, i * 10, {"cycles": 1})
        assert ts.dropped_intervals == 2
        assert sorted(ts.tiles[0]) == [2, 3, 4]  # oldest evicted first

    def test_span(self):
        ts = TimeSeries(interval=10)
        assert ts.span() is None
        ts.tile_sample(0, 25, {"cycles": 1})
        ts.link_flits((0, 1), 95, 2)
        assert ts.span() == (2, 9)


class TestEnergy:
    def test_energy_derived_idempotently(self):
        ts = TimeSeries(interval=1000)
        ts.tile_sample(0, 0, {"cycles": 1000})
        model = EnergyModel()
        ts.add_energy(model)
        first = ts.tiles[0][0]["energy_nj"]
        ts.add_energy(model)  # re-finalize: assign, not accumulate
        assert ts.tiles[0][0]["energy_nj"] == first
        # 139.5 mW / 16 tiles at 200 MHz: 1000 cycles = 5 us = 43.59375 nJ
        assert first == pytest.approx(43.59375)


class TestExport:
    def capture(self):
        ts = TimeSeries(interval=100)
        ts.tile_sample(0, 0, {"cycles": 80, "instructions": 60})
        ts.tile_sample(0, 120, {"cycles": 90, "instructions": 70})
        ts.link_flits((0, 1), 50, 10)
        ts.channel_occupancy(0, 1, 55, 3)
        return ts

    def test_to_dict_shape(self):
        payload = self.capture().to_dict()
        assert payload["interval"] == 100
        sample = payload["tiles"]["0"][0]
        assert (sample["index"], sample["start"], sample["end"]) == (0, 0, 100)
        link = payload["noc"]["links"]["0->1"][0]
        assert link["flits"] == 10
        assert link["utilization"] == pytest.approx(0.1)
        chan = payload["fabric"]["channels"]["0->1"][0]
        assert chan["occupancy_high_water"] == 3

    def test_payload_is_json_clean_and_v901_clean(self):
        payload = json.loads(json.dumps(self.capture().to_dict()))
        assert check_timeseries(payload).ok(strict=True)

    def test_csv_rows(self):
        text = self.capture().to_csv()
        lines = text.strip().splitlines()
        assert lines[0] == "kind,id,start,end,field,value"
        assert "tile,0,0,100,cycles,80" in lines
        assert "link,0->1,0,100,flits,10" in lines
        assert "channel,0->1,0,100,occupancy_high_water,3" in lines

    def test_write_json_and_csv(self, tmp_path):
        ts = self.capture()
        jpath = tmp_path / "ts.json"
        cpath = tmp_path / "ts.csv"
        ts.write(jpath)
        ts.write(cpath)
        assert json.loads(jpath.read_text())["interval"] == 100
        assert cpath.read_text().startswith("kind,id,")


class TestNullPath:
    def test_null_records_nothing(self):
        NULL_TIMESERIES.tile_sample(0, 0, {"cycles": 5})
        NULL_TIMESERIES.link_flits((0, 1), 0, 3)
        NULL_TIMESERIES.channel_occupancy(0, 1, 0, 2)
        assert len(NULL_TIMESERIES) == 0
        assert not NULL_TIMESERIES.enabled
        assert NULL_TIMESERIES.to_dict()["tiles"] == {}


class TestCoreIntegration:
    def test_kernel_intervals_reconcile_with_totals(self):
        kernel = make_kernel("fir", seed=2)
        ts = TimeSeries(interval=256)
        core = Core(kernel.program, MemorySystem.stitch(), timeseries=ts)
        kernel.setup(core)
        assert core.run(max_instructions=3_000_000).reason == "halt"
        core.flush_timeseries()
        totals = ts.tile_totals(0)
        assert totals["cycles"] == core.cycles
        assert totals["instructions"] == core.instret
        indices = [index for index, _ in ts.tile_series(0)]
        assert indices == sorted(set(indices))
        assert check_timeseries(ts).ok(strict=True)

    def test_disabled_core_pays_one_comparison(self):
        kernel = make_kernel("fir", seed=2)
        core = Core(kernel.program, MemorySystem.stitch())
        assert core._ts_next == float("inf")
        kernel.setup(core)
        core.run(max_instructions=3_000_000)
        core.flush_timeseries()  # no-op on the null collector
        assert len(NULL_TIMESERIES) == 0
