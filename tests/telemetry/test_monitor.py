"""Unit tests for the ASCII monitor renderers."""

from repro.telemetry import TimeSeries
from repro.telemetry.monitor import (
    render_link_heatmap,
    render_monitor,
    render_stall_timeline,
)


def capture():
    ts = TimeSeries(interval=100)
    ts.tile_sample(0, 0, {"cycles": 100, "instructions": 90,
                          "memory_stall": 10})
    ts.tile_sample(0, 100, {"cycles": 100, "comm_blocked": 95,
                            "instructions": 5})
    ts.tile_sample(1, 0, {"cycles": 100, "icache_stall": 60,
                          "instructions": 40})
    ts.link_flits((0, 1), 50, 50)   # 50% utilization in interval 0
    ts.link_flits((0, 1), 150, 100)  # 100% in interval 1
    return ts.to_dict()


class TestStallTimeline:
    def test_dominant_bucket_glyphs(self):
        text = render_stall_timeline(capture())
        lines = {line.split("|")[0].strip(): line.split("|")[1]
                 for line in text.splitlines() if "|" in line}
        assert lines["tile 0"] == "#c"  # compute then comm-blocked
        assert lines["tile 1"] == "i."  # icache stall, then idle

    def test_legend_and_timescale(self):
        text = render_stall_timeline(capture())
        assert "#=compute" in text
        assert "c=comm_blocked" in text
        assert "cycles 0..200" in text

    def test_empty_payload(self):
        assert "no tile samples" in render_stall_timeline(
            {"interval": 100, "tiles": {}}
        )

    def test_rebinning_respects_width(self):
        ts = TimeSeries(interval=10)
        for i in range(100):
            ts.tile_sample(0, i * 10, {"cycles": 10, "instructions": 10})
        text = render_stall_timeline(ts.to_dict(), width=20)
        row = next(line for line in text.splitlines() if "tile 0" in line)
        assert len(row.split("|")[1]) <= 20


class TestLinkHeatmap:
    def test_brightness_tracks_utilization(self):
        text = render_link_heatmap(capture())
        row = next(line for line in text.splitlines() if "0->1" in line)
        cells = row.split("|")[1]
        # 50% -> mid-ramp, 100% -> brightest.
        assert cells[0] == "+"
        assert cells[1] == "@"

    def test_any_traffic_is_visible(self):
        ts = TimeSeries(interval=1000)
        ts.link_flits((2, 3), 10, 1)  # 0.1% utilization
        text = render_link_heatmap(ts.to_dict())
        row = next(line for line in text.splitlines() if "2->3" in line)
        assert "." in row.split("|")[1]

    def test_links_sorted_numerically(self):
        ts = TimeSeries(interval=100)
        for link in ((10, 9), (2, 1), (2, 6)):
            ts.link_flits(link, 0, 1)
        text = render_link_heatmap(ts.to_dict())
        assert text.index("2->1") < text.index("2->6") < text.index("10->9")

    def test_no_links(self):
        assert "no NoC link traffic" in render_link_heatmap(
            {"interval": 100, "noc": {"links": {}}}
        )


class TestMonitor:
    def test_combines_both_views(self):
        text = render_monitor(capture())
        assert "stall timeline" in text
        assert "link utilization" in text

    def test_reports_dropped_intervals(self):
        payload = capture()
        payload["dropped_intervals"] = 7
        assert "7 interval(s) evicted" in render_monitor(payload)
