"""Unit tests for the structured tracer and its Chrome trace export."""

import gzip
import json

from repro.telemetry import NULL_TRACER, Tracer


class TestEvents:
    def test_tile_span_records_typed_event(self):
        tracer = Tracer()
        tracer.tile_span(3, "fir", 10, 50, "halt", 25)
        (event,) = tracer.events
        assert event.kind == "span"
        assert event.track == ("tiles", 3)
        assert event.time == 10
        assert event.duration == 40
        assert event.args["reason"] == "halt"
        assert event.args["instructions"] == 25

    def test_comm_and_patch_events(self):
        tracer = Tracer()
        tracer.comm_send(0, 1, 4, 100, 105)
        tracer.comm_blocked(1, 0, 4, 90)
        tracer.comm_recv(1, 0, 4, 90, 110)
        tracer.cix(2, 7, 55)
        tracer.cache_miss(2, "dcache", 0x100, 60)
        assert [e.kind for e in tracer.events] == [
            "span", "instant", "span", "instant", "instant",
        ]
        assert tracer.events[3].args["cfg"] == 7

    def test_link_events_get_noc_track(self):
        tracer = Tracer()
        tracer.link_reserved(((0, 0), (0, 1)), 0, 5, 12, 5, 3)
        (event,) = tracer.events
        assert event.track == ("noc", "(0, 0)->(0, 1)")
        assert event.duration == 5
        assert event.args["waited"] == 3

    def test_tracks_in_first_appearance_order(self):
        tracer = Tracer()
        tracer.tile_span(5, "a", 0, 1, "halt", 1)
        tracer.tile_span(2, "b", 0, 1, "halt", 1)
        tracer.tile_span(5, "c", 1, 2, "halt", 1)
        assert tracer.tracks() == [("tiles", 5), ("tiles", 2)]


class TestChromeExport:
    def chrome(self, tracer):
        # Round-trip through JSON like a real viewer would.
        return json.loads(json.dumps(tracer.to_chrome()))

    def test_structure_is_viewer_loadable(self):
        tracer = Tracer()
        tracer.tile_span(0, "fir", 0, 100, "halt", 60)
        tracer.link_reserved(((0, 0), (1, 0)), 0, 4, 10, 5, 0)
        doc = self.chrome(tracer)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X"}
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)

    def test_metadata_names_processes_and_threads(self):
        tracer = Tracer()
        tracer.tile_span(3, "fir", 0, 10, "halt", 5)
        doc = self.chrome(tracer)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert {"tiles", "noc", "tile 3"} <= names

    def test_tiles_and_links_live_in_separate_pids(self):
        tracer = Tracer()
        tracer.tile_span(0, "a", 0, 1, "halt", 1)
        tracer.link_reserved(((0, 0), (0, 1)), 0, 1, 0, 2, 0)
        doc = self.chrome(tracer)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len({e["pid"] for e in spans}) == 2

    def test_span_has_ts_and_dur(self):
        tracer = Tracer()
        tracer.tile_span(0, "slice", 7, 19, "recv", 4)
        (span,) = [e for e in self.chrome(tracer)["traceEvents"]
                   if e["ph"] == "X"]
        assert span["ts"] == 7
        assert span["dur"] == 12

    def test_write_chrome(self, tmp_path):
        tracer = Tracer()
        tracer.tile_span(0, "a", 0, 5, "halt", 3)
        path = tmp_path / "trace.json"
        tracer.write_chrome(path)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_gz_suffix_gzips_and_round_trips(self, tmp_path):
        tracer = Tracer()
        tracer.tile_span(0, "a", 0, 5, "halt", 3)
        tracer.comm_send(0, 1, 4, 5, 9)
        path = tmp_path / "trace.json.gz"
        tracer.write_chrome(path)
        raw = path.read_bytes()
        assert raw[:2] == b"\x1f\x8b"  # gzip magic: actually compressed
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            doc = json.load(handle)
        assert doc == tracer.to_chrome()

    def test_gz_null_tracer(self, tmp_path):
        path = tmp_path / "empty.json.gz"
        NULL_TRACER.write_chrome(path)
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            assert json.load(handle)["traceEvents"] == []


class TestFlowEvents:
    def chrome(self, tracer):
        return json.loads(json.dumps(tracer.to_chrome()))

    def flows(self, doc):
        return [e for e in doc["traceEvents"] if e.get("name") == "msg"]

    def test_send_recv_pair_emits_linked_flow(self):
        tracer = Tracer()
        tracer.comm_send(0, 1, 4, 100, 105)
        tracer.comm_recv(1, 0, 4, 120, 130)
        doc = self.chrome(tracer)
        flows = self.flows(doc)
        assert len(flows) == 2
        start = next(e for e in flows if e["ph"] == "s")
        finish = next(e for e in flows if e["ph"] == "f")
        assert start["id"] == finish["id"]
        assert finish["bp"] == "e"  # bind to the enclosing recv span
        assert start["args"]["words"] == 4
        # The start sits on the send span, the finish on the recv span.
        send = next(e for e in doc["traceEvents"]
                    if e.get("name") == "send->1")
        recv = next(e for e in doc["traceEvents"]
                    if e.get("name") == "recv<-0")
        assert (start["pid"], start["tid"], start["ts"]) == (
            send["pid"], send["tid"], send["ts"])
        assert (finish["pid"], finish["tid"], finish["ts"]) == (
            recv["pid"], recv["tid"], recv["ts"])

    def test_recv_spanning_two_sends_gets_two_arrows(self):
        tracer = Tracer()
        tracer.comm_send(0, 1, 2, 10, 12)
        tracer.comm_send(0, 1, 3, 20, 23)
        tracer.comm_recv(1, 0, 5, 30, 40)
        flows = self.flows(self.chrome(tracer))
        starts = [e for e in flows if e["ph"] == "s"]
        assert len(starts) == 2
        assert sorted(e["args"]["words"] for e in starts) == [2, 3]
        assert len({e["id"] for e in flows}) == 2

    def test_channels_pair_independently(self):
        tracer = Tracer()
        tracer.comm_send(0, 2, 4, 10, 12)   # 0 -> 2
        tracer.comm_send(1, 2, 4, 11, 13)   # 1 -> 2
        tracer.comm_recv(2, 1, 4, 20, 25)   # consumes the 1 -> 2 words
        flows = self.flows(self.chrome(tracer))
        (start,) = [e for e in flows if e["ph"] == "s"]
        send1 = next(e for e in self.chrome(tracer)["traceEvents"]
                     if e.get("name") == "send->2" and e["ts"] == 11)
        assert start["ts"] == send1["ts"]

    def test_unconsumed_send_emits_no_flow(self):
        tracer = Tracer()
        tracer.comm_send(0, 1, 4, 10, 12)
        assert self.flows(self.chrome(tracer)) == []


class TestNullTracer:
    def test_records_nothing(self):
        NULL_TRACER.tile_span(0, "a", 0, 5, "halt", 3)
        NULL_TRACER.comm_send(0, 1, 2, 3, 4)
        NULL_TRACER.cix(0, 0, 0)
        assert len(NULL_TRACER) == 0
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.to_chrome()["traceEvents"] == []
