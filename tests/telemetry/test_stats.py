"""Unit tests for the Stats registry, counters and histograms."""

from repro.telemetry import (
    NULL_COUNTER,
    NULL_STATS,
    NULL_TELEMETRY,
    Stats,
    Telemetry,
    ensure_telemetry,
)


class TestCounters:
    def test_counter_accumulates(self):
        stats = Stats()
        counter = stats.counter("tile0.core.compute")
        counter.add()
        counter.add(41)
        assert counter.value == 42

    def test_same_name_returns_same_instrument(self):
        stats = Stats()
        assert stats.counter("a.b") is stats.counter("a.b")
        assert stats.counter("a.b") is not stats.counter("a.c")

    def test_add_convenience(self):
        stats = Stats()
        stats.add("noc.flits", 5)
        stats.add("noc.flits", 2)
        assert stats.counter("noc.flits").value == 7

    def test_reset(self):
        stats = Stats()
        stats.add("x", 3)
        stats.observe("y", 1.0)
        stats.reset()
        assert stats.counter("x").value == 0
        assert stats.histogram("y").count == 0


class TestHistograms:
    def test_summary_fields(self):
        stats = Stats()
        hist = stats.histogram("noc.link_wait")
        for value in (4, 0, 10):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 14
        assert hist.min == 0
        assert hist.max == 10
        assert hist.mean() == 14 / 3

    def test_empty_mean_is_zero(self):
        assert Stats().histogram("h").mean() == 0.0


class TestSnapshot:
    def test_snapshot_nests_by_dotted_path(self):
        stats = Stats()
        stats.add("tile0.core.compute", 10)
        stats.add("tile0.core.memory_stall", 2)
        stats.add("noc.flits", 7)
        snap = stats.snapshot()
        assert snap["tile0"]["core"] == {"compute": 10, "memory_stall": 2}
        assert snap["noc"]["flits"] == 7

    def test_render_lists_every_instrument(self):
        stats = Stats()
        stats.add("b", 2)
        stats.add("a", 1)
        text = stats.render()
        assert text.index("a = 1") < text.index("b = 2")


class TestMerge:
    def build(self, counter, observations):
        stats = Stats()
        stats.add("c", counter)
        for value in observations:
            stats.observe("h", value)
        return stats

    def test_counters_and_histograms_fold(self):
        a = self.build(3, [1, 9])
        b = self.build(4, [0, 5])
        a.merge(b)
        assert a.counter("c").value == 7
        hist = a.histogram("h")
        assert hist.count == 4
        assert hist.total == 15
        assert hist.min == 0
        assert hist.max == 9

    def test_merge_creates_missing_instruments(self):
        a = Stats()
        b = Stats()
        b.add("only.in.b", 5)
        b.observe("hist.only.b", 2)
        a.merge(b)
        assert a.counter("only.in.b").value == 5
        assert a.histogram("hist.only.b").count == 1

    def test_merge_empty_histogram_keeps_min_max(self):
        a = self.build(0, [4])
        a.merge(Stats())
        assert a.histogram("h").min == 4
        assert a.histogram("h").max == 4

    def test_merge_is_order_independent_on_summaries(self):
        parts = [self.build(i, [i, 10 - i]) for i in range(3)]
        forward = Stats()
        for part in parts:
            forward.merge(part)
        backward = Stats()
        for part in reversed(parts):
            backward.merge(part)
        assert forward.to_flat() == backward.to_flat()

    def test_flat_round_trip(self):
        stats = self.build(42, [1, 2, 3])
        clone = Stats.from_flat(stats.to_flat())
        assert clone.to_flat() == stats.to_flat()
        assert clone.histogram("h").mean() == stats.histogram("h").mean()

    def test_merge_accepts_flat_dict(self):
        a = Stats()
        a.merge(self.build(5, [7]).to_flat())
        assert a.counter("c").value == 5
        assert a.histogram("h").max == 7

    def test_null_stats_merge_is_noop(self):
        a = Stats()
        a.add("x", 1)
        a.merge(NULL_STATS)
        assert a.counter("x").value == 1
        NULL_STATS.merge(a)  # and the null side stays inert
        assert NULL_STATS.to_flat() == {"counters": {}, "histograms": {}}


class TestNullPath:
    def test_null_stats_hands_out_shared_noop(self):
        assert NULL_STATS.counter("anything") is NULL_COUNTER
        NULL_STATS.counter("anything").add(100)
        assert NULL_STATS.counter("anything").value == 0
        assert NULL_STATS.snapshot() == {}
        assert not NULL_STATS.enabled

    def test_null_histogram_is_inert(self):
        hist = NULL_STATS.histogram("h")
        hist.observe(5)
        assert hist.count == 0

    def test_ensure_telemetry(self):
        assert ensure_telemetry(None) is NULL_TELEMETRY
        assert ensure_telemetry(False) is NULL_TELEMETRY
        bundle = ensure_telemetry(True)
        assert bundle.enabled
        assert ensure_telemetry(bundle) is bundle
        assert not NULL_TELEMETRY.enabled

    def test_enabled_bundle_has_live_instruments(self):
        bundle = Telemetry()
        bundle.stats.add("x")
        assert bundle.stats.counter("x").value == 1
        assert bundle.tracer.enabled
