"""Unit tests for the Stats registry, counters and histograms."""

from repro.telemetry import (
    NULL_COUNTER,
    NULL_STATS,
    NULL_TELEMETRY,
    Stats,
    Telemetry,
    ensure_telemetry,
)


class TestCounters:
    def test_counter_accumulates(self):
        stats = Stats()
        counter = stats.counter("tile0.core.compute")
        counter.add()
        counter.add(41)
        assert counter.value == 42

    def test_same_name_returns_same_instrument(self):
        stats = Stats()
        assert stats.counter("a.b") is stats.counter("a.b")
        assert stats.counter("a.b") is not stats.counter("a.c")

    def test_add_convenience(self):
        stats = Stats()
        stats.add("noc.flits", 5)
        stats.add("noc.flits", 2)
        assert stats.counter("noc.flits").value == 7

    def test_reset(self):
        stats = Stats()
        stats.add("x", 3)
        stats.observe("y", 1.0)
        stats.reset()
        assert stats.counter("x").value == 0
        assert stats.histogram("y").count == 0


class TestHistograms:
    def test_summary_fields(self):
        stats = Stats()
        hist = stats.histogram("noc.link_wait")
        for value in (4, 0, 10):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 14
        assert hist.min == 0
        assert hist.max == 10
        assert hist.mean() == 14 / 3

    def test_empty_mean_is_zero(self):
        assert Stats().histogram("h").mean() == 0.0


class TestSnapshot:
    def test_snapshot_nests_by_dotted_path(self):
        stats = Stats()
        stats.add("tile0.core.compute", 10)
        stats.add("tile0.core.memory_stall", 2)
        stats.add("noc.flits", 7)
        snap = stats.snapshot()
        assert snap["tile0"]["core"] == {"compute": 10, "memory_stall": 2}
        assert snap["noc"]["flits"] == 7

    def test_render_lists_every_instrument(self):
        stats = Stats()
        stats.add("b", 2)
        stats.add("a", 1)
        text = stats.render()
        assert text.index("a = 1") < text.index("b = 2")


class TestNullPath:
    def test_null_stats_hands_out_shared_noop(self):
        assert NULL_STATS.counter("anything") is NULL_COUNTER
        NULL_STATS.counter("anything").add(100)
        assert NULL_STATS.counter("anything").value == 0
        assert NULL_STATS.snapshot() == {}
        assert not NULL_STATS.enabled

    def test_null_histogram_is_inert(self):
        hist = NULL_STATS.histogram("h")
        hist.observe(5)
        assert hist.count == 0

    def test_ensure_telemetry(self):
        assert ensure_telemetry(None) is NULL_TELEMETRY
        assert ensure_telemetry(False) is NULL_TELEMETRY
        bundle = ensure_telemetry(True)
        assert bundle.enabled
        assert ensure_telemetry(bundle) is bundle
        assert not NULL_TELEMETRY.enabled

    def test_enabled_bundle_has_live_instruments(self):
        bundle = Telemetry()
        bundle.stats.add("x")
        assert bundle.stats.counter("x").value == 1
        assert bundle.tracer.enabled
