"""Unit tests for the four application graphs."""

import pytest

from repro.workloads.apps import (
    App,
    Channel,
    Stage,
    all_apps,
    app1_gesture,
    app2_cnn,
    app3_svm,
    app4_transport,
)
from repro.workloads.kernels import FftKernel, SpecFilterKernel


class TestAppStructure:
    def test_all_apps_have_16_stages(self):
        for app in all_apps():
            assert len(app.stages) == 16

    def test_app1_matches_figure7(self):
        names = app1_gesture().kernel_names()
        assert names.count("fft") == 6
        assert names.count("ifft") == 6
        assert "update" in names and "classify" in names

    def test_app2_matches_figure9(self):
        names = app2_cnn().kernel_names()
        assert names.count("2dconv") == 13
        assert names.count("pool") == 2
        assert names.count("fc") == 1

    def test_app3_mixes_svm_and_aes(self):
        names = app3_svm().kernel_names()
        assert names.count("svm") == 2
        assert names.count("aes") == 5

    def test_app4_decrypt_dtw_encrypt(self):
        names = app4_transport().kernel_names()
        assert names.count("aesdec") == 4
        assert names.count("dtw") == 8
        assert names.count("aes") == 4

    def test_channels_acyclic(self):
        for app in all_apps():
            depth = {s.id: 0 for s in app.stages}
            for _ in range(17):
                for channel in app.channels:
                    depth[channel.dst] = max(
                        depth[channel.dst], depth[channel.src] + 1
                    )
            assert max(depth.values()) <= 16

    def test_producers_consumers(self):
        app = app4_transport()
        assert len(app.consumers_of(0)) == 3   # two DTWs + one AES
        assert len(app.producers_of(4)) == 1

    def test_comm_words(self):
        app = app4_transport()
        recv, send = app.comm_words(0)
        assert recv == [] and send == [16, 16, 16]
        recv, send = app.comm_words(4)
        assert recv == [16]


class TestValidation:
    def test_channel_size_mismatch_rejected(self):
        stages = [Stage(0, SpecFilterKernel(n=128))] + [
            Stage(i, FftKernel()) for i in range(1, 16)
        ]
        bad = [Channel(0, "filtered", 1, "re")]   # 128 words into 64
        with pytest.raises(ValueError):
            App("bad", stages, bad)

    def test_self_channel_rejected(self):
        stages = [Stage(i, FftKernel()) for i in range(16)]
        with pytest.raises(ValueError):
            App("bad", stages, [Channel(0, "cplx", 0, "cplx")])

    def test_wrong_stage_count_rejected(self):
        with pytest.raises(ValueError):
            App("bad", [Stage(0, FftKernel())], [])

    def test_unknown_region_rejected(self):
        stages = [Stage(i, FftKernel()) for i in range(16)]
        with pytest.raises(KeyError):
            App("bad", stages, [Channel(0, "nonexistent", 1, "cplx")])
