"""Correctness: every kernel's simulated output equals its reference."""

import pytest

from repro.cpu import Core, STOP_HALT
from repro.mem import MemorySystem
from repro.workloads import KERNEL_FACTORIES, make_kernel
from repro.workloads.kernels.aes import (
    aes_decrypt_block,
    aes_encrypt_block,
    expand_key,
    gmul,
    xtime,
)


def run_kernel(kernel, max_instructions=3_000_000):
    core = Core(kernel.program, MemorySystem.stitch())
    kernel.setup(core)
    outcome = core.run(max_instructions=max_instructions)
    assert outcome.reason == STOP_HALT, f"{kernel.name} did not halt"
    return core


@pytest.mark.parametrize("name", sorted(KERNEL_FACTORIES))
def test_kernel_matches_reference(name):
    kernel = make_kernel(name, seed=3)
    core = run_kernel(kernel)
    assert kernel.result(core) == kernel.reference(), name


@pytest.mark.parametrize("name", sorted(KERNEL_FACTORIES))
def test_kernel_other_seed(name):
    kernel = make_kernel(name, seed=11)
    core = run_kernel(kernel)
    assert kernel.result(core) == kernel.reference(), name


@pytest.mark.parametrize("name", sorted(KERNEL_FACTORIES))
def test_kernel_fits_spm_and_registers(name):
    kernel = make_kernel(name)
    # Region layout already validated at construction; check the body
    # honours the streaming register convention (r11 reserved for the
    # wrapper's item counter).
    for instr in kernel.program:
        for reg in list(instr.reads()) + list(instr.writes()):
            assert reg != 11, f"{name} uses the wrapper's counter r11"


class TestAesReference:
    def test_fips197_appendix_b_vector(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plain = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        schedule = expand_key(list(key))
        assert aes_encrypt_block(list(plain), schedule) == list(expected)

    def test_decrypt_inverts_encrypt(self):
        key = list(range(16))
        schedule = expand_key(key)
        block = [(i * 7 + 3) % 256 for i in range(16)]
        cipher = aes_encrypt_block(block, schedule)
        assert aes_decrypt_block(cipher, schedule) == block

    def test_key_schedule_first_round_word(self):
        # FIPS-197 A.1: w[4] for the 2b7e... key is a0fafe17.
        key = list(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        schedule = expand_key(key)
        assert schedule[16:20] == [0xA0, 0xFA, 0xFE, 0x17]

    def test_gf_arithmetic(self):
        assert xtime(0x57) == 0xAE
        assert xtime(0xAE) == 0x47
        assert gmul(0x57, 0x13) == 0xFE  # FIPS-197 example


class TestKernelShapes:
    def test_fft_output_length(self):
        kernel = make_kernel("fft")
        core = run_kernel(kernel)
        assert len(kernel.result(core)) == 2 * kernel.n

    def test_ifft_has_extra_update_output(self):
        fft = make_kernel("fft")
        ifft = make_kernel("ifft")
        assert len(ifft.outputs) == len(fft.outputs) + 1
        # The extra stage makes IFFT the longer kernel (Section V).
        fft_core = run_kernel(fft)
        ifft_core = run_kernel(ifft)
        assert ifft_core.cycles > fft_core.cycles

    def test_histogram_counts_sum_to_samples(self):
        kernel = make_kernel("histogram")
        core = run_kernel(kernel)
        assert sum(kernel.result(core)) == kernel.n

    def test_astar_finds_a_path(self):
        kernel = make_kernel("astar")
        core = run_kernel(kernel)
        cost = kernel.result(core)[0]
        w = kernel.width
        assert 2 * (w - 1) <= cost < 1 << 20  # reachable, at least Manhattan

    def test_dtw_identical_sequences_zero(self):
        kernel = make_kernel("dtw")
        kernel.b_data = list(kernel.a_data)
        kernel.inputs = [(kernel.a, kernel.a_data), (kernel.b, kernel.b_data)]
        core = run_kernel(kernel)
        assert kernel.result(core) == [0]

    def test_svm_label_in_range(self):
        kernel = make_kernel("svm")
        core = run_kernel(kernel)
        label = kernel.result(core)[0]
        assert 0 <= label < kernel.classes
