"""Unit tests for inter-patch path reservation and Dijkstra search."""

import pytest

from repro.interpatch import (
    InterPatchNetwork,
    PORT_N,
    PORT_PATCH,
    PORT_REG,
    PORT_S,
    ReservationError,
    find_path,
)
from repro.noc import Mesh


def paper(net, number):
    return net.mesh.from_paper(number)


class TestStitching:
    def test_figure5_scenario(self):
        """patch2 + patch10 stitched; patch6's switch bypasses both ways."""
        net = InterPatchNetwork()
        t2, t6, t10 = (paper(net, n) for n in (2, 6, 10))
        path = net.stitch([t2, t6, t10])
        assert path == [t2, t6, t10]
        # Tile 6 bypasses: southbound output driven by the north input,
        # and vice versa; its own patch port is untouched.
        bypass = net.switch(t6)
        assert bypass.driver_of(PORT_S) == PORT_N
        assert bypass.driver_of(PORT_N) == PORT_S
        assert bypass.driver_of(PORT_PATCH) is None
        # Origin injects its patch output southward and returns the
        # remote result to both its patch input and register file.
        origin = net.switch(t2)
        assert origin.driver_of(PORT_S) == PORT_PATCH
        assert origin.driver_of(PORT_PATCH) == PORT_S
        assert origin.driver_of(PORT_REG) == PORT_S
        # Remote receives from the north and sends its output back north.
        remote = net.switch(t10)
        assert remote.driver_of(PORT_PATCH) == PORT_N
        assert remote.driver_of(PORT_N) == PORT_PATCH

    def test_round_trip_links_reserved(self):
        net = InterPatchNetwork()
        net.stitch([0, 1, 2])
        assert not net.is_link_free(0, 1)
        assert not net.is_link_free(1, 0)
        assert net.is_link_free(2, 3)

    def test_conflicting_stitch_rejected_atomically(self):
        net = InterPatchNetwork()
        net.stitch([0, 1, 2])
        before = [s.routes() for s in net.switches]
        with pytest.raises(ReservationError):
            net.stitch([1, 2])  # reuses link (1, 2)
        assert [s.routes() for s in net.switches] == before

    def test_switch_port_conflict_rolls_back(self):
        net = InterPatchNetwork()
        net.stitch([0, 1])
        # Path [4, 0] needs tile 0's patch port, already driven.
        with pytest.raises(ReservationError):
            net.stitch([0, 4])
        assert net.reserved_links == {(0, 1), (1, 0)}

    def test_non_adjacent_path_rejected(self):
        net = InterPatchNetwork()
        with pytest.raises(ValueError):
            net.stitch([0, 5])

    def test_too_short_path_rejected(self):
        net = InterPatchNetwork()
        with pytest.raises(ValueError):
            net.stitch([0])

    def test_disjoint_stitchings_coexist(self):
        net = InterPatchNetwork()
        net.stitch([0, 1, 2])
        net.stitch([4, 5, 6])
        net.stitch([8, 9, 10])
        assert len(net.stitchings) == 3
        assert net.utilization() == pytest.approx(12 / 48)

    def test_reset(self):
        net = InterPatchNetwork()
        net.stitch([0, 1])
        net.reset()
        assert net.reserved_links == set()
        assert net.switch(0).routes() == {}


class TestPathfinder:
    def test_shortest_path_found(self):
        mesh = Mesh()
        path = find_path(mesh, 0, 2)
        assert path == [0, 1, 2]

    def test_hop_limit_enforced(self):
        mesh = Mesh()
        assert find_path(mesh, 0, 15) is None  # 6 hops > limit 3
        assert find_path(mesh, 0, 15, max_hops=6) is not None

    def test_detour_around_reservation(self):
        mesh = Mesh()
        reserved = {(0, 1), (1, 0)}
        path = find_path(mesh, 0, 5, reserved_links=reserved)
        assert path == [0, 4, 5]

    def test_no_detour_within_hop_budget(self):
        mesh = Mesh()
        # Any detour from 0 to 2 around link (0,1) needs 4 hops > 3.
        assert find_path(mesh, 0, 2, reserved_links={(0, 1)}) is None

    def test_reservation_in_either_direction_blocks(self):
        mesh = Mesh()
        # Only the reverse direction is reserved; round trips need both.
        path = find_path(mesh, 0, 1, reserved_links={(1, 0)})
        assert path is None or (0, 1) not in set(zip(path, path[1:]))

    def test_fully_blocked_returns_none(self):
        mesh = Mesh()
        reserved = set()
        for neighbor in mesh.neighbors(0):
            reserved.add((0, neighbor))
        assert find_path(mesh, 0, 5, reserved_links=reserved) is None

    def test_self_stitch_rejected(self):
        with pytest.raises(ValueError):
            find_path(Mesh(), 3, 3)

    def test_integration_with_network(self):
        # Endpoint patches must be fresh; intermediate tiles (like 1
        # below) may still originate their own stitching.
        net = InterPatchNetwork()
        net.stitch(find_path(net.mesh, 0, 2))
        second = find_path(net.mesh, 1, 5, reserved_links=net.reserved_links)
        assert second == [1, 5]
        net.stitch(second)  # must not raise
        assert len(net.stitchings) == 2
