"""Unit tests for the crossbar switch and its config register."""

import pytest

from repro.interpatch import (
    CrossbarSwitch,
    PORT_E,
    PORT_N,
    PORT_PATCH,
    PORT_REG,
    PORT_S,
    PORT_W,
    PORTS,
)
from repro.interpatch.switch import LINK_BITS, LINK_CONTROL_BITS


class TestSwitch:
    def test_six_by_six(self):
        assert len(PORTS) == 6

    def test_link_is_166_bits(self):
        # Figure 5: four 32-bit words plus 38 control bits.
        assert LINK_BITS == 166
        assert LINK_CONTROL_BITS == 38

    def test_configure_and_query(self):
        switch = CrossbarSwitch(0)
        switch.configure(PORT_E, PORT_PATCH)
        assert switch.driver_of(PORT_E) == PORT_PATCH
        assert switch.driver_of(PORT_W) is None

    def test_output_single_driver(self):
        switch = CrossbarSwitch(0)
        switch.configure(PORT_E, PORT_PATCH)
        with pytest.raises(ValueError):
            switch.configure(PORT_E, PORT_N)

    def test_input_fanout_allowed(self):
        switch = CrossbarSwitch(0)
        switch.configure(PORT_E, PORT_PATCH)
        switch.configure(PORT_S, PORT_PATCH)
        assert switch.driver_of(PORT_S) == PORT_PATCH

    def test_self_loop_rejected(self):
        switch = CrossbarSwitch(0)
        with pytest.raises(ValueError):
            switch.configure(PORT_N, PORT_N)

    def test_unknown_port_rejected(self):
        switch = CrossbarSwitch(0)
        with pytest.raises(ValueError):
            switch.configure("NE", PORT_N)

    def test_release_then_reconfigure(self):
        switch = CrossbarSwitch(0)
        switch.configure(PORT_E, PORT_PATCH)
        switch.release(PORT_E)
        switch.configure(PORT_E, PORT_N)
        assert switch.driver_of(PORT_E) == PORT_N


class TestConfigRegister:
    def test_empty_register_all_undriven(self):
        switch = CrossbarSwitch(0)
        value = switch.register_value()
        for index in range(6):
            assert (value >> (index * 3)) & 0b111 == 7

    def test_register_roundtrip(self):
        switch = CrossbarSwitch(0)
        switch.configure(PORT_E, PORT_W)      # straight-through bypass
        switch.configure(PORT_PATCH, PORT_N)
        switch.configure(PORT_REG, PORT_PATCH)
        value = switch.register_value()
        other = CrossbarSwitch(1)
        other.load_register(value)
        assert other.routes() == switch.routes()

    def test_register_fits_one_word(self):
        switch = CrossbarSwitch(0)
        for out_port, in_port in ((PORT_N, PORT_S), (PORT_E, PORT_W),
                                  (PORT_S, PORT_N), (PORT_W, PORT_E),
                                  (PORT_PATCH, PORT_REG), (PORT_REG, PORT_PATCH)):
            switch.configure(out_port, in_port)
        assert switch.register_value() < (1 << 18)

    def test_load_register_rejects_self_loop(self):
        switch = CrossbarSwitch(0)
        # Output index 0 is N; input code for N is 0 -> self loop.
        with pytest.raises(ValueError):
            switch.load_register(0b000 | (7 << 3) | (7 << 6) | (7 << 9) | (7 << 12) | (7 << 15))

    def test_load_register_rejects_bad_code(self):
        switch = CrossbarSwitch(0)
        value = 6  # code 6 is not a port and not "undriven"
        value |= sum(7 << (i * 3) for i in range(1, 6))
        with pytest.raises(ValueError):
            switch.load_register(value)
