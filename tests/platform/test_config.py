"""Unit tests for the unified platform-configuration layer."""

import pytest

from repro.platform import (
    DEFAULT_PLATFORM,
    PRESET_NAMES,
    PlatformConfig,
    PlatformConfigError,
    get_preset,
)


class TestPresets:
    def test_stitch_preset_matches_paper_numbers(self):
        cfg = PlatformConfig.stitch()
        assert cfg.mem.icache_bytes == 8 * 1024
        assert cfg.mem.dcache_bytes == 4 * 1024
        assert cfg.mem.spm_bytes == 4 * 1024
        assert cfg.mem.dram_latency == 30
        assert cfg.noc.num_tiles == 16
        assert cfg.fabric.clock_mhz == pytest.approx(200.0)
        assert cfg.fabric.link_bits == 166
        assert cfg.power.stitch_power_mw == pytest.approx(139.5)

    def test_baseline_folds_spm_into_dcache(self):
        base = PlatformConfig.baseline()
        assert base.mem.dcache_bytes == 8 * 1024
        assert base.mem.spm_bytes == 0
        assert not base.mem.has_spm
        # Everything else is shared with the stitch preset.
        assert base.noc == PlatformConfig.stitch().noc
        assert base.fabric == PlatformConfig.stitch().fabric

    def test_presets_are_cached_and_valid(self):
        assert PlatformConfig.stitch() is PlatformConfig.stitch()
        for name in PRESET_NAMES:
            assert get_preset(name).validate().name == name
        assert DEFAULT_PLATFORM is PlatformConfig.stitch()

    def test_unknown_preset_rejected(self):
        with pytest.raises(PlatformConfigError):
            get_preset("huge")

    def test_legacy_module_aliases_derive_from_preset(self):
        # The scattered constants are gone; the module-level names are
        # views of the preset now.
        from repro.core import fusion
        from repro.interpatch import switch, timing
        from repro.mem import dram, hierarchy, spm
        from repro.noc import network, packet
        from repro.power import chip, components

        cfg = PlatformConfig.stitch()
        assert spm.SPM_BASE == cfg.mem.spm_base
        assert spm.SPM_SIZE == cfg.mem.spm_bytes
        assert dram.DRAM_LATENCY == cfg.mem.dram_latency
        assert hierarchy.CODE_BASE == cfg.mem.code_base
        assert network.ROUTER_STAGES == cfg.noc.router_stages
        assert packet.WORDS_PER_FLIT == cfg.noc.words_per_flit
        assert switch.LINK_BITS == cfg.fabric.link_bits
        assert fusion.CLOCK_NS == cfg.fabric.clock_ns
        assert timing.MAX_PATH_TRAVERSALS == cfg.fabric.max_path_traversals
        # The two formerly duplicated fabric delays now share a source.
        assert components.NOC_SWITCH_DELAY_NS == fusion.SWITCH_DELAY_NS
        assert components.WIRE_DELAY_PER_HOP_NS == fusion.WIRE_DELAY_PER_HOP_NS
        assert chip.STITCH_POWER_MW == cfg.power.stitch_power_mw
        assert chip.CLOCK_MHZ == cfg.power.clock_mhz


class TestDerive:
    def test_derive_overrides_one_field(self):
        cfg = PlatformConfig.stitch().derive("dram50",
                                             mem={"dram_latency": 50})
        assert cfg.name == "dram50"
        assert cfg.mem.dram_latency == 50
        assert cfg.mem.spm_bytes == PlatformConfig.stitch().mem.spm_bytes
        # The original preset is untouched (frozen dataclasses).
        assert PlatformConfig.stitch().mem.dram_latency == 30

    def test_derive_unknown_group_rejected(self):
        with pytest.raises(PlatformConfigError):
            PlatformConfig.stitch().derive("bad", gpu={"cores": 4})

    def test_derive_unknown_field_rejected(self):
        with pytest.raises(PlatformConfigError):
            PlatformConfig.stitch().derive("bad", mem={"dram_lat": 50})


class TestSerialization:
    def test_round_trip_is_identity(self):
        cfg = PlatformConfig.stitch().derive(
            "big", noc={"mesh_width": 8, "mesh_height": 8}
        )
        assert PlatformConfig.from_dict(cfg.to_dict()) == cfg

    def test_partial_dict_overlays_stitch_preset(self):
        cfg = PlatformConfig.from_dict(
            {"name": "slowmem", "mem": {"dram_latency": 90}}
        )
        assert cfg.mem.dram_latency == 90
        assert cfg.mem.icache_bytes == 8 * 1024

    def test_base_key_selects_the_overlay_preset(self):
        cfg = PlatformConfig.from_dict({"name": "b", "base": "baseline"})
        assert cfg.mem.spm_bytes == 0

    def test_unknown_group_rejected(self):
        with pytest.raises(PlatformConfigError):
            PlatformConfig.from_dict({"name": "x", "gpu": {}})

    def test_cache_key_distinguishes_configs(self):
        stitch = PlatformConfig.stitch()
        derived = stitch.derive("d", mem={"dram_latency": 31})
        assert stitch.cache_key() != derived.cache_key()
        assert stitch.cache_key() == PlatformConfig.stitch().cache_key()
        hash(stitch.cache_key())  # usable as a dict key


class TestValidation:
    def test_spm_overlapping_code_window_is_v700(self):
        cfg = PlatformConfig.stitch().derive(
            "clash", mem={"spm_base": 0x0800_0000}
        )
        codes = [code for code, _, _ in cfg.issues()]
        assert "V700" in codes
        with pytest.raises(PlatformConfigError):
            cfg.validate()

    def test_link_flit_mismatch_is_v701(self):
        cfg = PlatformConfig.stitch().derive(
            "narrow", fabric={"link_data_bits": 64}
        )
        assert "V701" in [code for code, _, _ in cfg.issues()]

    def test_broken_cache_geometry_is_v702(self):
        cfg = PlatformConfig.stitch().derive(
            "odd", mem={"dcache_bytes": 3000}
        )
        assert "V702" in [code for code, _, _ in cfg.issues()]

    def test_non_physical_value_is_v704(self):
        cfg = PlatformConfig.stitch().derive(
            "nomesh", noc={"mesh_width": 0}
        )
        assert "V704" in [code for code, _, _ in cfg.issues()]

    def test_misaligned_spm_base_is_v705(self):
        cfg = PlatformConfig.stitch().derive(
            "skew", mem={"spm_base": 0x1000_0002}
        )
        assert "V705" in [code for code, _, _ in cfg.issues()]

    def test_error_message_names_every_issue(self):
        cfg = PlatformConfig.stitch().derive(
            "multi", mem={"dram_latency": 0}, noc={"mesh_width": 0}
        )
        with pytest.raises(PlatformConfigError) as excinfo:
            cfg.validate()
        assert "V704" in str(excinfo.value)
        assert len(excinfo.value.issues) >= 2
