"""Unit tests for the PC-attribution cycle profiler."""

import pytest

from repro.cpu import Core
from repro.isa import assemble
from repro.mem import MemorySystem
from repro.profile import (
    CycleProfile,
    profile_kernel_cycles,
    render_annotated,
    render_folded,
    render_summary,
)

LOOP_SOURCE = """\
    movi r1, 8
    movi r2, 0
outer:
    movi r3, 4
inner:
    addi r2, r2, 1
    addi r3, r3, -1
    bne  r3, r0, inner
    addi r1, r1, -1
    bne  r1, r0, outer
    halt
"""


def run_profiled(source, **core_kwargs):
    program = assemble(source, name="probe")
    core = Core(program, MemorySystem.stitch(), profile_cycles=True,
                **core_kwargs)
    assert core.run(max_instructions=100_000).reason == "halt"
    return CycleProfile.from_core(core), core


class TestHistogram:
    def test_every_cycle_lands_on_a_pc(self):
        profile, core = run_profiled(LOOP_SOURCE)
        assert profile.profiled_cycles() == core.cycles
        assert profile.reconciles()
        assert profile.retired_instructions() == core.instret

    def test_requires_profile_cycles(self):
        program = assemble("halt\n")
        core = Core(program, MemorySystem.stitch())
        core.run()
        with pytest.raises(RuntimeError):
            CycleProfile.from_core(core)

    def test_retirement_counts_per_pc(self):
        profile, _core = run_profiled(LOOP_SOURCE)
        # The inner-loop body retires 8 * 4 = 32 times.
        inner_start = profile.program.labels["inner"]
        assert profile.pc_cycles[inner_start][1] == 32


class TestFolding:
    def test_loop_nesting_and_totals(self):
        profile, _core = run_profiled(LOOP_SOURCE)
        by_name = {loop.name: loop for loop in profile.loops}
        outer = by_name["loop@outer"]
        inner = by_name["loop@inner"]
        assert inner.parent is outer
        assert inner.depth == outer.depth + 1
        assert inner.blocks < outer.blocks
        # Totals nest: outer includes inner; self excludes it exactly.
        assert outer.total_cycles >= inner.total_cycles
        assert outer.self_cycles == outer.total_cycles - inner.total_cycles

    def test_block_cycles_sum_to_total(self):
        profile, core = run_profiled(LOOP_SOURCE)
        assert sum(b.cycles for b in profile.blocks) == core.cycles

    def test_folded_stacks_carry_loop_frames(self):
        profile, _core = run_profiled(LOOP_SOURCE)
        folded = dict(profile.folded_stacks())
        assert "probe;loop@outer;loop@inner;inner" in folded
        assert sum(folded.values()) == profile.total_cycles

    def test_to_dict_shape(self):
        profile, _core = run_profiled(LOOP_SOURCE)
        payload = profile.to_dict()
        assert payload["reconciled"] is True
        assert payload["total_cycles"] == payload["profiled_cycles"]
        assert payload["has_cfg"] is True
        inner = next(lp for lp in payload["loops"]
                     if lp["name"] == "loop@inner")
        assert inner["parent"] == "loop@outer"


class TestKernelEntry:
    def test_fft_reconciles_and_finds_the_hot_loop(self):
        profile, core = profile_kernel_cycles("fft")
        assert profile.reconciles()
        assert profile.total_cycles == core.cycles
        hottest = profile.loops[0]
        assert hottest.name == "loop@fft_bf"  # the butterfly loop
        assert hottest.total_cycles / profile.total_cycles > 0.5

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            profile_kernel_cycles("no-such-kernel")


class TestRendering:
    def test_summary_mentions_reconciliation(self):
        profile, _core = run_profiled(LOOP_SOURCE)
        text = render_summary(profile)
        assert "reconciled" in text
        assert "loop@inner" in text

    def test_annotated_covers_every_instruction(self):
        profile, _core = run_profiled(LOOP_SOURCE)
        text = render_annotated(profile)
        assert "outer:" in text and "inner:" in text
        assert len([ln for ln in text.splitlines() if "addi" in ln]) == 3

    def test_folded_render_format(self):
        profile, _core = run_profiled(LOOP_SOURCE)
        for line in render_folded(profile).splitlines():
            frames, cycles = line.rsplit(" ", 1)
            assert frames.startswith("probe")
            assert int(cycles) > 0
