"""Differential suite: the dispatch engines vs the reference interpreter.

``Core._run_reference`` is the executable specification of the cycle
model; ``repro.cpu.engine`` re-implements it twice (instrumented
dispatch loop, pre-decoded fast loop).  These tests pin all three to
bit-identical *complete* final state — registers, cycles, instret,
every stall counter, cache/SPM/DRAM counters and contents, and the
kernel's computed result — over the full Figure 11 suite, both as
plain scalar binaries and as compiled artifacts executing custom
instructions through a :class:`PatchExecutor`.

Any timing-model edit that touches only one loop fails here first.
"""

import pytest

from repro.cpu.core import Core, STOP_HALT
from repro.mem.hierarchy import MemorySystem
from repro.workloads import KERNEL_FACTORIES, make_kernel

ENGINES = ("reference", "instrumented", "fast")

#: Kernels whose hot loops map onto patches: one single-patch and one
#: fused option each, so the cix path (including LMAU loads and fused
#: remote execution) is covered without compiling the full 15x12 grid
#: on every CI run — ``repro bench --check`` covers that grid.
COMPILED_CASES = [
    ("fir", "AT-MA"),
    ("fir", "AT-MA+AT-SA"),
    ("fft", "AT-AS"),
    ("2dconv", "AT-MA+AT-MA"),
    ("histogram", "AT-SA"),
    ("dtw", "AT-AS+AT-MA"),
]


def full_state(core, kernel):
    """Everything an engine can get wrong, in one comparable dict."""
    memory = core.memory
    state = {
        "regs": list(core.regs),
        "pc": core.pc,
        "halted": core.halted,
        "cycles": core.cycles,
        "instret": core.instret,
        "stall_memory": core.stall_memory,
        "stall_icache": core.stall_icache,
        "stall_branch": core.stall_branch,
        "stall_comm": core.stall_comm,
        "cix_retired": core.cix_retired,
        "icache": (memory.icache.hits, memory.icache.misses,
                   memory.icache.writebacks),
        "dcache": (memory.dcache.hits, memory.dcache.misses,
                   memory.dcache.writebacks),
        "dram_words": dict(memory.dram._words),
        "dram_counters": (memory.dram.reads, memory.dram.writes),
    }
    if memory.spm is not None:
        state["spm"] = (memory.spm.reads, memory.spm.writes,
                        list(memory.spm._words))
    # Last: result() may dump memory untimed, so counters are already
    # captured above.
    state["result"] = kernel.result(core)
    return state


def run_engine(kernel, program, engine, cfg_table=None, replica=None):
    memory = MemorySystem.stitch()
    patch = None
    if cfg_table:
        from repro.core.executor import PatchExecutor

        patch = PatchExecutor(cfg_table, memory, replica_memory=replica)
    core = Core(program, memory, patch=patch, engine=engine)
    kernel.setup(core)
    outcome = core.run(max_instructions=20_000_000)
    assert outcome.reason == STOP_HALT, (kernel.name, engine, outcome.reason)
    assert core.selected_engine() == engine
    return full_state(core, kernel)


def assert_states_equal(states, context):
    reference = states["reference"]
    for engine in ENGINES[1:]:
        other = states[engine]
        diverged = [key for key in reference if other[key] != reference[key]]
        assert not diverged, (
            f"{context}: engine {engine!r} diverged from reference on "
            f"{diverged}: "
            + ", ".join(
                f"{key}={reference[key]!r} vs {other[key]!r}"
                for key in diverged[:3]
            )
        )


@pytest.mark.parametrize("name", sorted(KERNEL_FACTORIES))
def test_scalar_kernel_state_identical(name):
    states = {}
    for engine in ENGINES:
        kernel = make_kernel(name, seed=1)
        states[engine] = run_engine(kernel, kernel.program, engine)
    assert_states_equal(states, f"kernel {name}")


@pytest.mark.parametrize("name,option_name", COMPILED_CASES,
                         ids=[f"{k}-{o}" for k, o in COMPILED_CASES])
def test_compiled_kernel_state_identical(name, option_name):
    from repro.compiler.driver import ALL_OPTIONS, KernelCompiler

    option = next(o for o in ALL_OPTIONS if o.name == option_name)
    compiler = KernelCompiler(make_kernel(name, seed=1))
    compiled = compiler.compile(option)
    if not compiled.cfg_table:
        pytest.skip(f"{name} maps nothing onto {option_name}")
    states = {}
    for engine in ENGINES:
        kernel = make_kernel(name, seed=1)
        replica = None
        if compiled.replicated_regions:
            replica = MemorySystem.stitch()
            for region, words in getattr(kernel, "consts", []):
                replica.load(region.addr, words)
        states[engine] = run_engine(
            kernel, compiled.program, engine,
            cfg_table=compiled.cfg_table, replica=replica,
        )
    assert_states_equal(states, f"compiled {name} @ {option_name}")
    assert states["reference"]["cix_retired"] > 0


def test_fast_loop_is_actually_faster():
    # Not a timing gate (benchmarks/interp_speed.py owns that) — just a
    # sanity check that the fast path engages on a real kernel: the
    # resident memo must have skipped most fetches.
    kernel = make_kernel("fir", seed=1)
    core = Core(kernel.program, MemorySystem.stitch(), engine="fast")
    kernel.setup(core)
    core.run(max_instructions=20_000_000)
    assert core._decoded.resident_ok
    assert any(core._resident)
