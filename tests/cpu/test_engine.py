"""Unit tests for the pluggable execution engines (fast/instrumented).

The exhaustive state-equality checks live in
``tests/cpu/test_engine_differential.py``; this file covers the engine
*plumbing*: selection, decode caching, the resident-line memo's
eligibility rule, typed off-end errors, and the fast loop's deferred
state sync across resumable slices.
"""

import pytest

from repro.cpu import (
    ATTRIBUTION_BUCKETS,
    Core,
    ENGINES,
    ExecutionError,
    STOP_HALT,
    STOP_LIMIT,
)
from repro.isa import assemble
from repro.isa.decoded import decode_program
from repro.mem import MemorySystem, SPM_BASE

LOOP = (
    "movi r1, 0\nloop: addi r1, r1, 1\nslti r2, r1, 200\n"
    "bne r2, r0, loop\nhalt"
)


def make_core(source, engine="auto", **kwargs):
    return Core(assemble(source), MemorySystem.stitch(), engine=engine,
                **kwargs)


class TestEngineSelection:
    def test_engines_tuple(self):
        assert ENGINES == ("auto", "fast", "instrumented", "reference")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            make_core("halt", engine="turbo")

    def test_auto_resolves_to_fast_without_observability(self):
        assert make_core("halt").selected_engine() == "fast"

    @pytest.mark.parametrize("flags", [
        {"profile": True},
        {"profile_cycles": True},
    ])
    def test_auto_resolves_to_instrumented_with_observability(self, flags):
        assert make_core("halt", **flags).selected_engine() == "instrumented"

    def test_auto_resolves_to_instrumented_with_tracer(self):
        from repro.telemetry import Tracer

        core = make_core("halt", tracer=Tracer())
        assert core.selected_engine() == "instrumented"

    def test_explicit_engine_wins(self):
        core = make_core("halt", engine="reference")
        assert core.selected_engine() == "reference"

    def test_fast_engine_refuses_observability(self):
        core = make_core("halt", engine="fast", profile=True)
        with pytest.raises(ValueError, match="fast"):
            core.run()

    def test_instrumented_supports_profile(self):
        core = make_core(LOOP, engine="instrumented", profile=True)
        core.run()
        assert sum(core.block_counts) > 0


class TestExecutionError:
    @pytest.mark.parametrize("engine", ["reference", "instrumented", "fast"])
    def test_off_end_carries_context(self, engine):
        core = Core(assemble("nop", name="runaway"), MemorySystem.stitch(),
                    engine=engine, core_id=7)
        with pytest.raises(ExecutionError) as excinfo:
            core.run()
        err = excinfo.value
        assert err.core_id == 7
        assert err.program_name == "runaway"
        assert err.pc == 1
        assert "core 7" in str(err)
        assert "runaway" in str(err)

    def test_is_an_index_error(self):
        # Back-compat: callers that caught the old bare IndexError keep
        # working.
        assert issubclass(ExecutionError, IndexError)

    @pytest.mark.parametrize("engine", ["reference", "instrumented", "fast"])
    def test_negative_pc_raises_instead_of_wrapping(self, engine):
        # jr to a negative pc must not silently wrap-index the program
        # (the old interpreter did); a negative fetch would also poison
        # the resident-line memo's capacity argument.
        core = make_core("movi r1, -3\njr r1\nhalt", engine=engine)
        with pytest.raises(ExecutionError) as excinfo:
            core.run()
        assert excinfo.value.pc == -3


class TestDecodeCache:
    def test_decode_is_memoized_on_the_program(self):
        program = assemble(LOOP)
        memory = MemorySystem.stitch()
        first = decode_program(program, None, memory.params)
        again = decode_program(program, None, memory.params)
        assert again is first

    def test_distinct_geometry_decodes_separately(self):
        program = assemble(LOOP)
        stitch = MemorySystem.stitch()
        baseline = MemorySystem.baseline()
        assert decode_program(program, None, stitch.params) is not \
            decode_program(program, None, baseline.params)

    def test_two_cores_share_one_decode(self):
        program = assemble(LOOP)
        a = Core(program, MemorySystem.stitch())
        b = Core(program, MemorySystem.stitch())
        a.run()
        b.run()
        assert a._decoded is b._decoded


class TestResidentMemo:
    def test_small_code_is_memo_eligible(self):
        core = make_core(LOOP)
        core.run()
        assert core._decoded.resident_ok

    def test_oversized_code_falls_back_to_real_fetches(self):
        # 8 KB I$ holds 2048 words; a bigger image can evict, so the
        # memo must disable itself — and timing must still match the
        # reference interpreter exactly.
        body = "addi r1, r1, 1\n" * 2100 + "halt"
        fast = make_core(body, engine="fast")
        ref = make_core(body, engine="reference")
        fast.run()
        ref.run()
        assert not fast._decoded.resident_ok
        assert fast.cycles == ref.cycles
        assert fast.memory.icache.misses == ref.memory.icache.misses
        assert fast.memory.icache.hits == ref.memory.icache.hits

    def test_memo_flushes_exact_hit_counts(self):
        fast = make_core(LOOP, engine="fast")
        ref = make_core(LOOP, engine="reference")
        fast.run()
        ref.run()
        assert fast.memory.icache.hits == ref.memory.icache.hits
        assert fast.memory.icache.misses == ref.memory.icache.misses


class TestFastLoopStateSync:
    def test_resumable_slices_match_single_run(self):
        sliced = make_core(LOOP, engine="fast")
        whole = make_core(LOOP, engine="fast")
        slices = 0
        while sliced.run(max_instructions=37).reason == STOP_LIMIT:
            slices += 1
        whole.run()
        assert slices > 2
        assert sliced.halted and whole.halted
        assert list(sliced.regs) == list(whole.regs)
        assert sliced.cycles == whole.cycles
        assert sliced.instret == whole.instret
        assert sliced.memory.icache.hits == whole.memory.icache.hits

    def test_attribution_invariant_on_fast_loop(self):
        core = make_core(LOOP, engine="fast")
        while core.run(max_instructions=37).reason == STOP_LIMIT:
            pass
        attribution = core.attribution()
        assert sum(attribution[b] for b in ATTRIBUTION_BUCKETS) == core.cycles

    def test_halted_core_reenters_cleanly(self):
        core = make_core("movi r1, 5\nhalt", engine="fast")
        assert core.run().reason == STOP_HALT
        cycles = core.cycles
        assert core.run().reason == STOP_HALT  # no-op re-entry
        assert core.cycles == cycles
        assert core.regs[1] == 5

    def test_spm_unaligned_store_matches_reference(self):
        source = f"movi r1, {SPM_BASE + 2}\nsw r1, 0(r1)\nhalt"
        for engine in ("fast", "reference"):
            with pytest.raises(ValueError, match="unaligned"):
                make_core(source, engine=engine).run()

    def test_spm_counters_match_reference(self):
        source = (
            f"movi r1, {SPM_BASE}\nmovi r2, 42\nsw r2, 0(r1)\n"
            "lw r3, 0(r1)\nlw r4, 0(r1)\nhalt"
        )
        fast = make_core(source, engine="fast")
        ref = make_core(source, engine="reference")
        fast.run()
        ref.run()
        assert fast.regs[3] == ref.regs[3] == 42
        assert fast.memory.spm.reads == ref.memory.spm.reads
        assert fast.memory.spm.writes == ref.memory.spm.writes
        assert fast.cycles == ref.cycles


class TestSystemThreading:
    def test_stitch_system_forwards_engine(self):
        from repro.sim.system import StitchSystem

        assert StitchSystem().engine == "auto"
        assert StitchSystem(engine="reference").engine == "reference"

    def test_build_system_forwards_engine(self):
        import inspect

        from repro.sim.baselines import AppEvaluator

        signature = inspect.signature(AppEvaluator.build_system)
        assert "engine" in signature.parameters
