"""Unit tests for the in-order core interpreter and its cycle model."""

import pytest

from repro.cpu import (
    ATTRIBUTION_BUCKETS,
    BlockedError,
    CommPort,
    Core,
    PatchPort,
    STOP_HALT,
    STOP_LIMIT,
    STOP_RECV,
)
from repro.isa import assemble
from repro.mem import MemorySystem, SPM_BASE


def make_core(source, profile=False, **regs):
    core = Core(assemble(source), MemorySystem.stitch(), profile=profile)
    if regs:
        core.set_regs(**regs)
    return core


class TestArithmetic:
    def test_add_chain(self):
        core = make_core("movi r1, 3\nmovi r2, 4\nadd r3, r1, r2\nhalt")
        result = core.run()
        assert result.reason == STOP_HALT
        assert core.regs[3] == 7

    def test_overflow_wraps(self):
        core = make_core("movi r1, 0x7FFFFFFF\naddi r1, r1, 1\nhalt")
        core.run()
        assert core.regs[1] == -0x80000000

    def test_r0_is_hardwired_zero(self):
        core = make_core("movi r0, 55\nadd r0, r0, r0\nmov r1, r0\nhalt")
        core.run()
        assert core.regs[0] == 0
        assert core.regs[1] == 0

    def test_logic_and_compare(self):
        core = make_core(
            "movi r1, 12\nmovi r2, 10\nand r3, r1, r2\nor r4, r1, r2\n"
            "xor r5, r1, r2\nslt r6, r2, r1\nseq r7, r1, r1\nhalt"
        )
        core.run()
        assert core.regs[3] == 8
        assert core.regs[4] == 14
        assert core.regs[5] == 6
        assert core.regs[6] == 1
        assert core.regs[7] == 1

    def test_shifts(self):
        core = make_core(
            "movi r1, -16\nsrai r2, r1, 2\nsrli r3, r1, 28\nslli r4, r1, 1\nhalt"
        )
        core.run()
        assert core.regs[2] == -4
        assert core.regs[3] == 0xF
        assert core.regs[4] == -32

    def test_mul_and_mulh(self):
        core = make_core(
            "movi r1, 0x10000\nmul r2, r1, r1\nmulh r3, r1, r1\nhalt"
        )
        core.run()
        assert core.regs[2] == 0
        assert core.regs[3] == 1


class TestMemoryOps:
    def test_load_store_dram(self):
        core = make_core("movi r1, 0x100\nmovi r2, -9\nsw r2, 0(r1)\nlw r3, 0(r1)\nhalt")
        core.run()
        assert core.regs[3] == -9

    def test_load_store_spm(self):
        core = make_core(
            f"movi r1, {SPM_BASE}\nmovi r2, 77\nsw r2, 8(r1)\nlw r3, 8(r1)\nhalt"
        )
        core.run()
        assert core.regs[3] == 77
        assert core.memory.spm.dump_words(SPM_BASE + 8, 1) == [77]


class TestControlFlow:
    def test_loop_sum(self):
        source = """
            movi r1, 0      ; i
            movi r2, 0      ; sum
            movi r3, 10
        loop:
            add  r2, r2, r1
            addi r1, r1, 1
            bne  r1, r3, loop
            halt
        """
        core = make_core(source)
        core.run()
        assert core.regs[2] == 45

    def test_jal_jr_roundtrip(self):
        source = """
            jal sub
            movi r2, 1
            halt
        sub:
            movi r1, 42
            jr lr
        """
        core = make_core(source)
        core.run()
        assert core.regs[1] == 42
        assert core.regs[2] == 1

    def test_unsigned_branches(self):
        source = """
            movi r1, -1
            movi r2, 1
            bltu r2, r1, yes
            movi r3, 0
            halt
        yes:
            movi r3, 1
            halt
        """
        core = make_core(source)
        core.run()
        assert core.regs[3] == 1

    def test_running_off_end_raises(self):
        core = make_core("nop")
        with pytest.raises(IndexError):
            core.run()


class TestTiming:
    def test_straight_line_one_cycle_per_instruction(self):
        # After the cold fetch miss, ALU instructions retire 1/cycle.
        core = make_core("movi r1, 1\n" + "add r1, r1, r1\n" * 5 + "halt")
        core.run()
        cold = 30  # one I-cache line fill
        assert core.cycles == cold + 7

    def test_two_word_instructions_issue_in_one_cycle(self):
        a = make_core("movi r1, 1\nmovi r2, 2\nmovi r3, 3\nhalt")
        b = make_core("mov r1, r0\nmov r2, r0\nmov r3, r0\nhalt")
        a.run()
        b.run()
        assert a.cycles == b.cycles

    def test_taken_branch_pays_penalty(self):
        jump = make_core("jmp next\nnext: halt")
        straight = make_core("nop\nhalt")
        jump.run()
        straight.run()
        # Identical instruction counts; the jump pays a 1-cycle redirect.
        assert jump.cycles == straight.cycles + 1

    def test_taken_and_not_taken_balance(self):
        taken = make_core("movi r1, 1\nbeq r1, r1, over\nnop\nover: halt")
        fallthrough = make_core("movi r1, 1\nbne r1, r1, over\nnop\nover: halt")
        taken.run()
        fallthrough.run()
        # Taken skips the nop (saving 1) but pays the redirect (+1).
        assert taken.cycles == fallthrough.cycles

    def test_dram_load_stalls(self):
        hits = make_core(f"movi r1, {SPM_BASE}\nlw r2, 0(r1)\nhalt")
        misses = make_core("movi r1, 0x100\nlw r2, 0(r1)\nhalt")
        hits.run()
        misses.run()
        assert misses.cycles - hits.cycles == 30

    def test_max_instructions_limit_resumable(self):
        core = make_core("movi r1, 0\nloop: addi r1, r1, 1\njmp loop")
        result = core.run(max_instructions=100)
        assert result.reason == STOP_LIMIT
        assert core.instret == 100
        result = core.run(max_instructions=100)
        assert core.instret == 200

    def test_max_cycles_limit(self):
        core = make_core("loop: jmp loop")
        result = core.run(max_cycles=500)
        assert result.reason == STOP_LIMIT
        assert core.cycles >= 500


class _RecordingPatch(PatchPort):
    def __init__(self):
        self.calls = []

    def execute(self, cfg_id, in_values):
        self.calls.append((cfg_id, list(in_values)))
        return [sum(in_values), 0]


class TestPatchPort:
    def test_cix_dispatches_to_patch(self):
        program = assemble(
            "movi r1, 5\nmovi r2, 6\ncix 3, (r4, r5), (r1, r2)\nhalt"
        )
        patch = _RecordingPatch()
        core = Core(program, MemorySystem.stitch(), patch=patch)
        core.run()
        assert patch.calls == [(3, [5, 6])]
        assert core.regs[4] == 11
        assert core.regs[5] == 0

    def test_cix_single_cycle(self):
        program = assemble("cix 0, (r1), (r2)\n" * 4 + "halt")
        core = Core(program, MemorySystem.stitch(), patch=_RecordingPatch())
        core.run()
        assert core.cycles == 30 + 5

    def test_cix_without_patch_raises(self):
        core = make_core("cix 0, (r1), (r2)\nhalt")
        with pytest.raises(BlockedError):
            core.run()


class _ScriptedComm(CommPort):
    """Delivers queued messages; records sends."""

    def __init__(self):
        self.sent = []
        self.inbox = []

    def send(self, peer, values, now):
        self.sent.append((peer, list(values)))
        return now + len(values)

    def try_recv(self, peer, count, now):
        if not self.inbox:
            return None
        values = self.inbox.pop(0)
        return values, now + len(values)


class TestCommPort:
    def test_send_reads_memory(self):
        program = assemble(
            "movi r1, 2\nmovi r2, 0x100\nmovi r3, 3\nsend r1, r2, r3\nhalt"
        )
        comm = _ScriptedComm()
        core = Core(program, MemorySystem.stitch(), comm=comm)
        core.memory.load(0x100, [10, 20, 30])
        core.run()
        assert comm.sent == [(2, [10, 20, 30])]

    def test_recv_blocks_then_resumes(self):
        program = assemble(
            "movi r1, 2\nmovi r2, 0x200\nmovi r3, 2\nrecv r1, r2, r3\nlw r4, 0(r2)\nhalt"
        )
        comm = _ScriptedComm()
        core = Core(program, MemorySystem.stitch(), comm=comm)
        result = core.run()
        assert result.reason == STOP_RECV
        pc_blocked = core.pc
        comm.inbox.append([7, 8])
        result = core.run()
        assert result.reason == STOP_HALT
        assert core.regs[4] == 7
        assert core.memory.dump(0x200, 2) == [7, 8]
        assert pc_blocked == 3  # the recv did not retire while blocked

    def test_comm_without_network_raises(self):
        core = make_core("movi r1, 4\nsend r1, r1, r1\nhalt")
        with pytest.raises(BlockedError):
            core.run()


class TestProfiling:
    def test_block_counts(self):
        source = """
            movi r1, 0
            movi r3, 5
        loop:
            addi r1, r1, 1
            bne  r1, r3, loop
            halt
        """
        core = make_core(source, profile=True)
        core.run()
        blocks = core.program.basic_blocks()
        assert core.block_counts[blocks[0].start] == 1
        assert core.block_counts[blocks[1].start] == 5
        counts = core.block_instruction_counts()
        assert counts[1] == 10

    def test_profile_disabled_raises(self):
        core = make_core("halt")
        core.run()
        with pytest.raises(RuntimeError):
            core.block_instruction_counts()

    def test_instret_matches_dynamic_count(self):
        core = make_core(
            "movi r1, 0\nmovi r3, 5\nloop: addi r1, r1, 1\nbne r1, r3, loop\nhalt",
            profile=True,
        )
        core.run()
        assert core.instret == sum(core.block_instruction_counts().values())


class TestAttribution:
    """Every cycle lands in exactly one bucket: the V500 invariant."""

    def check(self, core):
        attribution = core.attribution()
        assert sum(attribution[b] for b in ATTRIBUTION_BUCKETS) == core.cycles
        assert attribution["total"] == core.cycles
        for bucket in ATTRIBUTION_BUCKETS:
            assert attribution[bucket] >= 0
        return attribution

    def test_straight_line_is_compute_plus_icache(self):
        core = make_core("movi r1, 1\n" + "add r1, r1, r1\n" * 5 + "halt")
        core.run()
        attribution = self.check(core)
        assert attribution["compute"] == core.instret == 7
        assert attribution["icache_stall"] == 30  # cold line fill
        assert attribution["memory_stall"] == 0
        assert attribution["branch_bubble"] == 0

    def test_taken_branches_fill_bubble_bucket(self):
        core = make_core(
            "movi r1, 0\nmovi r3, 5\nloop: addi r1, r1, 1\nbne r1, r3, loop\nhalt"
        )
        core.run()
        attribution = self.check(core)
        assert attribution["branch_bubble"] == 4  # four taken back-edges

    def test_dram_miss_fills_memory_bucket(self):
        core = make_core("movi r1, 0x100\nlw r2, 0(r1)\nhalt")
        core.run()
        attribution = self.check(core)
        assert attribution["memory_stall"] == 30

    def test_send_charges_comm_bucket(self):
        program = assemble(
            "movi r1, 2\nmovi r2, 0x100\nmovi r3, 3\nsend r1, r2, r3\nhalt"
        )
        core = Core(program, MemorySystem.stitch(), comm=_ScriptedComm())
        core.memory.load(0x100, [10, 20, 30])
        core.run()
        attribution = self.check(core)
        # _ScriptedComm finishes a 3-word send at now+3: one issue slot
        # plus two cycles attributed to communication.
        assert attribution["comm_blocked"] == 2

    def test_blocked_recv_charges_wait_on_resume(self):
        program = assemble(
            "movi r1, 2\nmovi r2, 0x200\nmovi r3, 2\nrecv r1, r2, r3\nhalt"
        )
        comm = _ScriptedComm()
        core = Core(program, MemorySystem.stitch(), comm=comm)
        assert core.run().reason == STOP_RECV
        self.check(core)  # blocked: nothing advanced, invariant holds
        comm.inbox.append([7, 8])
        core.run()
        attribution = self.check(core)
        assert attribution["comm_blocked"] == 1  # 2-word recv: finish - start - 1

    def test_invariant_holds_across_resumable_slices(self):
        core = make_core(
            "movi r1, 0\nloop: addi r1, r1, 1\nslti r2, r1, 200\nbne r2, r0, loop\nhalt"
        )
        while core.run(max_instructions=37).reason == STOP_LIMIT:
            self.check(core)
        assert core.halted
        self.check(core)

    def test_tracer_records_slice_spans(self):
        from repro.telemetry import Tracer

        tracer = Tracer()
        core = Core(
            assemble("movi r1, 1\nadd r1, r1, r1\nhalt"),
            MemorySystem.stitch(),
            tracer=tracer,
            core_id=4,
        )
        core.run()
        spans = [e for e in tracer.events if e.kind == "span"]
        assert spans and spans[-1].track == ("tiles", 4)
        assert spans[-1].args["reason"] == "halt"
        misses = [e for e in tracer.events if e.name == "icache miss"]
        assert misses  # the cold fetch
