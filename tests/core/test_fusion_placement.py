"""Unit tests for fusion timing (Table IV arithmetic) and placement."""

import pytest

from repro.core import (
    AT_AS,
    AT_MA,
    AT_SA,
    DEFAULT_PLACEMENT,
    FusedConfig,
    FusionTiming,
    PatchConfig,
    Placement,
    UnitConfig,
)
from repro.core.fusion import MAX_FUSION_HOPS
from repro.core.units import Source
from repro.isa import Op


class TestFusionTiming:
    def test_single_patch_delays_match_paper(self):
        # Paper: single {AT-SA} incl. NoC overhead = 1.02 + 2 x 0.17 = 1.36.
        assert FusionTiming.single_delay(AT_SA) == pytest.approx(1.36)
        assert FusionTiming.single_delay(AT_MA) == pytest.approx(1.72)

    def test_critical_path_is_4_63ns(self):
        # Paper: {AT-MA} + {AT-AS}, 3 hops apart -> 4.63 ns.
        assert FusionTiming.fused_delay(AT_MA, AT_AS, 3) == pytest.approx(4.63)

    def test_all_legal_fusions_fit_the_200mhz_clock(self):
        for a in (AT_MA, AT_AS, AT_SA):
            for b in (AT_MA, AT_AS, AT_SA):
                for hops in range(1, MAX_FUSION_HOPS + 1):
                    delay = FusionTiming.fused_delay(a, b, hops)
                    assert FusionTiming.fits_single_cycle(delay)

    def test_max_fused_delay_under_clock(self):
        assert FusionTiming.max_fused_delay() < FusionTiming.clock_ns

    def test_zero_hop_fusion_rejected(self):
        with pytest.raises(ValueError):
            FusionTiming.fused_delay(AT_MA, AT_AS, 0)

    def test_validate_placement_hop_limit(self):
        cfg = PatchConfig(AT_MA, u0=UnitConfig(Op.ADD, Source.EXT0, Source.EXT1))
        fused = FusedConfig(cfg, cfg, b_ext=("a_out0", "ext1", "ext2", "ext3"),
                            outs=("b_out0",))
        fused.validate_placement(hops=MAX_FUSION_HOPS)
        with pytest.raises(ValueError):
            fused.validate_placement(hops=MAX_FUSION_HOPS + 1)


class TestPlacement:
    def test_paper_patch_mix(self):
        assert DEFAULT_PLACEMENT.counts() == {"AT-MA": 8, "AT-AS": 4, "AT-SA": 4}

    def test_figure5_example_layout(self):
        # Paper tiles 2 and 10 carry {AT-AS} with tile 6 between them.
        mesh = DEFAULT_PLACEMENT.mesh
        assert DEFAULT_PLACEMENT.type_of(mesh.from_paper(2)) == AT_AS
        assert DEFAULT_PLACEMENT.type_of(mesh.from_paper(10)) == AT_AS
        assert mesh.xy_route(mesh.from_paper(2), mesh.from_paper(10)) == [
            mesh.from_paper(2), mesh.from_paper(6), mesh.from_paper(10)
        ]

    def test_every_type_within_fusion_radius_of_every_tile(self):
        placement = DEFAULT_PLACEMENT
        for tile in range(16):
            for ptype in (AT_MA, AT_AS, AT_SA):
                available = placement.type_of(tile) == ptype or any(
                    other != tile and placement.hops(tile, other) <= MAX_FUSION_HOPS
                    for other in placement.tiles_of(ptype)
                )
                assert available, f"tile {tile} cannot reach any {ptype.name}"

    def test_same_type_pairs_exist_within_radius(self):
        # Fusing two patches of the same type (e.g. {AT-AS, AT-AS} in
        # Figure 5) must be possible for every type.
        placement = DEFAULT_PLACEMENT
        for ptype in (AT_MA, AT_AS, AT_SA):
            tiles = placement.tiles_of(ptype)
            assert any(
                placement.hops(a, b) <= MAX_FUSION_HOPS
                for i, a in enumerate(tiles)
                for b in tiles[i + 1:]
            )

    def test_tiles_of_partitions_the_mesh(self):
        placement = DEFAULT_PLACEMENT
        all_tiles = sorted(
            placement.tiles_of(AT_MA)
            + placement.tiles_of(AT_AS)
            + placement.tiles_of(AT_SA)
        )
        assert all_tiles == list(range(16))

    def test_homogeneous_ablation_layout(self):
        placement = Placement.homogeneous(AT_MA)
        assert placement.counts() == {"AT-MA": 16, "AT-AS": 0, "AT-SA": 0}

    def test_wrong_layout_size_rejected(self):
        with pytest.raises(ValueError):
            Placement(layout=(AT_MA,) * 15)
