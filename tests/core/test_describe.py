"""StitchPlan.describe(): per-assignment path hops and ns delay."""

from repro.core.stitching import BASELINE, stitch_application
from repro.interpatch.timing import fused_path_delay_ns


class TestSyntheticDescribe:
    def test_exact_text_is_pinned(self):
        # Deterministic tables over the default 4x4 placement; cycles
        # are synthetic so the text can be pinned exactly.
        tables = {
            0: {BASELINE: 1000, "AT-MA+AT-AS": 400},
            1: {BASELINE: 300},
        }
        plan = stitch_application("pinned", tables)
        origin = plan.assignments[0]
        delay = fused_path_delay_ns(
            plan.placement.type_of(origin.tile),
            plan.placement.type_of(origin.remote_tile),
            origin.path,
        )
        route = "->".join(str(t) for t in origin.path)
        assert plan.describe() == (
            "Stitching for pinned:\n"
            f"  Assignment(stage 0 @ tile {origin.tile} + tile "
            f"{origin.remote_tile}: AT-MA+AT-AS, 400 cyc)\n"
            f"    path {route}: 1 hop, 2 round-trip traversals, "
            f"{delay:.2f} ns fused delay\n"
            f"  Assignment(stage 1 @ tile {plan.assignments[1].tile}: "
            "baseline, 300 cyc)"
        )

    def test_singles_have_no_path_line(self):
        tables = {0: {BASELINE: 1000, "AT-MA": 400}}
        plan = stitch_application("t", tables)
        text = plan.describe()
        assert "path" not in text
        assert "AT-MA" in text

    def test_describe_without_placement_omits_delay(self):
        tables = {0: {BASELINE: 1000, "AT-MA+AT-AS": 400}}
        plan = stitch_application("t", tables)
        plan.placement = None
        text = plan.describe()
        assert "round-trip traversals" in text
        assert "ns fused delay" not in text


class TestApp1Describe:
    def test_app1_fused_assignments_show_hops_and_delay(self):
        from repro.sim.baselines import ARCH_STITCH, AppEvaluator
        from repro.workloads.apps import APP_FACTORIES

        evaluator = AppEvaluator(APP_FACTORIES["APP1"](seed=1))
        plan = evaluator.plan(ARCH_STITCH)
        text = plan.describe()
        lines = text.splitlines()
        assert lines[0] == f"Stitching for {plan.app_name}:"
        fused = plan.fused_pairs()
        assert fused  # APP1's FFT stages stitch (Table 1 / Fig. 10)
        path_lines = [ln for ln in lines if ln.startswith("    path ")]
        assert len(path_lines) == len(fused)
        for line in path_lines:
            assert "ns fused delay" in line
            assert "round-trip traversals" in line
        # Every stage appears exactly once.
        stage_lines = [ln for ln in lines if ln.startswith("  Assignment")]
        assert len(stage_lines) == len(plan.assignments)
