"""Unit tests for functional patch execution (single and fused)."""

import pytest

from repro.core import (
    AT_AS,
    AT_MA,
    AT_SA,
    FusedConfig,
    PatchConfig,
    PatchExecutor,
    TMode,
    UnitConfig,
)
from repro.core.executor import evaluate_fused, evaluate_patch
from repro.core.units import Source
from repro.isa import Op
from repro.mem import MemorySystem, SPM_BASE


def mem_with(values, base=SPM_BASE):
    memory = MemorySystem.stitch()
    memory.load(base, values)
    return memory


class TestSinglePatch:
    def test_alu_only(self):
        cfg = PatchConfig(AT_MA, u0=UnitConfig(Op.ADD, Source.EXT0, Source.EXT1))
        out0, out1 = evaluate_patch(cfg, [3, 4, 0, 0], None)
        assert (out0, out1) == (7, None)

    def test_at_chain_load(self):
        # ext0 + ext1 computes an SPM address; the LMAU loads from it.
        memory = mem_with([111, 222])
        cfg = PatchConfig(
            AT_MA, u0=UnitConfig(Op.ADD, Source.EXT0, Source.EXT1), t=TMode.LOAD
        )
        out0, _ = evaluate_patch(cfg, [SPM_BASE, 4, 0, 0], memory)
        assert out0 == 222

    def test_store_data_chain(self):
        # Computed value (ext0 ^ ext1) stored to address ext2.
        memory = MemorySystem.stitch()
        cfg = PatchConfig(
            AT_MA,
            u0=UnitConfig(Op.XOR, Source.EXT0, Source.EXT1),
            t=TMode.STORE_DATA_CHAIN,
        )
        evaluate_patch(cfg, [0b1100, 0b1010, SPM_BASE + 8, 0], memory)
        assert memory.spm.dump_words(SPM_BASE + 8, 1) == [0b0110]

    def test_store_addr_chain(self):
        # Computed address (ext0 + ext1), data from ext3.
        memory = MemorySystem.stitch()
        cfg = PatchConfig(
            AT_MA,
            u0=UnitConfig(Op.ADD, Source.EXT0, Source.EXT1),
            t=TMode.STORE_ADDR_CHAIN,
        )
        out0, _ = evaluate_patch(cfg, [SPM_BASE, 12, 0, -7], memory)
        assert memory.spm.dump_words(SPM_BASE + 12, 1) == [-7]
        assert out0 == -7  # stored data forwards on the chain

    def test_lmau_without_memory_raises(self):
        cfg = PatchConfig(AT_MA, t=TMode.LOAD)
        with pytest.raises(RuntimeError):
            evaluate_patch(cfg, [SPM_BASE, 0, 0, 0], None)

    def test_ma_tail_mul_then_add(self):
        # (load SPM[ext0]) * ext1 + ext2 via AT-MA full chain.
        memory = mem_with([5])
        cfg = PatchConfig(
            AT_MA,
            t=TMode.LOAD,
            u2=UnitConfig(Op.MUL, Source.CHAIN, Source.EXT1),
            u3=UnitConfig(Op.ADD, Source.CHAIN, Source.EXT2),
        )
        out0, out1 = evaluate_patch(cfg, [SPM_BASE, 3, 10, 0], memory)
        assert out0 == 25
        assert out1 == 5  # the AT half's value is the second output

    def test_as_tail_add_then_shift(self):
        cfg = PatchConfig(
            AT_AS,
            u0=UnitConfig(Op.ADD, Source.EXT0, Source.EXT1),
            u2=UnitConfig(Op.ADD, Source.CHAIN, Source.EXT2),
            u3=UnitConfig(Op.SLL, Source.CHAIN, Source.EXT3),
        )
        out0, out1 = evaluate_patch(cfg, [1, 2, 3, 4], None)
        assert out0 == (1 + 2 + 3) << 4
        assert out1 == 3

    def test_sa_tail_shift_then_add(self):
        cfg = PatchConfig(
            AT_SA,
            u2=UnitConfig(Op.SRA, Source.EXT2, Source.EXT1),
            u3=UnitConfig(Op.ADD, Source.CHAIN, Source.EXT3),
        )
        out0, _ = evaluate_patch(cfg, [0, 2, -16, 100], None)
        assert out0 == 100 + (-16 >> 2)

    def test_chain_on_both_inputs_squares(self):
        cfg = PatchConfig(
            AT_MA,
            u0=UnitConfig(Op.ADD, Source.EXT0, Source.EXT1),
            u2=UnitConfig(Op.MUL, Source.CHAIN, Source.CHAIN),
        )
        out0, _ = evaluate_patch(cfg, [3, 4, 0, 0], None)
        assert out0 == 49

    def test_aa_pattern_via_bypass(self):
        # Section III-A: {AA} on AT-MA with T and M bypassed.
        cfg = PatchConfig(
            AT_MA,
            u0=UnitConfig(Op.ADD, Source.EXT0, Source.EXT1),
            u3=UnitConfig(Op.SUB, Source.CHAIN, Source.EXT2),
        )
        out0, out1 = evaluate_patch(cfg, [10, 20, 5, 0], None)
        assert out0 == 25
        assert out1 == 30  # intermediate connection exposes both values

    def test_chain_defaults_to_ext0(self):
        cfg = PatchConfig(AT_SA, u2=UnitConfig(Op.SLL, Source.CHAIN, Source.EXT1))
        out0, _ = evaluate_patch(cfg, [1, 4, 0, 0], None)
        assert out0 == 16


class TestFusedPatch:
    def make_fused(self):
        # A: (ext0 + ext1) << ext2 on AT-AS;  B: result - ext3 on AT-AS.
        cfg_a = PatchConfig(
            AT_AS,
            u0=UnitConfig(Op.ADD, Source.EXT0, Source.EXT1),
            u3=UnitConfig(Op.SLL, Source.CHAIN, Source.EXT2),
        )
        cfg_b = PatchConfig(
            AT_AS,
            u0=UnitConfig(Op.SUB, Source.EXT0, Source.EXT1),
        )
        return FusedConfig(
            cfg_a, cfg_b, b_ext=("a_out0", "ext3", "ext2", "ext3"),
            outs=("b_out0",),
        )

    def test_fused_dataflow(self):
        fused = self.make_fused()
        outs = evaluate_fused(fused, [3, 4, 2, 10], None, None)
        assert outs == (((3 + 4) << 2) - 10,)

    def test_two_outputs(self):
        cfg_a = PatchConfig(AT_AS, u0=UnitConfig(Op.ADD, Source.EXT0, Source.EXT1))
        cfg_b = PatchConfig(AT_AS, u0=UnitConfig(Op.XOR, Source.EXT0, Source.EXT1))
        fused = FusedConfig(
            cfg_a, cfg_b, b_ext=("a_out0", "ext2", "ext2", "ext3"),
            outs=("a_out0", "b_out0"),
        )
        outs = evaluate_fused(fused, [1, 2, 4, 0], None, None)
        assert outs == (3, 3 ^ 4)

    def test_control_bits_fit_38(self):
        fused = self.make_fused()
        assert 0 <= fused.control_bits() < (1 << 38)

    def test_b_ext_must_wire_all_slots(self):
        cfg = PatchConfig(AT_AS, u0=UnitConfig(Op.ADD, Source.EXT0, Source.EXT1))
        with pytest.raises(ValueError):
            FusedConfig(cfg, cfg, b_ext=("a_out0",), outs=("b_out0",))

    def test_illegal_out_source_rejected(self):
        cfg = PatchConfig(AT_AS, u0=UnitConfig(Op.ADD, Source.EXT0, Source.EXT1))
        with pytest.raises(ValueError):
            FusedConfig(cfg, cfg, b_ext=("ext0",) * 4, outs=("c_out0",))


class TestPatchExecutor:
    def test_executor_pads_operands(self):
        cfg = PatchConfig(AT_MA, u0=UnitConfig(Op.ADD, Source.EXT0, Source.EXT1))
        executor = PatchExecutor([cfg], MemorySystem.stitch())
        assert executor.execute(0, [5]) == [5, 0]
        assert executor.executions == 1

    def test_executor_fused_requires_bound_remote_spm(self):
        cfg_a = PatchConfig(AT_AS, u0=UnitConfig(Op.ADD, Source.EXT0, Source.EXT1))
        cfg_b = PatchConfig(AT_AS, t=TMode.LOAD)
        fused = FusedConfig(
            cfg_a, cfg_b, b_ext=("a_out0", "ext1", "ext2", "ext3"),
            outs=("b_out0",),
        )
        executor = PatchExecutor([fused], MemorySystem.stitch())
        with pytest.raises(RuntimeError):
            executor.execute(0, [SPM_BASE, 0, 0, 0])

    def test_executor_fused_remote_spm(self):
        remote = MemorySystem.stitch()
        remote.load(SPM_BASE + 4, [99])
        cfg_a = PatchConfig(AT_AS, u0=UnitConfig(Op.ADD, Source.EXT0, Source.EXT1))
        cfg_b = PatchConfig(AT_AS, t=TMode.LOAD)
        fused = FusedConfig(
            cfg_a, cfg_b, b_ext=("a_out0", "ext1", "ext2", "ext3"),
            outs=("b_out0",), remote_tile=5,
        )
        executor = PatchExecutor(
            [fused], MemorySystem.stitch(), remote_memories={5: remote}
        )
        assert executor.execute(0, [SPM_BASE, 4, 0, 0]) == [99]
        assert executor.fused_executions == 1

    def test_unknown_config_id(self):
        executor = PatchExecutor([], MemorySystem.stitch())
        with pytest.raises(IndexError):
            executor.execute(0, [1])
