"""Unit tests for Algorithm 1 and the plan variants."""

import pytest

from repro.core.stitching import (
    BASELINE,
    stitch_application,
    stitch_best,
    upgrade_plan,
)


def tables(entries):
    """Helper: {sid: {option: cycles}} with baseline first."""
    return {
        sid: dict(options) for sid, options in entries.items()
    }


class TestAlgorithm1:
    def test_bottleneck_gets_best_patch(self):
        cycles = tables({
            0: {BASELINE: 1000, "AT-MA": 600, "AT-AS": 700},
            1: {BASELINE: 100},
        })
        plan = stitch_application("t", cycles)
        assert plan.assignments[0].option == "AT-MA"
        assert plan.assignments[0].cycles == 600
        assert plan.assignments[1].option == BASELINE

    def test_origin_tile_carries_local_type(self):
        cycles = tables({0: {BASELINE: 1000, "AT-AS": 500}})
        plan = stitch_application("t", cycles)
        tile = plan.assignments[0].tile
        from repro.core import DEFAULT_PLACEMENT
        assert DEFAULT_PLACEMENT.type_of(tile).name == "AT-AS"

    def test_fused_option_reserves_remote_patch_and_path(self):
        cycles = tables({0: {BASELINE: 1000, "AT-MA+AT-AS": 400}})
        plan = stitch_application("t", cycles)
        assignment = plan.assignments[0]
        assert assignment.fused
        assert assignment.path is not None
        assert len(plan.network.stitchings) == 1
        from repro.core import DEFAULT_PLACEMENT
        assert DEFAULT_PLACEMENT.type_of(assignment.tile).name == "AT-MA"
        assert DEFAULT_PLACEMENT.type_of(assignment.remote_tile).name == "AT-AS"

    def test_patch_exhaustion(self):
        # 5 identical kernels wanting AT-AS pairs; only 4 AS patches.
        cycles = tables({
            sid: {BASELINE: 1000, "AT-AS+AT-AS": 400} for sid in range(5)
        })
        plan = stitch_application("t", cycles)
        fused = plan.fused_pairs()
        assert len(fused) == 2
        assert plan.bottleneck_cycles() == 1000  # three kernels starve

    def test_stops_when_bottleneck_unimprovable(self):
        cycles = tables({
            0: {BASELINE: 1000},                 # no options at all
            1: {BASELINE: 900, "AT-MA": 100},
        })
        plan = stitch_application("t", cycles)
        # Bottleneck (0) cannot improve -> algorithm returns; stage 1
        # keeps its baseline per the paper's early return.
        assert plan.assignments[1].option == BASELINE

    def test_all_stages_get_distinct_tiles(self):
        cycles = tables({
            sid: {BASELINE: 100 + sid, "AT-MA": 50} for sid in range(16)
        })
        plan = stitch_application("t", cycles)
        tiles = [a.tile for a in plan.assignments.values()]
        assert sorted(tiles) == list(range(16))

    def test_remote_tile_may_host_another_kernel(self):
        # Stage 0 fuses; its remote tile still hosts some stage.
        cycles = tables({
            0: {BASELINE: 1000, "AT-MA+AT-AS": 300},
            **{sid: {BASELINE: 10} for sid in range(1, 16)},
        })
        plan = stitch_application("t", cycles)
        remote = plan.assignments[0].remote_tile
        hosts = [a.tile for a in plan.assignments.values()]
        assert remote in hosts

    def test_allowed_filter(self):
        cycles = tables({
            0: {BASELINE: 1000, "AT-MA": 600, "AT-MA+AT-AS": 300},
        })
        plan = stitch_application("t", cycles, allowed={"AT-MA"})
        assert plan.assignments[0].option == "AT-MA"


class TestPlanVariants:
    def starved_tables(self):
        # Six replicated heavy kernels: pairs starve; singles cover all.
        return tables({
            sid: {BASELINE: 1000, "AT-MA": 700, "AT-MA+AT-MA": 600}
            for sid in range(6)
        })

    def test_pure_greedy_starves(self):
        plan = stitch_application("t", self.starved_tables())
        assert plan.bottleneck_cycles() == 1000

    def test_stitch_best_recovers(self):
        plan = stitch_best("t", self.starved_tables())
        assert plan.bottleneck_cycles() <= 700

    def test_upgrade_pass_uses_leftover_patches(self):
        cycles = self.starved_tables()
        singles = {"AT-MA"}
        base_plan = stitch_application("t", cycles, allowed=singles)
        assert base_plan.bottleneck_cycles() == 700
        upgraded = upgrade_plan(base_plan, cycles)
        # 8 MA patches: 6 kernels hold one each; the leftovers upgrade
        # whichever bottleneck tile has a free MA within the hop limit.
        assert upgraded.bottleneck_cycles() == 700
        assert len(upgraded.fused_pairs()) >= 1

    def test_stitch_best_never_worse_than_singles(self):
        cycles = self.starved_tables()
        best = stitch_best("t", cycles)
        singles = stitch_best("t", cycles, allowed={"AT-MA"})
        assert best.bottleneck_cycles() <= singles.bottleneck_cycles()

    def test_too_many_stages_rejected(self):
        cycles = tables({sid: {BASELINE: 1} for sid in range(17)})
        with pytest.raises(ValueError):
            stitch_application("t", cycles)
