"""Unit tests for patch types and the 19-bit control encoding."""

import pytest

from repro.core import (
    AT_AS,
    AT_MA,
    AT_SA,
    CONTROL_BITS,
    PATCH_TYPES,
    PatchConfig,
    TMode,
    UnitConfig,
)
from repro.core.units import Source, UnitKind
from repro.isa import Op


def cfg_add(in1=Source.EXT0, in2=Source.EXT1):
    return UnitConfig(Op.ADD, in1, in2)


class TestPatchTypes:
    def test_chain_signatures(self):
        assert AT_MA.chain_signature == "ATMA"
        assert AT_AS.chain_signature == "ATAS"
        assert AT_SA.chain_signature == "ATSA"

    def test_all_types_share_at_prefix(self):
        for ptype in PATCH_TYPES.values():
            kinds = ptype.kinds()
            assert kinds[0] is UnitKind.ALU
            assert kinds[1] is UnitKind.LMAU

    def test_table4_synthesis_numbers(self):
        assert AT_MA.delay_ns == 1.38 and AT_MA.area_um2 == 4152
        assert AT_AS.delay_ns == 1.12 and AT_AS.area_um2 == 2096
        assert AT_SA.delay_ns == 1.02 and AT_SA.area_um2 == 2157

    def test_equality_by_name(self):
        assert AT_MA == PATCH_TYPES["AT-MA"]
        assert AT_MA != AT_AS


class TestConfigValidation:
    def test_minimal_alu_config(self):
        cfg = PatchConfig(AT_MA, u0=cfg_add())
        assert cfg.active_positions() == [0]
        assert cfg.signature() == "A"

    def test_at_load_config(self):
        cfg = PatchConfig(AT_MA, u0=cfg_add(), t=TMode.LOAD)
        assert cfg.signature() == "AT"
        assert cfg.uses_lmau()

    def test_empty_config_rejected(self):
        with pytest.raises(ValueError):
            PatchConfig(AT_MA)

    def test_op_menu_enforced_on_late_alu(self):
        # SLT is only available on the first ALU, not position 3.
        with pytest.raises(ValueError):
            PatchConfig(AT_MA, u3=UnitConfig(Op.SLT, Source.CHAIN, Source.EXT0))

    def test_unit_kind_enforced(self):
        # Position 2 of AT-MA is the multiplier; shifts do not fit.
        with pytest.raises(ValueError):
            PatchConfig(AT_MA, u2=UnitConfig(Op.SLL, Source.CHAIN, Source.EXT1))
        PatchConfig(AT_MA, u2=UnitConfig(Op.MUL, Source.CHAIN, Source.EXT1))

    def test_in1_mux_restriction_on_late_units(self):
        with pytest.raises(ValueError):
            PatchConfig(AT_AS, u2=UnitConfig(Op.ADD, Source.EXT1, Source.EXT2))
        PatchConfig(AT_AS, u2=UnitConfig(Op.ADD, Source.EXT2, Source.EXT1))

    def test_first_alu_takes_any_ext_but_not_chain(self):
        with pytest.raises(ValueError):
            PatchConfig(AT_MA, u0=UnitConfig(Op.ADD, Source.CHAIN, Source.EXT0))
        PatchConfig(AT_MA, u0=UnitConfig(Op.ADD, Source.EXT3, Source.EXT2))

    def test_full_chain_signature(self):
        cfg = PatchConfig(
            AT_AS,
            u0=cfg_add(),
            t=TMode.LOAD,
            u2=UnitConfig(Op.ADD, Source.CHAIN, Source.EXT2),
            u3=UnitConfig(Op.SLL, Source.CHAIN, Source.EXT3),
        )
        assert cfg.signature() == "ATAS"


class TestExtSlotTracking:
    def test_simple_alu_slots(self):
        cfg = PatchConfig(AT_MA, u0=UnitConfig(Op.ADD, Source.EXT0, Source.EXT3))
        assert cfg.ext_slots_used() == [0, 3]

    def test_lone_load_consumes_ext0_via_chain_default(self):
        cfg = PatchConfig(AT_MA, t=TMode.LOAD)
        assert cfg.ext_slots_used() == [0]

    def test_store_modes_consume_their_slots(self):
        cfg = PatchConfig(AT_MA, u0=cfg_add(), t=TMode.STORE_DATA_CHAIN)
        assert 2 in cfg.ext_slots_used()
        cfg = PatchConfig(AT_MA, u0=cfg_add(), t=TMode.STORE_ADDR_CHAIN)
        assert 3 in cfg.ext_slots_used()

    def test_chain_default_through_late_unit(self):
        cfg = PatchConfig(AT_MA, u2=UnitConfig(Op.MUL, Source.CHAIN, Source.EXT1))
        assert cfg.ext_slots_used() == [0, 1]


class TestEncoding:
    def sample_configs(self):
        return [
            PatchConfig(AT_MA, u0=cfg_add()),
            PatchConfig(AT_MA, u0=cfg_add(), t=TMode.LOAD),
            PatchConfig(
                AT_MA,
                u0=UnitConfig(Op.SUB, Source.EXT2, Source.EXT3),
                t=TMode.LOAD,
                u2=UnitConfig(Op.MULH, Source.CHAIN, Source.EXT1),
                u3=UnitConfig(Op.XOR, Source.EXT2, Source.EXT1),
            ),
            PatchConfig(
                AT_AS,
                u0=UnitConfig(Op.SEQ, Source.EXT1, Source.EXT0),
                u3=UnitConfig(Op.SRA, Source.CHAIN, Source.EXT3),
            ),
            PatchConfig(
                AT_MA,
                u0=UnitConfig(Op.ADD, Source.EXT0, Source.EXT1),
                u2=UnitConfig(Op.MUL, Source.CHAIN, Source.CHAIN),  # squaring
            ),
            PatchConfig(AT_SA, t=TMode.STORE_ADDR_CHAIN),
            PatchConfig(
                AT_SA,
                u2=UnitConfig(Op.SRL, Source.EXT2, Source.EXT1),
                u3=UnitConfig(Op.ADD, Source.CHAIN, Source.EXT1),
            ),
        ]

    def test_fits_19_bits(self):
        for cfg in self.sample_configs():
            assert 0 <= cfg.encode() < (1 << CONTROL_BITS)

    def test_roundtrip(self):
        for cfg in self.sample_configs():
            decoded = PatchConfig.decode(cfg.ptype, cfg.encode())
            assert decoded == cfg

    def test_distinct_configs_distinct_words(self):
        words = [cfg.encode() for cfg in self.sample_configs()]
        assert len(set(words)) == len(words)

    def test_decode_rejects_oversized_word(self):
        with pytest.raises(ValueError):
            PatchConfig.decode(AT_MA, 1 << CONTROL_BITS)
