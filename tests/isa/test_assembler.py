"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa import AssemblerError, Op, assemble


SAMPLE = """
.equ N 64
# accumulate squares
start:
    movi r4, 0
    movi r2, 0
    movi r5, N
loop:
    lw   r1, 0(r2)      ; load element
    mul  r3, r1, r1
    add  r4, r4, r3
    addi r2, r2, 4
    bne  r2, r5, loop
    halt
"""


class TestBasicParsing:
    def test_instruction_count(self):
        program = assemble(SAMPLE)
        assert len(program) == 9

    def test_labels_resolved_to_indices(self):
        program = assemble(SAMPLE)
        branch = program[7]
        assert branch.op is Op.BNE
        assert branch.target == program.labels["loop"] == 3

    def test_equ_symbol_substitution(self):
        program = assemble(SAMPLE)
        assert program[2].imm == 64
        assert program.symbols["N"] == 64

    def test_comments_both_styles(self):
        program = assemble("add r1, r2, r3 # x\nsub r1, r2, r3 ; y\n")
        assert len(program) == 2

    def test_label_on_same_line_as_instruction(self):
        program = assemble("top: addi r1, r1, 1\n jmp top")
        assert program.labels["top"] == 0
        assert program[1].target == 0

    def test_register_aliases(self):
        program = assemble("mov sp, lr\nmov zero, r3")
        assert program[0].rd == 14 and program[0].ra == 15
        assert program[1].rd == 0

    def test_negative_and_hex_immediates(self):
        program = assemble("addi r1, r1, -8\nandi r2, r2, 0xFF")
        assert program[0].imm == -8
        assert program[1].imm == 0xFF

    def test_memory_operand(self):
        program = assemble("lw r1, -4(r2)\nsw r3, 8(sp)")
        assert (program[0].rd, program[0].ra, program[0].imm) == (1, 2, -4)
        assert (program[1].rd, program[1].ra, program[1].imm) == (3, 14, 8)

    def test_comm_operands(self):
        program = assemble("send r1, r2, r3\nrecv r4, r5, r6")
        send = program[0]
        assert send.op is Op.SEND
        assert send.reads() == (1, 2, 3)

    def test_cix_groups(self):
        program = assemble("cix 7, (r5, r6), (r1, r2, r3, r4)")
        instr = program[0]
        assert instr.cfg == 7
        assert instr.outs == [5, 6]
        assert instr.ins == [1, 2, 3, 4]

    def test_cix_placeholder_dash(self):
        program = assemble("cix 0, (r5, -), (r1, -, -, -)")
        assert program[0].outs == [5]
        assert program[0].ins == [1]

    def test_movi_full_range(self):
        program = assemble("movi r1, 0xDEADBEEF\nmovi r2, -2147483648")
        assert program[0].imm == 0xDEADBEEF - (1 << 32)
        assert program[1].imm == -(1 << 31)


class TestErrors:
    @pytest.mark.parametrize(
        "source, fragment",
        [
            ("frob r1, r2, r3", "unknown mnemonic"),
            ("add r1, r2", "expects 3 operands"),
            ("add r1, r2, 5", "expected register"),
            ("addi r1, r2, 40000", "out of range"),
            ("jmp nowhere", "undefined label"),
            ("x: add r1, r1, r1\nx: halt", "duplicate label"),
            ("lw r1, r2", "expected offset(base)"),
            ("cix 1, r5, (r1)", "parenthesized"),
            ("cix 1, (r5, r6, r7), (r1)", "at most 2"),
            ("cix 1, (r5), (r1, r2, r3, r4, r5)", "at most 4"),
            ("cix 1, (), (r1)", "at least one"),
            (".equ ONLYNAME", ".equ expects"),
            ("add r99, r1, r1", "expected register"),
        ],
    )
    def test_rejects(self, source, fragment):
        with pytest.raises(AssemblerError) as excinfo:
            assemble(source)
        assert fragment in str(excinfo.value)

    def test_undefined_label_suggests_near_match(self):
        with pytest.raises(AssemblerError) as excinfo:
            assemble("loop:\naddi r1, r1, -1\nbne r1, r0, lopo\nhalt")
        message = str(excinfo.value)
        assert "undefined label 'lopo'" in message
        assert "did you mean 'loop'?" in message

    def test_undefined_label_no_suggestion_when_nothing_close(self):
        with pytest.raises(AssemblerError) as excinfo:
            assemble("start:\njmp zzzzzz\nhalt")
        message = str(excinfo.value)
        assert "undefined label 'zzzzzz'" in message
        assert "did you mean" not in message

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError) as excinfo:
            assemble("nop\nnop\nbogus r1")
        assert "line 3" in str(excinfo.value)

    def test_error_carries_program_name_and_source_line(self):
        with pytest.raises(AssemblerError) as excinfo:
            assemble("nop\nbogus r1, r2\nhalt", name="mykernel")
        message = str(excinfo.value)
        assert "mykernel" in message
        assert "line 2" in message
        assert "bogus r1, r2" in message  # the offending source text

    def test_error_exposes_structured_fields(self):
        with pytest.raises(AssemblerError) as excinfo:
            assemble("add r1, r2\n", name="short")
        error = excinfo.value
        assert error.program == "short"
        assert error.lineno == 1
        assert error.line.strip() == "add r1, r2"

    def test_undefined_label_points_at_use_site(self):
        with pytest.raises(AssemblerError) as excinfo:
            assemble("nop\njmp nowhere\nhalt", name="lost")
        error = excinfo.value
        assert error.lineno == 2
        assert "jmp nowhere" in str(error)

    def test_default_program_name(self):
        with pytest.raises(AssemblerError) as excinfo:
            assemble("frob r1")
        assert str(excinfo.value).startswith("program: ")


class TestProgramAnalysis:
    def test_basic_blocks_of_loop(self):
        program = assemble(SAMPLE)
        blocks = program.basic_blocks()
        assert [(b.start, b.end) for b in blocks] == [(0, 3), (3, 8), (8, 9)]

    def test_block_at(self):
        program = assemble(SAMPLE)
        assert program.block_at(4).index == 1
        with pytest.raises(IndexError):
            program.block_at(99)

    def test_static_words_counts_two_word_encodings(self):
        program = assemble("movi r1, 5\nadd r1, r1, r1\ncix 0, (r1), (r1)")
        assert program.static_words() == 2 + 1 + 2

    def test_text_roundtrip_reassembles(self):
        program = assemble(SAMPLE)
        again = assemble(program.text())
        assert len(again) == len(program)
        assert [i.op for i in again] == [i.op for i in program]
        assert again[7].target == program[7].target

    def test_empty_program_has_no_blocks(self):
        assert assemble("").basic_blocks() == []
