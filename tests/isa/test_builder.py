"""Unit tests for the programmatic assembly builder."""

from repro.isa import Asm, Op


class TestBuilder:
    def test_fluent_chain_assembles(self):
        asm = Asm("dot")
        loop = asm.label("loop")
        (
            asm.lw("r3", 0, "r1")
            .lw("r4", 0, "r2")
            .mul("r5", "r3", "r4")
            .add("r6", "r6", "r5")
            .addi("r1", "r1", 4)
            .addi("r2", "r2", 4)
            .bne("r1", "r7", loop)
            .halt()
        )
        program = asm.assemble()
        assert program.name == "dot"
        assert [i.op for i in program] == [
            Op.LW, Op.LW, Op.MUL, Op.ADD, Op.ADDI, Op.ADDI, Op.BNE, Op.HALT,
        ]
        assert program[6].target == 0

    def test_integer_register_arguments(self):
        asm = Asm()
        asm.add(1, 2, 3).halt()
        program = asm.assemble()
        assert (program[0].rd, program[0].ra, program[0].rb) == (1, 2, 3)

    def test_fresh_labels_are_unique(self):
        asm = Asm()
        first = asm.label()
        asm.nop()
        second = asm.label()
        asm.nop()
        assert first != second

    def test_named_label_reused_stem_gets_suffix(self):
        asm = Asm()
        a = asm.label("loop")
        asm.nop()
        b = asm.label("loop")
        asm.nop()
        assert a == "loop"
        assert b != "loop" and b.startswith("loop")

    def test_forward_label_placed_later(self):
        asm = Asm()
        done = asm.forward_label("done")
        asm.beq("r1", "r0", done)
        asm.addi("r1", "r1", 1)
        asm.place(done)
        asm.halt()
        program = asm.assemble()
        assert program[0].target == 2

    def test_equ_and_movi(self):
        asm = Asm()
        asm.equ("SIZE", 128).movi("r1", "SIZE").halt()
        program = asm.assemble()
        assert program[0].imm == 128

    def test_cix_emission(self):
        asm = Asm()
        asm.cix(3, ["r5", "r6"], ["r1", "r2"]).halt()
        program = asm.assemble()
        assert program[0].cfg == 3
        assert program[0].outs == [5, 6]

    def test_comment_and_raw_do_not_emit_instructions(self):
        asm = Asm()
        asm.comment("nothing").raw("    nop").halt()
        assert len(asm.assemble()) == 2

    def test_all_branch_variants(self):
        asm = Asm()
        top = asm.label("top")
        for branch in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            getattr(asm, branch)("r1", "r2", top)
        asm.halt()
        program = asm.assemble()
        assert all(program[i].target == 0 for i in range(6))
