"""Unit tests for instruction metadata and reference semantics."""

import pytest

from repro.isa import (
    Instruction,
    Op,
    OpClass,
    eval_alu,
    eval_mul,
    eval_shift,
    op_class,
    wrap32,
)
from repro.isa.instructions import BASE_OP, OP_CLASS, OP_FORMAT, base_op


class TestWrap32:
    def test_identity_in_range(self):
        assert wrap32(123) == 123
        assert wrap32(-123) == -123

    def test_positive_overflow(self):
        assert wrap32(0x80000000) == -0x80000000
        assert wrap32(0xFFFFFFFF) == -1
        assert wrap32(0x100000000) == 0

    def test_negative_overflow(self):
        assert wrap32(-0x80000001) == 0x7FFFFFFF

    def test_extremes(self):
        assert wrap32(0x7FFFFFFF) == 0x7FFFFFFF
        assert wrap32(-0x80000000) == -0x80000000


class TestAluSemantics:
    def test_add_wraps(self):
        assert eval_alu(Op.ADD, 0x7FFFFFFF, 1) == -0x80000000

    def test_sub_wraps(self):
        assert eval_alu(Op.SUB, -0x80000000, 1) == 0x7FFFFFFF

    def test_logic(self):
        assert eval_alu(Op.AND, 0b1100, 0b1010) == 0b1000
        assert eval_alu(Op.OR, 0b1100, 0b1010) == 0b1110
        assert eval_alu(Op.XOR, 0b1100, 0b1010) == 0b0110

    def test_slt_signed(self):
        assert eval_alu(Op.SLT, -1, 0) == 1
        assert eval_alu(Op.SLT, 0, -1) == 0

    def test_sltu_treats_negative_as_large(self):
        assert eval_alu(Op.SLTU, -1, 0) == 0
        assert eval_alu(Op.SLTU, 0, -1) == 1

    def test_seq(self):
        assert eval_alu(Op.SEQ, 5, 5) == 1
        assert eval_alu(Op.SEQ, 5, 6) == 0

    def test_rejects_non_alu(self):
        with pytest.raises(ValueError):
            eval_alu(Op.MUL, 1, 2)


class TestShiftSemantics:
    def test_sll(self):
        assert eval_shift(Op.SLL, 1, 31) == -0x80000000

    def test_srl_is_logical(self):
        assert eval_shift(Op.SRL, -1, 28) == 0xF

    def test_sra_is_arithmetic(self):
        assert eval_shift(Op.SRA, -16, 2) == -4

    def test_amount_masked_to_5_bits(self):
        assert eval_shift(Op.SLL, 1, 32) == 1
        assert eval_shift(Op.SLL, 1, 33) == 2


class TestMulSemantics:
    def test_mul_low_word(self):
        assert eval_mul(Op.MUL, 0x10000, 0x10000) == 0

    def test_mulh_high_word(self):
        assert eval_mul(Op.MULH, 0x10000, 0x10000) == 1

    def test_mulh_signed(self):
        assert eval_mul(Op.MULH, -1, 1) == -1


class TestClassification:
    def test_every_op_has_format_and_class(self):
        for op in Op:
            assert op in OP_FORMAT
            assert op in OP_CLASS

    def test_paper_classes(self):
        assert op_class(Op.ADD) is OpClass.A
        assert op_class(Op.SLLI) is OpClass.S
        assert op_class(Op.MUL) is OpClass.M
        assert op_class(Op.LW) is OpClass.T
        assert op_class(Op.SW) is OpClass.T
        assert op_class(Op.MOV) is OpClass.MOVE

    def test_immediate_forms_share_base_op(self):
        assert base_op(Op.ADDI) is Op.ADD
        assert base_op(Op.SRAI) is Op.SRA
        assert base_op(Op.ADD) is Op.ADD
        for imm_op, reg_op in BASE_OP.items():
            assert op_class(imm_op) is op_class(reg_op)


class TestInstructionAccessors:
    def test_r3_reads_writes(self):
        instr = Instruction(Op.ADD, rd=3, ra=1, rb=2)
        assert instr.reads() == (1, 2)
        assert instr.writes() == (3,)
        assert instr.words == 1

    def test_store_reads_value_and_base(self):
        instr = Instruction(Op.SW, rd=7, ra=2, imm=4)
        assert instr.reads() == (7, 2)
        assert instr.writes() == ()

    def test_load_writes(self):
        instr = Instruction(Op.LW, rd=7, ra=2, imm=4)
        assert instr.reads() == (2,)
        assert instr.writes() == (7,)

    def test_jal_writes_link_register(self):
        instr = Instruction(Op.JAL, target=0)
        assert instr.writes() == (15,)

    def test_cix_two_words(self):
        instr = Instruction(Op.CIX, cfg=3, outs=[5, 6], ins=[1, 2, 3, 4])
        assert instr.words == 2
        assert instr.reads() == (1, 2, 3, 4)
        assert instr.writes() == (5, 6)

    def test_movi_two_words(self):
        assert Instruction(Op.MOVI, rd=1, imm=7).words == 2

    def test_copy_is_deep_for_lists(self):
        instr = Instruction(Op.CIX, cfg=3, outs=[5], ins=[1, 2])
        dup = instr.copy()
        dup.ins.append(3)
        assert instr.ins == [1, 2]

    def test_text_roundtrip_shapes(self):
        samples = [
            Instruction(Op.ADD, rd=3, ra=1, rb=2),
            Instruction(Op.ADDI, rd=3, ra=1, imm=-4),
            Instruction(Op.LW, rd=3, ra=1, imm=8),
            Instruction(Op.MOVI, rd=3, imm=100000),
            Instruction(Op.HALT),
        ]
        for instr in samples:
            assert instr.op.value in instr.text()
