"""Differential soak suite (``pytest -m soak``).

Property-based campaigns over randomly drawn injection plans: plans
always survive serialization, zero-fault plans are bit-identical across
all three execution engines, every campaign outcome lands in the
four-class closed world, and a campaign's JSON report is byte-identical
whether run serially or fanned out over workers.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.chaos import (
    InjectionPlan,
    Injector,
    RecoveryParams,
    SITES,
    random_plan,
)
from repro.chaos.campaign import (
    OUTCOMES,
    campaign_to_json,
    run_campaign,
    run_chaos_point,
)
from repro.cpu import STOP_HALT
from repro.platform import DEFAULT_PLATFORM
from repro.verify import check_campaign

pytestmark = pytest.mark.soak

seeds = st.integers(min_value=0, max_value=2**31 - 1)
soak = settings(deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


class TestPlanProperties:
    @soak
    @given(seed=seeds, n_faults=st.integers(min_value=0, max_value=12))
    def test_random_plans_round_trip_and_validate(self, seed, n_faults):
        plan = random_plan(seed=seed, n_faults=n_faults,
                           cix_sites=[(0, 1), (3, 2)],
                           channels=[(0, 1), (1, 2)])
        plan.validate()
        assert InjectionPlan.from_json(plan.to_json()) == plan
        assert plan.armed == bool(plan.faults)

    @soak
    @given(seed=seeds)
    def test_recovery_presets_round_trip(self, seed):
        plan = random_plan(seed=seed, n_faults=3,
                           recovery=RecoveryParams.full())
        again = InjectionPlan.from_json(plan.to_json())
        assert again.recovery == RecoveryParams.full()

    @soak
    @given(seed=seeds)
    def test_seed_is_the_whole_story(self, seed):
        kwargs = dict(n_faults=6, sites=SITES, channels=[(4, 5)])
        assert random_plan(seed=seed, **kwargs) == \
            random_plan(seed=seed, **kwargs)


class TestZeroFaultIdentity:
    @settings(max_examples=10, deadline=None)
    @given(kernel=st.sampled_from(["fir", "fft", "2dconv"]))
    def test_unarmed_injector_is_unobservable_across_engines(self, kernel):
        from repro.chaos.campaign import _kernel_run

        runs = {}
        for engine in ("reference", "instrumented", "fast"):
            injector = Injector(InjectionPlan(name="clean"))
            result, outcome, core = _kernel_run(
                DEFAULT_PLATFORM, kernel, engine, injector)
            assert outcome.reason == STOP_HALT
            assert injector.events == []
            runs[engine] = (result, core.cycles, core.instret)
        assert runs["reference"] == runs["instrumented"] == runs["fast"]


class TestCampaignProperties:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_every_outcome_in_closed_world(self, seed):
        workload = {"kind": "chaos", "target": "fir", "seed": seed,
                    "faults": 2, "recovery": "full"}
        metrics, _ = run_chaos_point(DEFAULT_PLATFORM, workload)
        assert metrics["outcome"] in OUTCOMES

    def test_serial_and_parallel_reports_are_byte_identical(self):
        kwargs = dict(targets=["fir", "fft", "2dconv"], faults=12, seed=31)
        serial = run_campaign(**kwargs)
        fanned = run_campaign(workers=4, **kwargs)
        assert campaign_to_json(fanned) == campaign_to_json(serial)
        assert check_campaign(serial).ok(strict=True)

    def test_recovered_campaign_has_no_silent_corruption(self):
        report = run_campaign(["fir", "fft"], faults=16, seed=5,
                              recovery="full")
        assert report["errors"] == 0
        assert report["campaign"]["sdc"] == 0
        assert check_campaign(report).ok(strict=True)
