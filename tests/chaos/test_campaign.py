"""Campaign orchestration: classification, determinism, reporting."""

import pytest

from repro.chaos import InjectionPlan
from repro.chaos.campaign import (
    OUTCOMES,
    campaign_points,
    campaign_to_json,
    classify,
    run_campaign,
    run_chaos_point,
)
from repro.platform import DEFAULT_PLATFORM
from repro.verify import check_campaign


class TestClassify:
    def test_loud_failure_wins(self):
        events = [{"kind": "fault"}, {"kind": "recover"}]
        assert classify(events, "DeadlockError: ...", False) == "detected_failed"

    def test_clean_match_without_recovery_is_masked(self):
        assert classify([{"kind": "fault"}], None, True) == "masked"
        assert classify([], None, True) == "masked"

    def test_match_after_recovery(self):
        events = [{"kind": "fault"}, {"kind": "detect"}, {"kind": "recover"}]
        assert classify(events, None, True) == "detected_recovered"

    def test_mismatch_without_detection_is_sdc(self):
        assert classify([{"kind": "fault"}], None, False) == "sdc"

    def test_detected_mismatch_fails_loud_in_classification(self):
        events = [{"kind": "fault"}, {"kind": "detect"}]
        assert classify(events, None, False) == "detected_failed"


class TestPoints:
    def test_round_robin_over_targets(self):
        points = campaign_points(["fir", "fft"], faults=5, seed=10)
        assert [p["workload"]["target"] for p in points] == \
            ["fir", "fft", "fir", "fft", "fir"]
        assert [p["workload"]["seed"] for p in points] == list(range(10, 15))
        assert all(p["workload"]["kind"] == "chaos" for p in points)

    def test_zero_fault_plan_is_masked(self):
        workload = {"kind": "chaos", "target": "fir",
                    "plan": InjectionPlan(name="clean").to_dict()}
        metrics, _ = run_chaos_point(DEFAULT_PLATFORM, workload)
        assert metrics["outcome"] == "masked"
        assert metrics["faults_triggered"] == 0
        assert metrics["events"] == []
        assert metrics["recovery_cycles"] == 0
        assert metrics["output_checksum"] == metrics["golden_checksum"]

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos target"):
            run_chaos_point(DEFAULT_PLATFORM, {"kind": "chaos",
                                               "target": "nope"})

    def test_invalid_site_intersection_rejected(self):
        workload = {"kind": "chaos", "target": "fir", "seed": 1,
                    "sites": ["link"]}  # fabric site, kernel target
        with pytest.raises(ValueError, match="no requested site"):
            run_chaos_point(DEFAULT_PLATFORM, workload)


class TestCampaign:
    def run_small(self, **kwargs):
        return run_campaign(["fir"], faults=4, seed=7, **kwargs)

    def test_every_outcome_classified_and_verifiable(self):
        report = self.run_small()
        assert report["errors"] == 0
        for record in report["results"]:
            assert record["metrics"]["outcome"] in OUTCOMES
        tally = report["campaign"]["outcomes"]
        assert sum(tally.values()) == 4
        assert check_campaign(report).ok(strict=True)

    def test_same_seed_same_report(self):
        assert campaign_to_json(self.run_small()) == \
            campaign_to_json(self.run_small())

    def test_parallel_matches_serial_byte_for_byte(self):
        serial = campaign_to_json(self.run_small())
        fanned = campaign_to_json(self.run_small(workers=2))
        assert fanned == serial

    def test_recovery_none_threads_through(self):
        report = run_campaign(["fir"], faults=3, seed=2, recovery="none")
        assert report["campaign"]["recovery"] == "none"
        assert report["campaign"]["recovery_cycles"] == 0
        assert not any(e["kind"] == "recover"
                       for r in report["results"]
                       for e in r["metrics"]["events"])
