"""InjectionPlan: validation, serialization, seeded determinism."""

import pytest

from repro.chaos import (
    CORE_SITES,
    SITES,
    Fault,
    InjectionPlan,
    InjectionPlanError,
    RecoveryParams,
    random_plan,
)


class TestFault:
    def test_compact_dict_omits_defaults(self):
        fault = Fault("reg", tile=3, cycle=100, reg=5, bit=7)
        payload = fault.to_dict()
        assert payload == {"site": "reg", "tile": 3, "cycle": 100,
                           "reg": 5, "bit": 7}
        assert Fault.from_dict(payload) == fault

    def test_unknown_field_rejected(self):
        with pytest.raises(InjectionPlanError, match="unknown Fault"):
            Fault.from_dict({"site": "reg", "bogus": 1})

    @pytest.mark.parametrize("fault, code", [
        (Fault("meteor"), "C001"),
        (Fault("reg", bit=32), "C002"),
        (Fault("reg", tile=-1), "C003"),
        (Fault("spm", addr=0x1001), "C004"),
        (Fault("link", src=-1), "C003"),
        (Fault("link", delay=-5), "C003"),
    ])
    def test_site_validation(self, fault, code):
        codes = [c for c, _, _ in fault.issues("fault[0]")]
        assert code in codes


class TestRecoveryParams:
    def test_presets(self):
        full = RecoveryParams.full()
        assert full.ecc and full.remap
        assert full.recv_timeout > 0 and full.max_retries > 0
        none = RecoveryParams.none()
        assert not none.ecc and not none.remap
        assert none.recv_timeout == 0 and none.max_retries == 0

    def test_negative_rejected(self):
        plan = InjectionPlan(
            faults=(Fault("reg"),),
            recovery=RecoveryParams(recv_timeout=-1),
        )
        with pytest.raises(InjectionPlanError, match="recv_timeout"):
            plan.validate()


class TestInjectionPlan:
    def test_round_trip_json(self):
        plan = random_plan(seed=11, n_faults=5, recovery=RecoveryParams.full())
        again = InjectionPlan.from_json(plan.to_json())
        assert again == plan

    def test_unarmed_plan(self):
        plan = InjectionPlan(name="quiet")
        assert not plan.armed
        assert InjectionPlan.from_json(plan.to_json()) == plan

    def test_unknown_plan_field_rejected(self):
        with pytest.raises(InjectionPlanError, match="unknown InjectionPlan"):
            InjectionPlan.from_dict({"name": "x", "faults": [], "extra": 1})

    def test_by_site(self):
        plan = InjectionPlan(faults=(
            Fault("reg"), Fault("link", src=0, dst=1), Fault("spm"),
        ))
        assert len(plan.by_site("reg", "spm")) == 2
        assert len(plan.by_site("link")) == 1


class TestRandomPlan:
    def test_seeded_determinism(self):
        a = random_plan(seed=99, n_faults=10)
        b = random_plan(seed=99, n_faults=10)
        assert a == b
        c = random_plan(seed=100, n_faults=10)
        assert a != c

    def test_sites_respected(self):
        plan = random_plan(seed=1, n_faults=20, sites=CORE_SITES)
        assert {f.site for f in plan.faults} <= set(CORE_SITES)

    def test_cix_needs_sites(self):
        # Without reachable cix sites, cix never drawn even if requested.
        plan = random_plan(seed=1, n_faults=20, sites=SITES)
        assert "cix" not in {f.site for f in plan.faults}
        sited = random_plan(seed=1, n_faults=20, sites=("cix",),
                            cix_sites=[(3, 2)])
        assert all(f.site == "cix" and (f.tile, f.cfg) == (3, 2)
                   for f in sited.faults)

    def test_channels_aim_fabric_faults(self):
        plan = random_plan(seed=4, n_faults=20, sites=("link", "channel"),
                           channels=[(0, 5), (5, 9)])
        assert plan.faults
        assert {(f.src, f.dst) for f in plan.faults} <= {(0, 5), (5, 9)}

    def test_all_plans_validate(self):
        for seed in range(25):
            random_plan(seed=seed, n_faults=4).validate()
