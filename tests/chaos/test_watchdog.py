"""The receive watchdog, side by side with the deadlock detector.

Both nets share the per-tile snapshot vocabulary
(``waiting_on``/``words_needed``/``pending``/``cycles``); the watchdog
adds ``blocked_since`` per tile and the ``deadline``/``horizon`` pair
that tripped it.
"""

import pytest

from repro.chaos import Fault, InjectionPlan, Injector, RecoveryParams
from repro.isa import assemble
from repro.sim import DeadlockError, RecvTimeoutError, StitchSystem

TILE_VOCAB = {"waiting_on", "words_needed", "pending", "cycles"}


def silent_producer(spin):
    """Spins for ~2*spin cycles, halts without ever sending."""
    return assemble(f"""
        movi r1, {spin}
    spin:
        addi r1, r1, -1
        bne  r1, r0, spin
        halt
    """)


def late_producer(peer, spin, value=7):
    return assemble(f"""
        movi r1, {spin}
    spin:
        addi r1, r1, -1
        bne  r1, r0, spin
        movi r1, {peer}
        movi r2, 0x100
        movi r3, 1
        movi r4, {value}
        sw   r4, 0(r2)
        send r1, r2, r3
        halt
    """)


def consumer(peer, words=1):
    return assemble(f"""
        movi r1, {peer}
        movi r2, 0x200
        movi r3, {words}
        recv r1, r2, r3
        lw   r4, 0(r2)
        halt
    """)


class TestWatchdog:
    def test_expired_wait_raises_typed_error(self):
        system = StitchSystem(recv_timeout=500)
        system.load(0, silent_producer(2000))
        system.load(1, consumer(0))
        with pytest.raises(RecvTimeoutError) as excinfo:
            system.run()
        error = excinfo.value
        assert isinstance(error, RuntimeError)  # old catch sites still work
        snapshot = error.snapshot
        assert snapshot["deadline"] == 500
        assert snapshot["horizon"] >= 500
        entry = snapshot["tiles"][1]
        assert TILE_VOCAB | {"blocked_since"} == set(entry)
        assert entry["waiting_on"] == 0
        assert entry["words_needed"] == 1
        assert "watchdog expired" in str(error)

    def test_patient_deadline_lets_late_sender_finish(self):
        system = StitchSystem(recv_timeout=50_000)
        system.load(0, late_producer(1, 2000, value=7))
        system.load(1, consumer(0))
        system.run()
        assert system.cores[1].regs[4] == 7

    def test_no_deadline_falls_through_to_deadlock(self):
        # The same shape without a watchdog ends in the deadlock net
        # once the producer halts and nothing can wake the consumer.
        system = StitchSystem()
        system.load(0, silent_producer(2000))
        system.load(1, consumer(0))
        with pytest.raises(DeadlockError):
            system.run()

    def test_shared_snapshot_vocabulary_with_deadlock(self):
        wait = "movi r1, {peer}\nmovi r2, 0x100\nmovi r3, 1\nrecv r1, r2, r3\nhalt"
        system = StitchSystem()
        system.load(0, assemble(wait.format(peer=1)))
        system.load(1, assemble(wait.format(peer=0)))
        with pytest.raises(DeadlockError) as excinfo:
            system.run()
        for entry in excinfo.value.snapshot.values():
            assert set(entry) == TILE_VOCAB

    def test_timeout_from_injection_plan_recovery(self):
        # recv_timeout=None picks the deadline up from the injector's
        # recovery policy; a frozen producer strands the consumer while
        # a bystander tile keeps the cycle horizon advancing.
        plan = InjectionPlan(
            name="freeze-producer",
            faults=(Fault("freeze", tile=0, cycle=40),),
            recovery=RecoveryParams(recv_timeout=500),
        )
        injector = Injector(plan)
        system = StitchSystem(injector=injector)
        system.load(0, late_producer(1, 2000, value=7))
        system.load(1, consumer(0))
        system.load(2, silent_producer(5000))
        with pytest.raises(RecvTimeoutError):
            system.run()
        kinds = [(e["kind"], e["site"]) for e in injector.events]
        assert ("fault", "freeze") in kinds
        assert ("detect", "recv") in kinds

    def test_watchdog_fires_while_system_still_progresses(self):
        # Unlike a deadlock, the bystander tile was still running when
        # the watchdog tripped: the horizon outran the blocked tile.
        system = StitchSystem(recv_timeout=300)
        system.load(0, consumer(3))   # tile 3 does not exist -> never woken
        system.load(1, silent_producer(5000))
        with pytest.raises(RecvTimeoutError) as excinfo:
            system.run()
        snapshot = excinfo.value.snapshot
        assert snapshot["horizon"] > snapshot["tiles"][0]["blocked_since"]
        assert 0 in snapshot["tiles"] and 1 not in snapshot["tiles"]
