"""Per-site injector behavior and the engine fallback contract."""

import math

import pytest

from repro.chaos import (
    NULL_INJECTOR,
    ChannelCorruptionError,
    CixStallError,
    Fault,
    InjectionPlan,
    Injector,
    RecoveryParams,
    ensure_injector,
)
from repro.cpu import Core, PatchPort, STOP_FROZEN, STOP_HALT
from repro.isa import assemble
from repro.mem import MemorySystem, SPM_BASE
from repro.sim import DeadlockError, StitchSystem


def make_core(source, injector=None, engine="auto"):
    return Core(assemble(source), MemorySystem.stitch(),
                injector=injector, engine=engine)


COUNT_LOOP = """
    movi r1, 50
    movi r2, 0
loop:
    addi r2, r2, 3
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
"""


def plan_of(*faults, recovery=None):
    return InjectionPlan(
        name="test", faults=tuple(faults),
        recovery=recovery if recovery is not None else RecoveryParams(),
    )


class TestNullInjector:
    def test_ensure_injector(self):
        assert ensure_injector(None) is NULL_INJECTOR
        assert ensure_injector(False) is NULL_INJECTOR
        injector = Injector(plan_of())
        assert ensure_injector(injector) is injector
        wrapped = ensure_injector(plan_of(Fault("reg", cycle=10)))
        assert wrapped.armed

    def test_disabled_hooks_are_identity(self):
        values = [1, 2, 3]
        assert NULL_INJECTOR.outbound(0, 1, values, 5) == (values, False)
        assert NULL_INJECTOR.inbound(0, 1, values, 9) == (values, 9)
        assert NULL_INJECTOR.link_delay(0, 1, 5) == 0
        assert not NULL_INJECTOR.armed

    def test_attach_core_pins_boundary_at_infinity(self):
        core = make_core("halt")
        assert core._inj_next == math.inf
        assert core._inj_cix is None


class TestEngineFallback:
    def test_armed_injector_forces_instrumented(self):
        armed = Injector(plan_of(Fault("reg", cycle=10)))
        core = make_core(COUNT_LOOP, injector=armed, engine="fast")
        assert core.selected_engine() == "instrumented"
        auto = make_core(COUNT_LOOP, injector=armed, engine="auto")
        assert auto.selected_engine() == "instrumented"

    def test_unarmed_injector_keeps_fast(self):
        quiet = Injector(plan_of())
        core = make_core(COUNT_LOOP, injector=quiet, engine="fast")
        assert core.selected_engine() == "fast"

    def test_zero_fault_plan_bit_identical_across_engines(self):
        runs = {}
        for engine in ("reference", "instrumented", "fast"):
            core = make_core(COUNT_LOOP, injector=Injector(plan_of()),
                             engine=engine)
            outcome = core.run()
            assert outcome.reason == STOP_HALT
            runs[engine] = (core.cycles, core.instret, list(core.regs))
        assert runs["reference"] == runs["instrumented"] == runs["fast"]


class TestRegFlips:
    def test_flip_perturbs_architectural_state(self):
        # Flip bit 4 of r2 mid-loop: the accumulator ends off-golden.
        golden = make_core(COUNT_LOOP)
        golden.run()
        injector = Injector(plan_of(Fault("reg", cycle=50, reg=2, bit=4)))
        core = make_core(COUNT_LOOP, injector=injector)
        core.run()
        assert injector.triggered() == 1
        assert core.regs[2] != golden.regs[2]
        assert [e["kind"] for e in injector.events] == ["fault"]

    def test_ecc_scrubs_and_charges_penalty(self):
        golden = make_core(COUNT_LOOP)
        golden.run()
        recovery = RecoveryParams(ecc=True, ecc_penalty=12)
        injector = Injector(plan_of(Fault("reg", cycle=50, reg=2, bit=4),
                                    recovery=recovery))
        core = make_core(COUNT_LOOP, injector=injector)
        core.run()
        assert core.regs[2] == golden.regs[2]
        assert core.cycles == golden.cycles + 12
        assert injector.recovery_cycles == 12
        kinds = [e["kind"] for e in injector.events]
        assert kinds == ["fault", "detect", "recover"]

    def test_same_engine_same_fault_same_result(self):
        outcomes = []
        for engine in ("reference", "instrumented"):
            injector = Injector(plan_of(Fault("reg", cycle=50, reg=2, bit=4)))
            core = make_core(COUNT_LOOP, injector=injector, engine=engine)
            core.run()
            outcomes.append((core.cycles, core.regs[2]))
        assert outcomes[0] == outcomes[1]


class TestMemoryFlips:
    def test_spm_flip(self):
        source = f"""
            movi r1, {SPM_BASE}
            movi r2, 7
            sw   r2, 0(r1)
            movi r3, 400
        spin:
            addi r3, r3, -1
            bne  r3, r0, spin
            lw   r4, 0(r1)
            halt
        """
        injector = Injector(plan_of(
            Fault("spm", cycle=100, addr=SPM_BASE, bit=3)
        ))
        core = make_core(source, injector=injector)
        core.run()
        assert core.regs[4] == 7 ^ 8

    def test_spm_flip_out_of_range_logs_unapplied(self):
        injector = Injector(plan_of(
            Fault("spm", cycle=10, addr=SPM_BASE + (1 << 20), bit=3)
        ))
        core = make_core(COUNT_LOOP, injector=injector)
        core.run()
        assert injector.events[0]["applied"] is False

    def test_dram_flip_with_ecc(self):
        source = """
            movi r1, 0x100
            movi r2, 9
            sw   r2, 0(r1)
            movi r3, 400
        spin:
            addi r3, r3, -1
            bne  r3, r0, spin
            lw   r4, 0(r1)
            halt
        """
        injector = Injector(plan_of(
            Fault("dram", cycle=100, addr=0x100, bit=0),
            recovery=RecoveryParams(ecc=True),
        ))
        core = make_core(source, injector=injector)
        core.run()
        assert core.regs[4] == 9  # scrubbed before the readback
        assert injector.recovery_cycles == 12


class TestFreeze:
    def test_core_stops_retiring(self):
        injector = Injector(plan_of(Fault("freeze", cycle=40)))
        core = make_core(COUNT_LOOP, injector=injector)
        outcome = core.run()
        assert outcome.reason == STOP_FROZEN
        retired = core.instret
        # Re-dispatch is a no-op: a frozen core never retires again.
        again = core.run()
        assert again.reason == STOP_FROZEN
        assert core.instret == retired


class _StallPatch(PatchPort):
    def execute(self, cfg_id, in_values):
        return [sum(in_values), 0]


class TestCixStall:
    def test_stalled_cfg_raises(self):
        program = assemble(
            "movi r1, 5\nmovi r2, 6\ncix 3, (r4, r5), (r1, r2)\nhalt"
        )
        injector = Injector(plan_of(Fault("cix", tile=0, cfg=3)))
        core = Core(program, MemorySystem.stitch(), patch=_StallPatch(),
                    injector=injector)
        with pytest.raises(CixStallError) as exc:
            core.run()
        assert exc.value.tile == 0 and exc.value.cfg == 3
        assert [e["kind"] for e in injector.events] == ["fault", "detect"]

    def test_other_cfgs_unaffected(self):
        program = assemble(
            "movi r1, 5\nmovi r2, 6\ncix 3, (r4, r5), (r1, r2)\nhalt"
        )
        injector = Injector(plan_of(Fault("cix", tile=0, cfg=9)))
        core = Core(program, MemorySystem.stitch(), patch=_StallPatch(),
                    injector=injector)
        assert core.run().reason == STOP_HALT
        assert core.regs[4] == 11


def producer(peer, value, words=2):
    return assemble(f"""
        movi r1, {peer}
        movi r2, 0x100
        movi r3, {words}
        movi r4, {value}
        sw   r4, 0(r2)
        sw   r4, 4(r2)
        send r1, r2, r3
        halt
    """)


def consumer(peer, words=2):
    return assemble(f"""
        movi r1, {peer}
        movi r2, 0x200
        movi r3, {words}
        recv r1, r2, r3
        lw   r4, 0(r2)
        lw   r5, 4(r2)
        halt
    """)


class TestFabricFaults:
    def run_pair(self, injector):
        system = StitchSystem(injector=injector)
        system.load(0, producer(1, 42))
        system.load(1, consumer(0))
        system.run()
        return system

    def test_link_delay_postpones_arrival(self):
        clean = self.run_pair(None)
        injector = Injector(plan_of(
            Fault("link", src=0, dst=1, index=0, delay=500)
        ))
        slow = self.run_pair(injector)
        assert injector.triggered() == 1
        assert slow.cores[1].cycles >= clean.cores[1].cycles + 500
        assert slow.cores[1].regs[4] == 42

    def test_link_drop_detected_loud(self):
        injector = Injector(plan_of(
            Fault("link", src=0, dst=1, index=0, delay=0)
        ))
        system = StitchSystem(injector=injector)
        system.load(0, producer(1, 42))
        system.load(1, consumer(0))
        with pytest.raises(DeadlockError):
            system.run()
        assert injector.events[0]["dropped"] == 2
        # The deadlock detection is logged back into the injector.
        assert any(e["kind"] == "detect" for e in injector.events)

    def test_channel_corruption_silent_without_retries(self):
        injector = Injector(plan_of(
            Fault("channel", src=0, dst=1, index=0, word=0, bit=2)
        ))
        system = self.run_pair(injector)
        assert system.cores[1].regs[4] == 42 ^ 4  # delivered corrupted
        assert injector.untriggered() == 0

    def test_channel_corruption_recovered_with_retries(self):
        recovery = RecoveryParams(max_retries=3, retry_backoff=16)
        injector = Injector(plan_of(
            Fault("channel", src=0, dst=1, index=0, word=0, bit=2),
            recovery=recovery,
        ))
        system = self.run_pair(injector)
        assert system.cores[1].regs[4] == 42  # true word re-fetched
        assert injector.recovery_cycles == 16
        kinds = [e["kind"] for e in injector.events]
        assert kinds == ["fault", "detect", "recover"]

    def test_corruption_past_retry_budget_fails_loud(self):
        recovery = RecoveryParams(max_retries=1, retry_backoff=16)
        faults = [
            Fault("channel", src=0, dst=1, index=0, word=w, bit=2)
            for w in range(2)
        ]
        injector = Injector(plan_of(*faults, recovery=recovery))
        with pytest.raises(ChannelCorruptionError) as exc:
            self.run_pair(injector)
        assert exc.value.snapshot["words_corrupted"] == 2
        assert exc.value.snapshot["tile"] == 1
