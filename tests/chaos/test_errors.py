"""Loud error paths under injection: ExecutionError and RoundBudgetError.

A fault can knock a run clean off the rails instead of corrupting data;
both the direct simulation layers and the campaign classifier must keep
those failures loud and typed.
"""

import pytest

from repro.chaos import Fault, InjectionPlan, Injector, RecoveryParams
from repro.chaos.campaign import run_chaos_point
from repro.cpu import Core, ExecutionError
from repro.isa import assemble
from repro.mem import MemorySystem
from repro.platform import DEFAULT_PLATFORM
from repro.sim import RoundBudgetError, StitchSystem


def plan_of(*faults):
    return InjectionPlan(name="test", faults=tuple(faults),
                         recovery=RecoveryParams())


# jal writes the return pc into r15; flipping a high-ish bit of r15
# mid-subroutine sends jr far outside the instruction range.
JAL_SOURCE = """
    jal  sub
    halt
sub:
    movi r2, 200
spin:
    addi r2, r2, -1
    bne  r2, r0, spin
    jr   r15
"""


class TestExecutionErrorUnderInjection:
    def test_corrupted_return_address_traps(self):
        injector = Injector(plan_of(Fault("reg", cycle=100, reg=15, bit=10)))
        core = Core(assemble(JAL_SOURCE), MemorySystem.stitch(),
                    injector=injector)
        with pytest.raises(ExecutionError) as excinfo:
            core.run()
        assert injector.triggered() == 1
        assert excinfo.value.pc > len(core.program.instructions)

    def test_without_fault_the_same_program_halts(self):
        core = Core(assemble(JAL_SOURCE), MemorySystem.stitch())
        assert core.run().reason == "halt"

    def test_campaign_point_classifies_trap_as_loud(self):
        # Freeze a kernel mid-run: the injected run never halts, which
        # the point wrapper reports as a loud (detected) failure.
        plan = InjectionPlan(name="freeze",
                             faults=(Fault("freeze", tile=0, cycle=500),))
        workload = {"kind": "chaos", "target": "fir",
                    "plan": plan.to_dict()}
        metrics, _ = run_chaos_point(DEFAULT_PLATFORM, workload)
        assert metrics["outcome"] == "detected_failed"
        assert metrics["loud"].startswith("NoHalt")
        assert metrics["output_checksum"] is None


def producer(peer):
    return assemble(f"""
        movi r1, {peer}
        movi r2, 0x100
        movi r3, 2
        movi r4, 42
        sw   r4, 0(r2)
        sw   r4, 4(r2)
        send r1, r2, r3
        halt
    """)


def consumer(peer):
    return assemble(f"""
        movi r1, {peer}
        movi r2, 0x200
        movi r3, 2
        recv r1, r2, r3
        halt
    """)


class TestRoundBudgetUnderInjection:
    def test_budget_still_enforced_with_armed_injector(self):
        # The fault never triggers (cycle beyond the budgeted horizon);
        # the scheduler's budget net must fire exactly as without chaos.
        injector = Injector(plan_of(Fault("reg", tile=0, cycle=10**9)))
        system = StitchSystem(injector=injector)
        system.load(0, producer(1))
        system.load(1, consumer(0))
        with pytest.raises(RoundBudgetError) as excinfo:
            system.run(max_instructions_per_slice=1, max_rounds=2)
        assert excinfo.value.snapshot["rounds"] == 2
        assert injector.triggered() == 0
        assert injector.untriggered() == 1

    def test_budget_loss_is_loud_not_sdc(self):
        # At the campaign layer a budget blow-up surfaces as a typed
        # loud failure string, never a silent corruption.
        from repro.chaos.campaign import classify

        loud = "RoundBudgetError: co-simulation exceeded the 2-round budget"
        assert classify([{"kind": "fault"}], loud, False) == "detected_failed"
