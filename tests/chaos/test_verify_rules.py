"""V1100-V1103: tampered campaign reports must fail verification."""

import copy

from repro.chaos.campaign import run_campaign
from repro.verify import check_campaign


def small_campaign():
    return run_campaign(["fir"], faults=3, seed=7)


class TestChaosRules:
    def setup_method(self):
        self.report = small_campaign()
        assert check_campaign(self.report).ok(strict=True)

    def tampered(self, mutate):
        forged = copy.deepcopy(self.report)
        mutate(forged)
        return check_campaign(forged)

    def point(self, forged, index=0):
        return forged["results"][index]["metrics"]

    def test_v1100_missing_fault_accounting(self):
        verdict = self.tampered(
            lambda f: self.point(f).update(faults_untriggered=99)
        )
        assert "V1100" in verdict.codes()

    def test_v1100_phantom_trigger_count(self):
        def forge(f):
            metrics = self.point(f)
            metrics["faults_triggered"] += 1
            metrics["faults_untriggered"] -= 1

        assert "V1100" in self.tampered(forge).codes()

    def test_v1101_zero_fault_plan_with_events(self):
        def forge(f):
            metrics = self.point(f)
            metrics["plan"]["faults"] = []
            metrics["faults_triggered"] = 0
            metrics["faults_untriggered"] = 0

        verdict = self.tampered(forge)
        # The event log survives while the plan claims zero faults.
        assert "V1101" in verdict.codes() or "V1100" in verdict.codes()

    def test_v1101_zero_fault_checksum_drift(self):
        def forge(f):
            metrics = self.point(f)
            metrics["plan"]["faults"] = []
            metrics["events"] = []
            metrics["faults_triggered"] = 0
            metrics["faults_untriggered"] = 0
            metrics["recovery_cycles"] = 0
            metrics["outcome"] = "masked"
            metrics["output_checksum"] = metrics["golden_checksum"] + 1
            f["campaign"]["outcomes"] = None  # silence the tally recount
            f["campaign"]["sdc"] = None
            f["campaign"]["recovery_cycles"] = None

        verdict = self.tampered(forge)
        assert any(d.code == "V1101" and "checksum" in d.message
                   for d in verdict.diagnostics)

    def test_v1102_outcome_outside_closed_world(self):
        verdict = self.tampered(
            lambda f: self.point(f).update(outcome="meteor")
        )
        assert "V1102" in verdict.codes()

    def test_v1102_sdc_despite_detection(self):
        def forge(f):
            metrics = self.point(f)
            metrics["outcome"] = "sdc"
            metrics["events"] = list(metrics["events"]) + [
                {"kind": "detect", "site": "reg", "tile": 0, "cycle": 1}
            ]
            metrics["faults_triggered"] = sum(
                1 for e in metrics["events"] if e["kind"] == "fault")
            metrics["faults_untriggered"] = (
                len(metrics["plan"]["faults"]) - metrics["faults_triggered"])

        verdict = self.tampered(forge)
        assert any(d.code == "V1102" and "sdc" in d.message
                   for d in verdict.diagnostics)

    def test_v1102_tally_mismatch(self):
        def forge(f):
            f["campaign"]["outcomes"]["sdc"] += 1
            f["campaign"]["outcomes"]["masked"] -= 1

        verdict = self.tampered(forge)
        assert any(d.code == "V1102" and d.loc == "campaign"
                   for d in verdict.diagnostics)

    def test_v1103_point_cost_mismatch(self):
        verdict = self.tampered(
            lambda f: self.point(f).update(recovery_cycles=123456)
        )
        assert "V1103" in verdict.codes()

    def test_v1103_campaign_total_mismatch(self):
        def forge(f):
            f["campaign"]["recovery_cycles"] += 7

        verdict = self.tampered(forge)
        assert any(d.code == "V1103" and d.loc == "campaign"
                   for d in verdict.diagnostics)

    def test_harness_errors_are_outside_the_taxonomy(self):
        def forge(f):
            record = f["results"][0]
            record.pop("metrics")
            record["error"] = "harness exploded"
            tally = f["campaign"]["outcomes"]
            f["campaign"]["outcomes"] = None  # recount no longer applies
            f["campaign"]["sdc"] = None
            f["campaign"]["recovery_cycles"] = None
            assert tally is not None

        verdict = self.tampered(forge)
        assert not any(d.loc == "fir/7" for d in verdict.diagnostics)
