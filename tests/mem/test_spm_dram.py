"""Unit tests for the scratchpad and DRAM models."""

import pytest

from repro.mem import Dram, Scratchpad, SPM_BASE, SPM_SIZE


class TestScratchpad:
    def test_window(self):
        spm = Scratchpad()
        assert spm.contains(SPM_BASE)
        assert spm.contains(SPM_BASE + SPM_SIZE - 4)
        assert not spm.contains(SPM_BASE + SPM_SIZE)
        assert not spm.contains(SPM_BASE - 4)

    def test_read_write_roundtrip(self):
        spm = Scratchpad()
        spm.write_word(SPM_BASE + 8, -12345)
        assert spm.read_word(SPM_BASE + 8) == -12345

    def test_values_wrap_to_32_bits(self):
        spm = Scratchpad()
        spm.write_word(SPM_BASE, 0xFFFFFFFF)
        assert spm.read_word(SPM_BASE) == -1

    def test_rejects_unaligned(self):
        with pytest.raises(ValueError):
            Scratchpad().read_word(SPM_BASE + 2)

    def test_rejects_out_of_window(self):
        with pytest.raises(ValueError):
            Scratchpad().write_word(SPM_BASE + SPM_SIZE, 1)

    def test_bulk_load_dump(self):
        spm = Scratchpad()
        spm.load_words(SPM_BASE + 16, [1, 2, 3])
        assert spm.dump_words(SPM_BASE + 16, 3) == [1, 2, 3]

    def test_bulk_load_overflow_rejected(self):
        spm = Scratchpad()
        with pytest.raises(ValueError):
            spm.load_words(SPM_BASE + SPM_SIZE - 8, [1, 2, 3])

    def test_clear(self):
        spm = Scratchpad()
        spm.write_word(SPM_BASE, 7)
        spm.clear()
        assert spm.read_word(SPM_BASE) == 0

    def test_stats_count_accesses(self):
        spm = Scratchpad()
        spm.write_word(SPM_BASE, 1)
        spm.read_word(SPM_BASE)
        assert spm.reads == 1 and spm.writes == 1


class TestDram:
    def test_default_zero(self):
        assert Dram().read_word(0x1000) == 0

    def test_roundtrip_and_wrap(self):
        dram = Dram()
        dram.write_word(0x1000, 1 << 31)
        assert dram.read_word(0x1000) == -(1 << 31)

    def test_rejects_unaligned(self):
        with pytest.raises(ValueError):
            Dram().read_word(2)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Dram().read_word(512 * 1024 * 1024)

    def test_sparse_footprint(self):
        dram = Dram()
        dram.write_word(0x0, 1)
        dram.write_word(0x10000000, 2)
        assert dram.footprint_words() == 2

    def test_bulk_helpers_untimed(self):
        dram = Dram()
        dram.load_words(0x40, [9, 8, 7])
        assert dram.dump_words(0x40, 3) == [9, 8, 7]
        assert dram.reads == 0 and dram.writes == 0
