"""Unit tests for the set-associative LRU cache model."""

import pytest

from repro.mem import Cache


def small_cache():
    # 4 sets x 2 ways x 64B lines = 512B
    return Cache(512, assoc=2, line_bytes=64)


class TestGeometry:
    def test_table2_dcache_geometry(self):
        cache = Cache(4 * 1024, assoc=2, line_bytes=64)
        assert cache.num_sets == 32

    def test_table2_icache_geometry(self):
        cache = Cache(8 * 1024, assoc=2, line_bytes=64)
        assert cache.num_sets == 64

    @pytest.mark.parametrize("size,assoc,line", [(3000, 2, 64), (512, 3, 64), (512, 2, 60)])
    def test_rejects_non_power_of_two(self, size, assoc, line):
        with pytest.raises(ValueError):
            Cache(size, assoc=assoc, line_bytes=line)

    def test_rejects_inconsistent_geometry(self):
        with pytest.raises(ValueError):
            Cache(64, assoc=2, line_bytes=64)


class TestBehaviour:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        hit, _ = cache.lookup(0x100)
        assert not hit
        hit, _ = cache.lookup(0x104)  # same 64B line
        assert hit

    def test_line_granularity(self):
        cache = small_cache()
        cache.lookup(0x0)
        hit, _ = cache.lookup(0x3C)
        assert hit
        hit, _ = cache.lookup(0x40)  # next line
        assert not hit

    def test_lru_eviction_order(self):
        cache = small_cache()
        # Three lines mapping to set 0 (stride = num_sets * line = 256B).
        cache.lookup(0x000)
        cache.lookup(0x100)
        cache.lookup(0x000)  # touch to make 0x100 the LRU way
        cache.lookup(0x200)  # evicts 0x100
        assert cache.lookup(0x000)[0] is True
        assert cache.lookup(0x100)[0] is False

    def test_dirty_eviction_reports_writeback(self):
        cache = small_cache()
        cache.lookup(0x000, write=True)
        cache.lookup(0x100)
        _, writeback = cache.lookup(0x200)  # evicts dirty 0x000
        assert writeback
        assert cache.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = small_cache()
        cache.lookup(0x000)
        cache.lookup(0x100)
        _, writeback = cache.lookup(0x200)
        assert not writeback

    def test_write_hit_marks_dirty(self):
        cache = small_cache()
        cache.lookup(0x000)             # clean fill
        cache.lookup(0x000, write=True)  # dirty it
        cache.lookup(0x100)
        _, writeback = cache.lookup(0x200)
        assert writeback

    def test_hit_rate_and_stats(self):
        cache = small_cache()
        cache.lookup(0x0)
        cache.lookup(0x0)
        cache.lookup(0x0)
        assert cache.hits == 2 and cache.misses == 1
        assert cache.hit_rate() == pytest.approx(2 / 3)
        cache.reset_stats()
        assert cache.accesses == 0
        assert cache.hit_rate() == 1.0

    def test_flush_invalidates(self):
        cache = small_cache()
        cache.lookup(0x0)
        cache.flush()
        hit, _ = cache.lookup(0x0)
        assert not hit

    def test_distinct_sets_do_not_conflict(self):
        cache = small_cache()
        for i in range(4):
            cache.lookup(i * 64)
        for i in range(4):
            assert cache.lookup(i * 64)[0] is True

    def test_fully_resident_working_set(self):
        cache = small_cache()
        addrs = [i * 64 for i in range(8)]  # exactly capacity
        for addr in addrs:
            cache.lookup(addr)
        for addr in addrs:
            assert cache.lookup(addr)[0] is True
