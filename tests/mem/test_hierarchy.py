"""Unit tests for the composed per-tile memory system."""

import pytest

from repro.mem import MemorySystem, SPM_BASE
from repro.mem.hierarchy import CODE_BASE


class TestConfigurations:
    def test_stitch_tile_geometry(self):
        mem = MemorySystem.stitch()
        assert mem.icache.size_bytes == 8 * 1024
        assert mem.dcache.size_bytes == 4 * 1024
        assert mem.spm.size_bytes == 4 * 1024

    def test_baseline_tile_trades_spm_for_dcache(self):
        mem = MemorySystem.baseline()
        assert mem.dcache.size_bytes == 8 * 1024
        assert mem.spm is None


class TestDataPath:
    def test_dram_read_miss_then_hit_latency(self):
        mem = MemorySystem.stitch()
        mem.load(0x100, [42])
        value, cycles = mem.read(0x100)
        assert value == 42
        assert cycles == 1 + 30
        value, cycles = mem.read(0x100)
        assert cycles == 1

    def test_spm_access_is_single_cycle_and_uncached(self):
        mem = MemorySystem.stitch()
        mem.load(SPM_BASE, [7])
        value, cycles = mem.read(SPM_BASE)
        assert (value, cycles) == (7, 1)
        assert mem.dcache.accesses == 0

    def test_write_then_read_consistency(self):
        mem = MemorySystem.stitch()
        cycles = mem.write(0x200, -5)
        assert cycles == 1 + 30  # write-allocate fill
        value, cycles = mem.read(0x200)
        assert value == -5 and cycles == 1

    def test_dirty_eviction_costs_extra_dram_write(self):
        mem = MemorySystem(dcache_bytes=128, assoc=2, line_bytes=64)
        mem.write(0x000, 1)           # miss + dirty
        mem.read(0x40000)             # second way of the only set
        _, cycles = mem.read(0x80000)  # evicts dirty line -> writeback
        assert cycles == 1 + 30 + 30

    def test_spm_lmau_path(self):
        mem = MemorySystem.stitch()
        mem.spm_write(SPM_BASE + 4, 99)
        assert mem.spm_read(SPM_BASE + 4) == 99

    def test_lmau_path_requires_spm(self):
        mem = MemorySystem.baseline()
        with pytest.raises(RuntimeError):
            mem.spm_read(SPM_BASE)

    def test_baseline_reads_spm_window_as_dram(self):
        # Without an SPM the window is ordinary cacheable memory.
        mem = MemorySystem.baseline()
        mem.load(SPM_BASE, [3])
        value, cycles = mem.read(SPM_BASE)
        assert value == 3 and cycles == 31
        assert mem.dcache.accesses == 1


class TestFetchPath:
    def test_fetch_miss_then_hits_across_line(self):
        mem = MemorySystem.stitch()
        assert mem.fetch(0) == 31  # cold miss
        # 64B line holds 16 single-word instructions
        for index in range(1, 16):
            assert mem.fetch(index) == 1
        assert mem.fetch(16) == 31

    def test_two_word_fetch_within_line(self):
        mem = MemorySystem.stitch()
        mem.fetch(0)
        assert mem.fetch(1, words=2) == 2

    def test_two_word_fetch_straddling_lines(self):
        mem = MemorySystem.stitch()
        mem.fetch(0)
        assert mem.fetch(15, words=2) == 1 + 31

    def test_code_and_data_do_not_collide(self):
        mem = MemorySystem.stitch()
        mem.fetch(0)
        mem.read(CODE_BASE)  # same address via the data path
        assert mem.icache.accesses == 1
        assert mem.dcache.accesses == 1


class TestHarnessHelpers:
    def test_load_dump_dram(self):
        mem = MemorySystem.stitch()
        mem.load(0x300, [1, 2, 3])
        assert mem.dump(0x300, 3) == [1, 2, 3]

    def test_load_dump_spm(self):
        mem = MemorySystem.stitch()
        mem.load(SPM_BASE + 8, [4, 5])
        assert mem.dump(SPM_BASE + 8, 2) == [4, 5]

    def test_reset_stats(self):
        mem = MemorySystem.stitch()
        mem.read(0x0)
        mem.fetch(0)
        mem.reset_stats()
        assert mem.dcache.accesses == 0
        assert mem.icache.accesses == 0
