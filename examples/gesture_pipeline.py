#!/usr/bin/env python
"""The paper's case study (Section V): finger gesture recognition.

Builds APP1 — the 16-kernel gesture pipeline of Figure 7 (sense ->
6x FFT -> update/filter -> 6x IFFT -> classify) — compiles every
kernel's patch options, runs Algorithm 1, and reports the Table I
story: which platforms meet the 7.81 ms real-time deadline.
"""

from repro.analysis.experiments.apps import gesture_platforms
from repro.power.platforms import GESTURE_DEADLINE_MS
from repro.sim.baselines import ARCH_STITCH, ARCHITECTURES, AppEvaluator
from repro.workloads.apps import app1_gesture


def main():
    app = app1_gesture()
    print(f"{app!r}")
    print("stages:", ", ".join(
        f"{s.id}:{s.kernel.name}" for s in app.stages
    ))
    print()

    evaluator = AppEvaluator(app)
    print("compiling every kernel x patch option (simulated, validated)...")
    throughputs = evaluator.normalized_throughputs()
    print("\nnormalized throughput vs the 16-core baseline (Fig. 12, APP1):")
    for arch in ARCHITECTURES:
        print(f"  {arch:18s} {throughputs[arch]:.2f}x")

    plan = evaluator.plan(ARCH_STITCH)
    print("\n" + plan.describe())
    print(f"\nfused pairs placed: {len(plan.fused_pairs())}; "
          f"inter-patch links reserved: {len(plan.network.reserved_links)}")

    print(f"\n=== the {GESTURE_DEADLINE_MS} ms real-time deadline (Table I) ===")
    for name, platform in gesture_platforms().items():
        verdict = "MEETS " if platform.meets_deadline() else "misses"
        print(f"  {name:20s} {platform.gesture_ms:8.2f} ms/gesture  "
              f"{platform.power_mw:7.1f} mW   {verdict} the deadline")


if __name__ == "__main__":
    main()
