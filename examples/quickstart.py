#!/usr/bin/env python
"""Quickstart: write a kernel, compile custom instructions, measure.

Walks the core flow of the Stitch reproduction in one page:

1. write a small kernel in the reproduction ISA,
2. run it on the simulated in-order core (baseline cycles),
3. let the compiler mine it for custom instructions and map them onto
   a polymorphic patch (and onto a fused pair),
4. run the rewritten binaries and compare cycles,
5. peek at the 19-bit control word a patch configuration packs into.
"""

from repro.compiler.driver import KernelCompiler, PatchOption
from repro.core import AT_MA, AT_SA
from repro.isa import Asm
from repro.mem import SPM_BASE


def build_kernel(n=64):
    """sum(|x[i]| * w >> 4) over an SPM-resident array."""
    asm = Asm("quickstart")
    asm.movi("r1", SPM_BASE)
    asm.movi("r2", SPM_BASE + 4 * n)
    asm.movi("r5", 13)            # weight
    asm.movi("r6", 0)             # accumulator
    loop = asm.label("loop")
    asm.lw("r3", 0, "r1")
    asm.srai("r4", "r3", 31)      # branchless |x|
    asm.xor("r3", "r3", "r4")
    asm.sub("r3", "r3", "r4")
    asm.mul("r3", "r3", "r5")
    asm.srai("r3", "r3", 4)
    asm.add("r6", "r6", "r3")
    asm.addi("r1", "r1", 4)
    asm.bne("r1", "r2", loop)
    asm.halt()
    program = asm.assemble()

    class Kernel:
        name = "quickstart"
        live_out_regs = frozenset({6})

        def __init__(self):
            self.program = program

        def setup(self, core):
            core.memory.load(SPM_BASE, [(-1) ** i * (i * 37 % 1000) for i in range(n)])

        def result(self, core):
            return [core.regs[6]]

    return Kernel()


def main():
    kernel = build_kernel()
    print("=== the kernel ===")
    print(kernel.program.text())

    compiler = KernelCompiler(kernel)
    print(f"baseline: {compiler.baseline_cycles} cycles\n")

    for option in (
        PatchOption("AT-MA", AT_MA),
        PatchOption("AT-SA", AT_SA),
        PatchOption("AT-MA+AT-SA", AT_MA, AT_SA),
    ):
        compiled = compiler.compile(option)
        tag = "fused pair" if option.fused else "single patch"
        print(f"--- {option.name} ({tag}) ---")
        print(f"cycles: {compiled.cycles}  speedup: {compiled.speedup:.2f}x  "
              f"custom instructions: {len(compiled.mappings)}")
        for mapping in compiled.mappings:
            print(f"  covers {mapping.candidate!r}")
            config = mapping.config
            if hasattr(config, "encode"):
                print(f"  19-bit control word: {config.encode():#07x}")
            else:
                print(f"  38-bit fused control word: {config.control_bits():#011x}")
        print()

    best = compiler.best_option()
    print(f"best option over all 12: {best.option.name} at {best.speedup:.2f}x")
    print("every accelerated binary was validated bit-exactly against the "
          "unmodified kernel.")


if __name__ == "__main__":
    main()
