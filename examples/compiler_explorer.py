#!/usr/bin/env python
"""Compiler explorer: watch the ISE tool chain work on any assembly.

Feed it a kernel (a file of reproduction-ISA assembly, or the built-in
sample), and it shows every stage of Figure 6: the hot blocks, the
dataflow graph, the enumerated candidates, the patch mappings with
their 19-bit encodings, and the rewritten code.

    python examples/compiler_explorer.py [kernel.s]

Assembly contract: data lives in the SPM window (0x10000000), the
kernel ends with ``halt``, and registers r10-r13 stay untouched.
"""

import sys

from repro.compiler import DFG, enumerate_candidates, map_candidate, profile_kernel
from repro.compiler.codegen import ImmPool, rewrite_block
from repro.compiler.liveness import liveness
from repro.compiler.selector import select_ises
from repro.core import AT_AS, AT_MA, AT_SA
from repro.isa import assemble
from repro.mem import SPM_BASE

SAMPLE = f"""
# built-in sample: fixed-point a*x+b over an SPM array
    movi r1, {SPM_BASE}
    movi r2, {SPM_BASE + 256}
    movi r5, 25          ; a
    movi r6, 7           ; b
loop:
    lw   r3, 0(r1)
    mul  r3, r3, r5
    srai r3, r3, 4
    add  r3, r3, r6
    sw   r3, 0(r1)
    addi r1, r1, 4
    bne  r1, r2, loop
    halt
"""

TARGETS = [AT_MA, AT_AS, AT_SA, (AT_MA, AT_AS), (AT_AS, AT_SA), (AT_MA, AT_SA)]


def describe_target(target):
    if isinstance(target, tuple):
        return f"{{{target[0].name}, {target[1].name}}} fused"
    return f"{{{target.name}}}"


def main():
    if len(sys.argv) > 1:
        with open(sys.argv[1]) as handle:
            source = handle.read()
    else:
        source = SAMPLE
    program = assemble(source, name="explored")
    print("=== program ===")
    print(program.text())

    def setup(core):
        core.memory.load(SPM_BASE, [(i * 97 - 300) % 2048 for i in range(64)])

    profile = profile_kernel(program, setup)
    print(f"profiled: {profile.instructions} instructions, "
          f"{profile.cycles} cycles")
    _, live_out = liveness(program)

    for hot in profile.hot_blocks():
        block = hot.block
        print(f"\n=== hot block #{block.index} "
              f"({hot.weight:.0%} of dynamic instructions) ===")
        dfg = DFG(block, spm_only=profile.spm_only,
                  live_out=live_out[block.index])
        for node in dfg.nodes:
            marks = []
            if node.is_mem:
                marks.append("SPM" if node.spm_safe else "not-SPM-safe")
            if node.live_out:
                marks.append("live-out")
            print(f"  node {node.id}: {node.instr.text():28s} "
                  f"class {node.cls.value} {' '.join(marks)}")

        candidates = enumerate_candidates(dfg)
        print(f"\n  {len(candidates)} candidates under 4-in/2-out; largest:")
        for candidate in candidates[:5]:
            verdicts = []
            for target in TARGETS:
                if map_candidate(candidate, target) is not None:
                    verdicts.append(describe_target(target))
            status = ", ".join(verdicts) if verdicts else "unmappable"
            print(f"    {candidate!r} -> {status}")

        pool = ImmPool.for_program(program)
        mappings = select_ises(candidates, [(AT_MA, AT_AS), AT_MA], pool)
        if not mappings:
            print("  nothing selected for an {AT-MA}+{AT-AS} tile")
            continue
        print("\n  selected custom instructions:")
        for mapping in mappings:
            config = mapping.config
            if hasattr(config, "encode"):
                word = f"control=0x{config.encode():05x}"
            else:
                word = f"control=0x{config.control_bits():010x}"
            print(f"    {config!r}  {word}")
        rewritten = rewrite_block(
            block, [(m, i) for i, m in enumerate(mappings)], pool
        )
        print("\n  rewritten block:")
        for instr in rewritten:
            print(f"    {instr.text()}")
        saved = len(block.instructions) - len(rewritten)
        print(f"  ({len(block.instructions)} -> {len(rewritten)} "
              f"instructions, {saved} saved per execution)")


if __name__ == "__main__":
    main()
