#!/usr/bin/env python
"""APP2: CNN image recognition on the 16-tile array (Figure 9).

Shows the pipeline-level view: per-stage compute/communication timing,
the bottleneck Algorithm 1 chases, and a real co-simulation of the
accelerated 16-tile system streaming frames — with its outputs checked
bit-exactly against the unaccelerated run.
"""

from repro.sim.baselines import (
    ARCH_BASELINE,
    ARCH_STITCH,
    AppEvaluator,
)
from repro.workloads.apps import app2_cnn


def main():
    app = app2_cnn()
    print(f"{app!r} — 13 convolutions, 2 pooling, 1 fully connected")
    evaluator = AppEvaluator(app)

    print("\nper-stage timing under Stitch (cycles per frame):")
    pipeline = evaluator.pipeline(ARCH_STITCH)
    bottleneck = pipeline.bottleneck()
    for stage in pipeline.stages:
        marker = "  <- bottleneck" if stage is bottleneck else ""
        print(f"  {stage.name:12s} compute={stage.compute_cycles:7d} "
              f"comm={stage.comm_cycles:4d}{marker}")
    print(f"\nsteady-state initiation interval: "
          f"{pipeline.cycles_per_item()} cycles "
          f"({pipeline.time_per_item_ms(200e6) * 1e3:.1f} us/frame @ 200 MHz)")

    speedups = evaluator.normalized_throughputs()
    print(f"Stitch speedup over baseline: {speedups[ARCH_STITCH]:.2f}x")

    print("\nco-simulating 3 frames on all 16 tiles (baseline vs Stitch)...")
    base_out = evaluator.final_outputs(ARCH_BASELINE, items=3)
    stitch_out = evaluator.final_outputs(ARCH_STITCH, items=3)
    match = base_out == stitch_out
    print(f"outputs bit-identical: {match}")
    fc_stage = app.stages[15]
    print(f"classifier output (stage 15, {fc_stage.kernel.name}): "
          f"{stitch_out[15]}")
    if not match:
        raise SystemExit("acceleration changed results — this is a bug")


if __name__ == "__main__":
    main()
