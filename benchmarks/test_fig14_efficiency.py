"""Benchmark: Figure 14 — power- and area-efficiency.

Regenerates the rows/series via ``run_fig14_efficiency`` and checks the paper's shape.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from repro.analysis.experiments import run_fig14_efficiency


def test_fig14_efficiency(run_experiment):
    report = run_experiment(run_fig14_efficiency)
    assert report.records[-1].holds()
