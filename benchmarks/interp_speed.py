"""Host-side simulated-instruction throughput bench (run directly).

Measures simulated-instructions-per-second of the interpreter stack —
the retained reference interpreter vs the pre-decoded fast loop — over
three Figure-11 kernels (fir, fft, 2dconv) and the APP4 16-tile
co-simulation, and writes the results as ``BENCH_host.json``.

Two gates ride on the output (both exercised by ``--check``):

* **ratio floor** — the fast loop must simulate at least 2x as many
  instructions per host second as the reference interpreter (the
  machine-independent witness of the engine refactor's speedup, safe
  to assert anywhere);
* **direction-aware drift** — instr/s may not drop more than the
  tolerance (default 10%) below the committed baseline; improvements
  never fail.  Simulated instruction *counts* must match the baseline
  exactly, so a workload change cannot masquerade as a perf change.

Usage::

    PYTHONPATH=src python benchmarks/interp_speed.py \
        [--out BENCH_host.json] [--check benchmarks/baselines/BENCH_host.json] \
        [--repeats 3] [--tolerance 0.10] [--min-speedup 2.0]

``repro bench --host`` produces the same payload through the main CLI.
"""

import argparse
import sys

from repro.analysis.bench import load_bench, write_bench
from repro.analysis.hostbench import (
    DEFAULT_TOLERANCE,
    MIN_FAST_SPEEDUP,
    bench_host,
    compare_host,
    render_host,
)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_host.json",
                        help="output JSON path (default BENCH_host.json)")
    parser.add_argument("--check", metavar="PATH",
                        help="baseline BENCH_host.json to gate against; "
                             "exit 1 on regression")
    parser.add_argument("--repeats", type=int, default=3,
                        help="median-of-N timing repeats (default 3)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="relative instr/s drop allowed vs baseline "
                             "(default 10%%)")
    parser.add_argument("--min-speedup", type=float, default=MIN_FAST_SPEEDUP,
                        help="fast-vs-reference ratio floor (default 2.0)")
    parser.add_argument("--items", type=int, default=4,
                        help="items streamed through the APP4 co-sim "
                             "(default 4)")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    payload = bench_host(repeats=args.repeats, seed=args.seed,
                         items=args.items)
    print(render_host(payload))
    write_bench(payload, args.out)
    print(f"wrote {args.out}")

    failed = False
    speedup = payload["aggregate"].get("fast_speedup")
    if speedup is not None and speedup < args.min_speedup:
        print(f"FAIL: aggregate fast_speedup {speedup} is below the "
              f"{args.min_speedup}x floor", file=sys.stderr)
        failed = True
    if args.check:
        regressions, notes = compare_host(
            payload, load_bench(args.check),
            tolerance=args.tolerance, min_speedup=args.min_speedup,
        )
        for note in notes:
            print(f"note: {note}")
        for regression in regressions:
            print(f"REGRESSION: {regression}", file=sys.stderr)
        if regressions:
            failed = True
        else:
            print(f"within {args.tolerance:.0%} of {args.check}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
