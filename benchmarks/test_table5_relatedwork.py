"""Benchmark: Table V — related-work classification.

Regenerates the rows/series via ``run_table5_relatedwork`` and checks the paper's shape.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from repro.analysis.experiments import run_table5_relatedwork


def test_table5_relatedwork(run_experiment):
    report = run_experiment(run_table5_relatedwork)
    assert report.all_hold()
