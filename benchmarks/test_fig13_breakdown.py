"""Benchmark: Figure 13 — power and area breakdown.

Regenerates the rows/series via ``run_fig13_breakdown`` and checks the paper's shape.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from repro.analysis.experiments import run_fig13_breakdown


def test_fig13_breakdown(run_experiment):
    report = run_experiment(run_fig13_breakdown)
    assert report.all_hold()
