"""Benchmark: Figure 15 — Stitch vs the smartwatch class.

Regenerates the rows/series via ``run_fig15_vs_wearables`` and checks the paper's shape.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from repro.analysis.experiments import run_fig15_vs_wearables


def test_fig15_vs_wearables(run_experiment):
    report = run_experiment(run_fig15_vs_wearables)
    assert report.records[-1].holds()
