"""Benchmark: Figure 4 — one pattern on different patches.

Regenerates the rows/series via ``run_fig4_pattern`` and checks the paper's shape.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from repro.analysis.experiments import run_fig4_pattern


def test_fig4_pattern(run_experiment):
    report = run_experiment(run_fig4_pattern)
    assert report.all_hold()
