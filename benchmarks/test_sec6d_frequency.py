"""Benchmark: Section VI-D — LOCUS at 400 MHz vs Stitch at 200 MHz.

Regenerates the rows/series via ``run_sec6d_frequency`` and checks the paper's shape.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from repro.analysis.experiments import run_sec6d_frequency


def test_sec6d_frequency(run_experiment):
    report = run_experiment(run_sec6d_frequency)
    # our LOCUS model is stronger than the paper's; the perf/W
    # direction is the asserted shape (see EXPERIMENTS.md)
    assert report.records[-1].holds()
