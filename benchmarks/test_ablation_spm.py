"""Benchmark: Ablation — SPM footprint per kernel.

Regenerates the rows/series via ``run_ablation_spm`` and checks the paper's shape.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from repro.analysis.experiments.ablations import run_ablation_spm


def test_ablation_spm(run_experiment):
    report = run_experiment(run_ablation_spm)
    assert report.records[0].holds()
