"""Benchmark: Figure 10 — patch fusion maps per application.

Regenerates the rows/series via ``run_fig10_fusion_maps`` and checks the paper's shape.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from repro.analysis.experiments import run_fig10_fusion_maps


def test_fig10_fusion_maps(run_experiment):
    report = run_experiment(run_fig10_fusion_maps)
    assert report.all_hold()
