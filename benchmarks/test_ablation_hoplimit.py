"""Benchmark: Ablation — fusion hop limit vs clock.

Regenerates the rows/series via ``run_ablation_hoplimit`` and checks the paper's shape.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from repro.analysis.experiments.ablations import run_ablation_hoplimit


def test_ablation_hoplimit(run_experiment):
    report = run_experiment(run_ablation_hoplimit)
    assert report.all_hold()
