"""Benchmark: Table I — gesture recognition across platforms.

Regenerates the rows/series via ``run_table1_gesture`` and checks the paper's shape.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from repro.analysis.experiments import run_table1_gesture


def test_table1_gesture(run_experiment):
    report = run_experiment(run_table1_gesture)
    assert report.records[0].holds(), 'deadline phenomenon must reproduce'
