"""Benchmark: Figure 11 — per-kernel speedups.

Regenerates the rows/series via ``run_fig11_kernel_speedups`` and checks the paper's shape.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from repro.analysis.experiments import run_fig11_kernel_speedups


def test_fig11_kernel_speedup(run_experiment):
    report = run_experiment(run_fig11_kernel_speedups)
    assert report.all_hold()
