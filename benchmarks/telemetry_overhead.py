"""Telemetry overhead guard (run directly, not under pytest).

The telemetry layer promises a near-zero-cost disabled path: cores,
NoC and fabric always hold instrument objects (the null sinks), so the
hot loops carry no conditional forests.  This script measures a fixed
co-simulation workload with telemetry disabled and enabled and fails —
exit code 1 — if either side of that promise breaks:

* the *disabled* path must not be slower than the enabled path beyond
  measurement noise (>5% means dead instrumentation work leaked into
  the null path);
* the *enabled* path must stay within a small constant factor of the
  disabled path (counters and trace appends, not a profiler);
* the same two bounds hold against the *profiled* path (interval
  sampling + the PC-cycle histogram on every core), so neither the
  sampler's boundary check nor the profiler's disabled guard can grow
  work on the null path;
* and against the *recorded* path (the causal dependency recorder of
  ``repro critpath``), whose hooks live only on comm events — never in
  the instruction hot loop — so both its null path and its enabled
  path must obey the same limits;
* and against the *injected* path (an unarmed ``repro chaos``
  :class:`~repro.chaos.Injector` carrying a zero-fault plan): an
  unarmed injector keeps the fast engine and costs at most one
  attribute check per hook site, so it must satisfy the same two
  bounds — no leak into the null path, and within the same constant
  factor of the disabled run.

Wall-clock ratios between two in-process runs are machine-independent,
unlike absolute times, so this is safe to run in CI.

Usage::

    PYTHONPATH=src python benchmarks/telemetry_overhead.py \
        [--repeats 5] [--trace-out sample_trace.json]

``--trace-out`` additionally writes the enabled run's Chrome trace, so
CI can publish a sample artifact straight from the guard run.
"""

import argparse
import sys
import time

from repro.isa import assemble
from repro.sim import StitchSystem
from repro.telemetry import Telemetry
from repro.verify import check_run

# The disabled path may be up to this much slower than enabled before
# we call it a regression (pure measurement noise allowance).
DISABLED_REGRESSION_LIMIT = 1.05
# The enabled path may cost at most this factor over disabled.
ENABLED_OVERHEAD_LIMIT = 3.0

RELAY_TILES = 8
WORDS = 8
ROUNDS = 40


def pipeline_programs():
    """A ring pipeline: tile 0 seeds, tiles relay, tile 0 collects."""
    programs = {}
    head = f"""
        movi r10, {ROUNDS}
        movi r2, 0x100
        movi r3, {WORDS}
        movi r4, 7
        sw   r4, 0(r2)
    loop:
        movi r1, 1
        send r1, r2, r3
        movi r1, {RELAY_TILES - 1}
        recv r1, r2, r3
        addi r10, r10, -1
        bne  r10, r0, loop
        halt
    """
    programs[0] = assemble(head, name="head")
    for tile in range(1, RELAY_TILES):
        nxt = (tile + 1) % RELAY_TILES
        relay = f"""
            movi r10, {ROUNDS}
        loop:
            movi r1, {tile - 1}
            movi r2, 0x100
            movi r3, {WORDS}
            recv r1, r2, r3
            movi r1, {nxt}
            send r1, r2, r3
            addi r10, r10, -1
            bne  r10, r0, loop
            halt
        """
        programs[tile] = assemble(relay, name=f"relay{tile}")
    return programs


def run_once(telemetry, profile_cycles=False, injector=None):
    system = StitchSystem(telemetry=telemetry, profile_cycles=profile_cycles,
                          injector=injector)
    for tile, program in pipeline_programs().items():
        system.load(tile, program)
    results = system.run()
    if not all(r.halted for r in results):
        raise RuntimeError("guard workload did not run to completion")
    if not check_run(results).ok(strict=True):
        raise RuntimeError("guard workload failed the V500 cross-check")
    return system


def profiled_telemetry():
    """The full observability stack: stats, tracing, interval sampling."""
    from repro.telemetry import TimeSeries

    return Telemetry(timeseries=TimeSeries(interval=256))


def recorded_telemetry():
    """Only the causal dependency recorder (``repro critpath``)."""
    from repro.telemetry import (
        DependencyRecorder,
        NULL_STATS,
        NULL_TIMESERIES,
        NULL_TRACER,
    )

    return Telemetry(NULL_STATS, NULL_TRACER, NULL_TIMESERIES,
                     recorder=DependencyRecorder())


def unarmed_injector():
    """A real chaos injector holding a zero-fault plan (never fires)."""
    from repro.chaos import InjectionPlan, Injector

    return Injector(InjectionPlan(name="guard-unarmed"))


def measure(repeats, telemetry_factory, profile_cycles=False,
            injector_factory=None):
    times = []
    for _ in range(repeats):
        telemetry = telemetry_factory()
        injector = injector_factory() if injector_factory else None
        start = time.perf_counter()
        run_once(telemetry, profile_cycles=profile_cycles, injector=injector)
        times.append(time.perf_counter() - start)
    return sorted(times)[len(times) // 2]  # median


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--trace-out", metavar="PATH",
                        help="also write the enabled run's Chrome trace")
    args = parser.parse_args(argv)

    run_once(None)  # warm caches / imports outside the timed region
    disabled = measure(args.repeats, lambda: None)
    enabled = measure(args.repeats, Telemetry)
    profiled = measure(args.repeats, profiled_telemetry, profile_cycles=True)
    recorded = measure(args.repeats, recorded_telemetry)
    injected = measure(args.repeats, lambda: None,
                       injector_factory=unarmed_injector)
    ratio = enabled / disabled
    profiled_ratio = profiled / disabled
    recorded_ratio = recorded / disabled
    injected_ratio = injected / disabled
    print(f"telemetry disabled: {disabled * 1e3:8.2f} ms (median of "
          f"{args.repeats})")
    print(f"telemetry enabled:  {enabled * 1e3:8.2f} ms "
          f"(x{ratio:.2f} vs disabled)")
    print(f"profiled (+timeseries+pc): {profiled * 1e3:8.2f} ms "
          f"(x{profiled_ratio:.2f} vs disabled)")
    print(f"recorded (critpath): {recorded * 1e3:8.2f} ms "
          f"(x{recorded_ratio:.2f} vs disabled)")
    print(f"injected (unarmed chaos): {injected * 1e3:8.2f} ms "
          f"(x{injected_ratio:.2f} vs disabled)")

    failed = False
    if disabled > enabled * DISABLED_REGRESSION_LIMIT:
        print(f"FAIL: disabled path is >{DISABLED_REGRESSION_LIMIT:.0%} "
              "slower than enabled — null-sink work leaked into the "
              "hot path", file=sys.stderr)
        failed = True
    if disabled > profiled * DISABLED_REGRESSION_LIMIT:
        print(f"FAIL: disabled path is >{DISABLED_REGRESSION_LIMIT:.0%} "
              "slower than the profiled path — sampler/profiler work "
              "leaked into the null path", file=sys.stderr)
        failed = True
    if enabled > disabled * ENABLED_OVERHEAD_LIMIT:
        print(f"FAIL: enabled telemetry costs more than "
              f"{ENABLED_OVERHEAD_LIMIT}x the disabled path",
              file=sys.stderr)
        failed = True
    if profiled > disabled * ENABLED_OVERHEAD_LIMIT:
        print(f"FAIL: the profiled path costs more than "
              f"{ENABLED_OVERHEAD_LIMIT}x the disabled path",
              file=sys.stderr)
        failed = True
    if disabled > recorded * DISABLED_REGRESSION_LIMIT:
        print(f"FAIL: disabled path is >{DISABLED_REGRESSION_LIMIT:.0%} "
              "slower than the recorded path — recorder work leaked "
              "into the null path", file=sys.stderr)
        failed = True
    if recorded > disabled * ENABLED_OVERHEAD_LIMIT:
        print(f"FAIL: the dependency recorder costs more than "
              f"{ENABLED_OVERHEAD_LIMIT}x the disabled path",
              file=sys.stderr)
        failed = True
    if disabled > injected * DISABLED_REGRESSION_LIMIT:
        print(f"FAIL: disabled path is >{DISABLED_REGRESSION_LIMIT:.0%} "
              "slower than the unarmed-injector path — chaos hook work "
              "leaked into the null path", file=sys.stderr)
        failed = True
    if injected > disabled * ENABLED_OVERHEAD_LIMIT:
        print(f"FAIL: an unarmed chaos injector costs more than "
              f"{ENABLED_OVERHEAD_LIMIT}x the disabled path",
              file=sys.stderr)
        failed = True
    if not failed:
        print("telemetry overhead guard: OK")

    if args.trace_out:
        telemetry = Telemetry()
        run_once(telemetry)
        telemetry.tracer.write_chrome(args.trace_out)
        print(f"sample chrome trace written to {args.trace_out} "
              f"({len(telemetry.tracer)} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
