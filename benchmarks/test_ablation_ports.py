"""Benchmark: Ablation — register-file port budget.

Regenerates the rows/series via ``run_ablation_ports`` and checks the paper's shape.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from repro.analysis.experiments.ablations import run_ablation_ports


def test_ablation_ports(run_experiment):
    report = run_experiment(run_ablation_ports)
    assert report.all_hold()
