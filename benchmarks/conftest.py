"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures: it runs
the experiment once under pytest-benchmark (pedantic, single round —
these are minutes-long simulations, not microbenchmarks), prints the
regenerated rows, and asserts the paper's shape holds.
"""

import pytest


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Run an experiment driver once, print its table, return the report."""

    def runner(driver, *args, **kwargs):
        report = benchmark.pedantic(
            lambda: driver(*args, **kwargs), rounds=1, iterations=1
        )
        with capsys.disabled():
            print(f"\n=== {report.exp_id} — {report.title} ===")
            print(report.table)
            for record in report.records:
                status = "ok " if record.holds() else "MISS"
                print(
                    f"  [{status}] {record.name}: paper={record.paper} "
                    f"measured={record.measured} {record.unit} {record.note}"
                )
        return report

    return runner
