"""Benchmark: Figure 13 (time) — execution-time breakdown per app.

Regenerates the breakdown from the cycle-attribution counters via
``run_fig13_time_breakdown`` and checks every tile's buckets sum to its
cycles exactly. Run with ``pytest benchmarks/ --benchmark-only``.
"""

from repro.analysis.experiments import run_fig13_time_breakdown


def test_fig13_time_breakdown(run_experiment):
    report = run_experiment(run_fig13_time_breakdown)
    assert report.all_hold()
