"""Benchmark: Figure 12 — application throughput per architecture.

Regenerates the rows/series via ``run_fig12_app_throughput`` and checks the paper's shape.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from repro.analysis.experiments import run_fig12_app_throughput


def test_fig12_app_throughput(run_experiment):
    report = run_experiment(run_fig12_app_throughput)
    ordering = [r for r in report.records if 'ordering' in r.name][0]
    assert ordering.holds(), 'baseline < LOCUS < w/o fusion < Stitch must hold'
