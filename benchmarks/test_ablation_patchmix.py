"""Benchmark: Ablation — heterogeneous vs homogeneous patch mix.

Regenerates the rows/series via ``run_ablation_patchmix`` and checks the paper's shape.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from repro.analysis.experiments.ablations import run_ablation_patchmix


def test_ablation_patchmix(run_experiment):
    report = run_experiment(run_ablation_patchmix)
    assert report.all_hold()
