"""Benchmark: Table III — accelerator area cost.

Regenerates the rows/series via ``run_table3_area`` and checks the paper's shape.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from repro.analysis.experiments import run_table3_area


def test_table3_area(run_experiment):
    report = run_experiment(run_table3_area)
    assert report.all_hold()
