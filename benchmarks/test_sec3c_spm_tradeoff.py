"""Benchmark: Section III-C — SPM vs bigger D-cache.

Regenerates the rows/series via ``run_sec3c_spm_tradeoff`` and checks the paper's shape.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from repro.analysis.experiments import run_sec3c_spm_tradeoff


def test_sec3c_spm_tradeoff(run_experiment):
    report = run_experiment(run_sec3c_spm_tradeoff)
    assert report.all_hold()
