"""Benchmark: Section III-A — op-chain LCS study.

Regenerates the rows/series via ``run_sec3a_opchains`` and checks the paper's shape.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from repro.analysis.experiments import run_sec3a_opchains


def test_sec3a_opchains(run_experiment):
    report = run_experiment(run_sec3a_opchains)
    assert report.all_hold()
