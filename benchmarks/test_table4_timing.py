"""Benchmark: Table IV — component delays and the critical path.

Regenerates the rows/series via ``run_table4_timing`` and checks the paper's shape.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from repro.analysis.experiments import run_table4_timing


def test_table4_timing(run_experiment):
    report = run_experiment(run_table4_timing)
    assert report.all_hold()
