"""Benchmark: Ablation — const-region replication for fused remote loads.

Regenerates the rows via ``run_ablation_replication`` and checks that
replication is monotone (never hurts).
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from repro.analysis.experiments.ablations import run_ablation_replication


def test_ablation_replication(run_experiment):
    report = run_experiment(run_ablation_replication)
    assert report.all_hold()
