"""Dijkstra path search for Algorithm 1's ``FindPath``.

The stitcher needs a free round-trip path between two tiles within the
single-cycle hop budget.  Links already reserved by earlier stitchings
are excluded (in both directions, since every stitching reserves its
round trip).  The paper uses Dijkstra's algorithm (O(N^2)); with unit
edge weights this degenerates to BFS but we keep the Dijkstra
formulation — reservations may in future carry congestion weights.
"""

import heapq

from repro.core.fusion import MAX_FUSION_HOPS


def find_path(mesh, src, dst, reserved_links=(), max_hops=MAX_FUSION_HOPS,
              probe=None):
    """Shortest free path ``src..dst`` (inclusive) or ``None``.

    A link is usable only if both directions are free, because a
    stitching reserves the round trip.

    ``probe`` optionally receives ``(src, dst, path-or-None)`` for every
    search — the :class:`repro.provenance.OptionAttempt` provenance
    hook, so an ``explain`` trace can show which pair searches failed
    for want of a free path rather than a free patch.
    """
    if src == dst:
        raise ValueError("a patch cannot be stitched to itself")
    reserved = set(reserved_links)

    def usable(a, b):
        return (a, b) not in reserved and (b, a) not in reserved

    distances = {src: 0}
    previous = {}
    heap = [(0, src)]
    while heap:
        dist, tile = heapq.heappop(heap)
        if dist > distances.get(tile, float("inf")):
            continue
        if tile == dst:
            break
        if dist >= max_hops:
            continue
        for neighbor in mesh.neighbors(tile):
            if not usable(tile, neighbor):
                continue
            candidate = dist + 1
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                previous[neighbor] = tile
                heapq.heappush(heap, (candidate, neighbor))

    if dst not in distances or distances[dst] > max_hops:
        if probe is not None:
            probe(src, dst, None)
        return None
    path = [dst]
    while path[-1] != src:
        path.append(previous[path[-1]])
    path.reverse()
    if probe is not None:
        probe(src, dst, path)
    return path
