"""Inter-patch network: switches + compile-time path reservation.

A stitched pair (origin tile A, remote tile B) reserves a path A -> B
for operand delivery and the reversed path B -> A for the result's
return (Figure 5's green and purple lines).  Reservation configures the
crossbar switches along the way — intermediate tiles simply bypass —
and marks the directed links used, so a later stitching that would
contend is rejected and the compiler must pick other patches (Algorithm
1 handles that by consulting :func:`repro.interpatch.pathfinder.find_path`
with the current reservation set).
"""

from repro.interpatch.switch import (
    CrossbarSwitch,
    PORT_E,
    PORT_N,
    PORT_PATCH,
    PORT_REG,
    PORT_S,
    PORT_W,
)
from repro.noc.topology import Mesh


class ReservationError(RuntimeError):
    """A requested path conflicts with an existing reservation."""


def _direction(mesh, src, dst):
    """Port name of the link src -> dst as seen from src."""
    sx, sy = mesh.coords(src)
    dx, dy = mesh.coords(dst)
    if dx == sx + 1 and dy == sy:
        return PORT_E
    if dx == sx - 1 and dy == sy:
        return PORT_W
    if dy == sy + 1 and dx == sx:
        return PORT_S
    if dy == sy - 1 and dx == sx:
        return PORT_N
    raise ValueError(f"tiles {src} and {dst} are not mesh neighbours")


_OPPOSITE = {PORT_N: PORT_S, PORT_S: PORT_N, PORT_E: PORT_W, PORT_W: PORT_E}


class InterPatchNetwork:
    """All switches of the inter-patch mesh plus the reservation state."""

    def __init__(self, mesh=None):
        self.mesh = mesh if mesh is not None else Mesh()
        self.switches = [CrossbarSwitch(t) for t in range(self.mesh.num_tiles)]
        self.reserved_links = set()
        self.stitchings = []  # (origin, remote, path) for reporting

    def switch(self, tile):
        return self.switches[tile]

    def is_link_free(self, src, dst):
        return (src, dst) not in self.reserved_links

    def _configure_direction(self, path):
        """Configure switches for a one-way traversal along ``path``."""
        for index in range(len(path) - 1):
            here, there = path[index], path[index + 1]
            out_port = _direction(self.mesh, here, there)
            if index == 0:
                in_port = PORT_PATCH  # origin patch output enters its switch
            else:
                in_port = _OPPOSITE[_direction(self.mesh, path[index - 1], here)]
            self.switches[here].configure(out_port, in_port)
        # Deliver into the destination patch.
        last, prev = path[-1], path[-2]
        in_port = _OPPOSITE[_direction(self.mesh, prev, last)]
        self.switches[last].configure(PORT_PATCH, in_port)

    def stitch(self, path):
        """Reserve ``path`` (origin..remote) for a fused pair, both ways.

        Raises :class:`ReservationError` on any conflict and leaves the
        network untouched in that case.
        """
        if len(path) < 2:
            raise ValueError("a stitching path needs at least two tiles")
        forward = list(zip(path, path[1:]))
        backward = [(b, a) for (a, b) in forward]
        for link in forward + backward:
            if link in self.reserved_links:
                raise ReservationError(f"link {link} already reserved")
        # Validate adjacency before mutating anything.
        for src, dst in forward:
            _direction(self.mesh, src, dst)
        snapshot = [switch.routes() for switch in self.switches]
        try:
            self._configure_direction(path)
            self._configure_direction(list(reversed(path)))
            # The origin's register file receives the returned result.
            origin = self.switches[path[0]]
            origin.configure(PORT_REG, origin.driver_of(PORT_PATCH))
        except ValueError as exc:
            for switch, routes in zip(self.switches, snapshot):
                switch.clear()
                for out_port, in_port in routes.items():
                    switch.configure(out_port, in_port)
            raise ReservationError(str(exc)) from exc
        self.reserved_links.update(forward)
        self.reserved_links.update(backward)
        self.stitchings.append((path[0], path[-1], list(path)))
        return list(path)

    def hops(self, path):
        return len(path) - 1

    def reset(self):
        for switch in self.switches:
            switch.clear()
        self.reserved_links.clear()
        self.stitchings.clear()

    def utilization(self):
        """Fraction of directed mesh links reserved."""
        total = 0
        for tile in range(self.mesh.num_tiles):
            total += len(self.mesh.neighbors(tile))
        return len(self.reserved_links) / total if total else 0.0
