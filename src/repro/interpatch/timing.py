"""Static timing of inter-patch (stitched) paths.

The stitching rules of Section III-B, in checkable form:

* a fused pair's operands traverse at most :data:`MAX_PATH_TRAVERSALS`
  link hops round trip (the reserved path is walked once out and once
  back, so a path of ``h`` hops costs ``2 * h`` traversals),
* the complete fused critical path — 3 switch crossings, both patch
  chains and the round-trip wire/switch transit — must fit the clock
  (:data:`repro.core.fusion.CLOCK_NS`).

The arithmetic itself lives in :class:`repro.core.fusion.FusionTiming`;
this module exposes it keyed by *concrete paths and placements*, which
is what the plan verifier works on.  Every check accepts an optional
``fabric`` (:class:`repro.platform.FabricParams`) so other machines'
budgets can be verified; the default is the stitch preset.
"""

from repro.core.fusion import CLOCK_NS, MAX_FUSION_HOPS, FusionTiming

# Round trip over a MAX_FUSION_HOPS-hop path (paper's <= 6 rule) —
# derived from the preset, like MAX_FUSION_HOPS itself.
MAX_PATH_TRAVERSALS = 2 * MAX_FUSION_HOPS


def _budgets(fabric):
    """(timing class, max traversals) for a fabric (None = preset)."""
    if fabric is None:
        return FusionTiming, MAX_PATH_TRAVERSALS
    return FusionTiming.configured(fabric), fabric.max_path_traversals


def path_hops(path):
    """One-way link hops of a reserved path (list of tiles)."""
    if len(path) < 2:
        raise ValueError("a stitching path visits at least two tiles")
    return len(path) - 1


def path_traversals(path):
    """Round-trip link traversals of a reserved path."""
    return 2 * path_hops(path)


def fused_path_delay_ns(ptype_a, ptype_b, path, fabric=None):
    """Critical-path delay of a fused pair stitched along ``path``."""
    timing, _ = _budgets(fabric)
    return timing.fused_delay(ptype_a, ptype_b, path_hops(path))


def within_hop_budget(path, fabric=None):
    _, max_traversals = _budgets(fabric)
    return path_traversals(path) <= max_traversals


def within_delay_budget(ptype_a, ptype_b, path, fabric=None):
    timing, _ = _budgets(fabric)
    return timing.fits_single_cycle(
        fused_path_delay_ns(ptype_a, ptype_b, path, fabric=fabric)
    )


def check_path(ptype_a, ptype_b, path, fabric=None):
    """(ok, detail) for one stitched path against both budgets."""
    timing, max_traversals = _budgets(fabric)
    traversals = path_traversals(path)
    if traversals > max_traversals:
        return False, (
            f"{traversals} link traversals exceed the "
            f"{max_traversals}-traversal budget"
        )
    delay = fused_path_delay_ns(ptype_a, ptype_b, path, fabric=fabric)
    if not timing.fits_single_cycle(delay):
        return False, (
            f"fused path delay {delay:.2f} ns misses the "
            f"{timing.clock_ns:.2f} ns clock"
        )
    return True, f"{traversals} traversals, {delay:.2f} ns"
