"""The compiler-scheduled, bufferless inter-patch NoC (Section III-B).

A second mesh, separate from the inter-core NoC, made only of wires and
crossbar switches driven by clockless repeaters — no buffers, no
control logic.  Each tile's switch holds a single memory-mapped
*crossbar configuration register* written before the application
launches; at runtime signals traverse multiple hops asynchronously
within a single clock cycle.  The compiler guarantees contention
freedom by reserving disjoint links per stitched pair.
"""

from repro.interpatch.switch import (
    CrossbarSwitch,
    PORTS,
    PORT_E,
    PORT_N,
    PORT_PATCH,
    PORT_REG,
    PORT_S,
    PORT_W,
)
from repro.interpatch.network import InterPatchNetwork, ReservationError
from repro.interpatch.pathfinder import find_path
from repro.interpatch.timing import (
    MAX_PATH_TRAVERSALS,
    fused_path_delay_ns,
    path_traversals,
)

__all__ = [
    "MAX_PATH_TRAVERSALS",
    "fused_path_delay_ns",
    "path_traversals",
    "CrossbarSwitch",
    "PORTS",
    "PORT_N",
    "PORT_E",
    "PORT_S",
    "PORT_W",
    "PORT_PATCH",
    "PORT_REG",
    "InterPatchNetwork",
    "ReservationError",
    "find_path",
]
