"""The 6x6 crossbar switch of the inter-patch NoC (Figure 5).

Six input and six output ports: the four mesh directions plus the
local patch and the register file.  Each 166-bit link carries four
32-bit operand words and 38 control bits (two 19-bit patch configs).
The switch has no buffers and no arbitration — each output is statically
driven by one input, chosen by the crossbar configuration register, and
the clockless repeaters let signals bypass asynchronously to the next
hop within the cycle.
"""

from repro.platform import DEFAULT_PLATFORM

PORT_N = "N"
PORT_E = "E"
PORT_S = "S"
PORT_W = "W"
PORT_PATCH = "patch"
PORT_REG = "reg"

PORTS = (PORT_N, PORT_E, PORT_S, PORT_W, PORT_PATCH, PORT_REG)

# Derived compatibility aliases — the numbers themselves live in
# repro.platform's presets (single source of truth).
LINK_DATA_BITS = DEFAULT_PLATFORM.fabric.link_data_bits
LINK_CONTROL_BITS = DEFAULT_PLATFORM.fabric.link_control_bits
LINK_BITS = DEFAULT_PLATFORM.fabric.link_bits  # 166

_PORT_CODE = {port: index for index, port in enumerate(PORTS)}
_CODE_PORT = dict(enumerate(PORTS))
_FIELD_WIDTH = 3  # 6 ports + "undriven" fit in 3 bits per output


class CrossbarSwitch:
    """One tile's switch: a map ``output port -> input port``."""

    def __init__(self, tile):
        self.tile = tile
        self._routes = {}

    def configure(self, out_port, in_port):
        """Drive ``out_port`` from ``in_port``.

        An output can only be driven by one input; reconfiguring an
        already-driven output is rejected (the compiler must release the
        old route first).  An input may fan out to several outputs.
        """
        self._check_port(out_port)
        self._check_port(in_port)
        if out_port == in_port:
            raise ValueError(f"switch {self.tile}: output {out_port} looped to itself")
        if out_port in self._routes:
            raise ValueError(
                f"switch {self.tile}: output {out_port} already driven by "
                f"{self._routes[out_port]}"
            )
        self._routes[out_port] = in_port

    def release(self, out_port):
        self._routes.pop(out_port, None)

    def clear(self):
        self._routes.clear()

    def driver_of(self, out_port):
        return self._routes.get(out_port)

    def routes(self):
        return dict(self._routes)

    @staticmethod
    def _check_port(port):
        if port not in PORTS:
            raise ValueError(f"unknown port {port!r}")

    # -- memory-mapped register view -----------------------------------------

    def register_value(self):
        """Pack the configuration into the memory-mapped register format.

        3 bits per output port (input code 0-5, 7 = undriven), outputs
        in :data:`PORTS` order — 18 bits total.
        """
        value = 0
        for index, out_port in enumerate(PORTS):
            in_port = self._routes.get(out_port)
            code = _PORT_CODE[in_port] if in_port is not None else 7
            value |= code << (index * _FIELD_WIDTH)
        return value

    def load_register(self, value):
        """Inverse of :meth:`register_value` (the store the CPU performs)."""
        self.clear()
        for index, out_port in enumerate(PORTS):
            code = (value >> (index * _FIELD_WIDTH)) & 0b111
            if code == 7:
                continue
            in_port = _CODE_PORT.get(code)
            if in_port is None:
                raise ValueError(f"illegal input code {code} for output {out_port}")
            if in_port == out_port:
                raise ValueError(f"output {out_port} looped to itself")
            self._routes[out_port] = in_port

    def __repr__(self):
        inner = ", ".join(f"{o}<-{i}" for o, i in sorted(self._routes.items()))
        return f"CrossbarSwitch(tile {self.tile}: {inner})"
