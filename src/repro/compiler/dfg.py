"""Dataflow graphs over basic blocks.

Each computational instruction of a block becomes a node; moves are
treated as wiring (Section III-A: "move instructions ... can be
converted into wiring when synthesized") and folded by copy/constant
propagation.  Value edges follow register def-use; a separate total
order is kept over memory and communication operations so candidates
and the scheduler never reorder them unsafely.

Input references are tuples:

* ``('node', id)`` — the value of another node in the block,
* ``('reg', r)`` — a register live into the block,
* ``('imm', v)`` — a compile-time constant.
"""

from repro.isa.instructions import Op, OpClass, base_op, op_class

# Operations placeable on some patch unit (SLTU/MULH-only menus apply
# at mapping time; SLTU never appears on a patch, so it is excluded).
MAPPABLE_OPS = frozenset(
    {
        Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SLT, Op.SEQ,
        Op.SLL, Op.SRL, Op.SRA, Op.MUL, Op.MULH, Op.LW, Op.SW,
    }
)


class DFGNode:
    """One computational instruction inside a block."""

    __slots__ = (
        "id", "pos", "instr", "op", "base", "cls", "inputs", "out_reg",
        "mem_offset", "uses", "live_out", "spm_safe", "replicable",
    )

    def __init__(self, node_id, pos, instr, inputs, mem_offset=0,
                 spm_safe=False, replicable=False):
        self.id = node_id
        self.pos = pos                      # block-relative position
        self.instr = instr
        self.op = instr.op
        self.base = base_op(instr.op)
        self.cls = op_class(instr.op)
        self.inputs = tuple(inputs)
        self.out_reg = instr.rd if instr.op is not Op.SW else None
        self.mem_offset = mem_offset        # immediate offset of lw/sw
        self.uses = []                      # block positions reading the value
        self.live_out = False               # final def of out_reg in block
        self.spm_safe = spm_safe            # all observed addresses in SPM
        self.replicable = replicable        # load confined to a const region

    @property
    def is_mem(self):
        return self.cls is OpClass.T

    def value_pred_ids(self):
        return [ref[1] for ref in self.inputs if ref[0] == "node"]

    def __repr__(self):
        return f"DFGNode(#{self.id} {self.op.value} @{self.pos})"


_COMPUTE_CLASSES = (OpClass.A, OpClass.S, OpClass.M, OpClass.T)


class DFG:
    """Dataflow graph of one basic block."""

    def __init__(self, block, spm_only=frozenset(), live_out=None,
                 replicable=frozenset()):
        self.block = block
        self.replicable_pcs = frozenset(replicable)
        self.live_out_regs = (
            frozenset(range(1, 16)) if live_out is None else frozenset(live_out)
        )
        self.nodes = []
        self.node_at_pos = {}
        self.mem_order = []       # positions of mem/comm ops, program order
        self._consumers = {}      # node id -> [node ids]
        self._build(spm_only)

    # -- construction -----------------------------------------------------

    def _build(self, spm_only):
        defs = {}  # register -> ref

        def resolve(reg):
            if reg == 0:
                return ("imm", 0)
            return defs.get(reg, ("reg", reg))

        def new_node(pos, instr, inputs, mem_offset=0, spm_safe=False,
                     replicable=False):
            node = DFGNode(len(self.nodes), pos, instr, inputs, mem_offset,
                           spm_safe, replicable)
            self.nodes.append(node)
            self.node_at_pos[pos] = node
            for ref in inputs:
                if ref[0] == "node":
                    producer = self.nodes[ref[1]]
                    producer.uses.append(pos)
                    self._consumers.setdefault(ref[1], []).append(node.id)
            if node.out_reg is not None and node.out_reg != 0:
                defs[node.out_reg] = ("node", node.id)
            return node

        def record_plain_reads(pos, instr):
            for reg in instr.reads():
                ref = resolve(reg)
                if ref[0] == "node":
                    self.nodes[ref[1]].uses.append(pos)

        for pos, instr in enumerate(self.block.instructions):
            op = instr.op
            cls = op_class(op)
            program_index = self.block.start + pos
            if op is Op.MOV:
                record_plain_reads(pos, instr)
                if instr.rd != 0:
                    defs[instr.rd] = resolve(instr.ra)
            elif op is Op.MOVI:
                if instr.rd != 0:
                    defs[instr.rd] = ("imm", instr.imm)
            elif op is Op.LW:
                new_node(
                    pos, instr, [resolve(instr.ra)],
                    mem_offset=instr.imm,
                    spm_safe=program_index in spm_only,
                    replicable=program_index in self.replicable_pcs,
                )
                self.mem_order.append(pos)
            elif op is Op.SW:
                new_node(
                    pos, instr, [resolve(instr.rd), resolve(instr.ra)],
                    mem_offset=instr.imm,
                    spm_safe=program_index in spm_only,
                )
                self.mem_order.append(pos)
            elif cls in _COMPUTE_CLASSES:
                if instr.fmt == "ri":
                    inputs = [resolve(instr.ra), ("imm", instr.imm)]
                else:
                    inputs = [resolve(instr.ra), resolve(instr.rb)]
                new_node(pos, instr, inputs)
            else:
                # Control, comm, cix, nop: consume values, produce none
                # visible to patterns.  Comm ops join the memory order.
                record_plain_reads(pos, instr)
                if cls is OpClass.COMM or op is Op.CIX:
                    self.mem_order.append(pos)
                if op is Op.JAL:
                    defs[15] = ("reg", 15)  # opaque redefinition

        # Mark live-out nodes: last definition of a register that stays
        # live past the block (per the CFG liveness analysis).
        for reg, ref in defs.items():
            if ref[0] == "node" and reg in self.live_out_regs:
                self.nodes[ref[1]].live_out = True

    # -- queries ---------------------------------------------------------------

    def consumers(self, node_id):
        """Node ids (within the DFG) consuming ``node_id``'s value."""
        return self._consumers.get(node_id, [])

    def eligible_nodes(self):
        """Nodes a custom-instruction candidate may contain."""
        result = []
        for node in self.nodes:
            if node.base not in MAPPABLE_OPS:
                continue
            if node.is_mem and not node.spm_safe:
                continue
            result.append(node)
        return result

    def has_external_consumer(self, node, member_ids):
        """True if ``node``'s value escapes the candidate ``member_ids``."""
        if node.out_reg is None:
            return False
        if node.live_out:
            return True
        member_positions = {self.nodes[m].pos for m in member_ids}
        return any(pos not in member_positions for pos in node.uses)

    def external_inputs(self, member_ids):
        """Distinct outside refs feeding the candidate (mapping view).

        Non-zero memory offsets count as immediate inputs because the
        patch must receive them as operands to form addresses.
        """
        members = set(member_ids)
        refs = []
        seen = set()

        def add(ref):
            if ref not in seen:
                seen.add(ref)
                refs.append(ref)

        for node_id in sorted(members):
            node = self.nodes[node_id]
            for ref in node.inputs:
                if ref[0] == "node" and ref[1] in members:
                    continue
                add(ref)
            if node.is_mem and node.mem_offset != 0:
                add(("imm", node.mem_offset))
        return refs

    def outputs(self, member_ids):
        """Node ids whose values must be written to the register file."""
        return [
            node_id for node_id in sorted(set(member_ids))
            if self.has_external_consumer(self.nodes[node_id], member_ids)
        ]

    def is_convex(self, member_ids):
        """No outside path from a member back into the candidate.

        Checked over value edges plus the memory/comm order (a candidate
        may not straddle a non-member memory or communication op that
        both depends on it and feeds it).
        """
        members = set(member_ids)
        if self._mem_span_violated(members):
            return False
        # Forward reachability from the candidate through outside nodes.
        frontier = []
        for node_id in members:
            for consumer in self.consumers(node_id):
                if consumer not in members:
                    frontier.append(consumer)
        seen = set()
        while frontier:
            node_id = frontier.pop()
            if node_id in seen:
                continue
            seen.add(node_id)
            if node_id in members:
                return False
            for consumer in self.consumers(node_id):
                frontier.append(consumer)
        return True

    def _mem_span_violated(self, members):
        """A hazardous non-member mem/comm op inside the memory span.

        Outside *loads* commute with member loads, so they only violate
        the span when the candidate contains a store; outside stores
        and comm ops always do.
        """
        member_mem = [self.nodes[m] for m in members if self.nodes[m].is_mem]
        if len(member_mem) < 2:
            return False
        positions = [node.pos for node in member_mem]
        lo, hi = min(positions), max(positions)
        member_has_store = any(node.op is Op.SW for node in member_mem)
        for pos in self.mem_order:
            if lo < pos < hi:
                node = self.node_at_pos.get(pos)
                if node is not None and node.id in members:
                    continue
                outside_is_load = node is not None and node.op is Op.LW
                if not outside_is_load or member_has_store:
                    return True
        return False
