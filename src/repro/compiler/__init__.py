"""The Stitch compiler tool chain (Section IV, Figure 6).

Stages, mirroring the paper's flow:

1. :mod:`repro.compiler.profiler` — profile each kernel, find the
   bottleneck kernels' hot basic blocks (>= 5 % dynamic share),
2. :mod:`repro.compiler.dfg` — represent hot blocks as dataflow graphs,
3. :mod:`repro.compiler.ise` — enumerate custom-instruction candidates
   under the 4-input/2-output register-file constraint,
4. :mod:`repro.compiler.opchain` — the multi-round LCS op-chain study
   that motivated the patch designs (Section III-A),
5. :mod:`repro.compiler.mapper` — map candidates onto single patches
   and fused pairs,
6. :mod:`repro.compiler.selector` / :mod:`repro.compiler.codegen` —
   pick profitable ISEs and emit the rewritten binary with control
   bits,
7. :mod:`repro.compiler.driver` — per-kernel compilation producing one
   executable version per patch option (the stitcher then selects
   versions chip-wide, see :mod:`repro.core.stitching`).
"""

from repro.compiler.dfg import DFG, DFGNode
from repro.compiler.profiler import HotBlock, ProfileResult, profile_kernel
from repro.compiler.ise import Candidate, enumerate_candidates
from repro.compiler.mapper import map_candidate, Mapping
from repro.compiler.opchain import critical_path_classes, lcs_rounds
from repro.compiler.selector import select_ises
from repro.compiler.codegen import rewrite_block, CodegenError
from repro.compiler.driver import (
    KernelCompiler,
    PatchOption,
    SINGLE_OPTIONS,
    FUSED_OPTIONS,
    ALL_OPTIONS,
)

__all__ = [
    "DFG",
    "DFGNode",
    "HotBlock",
    "ProfileResult",
    "profile_kernel",
    "Candidate",
    "enumerate_candidates",
    "map_candidate",
    "Mapping",
    "critical_path_classes",
    "lcs_rounds",
    "select_ises",
    "rewrite_block",
    "CodegenError",
    "KernelCompiler",
    "PatchOption",
    "SINGLE_OPTIONS",
    "FUSED_OPTIONS",
    "ALL_OPTIONS",
]
