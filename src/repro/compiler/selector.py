"""ISE selection: choosing which mapped candidates to commit.

Greedy (largest coverage first), honoring:

* disjointness — an instruction joins at most one custom instruction,
* mappability on the target patch option,
* constant-register availability in the :class:`ImmPool`,
* schedulability — adding the mapping must not create a dependence
  cycle in the rewritten block (checked by a trial rewrite).
"""

from repro.compiler.codegen import CodegenError, rewrite_block
from repro.compiler.mapper import map_candidate


def select_ises(candidates, targets, pool, max_per_block=8):
    """Pick mappings for one block.

    ``targets`` is an ordered list of mapping targets (best first), e.g.
    ``[(AT_MA, AT_AS), AT_MA]`` for a kernel whose tile has an {AT-MA}
    patch fused with a remote {AT-AS}.  For each candidate the first
    target that admits a mapping wins.  The returned list of
    :class:`~repro.compiler.mapper.Mapping` is guaranteed to rewrite
    cleanly as a set.
    """
    chosen = []
    covered = set()
    block = candidates[0].dfg.block if candidates else None
    for candidate in candidates:
        if len(chosen) >= max_per_block:
            break
        if candidate.node_ids & covered:
            continue
        imm_values = [ref[1] for ref in candidate.inputs if ref[0] == "imm"]
        if not pool.can_allocate(imm_values):
            continue
        mapping = None
        for target in targets:
            mapping = map_candidate(candidate, target)
            if mapping is not None:
                break
        if mapping is None:
            continue
        trial = chosen + [mapping]
        try:
            rewrite_block(block, [(m, 0) for m in trial], pool)
        except CodegenError:
            continue
        chosen.append(mapping)
        covered |= candidate.node_ids
    return chosen
