"""ISE selection: choosing which mapped candidates to commit.

Greedy (largest coverage first), honoring:

* disjointness — an instruction joins at most one custom instruction,
* mappability on the target patch option,
* constant-register availability in the :class:`ImmPool`,
* schedulability — adding the mapping must not create a dependence
  cycle in the rewritten block (checked by a trial rewrite).
"""

from repro.compiler.codegen import CodegenError, rewrite_block
from repro.compiler.mapper import map_candidate
from repro.core.fusion import FusedConfig
from repro.provenance.records import (
    REJECT_IMM_POOL,
    REJECT_MAX_PER_BLOCK,
    REJECT_OVERLAP,
    REJECT_UNMAPPABLE,
    REJECT_UNSCHEDULABLE,
    REJECTED,
    SELECTED,
)


def _target_name(mapping):
    """Patch-type name(s) the mapping landed on, e.g. ``AT-MA+AT-AS``."""
    config = mapping.config
    if isinstance(config, FusedConfig):
        return f"{config.cfg_a.ptype.name}+{config.cfg_b.ptype.name}"
    return config.ptype.name


def select_ises(candidates, targets, pool, max_per_block=8, observer=None):
    """Pick mappings for one block.

    ``targets`` is an ordered list of mapping targets (best first), e.g.
    ``[(AT_MA, AT_AS), AT_MA]`` for a kernel whose tile has an {AT-MA}
    patch fused with a remote {AT-AS}.  For each candidate the first
    target that admits a mapping wins.  The returned list of
    :class:`~repro.compiler.mapper.Mapping` is guaranteed to rewrite
    cleanly as a set.

    ``observer`` optionally receives the fate of **every** candidate
    (the :class:`repro.provenance.BlockRecord` protocol):
    ``decide(candidate, status, reason=..., target=...)`` — selected, or
    rejected with one of the documented reasons — so accepted plus
    rejected always sums to ``len(candidates)``.  With the default
    ``None`` the loop short-circuits exactly as before.
    """
    chosen = []
    covered = set()
    block = candidates[0].dfg.block if candidates else None
    for candidate in candidates:
        if len(chosen) >= max_per_block:
            if observer is None:
                break
            observer.decide(candidate, REJECTED, reason=REJECT_MAX_PER_BLOCK)
            continue
        if candidate.node_ids & covered:
            if observer is not None:
                observer.decide(candidate, REJECTED, reason=REJECT_OVERLAP)
            continue
        imm_values = [ref[1] for ref in candidate.inputs if ref[0] == "imm"]
        if not pool.can_allocate(imm_values):
            if observer is not None:
                observer.decide(candidate, REJECTED, reason=REJECT_IMM_POOL)
            continue
        mapping = None
        for target in targets:
            mapping = map_candidate(candidate, target)
            if mapping is not None:
                break
        if mapping is None:
            if observer is not None:
                observer.decide(candidate, REJECTED, reason=REJECT_UNMAPPABLE)
            continue
        trial = chosen + [mapping]
        try:
            rewrite_block(block, [(m, 0) for m in trial], pool)
        except CodegenError:
            if observer is not None:
                observer.decide(
                    candidate, REJECTED, reason=REJECT_UNSCHEDULABLE
                )
            continue
        chosen.append(mapping)
        covered |= candidate.node_ids
        if observer is not None:
            observer.decide(candidate, SELECTED, target=_target_name(mapping))
    return chosen
