"""ISE candidate enumeration (Figure 6's "ISE identifier").

Candidates are connected, convex subgraphs of a hot block's DFG obeying
the register-file constraint: at most 4 inputs and 2 outputs
(Section IV).  Connected subgraphs are enumerated exactly once with the
ESU algorithm; convexity and I/O limits filter the stream.  The
``max_size`` bound (default 8 — the unit budget of a fused pair) keeps
enumeration tractable on large blocks.
"""

from repro.provenance.records import (
    REJECT_CONVEXITY,
    REJECT_INPUTS,
    REJECT_OUTPUTS,
)


class Candidate:
    """One custom-instruction candidate over a block DFG."""

    __slots__ = ("dfg", "node_ids", "inputs", "outputs")

    def __init__(self, dfg, node_ids):
        self.dfg = dfg
        self.node_ids = frozenset(node_ids)
        self.inputs = dfg.external_inputs(self.node_ids)
        self.outputs = dfg.outputs(self.node_ids)

    @property
    def size(self):
        return len(self.node_ids)

    def nodes(self):
        """Member nodes in topological (block-position) order."""
        return sorted(
            (self.dfg.nodes[node_id] for node_id in self.node_ids),
            key=lambda node: node.pos,
        )

    def software_instructions(self):
        """Instruction count the candidate replaces."""
        return self.size

    def signature(self):
        """Op-class string of members in position order (e.g. ``MAAT``)."""
        return "".join(node.cls.value for node in self.nodes())

    def __repr__(self):
        ops = "+".join(node.op.value for node in self.nodes())
        return f"Candidate({ops}, in={len(self.inputs)}, out={len(self.outputs)})"

    def __eq__(self, other):
        return (
            isinstance(other, Candidate)
            and self.dfg is other.dfg
            and self.node_ids == other.node_ids
        )

    def __hash__(self):
        return hash(self.node_ids)


def _adjacency(dfg, eligible_ids):
    """Undirected value-edge adjacency restricted to eligible nodes."""
    adj = {node_id: set() for node_id in eligible_ids}
    for node_id in eligible_ids:
        node = dfg.nodes[node_id]
        for pred in node.value_pred_ids():
            if pred in adj:
                adj[node_id].add(pred)
                adj[pred].add(node_id)
    return adj


def enumerate_candidates(
    dfg,
    max_size=8,
    min_size=2,
    max_inputs=4,
    max_outputs=2,
    limit=20000,
    observer=None,
):
    """All feasible candidates of a block DFG, largest first.

    ``limit`` bounds the number of connected subgraphs visited; blocks
    big enough to hit it get a truncated (still valid) candidate set.

    ``observer`` optionally receives provenance callbacks (the
    :class:`repro.provenance.EnumerationLog` protocol):
    ``note_visited()`` per subgraph examined, ``note_rejected(reason)``
    per infeasible one — convexity or the 4-input/2-output register-file
    budget — and ``note_truncated()`` when ``limit`` cuts the sweep
    short.  Passing ``None`` (the default) costs nothing.
    """
    eligible_ids = [node.id for node in dfg.eligible_nodes()]
    adjacency = _adjacency(dfg, eligible_ids)
    found = []
    visited = 0

    def feasible(node_set):
        if observer is not None:
            observer.note_visited()
        if not dfg.is_convex(node_set):
            if observer is not None:
                observer.note_rejected(REJECT_CONVEXITY)
            return None
        candidate = Candidate(dfg, node_set)
        if len(candidate.inputs) > max_inputs:
            if observer is not None:
                observer.note_rejected(REJECT_INPUTS)
            return None
        # Zero outputs is legal (pure store patterns); codegen binds a
        # placeholder destination register.
        if len(candidate.outputs) > max_outputs:
            if observer is not None:
                observer.note_rejected(REJECT_OUTPUTS)
            return None
        return candidate

    def extend(sub, ext, root, sub_neighborhood):
        nonlocal visited
        if visited >= limit:
            if observer is not None:
                observer.note_truncated()
            return
        visited += 1
        if len(sub) >= min_size:
            candidate = feasible(sub)
            if candidate is not None:
                found.append(candidate)
        if len(sub) >= max_size:
            return
        ext = list(ext)
        while ext:
            w = ext.pop()
            exclusive = [
                u for u in adjacency[w]
                if u > root and u not in sub and u not in sub_neighborhood
            ]
            extend(
                sub | {w},
                ext + exclusive,
                root,
                sub_neighborhood | {w} | adjacency[w],
            )

    for root in sorted(eligible_ids):
        ext0 = [u for u in adjacency[root] if u > root]
        extend({root}, ext0, root, {root} | adjacency[root])

    found.extend(
        _independent_pairs(dfg, eligible_ids, feasible)
    )
    found.sort(key=lambda c: (-c.size, sorted(c.node_ids)))
    return found


def _independent_pairs(dfg, eligible_ids, feasible):
    """Disconnected two-node candidates.

    A patch's two outputs let it execute two *independent* operations
    in one cycle (e.g. the paired pointer bumps of a streaming loop),
    so dataflow-disconnected pairs are legal custom instructions too.
    Memory operations are excluded — the single LMAU cannot pair and
    reordering-safety analysis for disconnected stores is not worth
    the marginal gain.
    """

    def reachable(src, dst):
        frontier = [src]
        seen = set()
        while frontier:
            node = frontier.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(dfg.consumers(node))
        return False

    compute_ids = [
        node_id for node_id in eligible_ids if not dfg.nodes[node_id].is_mem
    ]
    pairs = []
    for index, a in enumerate(compute_ids):
        for b in compute_ids[index + 1:]:
            if reachable(a, b) or reachable(b, a):
                continue
            candidate = feasible({a, b})
            if candidate is not None:
                pairs.append(candidate)
    return pairs
