"""Mapping ISE candidates onto patches (Figure 6's "mapper").

A candidate maps onto a single patch or a fused pair by assigning each
DFG node (plus synthetic address adders for non-zero load/store
offsets) to a unit position, subject to the datapath's reality:

* unit kinds and per-position op menus must match,
* within a patch, an internal value travels only on the *chain* wire —
  the consumer must be the next active unit, and only through a port
  that can select the chain (``in1`` of late units, the LMAU address,
  or the LMAU store-data port),
* external values enter through the four operand slots, with the
  narrow per-port slot choices of the 19-bit encoding,
* across a fused pair, values flow A to B only, through B's rewireable
  operand slots, and only patch A's two exposable outputs
  (chain end / first-half tap) can cross,
* at most 4 distinct external inputs and 2 register-file outputs.

The search is exact (backtracking over at most 8 nodes x 8 positions
with early pruning), so "no mapping" answers are trustworthy.
"""

from repro.core.config import PatchConfig, TMode, UnitConfig
from repro.core.fusion import FusedConfig
from repro.core.units import Source, UnitKind
from repro.isa.instructions import Op, OpClass


_KIND_FOR_CLASS = {
    OpClass.A: UnitKind.ALU,
    OpClass.S: UnitKind.SHIFT,
    OpClass.M: UnitKind.MUL,
    OpClass.T: UnitKind.LMAU,
}

_ANY_SLOT = frozenset((0, 1, 2, 3))


class MapNode:
    """A unit-granularity operation to place (candidate node or synthetic)."""

    __slots__ = ("idx", "kind", "op", "ins", "addr_in", "data_in", "orig_id",
                 "is_output", "replicable")

    def __init__(self, idx, kind, op, ins=(), addr_in=None, data_in=None,
                 orig_id=None, is_output=False, replicable=False):
        self.idx = idx
        self.kind = kind
        self.op = op
        self.ins = tuple(ins)
        self.addr_in = addr_in
        self.data_in = data_in
        self.orig_id = orig_id
        self.is_output = is_output
        self.replicable = replicable

    def internal_producers(self):
        refs = self.ins if self.kind is not UnitKind.LMAU else tuple(
            r for r in (self.addr_in, self.data_in) if r is not None
        )
        return [ref[1] for ref in refs if ref[0] == "m"]

    def __repr__(self):
        return f"MapNode(#{self.idx} {self.op.value})"


class Mapping:
    """A successful mapping: the config plus its register-file bindings."""

    __slots__ = ("candidate", "config", "ext_binding", "out_binding",
                 "remote_node_ids")

    def __init__(self, candidate, config, ext_binding, out_binding,
                 remote_node_ids=()):
        self.candidate = candidate
        self.config = config
        self.ext_binding = ext_binding    # operand slot -> external ref
        self.out_binding = out_binding    # config outs order -> node out_reg
        self.remote_node_ids = tuple(remote_node_ids)

    @property
    def is_fused(self):
        return isinstance(self.config, FusedConfig)

    def __repr__(self):
        kind = "fused" if self.is_fused else "single"
        return f"Mapping({kind}, {self.candidate!r})"


def _build_map_nodes(candidate):
    """Expand candidate nodes into unit-granularity MapNodes."""
    dfg = candidate.dfg
    outputs = set(candidate.outputs)
    mnodes = []
    id_map = {}

    def convert(ref):
        if ref[0] == "node":
            if ref[1] in candidate.node_ids:
                return ("m", id_map[ref[1]])
            return ("reg", dfg.nodes[ref[1]].out_reg)
        return ref

    def add(kind, op, **kwargs):
        node = MapNode(len(mnodes), kind, op, **kwargs)
        mnodes.append(node)
        return node

    for node in candidate.nodes():
        if node.is_mem:
            if node.op is Op.LW:
                addr = convert(node.inputs[0])
                data = None
            else:
                data = convert(node.inputs[0])
                addr = convert(node.inputs[1])
            if node.mem_offset != 0:
                synth = add(
                    UnitKind.ALU, Op.ADD,
                    ins=(addr, ("imm", node.mem_offset)),
                )
                addr = ("m", synth.idx)
            placed = add(
                UnitKind.LMAU, node.op, addr_in=addr, data_in=data,
                orig_id=node.id, is_output=node.id in outputs,
                replicable=node.replicable and node.op is Op.LW,
            )
        else:
            placed = add(
                _KIND_FOR_CLASS[node.cls], node.base,
                ins=tuple(convert(ref) for ref in node.inputs),
                orig_id=node.id, is_output=node.id in outputs,
            )
        id_map[node.id] = placed.idx
    return mnodes


class _Assignment:
    """Search state: map-node idx -> (patch index, position)."""

    def __init__(self, ptypes, mnodes):
        self.ptypes = ptypes
        self.mnodes = mnodes
        self.place = {}
        self.used = set()

    def options(self, node):
        """Legal (patch, position) placements given earlier choices."""
        result = []
        min_patch = 0
        producer_pos = {}
        for producer in node.internal_producers():
            patch, pos = self.place[producer]
            min_patch = max(min_patch, patch)
            producer_pos.setdefault(patch, []).append(pos)
        for patch_index in range(min_patch, len(self.ptypes)):
            ptype = self.ptypes[patch_index]
            if (node.kind is UnitKind.LMAU and patch_index > 0
                    and not node.replicable):
                # Memory ops stay on the origin patch unless the load is
                # confined to a read-only region the compiler can
                # replicate into the remote scratchpad (Section III-C's
                # per-region data placement); stores never cross.
                continue
            for position in range(4):
                if (patch_index, position) in self.used:
                    continue
                spec = ptype.unit(position)
                if spec.kind is not node.kind:
                    continue
                if node.kind is not UnitKind.LMAU and not spec.allows_op(node.op):
                    continue
                same = producer_pos.get(patch_index, [])
                if any(pos >= position for pos in same):
                    continue
                result.append((patch_index, position))
        return result


def _verify(ptypes, mnodes, assignment):
    """Check chain/port/slot/exposure rules; build the config or None."""
    num_patches = len(ptypes)
    per_patch = [{} for _ in range(num_patches)]  # position -> node
    for node in mnodes:
        patch, pos = assignment[node.idx]
        per_patch[patch][pos] = node

    actives = [sorted(p.keys()) for p in per_patch]
    if num_patches == 2 and (not actives[0] or not actives[1]):
        return None  # degenerate fusion; the single-patch path covers it

    # chain predecessor per (patch, position)
    def chain_pred(patch, pos):
        earlier = [p for p in actives[patch] if p < pos]
        return per_patch[patch][earlier[-1]] if earlier else None

    # Values that must cross from A to B.
    cross = set()
    # slot demands: per patch, list of (value_key, allowed slots, tag)
    demands = [[] for _ in range(num_patches)]
    # T unit mode chosen per patch (position 1)
    t_modes = [None] * num_patches
    # port wiring per node: (in1_source, in2_source) filled later
    wiring = {}

    def value_key(ref):
        return ref  # refs are hashable tuples

    def classify(node, ref):
        """'chain' if ref is this patch's chain predecessor, else None."""
        patch, pos = assignment[node.idx]
        if ref[0] == "m":
            p_patch, _ = assignment[ref[1]]
            if p_patch == patch:
                pred = chain_pred(patch, pos)
                if pred is None or pred.idx != ref[1]:
                    return "bad"
                return "chain"
            cross.add(ref[1])
            return "ext"
        return "ext"

    def first_active(node):
        patch, pos = assignment[node.idx]
        return actives[patch][0] == pos

    for node in mnodes:
        patch, pos = assignment[node.idx]
        if node.kind is UnitKind.LMAU:
            addr_class = classify(node, node.addr_in)
            if addr_class == "bad":
                return None
            if node.op is Op.LW:
                # Address is chain-only: internal chain pred, or the
                # ext0 chain default when the LMAU opens the patch.
                if addr_class == "ext":
                    if not first_active(node):
                        return None
                    demands[patch].append((value_key(node.addr_in), frozenset((0,)), None))
                t_modes[patch] = TMode.LOAD
            else:
                data_class = classify(node, node.data_in)
                if data_class == "bad":
                    return None
                if addr_class == "chain" and data_class == "chain":
                    return None
                if data_class == "chain":
                    # SPM[ext2] = chain
                    demands[patch].append((value_key(node.addr_in), frozenset((2,)), None))
                    t_modes[patch] = TMode.STORE_DATA_CHAIN
                elif addr_class == "chain":
                    # SPM[chain] = ext3
                    demands[patch].append((value_key(node.data_in), frozenset((3,)), None))
                    t_modes[patch] = TMode.STORE_ADDR_CHAIN
                else:
                    # Both external: address can ride the ext0 chain
                    # default if the LMAU opens the patch.
                    if not first_active(node):
                        return None
                    demands[patch].append((value_key(node.addr_in), frozenset((0,)), None))
                    demands[patch].append((value_key(node.data_in), frozenset((3,)), None))
                    t_modes[patch] = TMode.STORE_ADDR_CHAIN
            continue

        # Compute units.  Port capabilities come from the unit spec;
        # a first-active unit can additionally read an external value
        # through the chain default (chain == ext0 when nothing earlier
        # is active).
        spec = ptypes[patch].unit(pos)
        in_refs = list(node.ins)
        if len(in_refs) != 2:
            return None
        classes = [classify(node, ref) for ref in in_refs]
        if "bad" in classes:
            return None
        opens_patch = first_active(node)
        choice_sets = (spec.in1_choices, spec.in2_choices)

        def chain_ok(port):
            return Source.CHAIN in choice_sets[port]

        def ext_slots(port):
            slots = frozenset(
                Source.ext_index(s) for s in choice_sets[port] if Source.is_ext(s)
            )
            if opens_patch and chain_ok(port):
                slots = slots | frozenset((0,))
            return slots

        chain_count = classes.count("chain")
        sources = [None, None]
        if chain_count == 2:
            # One chain wire: both ports may tap it only for the same
            # value (squaring/doubling) and only if both muxes allow it.
            if in_refs[0] != in_refs[1]:
                return None
            if not (chain_ok(0) and chain_ok(1)):
                return None
            sources = [Source.CHAIN, Source.CHAIN]
        elif chain_count == 1:
            chain_port = classes.index("chain")
            if not chain_ok(chain_port):
                if _commutative(node.op) and chain_ok(1 - chain_port):
                    in_refs = [in_refs[1], in_refs[0]]
                    classes = [classes[1], classes[0]]
                    chain_port = classes.index("chain")
                else:
                    return None
            other = 1 - chain_port
            if not ext_slots(other):
                return None
            sources[chain_port] = Source.CHAIN
            demands[patch].append(
                (value_key(in_refs[other]), ext_slots(other), (node.idx, other))
            )
        else:
            for port in range(2):
                slots = ext_slots(port)
                if not slots:
                    return None
                demands[patch].append(
                    (value_key(in_refs[port]), slots, (node.idx, port))
                )
        wiring[node.idx] = (in_refs, sources)

    # -- exposure of cross values and outputs --------------------------------

    def exposables(patch):
        """{map idx: source tag} of values the patch can emit."""
        act = actives[patch]
        if not act:
            return {}
        result = {per_patch[patch][act[-1]].idx: 0}  # out0: chain end
        head = [p for p in act if p <= 1]
        tail = [p for p in act if p >= 2]
        if head and tail:
            result.setdefault(per_patch[patch][head[-1]].idx, 1)  # out1 tap
        return result

    expos = [exposables(p) for p in range(num_patches)]
    for idx in cross:
        patch, _ = assignment[idx]
        if idx not in expos[patch]:
            return None

    out_nodes = [node for node in mnodes if node.is_output]
    if len(out_nodes) > 2:
        return None
    out_sources = []
    prefix = ("a_", "b_") if num_patches == 2 else ("", "")
    for node in out_nodes:
        patch, _ = assignment[node.idx]
        tag = expos[patch].get(node.idx)
        if tag is None:
            return None
        out_sources.append((f"{prefix[patch]}out{tag}", node.orig_id))

    # -- solve operand slots --------------------------------------------------

    slot_maps = []
    for patch in range(num_patches):
        solved = _solve_slots(demands[patch])
        if solved is None:
            return None
        slot_maps.append(solved)

    # Global operand list: A's slots pin original operand indices; B's
    # external (non-cross) values reuse or claim free indices.
    operands = [None] * 4
    for value, slot in slot_maps[0].items():
        if value[0] == "m":
            return None  # patch A cannot take internal values externally
        operands[slot] = value

    b_ext = ["ext0", "ext1", "ext2", "ext3"]
    if num_patches == 2:
        for value, slot in slot_maps[1].items():
            if value[0] == "m":
                tag = expos[0][value[1]]
                b_ext[slot] = f"a_out{tag}"
            else:
                if value in operands:
                    index = operands.index(value)
                else:
                    try:
                        index = operands.index(None)
                    except ValueError:
                        return None
                    operands[index] = value
                b_ext[slot] = f"ext{index}"

    # -- build unit configs ----------------------------------------------------

    def build_patch_config(patch):
        slot_of = slot_maps[patch]
        kwargs = {"u0": None, "t": TMode.OFF, "u1": None, "u2": None, "u3": None}
        for pos, node in per_patch[patch].items():
            if node.kind is UnitKind.LMAU:
                kwargs["t"] = t_modes[patch]
                continue
            spec = ptypes[patch].unit(pos)
            in_refs, sources = wiring[node.idx]
            resolved = []
            for port, choices in enumerate((spec.in1_choices, spec.in2_choices)):
                if sources[port] == Source.CHAIN:
                    resolved.append(Source.CHAIN)
                    continue
                slot = slot_of[value_key(in_refs[port])]
                picked = Source.ext(slot)
                if picked not in choices:
                    # The port reads slot 0 through the chain default
                    # (this unit opens the patch; verified above).
                    picked = Source.CHAIN
                resolved.append(picked)
            kwargs[f"u{pos}"] = UnitConfig(node.op, resolved[0], resolved[1])
        try:
            return PatchConfig(ptypes[patch], **kwargs)
        except ValueError:
            return None

    cfg_a = build_patch_config(0)
    if cfg_a is None:
        return None
    if num_patches == 1:
        outs_order = sorted(out_sources, key=lambda s: s[0])
        return {
            "config": cfg_a,
            "operands": operands,
            "outs": outs_order,
        }
    cfg_b = build_patch_config(1)
    if cfg_b is None:
        return None
    outs_order = sorted(out_sources, key=lambda s: s[0])
    if not outs_order:
        outs_order = [("b_out0", None)]
    fused = FusedConfig(
        cfg_a, cfg_b, b_ext=tuple(b_ext),
        outs=tuple(source for source, _ in outs_order),
    )
    remote_ids = [
        node.orig_id for node in mnodes
        if assignment[node.idx][0] == 1 and node.orig_id is not None
    ]
    return {"config": fused, "operands": operands, "outs": outs_order,
            "remote_ids": remote_ids}


def _commutative(op):
    return op in (Op.ADD, Op.AND, Op.OR, Op.XOR, Op.SEQ, Op.MUL, Op.MULH)


def _solve_slots(demands):
    """Assign each demanded value to an operand slot.

    Multiple demands of the same value share one slot; the chosen slot
    must satisfy every demand's allowed set.  Returns
    ``{value: slot}`` or None.
    """
    merged = {}
    for value, allowed, _tag in demands:
        merged[value] = merged.get(value, _ANY_SLOT) & allowed
    values = sorted(merged, key=lambda v: len(merged[v]))
    result = {}
    taken = set()

    def backtrack(index):
        if index == len(values):
            return True
        value = values[index]
        for slot in sorted(merged[value]):
            if slot in taken:
                continue
            result[value] = slot
            taken.add(slot)
            if backtrack(index + 1):
                return True
            taken.discard(slot)
            del result[value]
        return False

    return result if backtrack(0) else None


def map_candidate(candidate, target):
    """Map ``candidate`` onto ``target`` (a PatchType or a 2-tuple).

    Returns a :class:`Mapping` or ``None``.
    """
    ptypes = (target,) if not isinstance(target, tuple) else tuple(target)
    if not 1 <= len(ptypes) <= 2:
        raise ValueError("target must be one patch type or a pair")
    if len(ptypes) == 2 and not all(p.fusible for p in ptypes):
        return None
    mnodes = _build_map_nodes(candidate)
    if len(mnodes) > 4 * len(ptypes):
        return None
    has_mem = any(node.kind is UnitKind.LMAU for node in mnodes)
    if has_mem and not any(p.has_lmau for p in ptypes):
        return None

    state = _Assignment(ptypes, mnodes)
    solution = {}

    def search(index):
        if index == len(mnodes):
            return _verify(ptypes, mnodes, state.place)
        node = mnodes[index]
        for option in state.options(node):
            state.place[node.idx] = option
            state.used.add(option)
            found = search(index + 1)
            state.used.discard(option)
            if found is not None:
                return found
            del state.place[node.idx]
        if node.idx in state.place:
            del state.place[node.idx]
        return None

    found = search(0)
    if found is None:
        return None

    def reg_of(orig):
        return candidate.dfg.nodes[orig].out_reg if orig is not None else 0

    if isinstance(found["config"], FusedConfig):
        # FusedConfig.outs is explicit; bindings follow the same order.
        out_binding = [reg_of(orig) for _source, orig in found["outs"]]
    else:
        # A single patch always returns [out0, out1]; align registers
        # with that fixed order, discarding unused trailing slots.
        tags = dict(found["outs"])
        if "out1" in tags:
            out_binding = [reg_of(tags.get("out0")), reg_of(tags["out1"])]
        else:
            out_binding = [reg_of(tags.get("out0"))]
    return Mapping(candidate, found["config"], found["operands"], out_binding,
                   remote_node_ids=found.get("remote_ids", ()))
