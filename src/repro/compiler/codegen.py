"""Code generation: rewriting blocks with custom instructions.

Each selected mapping's member instructions are contracted into one
``cix`` node inside the block's full dependence graph (register RAW /
WAR / WAW plus a conservative total order over memory, communication
and control operations); list scheduling re-emits the block.  A cycle
after contraction means the candidate cannot be placed safely — the
selector treats that as infeasible.

Immediate operands of custom instructions are materialized once, into
registers the program never otherwise touches, by an entry-block
prologue (:class:`ImmPool`) — constants are loop-invariant by nature so
per-iteration ``movi`` setup would waste the very cycles ISEs save.
"""

import heapq

from repro.isa.instructions import Instruction, Op, OpClass, op_class
from repro.isa.program import Program


class CodegenError(ValueError):
    """The requested rewrite cannot be done safely."""


class ImmPool:
    """Registers reserved for custom-instruction constants."""

    # The streaming wrapper (repro.sim.streaming / workloads.base) owns
    # r11 (its item counter) across the whole run; constants must never
    # live there even when the standalone kernel leaves it free.  The
    # wrapper's other scratch (r1-r3) is always program-referenced, so
    # the pool never sees it anyway.
    RESERVED = frozenset({11})

    def __init__(self, free_regs):
        self._free = [r for r in free_regs if r not in self.RESERVED]
        self._by_value = {}

    @classmethod
    def for_program(cls, program):
        """Pool of registers the program never reads or writes."""
        used = set()
        for instr in program.instructions:
            used.update(instr.reads())
            used.update(instr.writes())
        free = [r for r in range(1, 16) if r not in used]
        return cls(free)

    def get(self, value):
        """Register that will hold ``value``; allocates on first use."""
        if value == 0:
            return 0  # r0 is architecturally zero
        if value not in self._by_value:
            if not self._free:
                raise CodegenError("no free register for an ISE constant")
            self._by_value[value] = self._free.pop(0)
        return self._by_value[value]

    def can_allocate(self, values):
        fresh = {
            v for v in values if v != 0 and v not in self._by_value
        }
        return len(fresh) <= len(self._free)

    def prologue(self):
        """``movi`` instructions materializing every pooled constant."""
        return [
            Instruction(Op.MOVI, rd=reg, imm=value)
            for value, reg in sorted(self._by_value.items(), key=lambda kv: kv[1])
        ]


def _build_dependences(instructions):
    """Edge set (i -> j means i must precede j) over block positions.

    Registers get RAW/WAR/WAW edges.  Memory ordering is load/store
    precise: loads commute with each other, while stores, comm ops and
    ``cix`` (which may contain loads *and* stores) act as barriers
    against every earlier memory operation.
    """
    edges = set()
    last_def = {}
    uses_since_def = {}
    last_barrier = None
    loads_since_barrier = []
    count = len(instructions)
    for index, instr in enumerate(instructions):
        for reg in instr.reads():
            if reg == 0:
                continue
            if reg in last_def:
                edges.add((last_def[reg], index))
            uses_since_def.setdefault(reg, []).append(index)
        for reg in instr.writes():
            if reg == 0:
                continue
            for user in uses_since_def.get(reg, ()):
                if user != index:
                    edges.add((user, index))
            if reg in last_def:
                edges.add((last_def[reg], index))
            last_def[reg] = index
            uses_since_def[reg] = []
        op = instr.op
        cls = op_class(op)
        if op is Op.LW:
            if last_barrier is not None:
                edges.add((last_barrier, index))
            loads_since_barrier.append(index)
        elif op is Op.SW or cls is OpClass.COMM or op is Op.CIX:
            if last_barrier is not None:
                edges.add((last_barrier, index))
            for load in loads_since_barrier:
                edges.add((load, index))
            last_barrier = index
            loads_since_barrier = []
    # Control flow terminates the block: everything precedes it.
    if count and (instructions[-1].is_branch() or instructions[-1].op is Op.HALT):
        for index in range(count - 1):
            edges.add((index, count - 1))
    return edges


def _make_cix(mapping, cfg_id, pool):
    # Operand position IS the patch's ext slot index: unused slots up
    # to the last bound one must be kept (as r0), never collapsed.
    binding = list(mapping.ext_binding)
    while len(binding) > 1 and binding[-1] is None:
        binding.pop()
    ins = []
    for ref in binding:
        if ref is None:
            ins.append(0)
        elif ref[0] == "reg":
            ins.append(ref[1])
        else:
            ins.append(pool.get(ref[1]))
    outs = list(mapping.out_binding) or [0]
    if not ins:
        ins = [0]
    return Instruction(Op.CIX, cfg=cfg_id, outs=outs, ins=ins)


def rewrite_block(block, placements, pool):
    """Re-emit ``block`` with each placement's members fused into a cix.

    ``placements`` is a list of ``(mapping, cfg_id)``; member sets must
    be disjoint.  Returns the new instruction list (branch targets still
    refer to old program indices; :func:`rewrite_program` fixes those).
    Raises :class:`CodegenError` if contraction creates a cycle.
    """
    instructions = block.instructions
    edges = _build_dependences(instructions)
    group_of = {}
    groups = {}
    for mapping, cfg_id in placements:
        members = {
            mapping.candidate.dfg.nodes[node_id].pos
            for node_id in mapping.candidate.node_ids
        }
        for pos in members:
            if pos in group_of:
                raise CodegenError("overlapping candidate placements")
            group_of[pos] = id(mapping)
        groups[id(mapping)] = (mapping, cfg_id, min(members))

    def rep(pos):
        gid = group_of.get(pos)
        return ("g", gid) if gid is not None else ("i", pos)

    # Contract members, inheriting edges.
    contracted = set()
    for src, dst in edges:
        a, b = rep(src), rep(dst)
        if a != b:
            contracted.add((a, b))

    nodes = set()
    for index in range(len(instructions)):
        nodes.add(rep(index))

    priority = {}
    for node in nodes:
        if node[0] == "i":
            priority[node] = node[1]
        else:
            priority[node] = groups[node[1]][2]

    # Kahn's algorithm with original-order priority.
    incoming = {node: 0 for node in nodes}
    adjacency = {node: [] for node in nodes}
    for src, dst in contracted:
        adjacency[src].append(dst)
        incoming[dst] += 1
    heap = [(priority[n], n) for n in nodes if incoming[n] == 0]
    heapq.heapify(heap)
    order = []
    while heap:
        _, node = heapq.heappop(heap)
        order.append(node)
        for succ in adjacency[node]:
            incoming[succ] -= 1
            if incoming[succ] == 0:
                heapq.heappush(heap, (priority[succ], succ))
    if len(order) != len(nodes):
        raise CodegenError("contraction created a dependence cycle")

    result = []
    for node in order:
        if node[0] == "i":
            result.append(instructions[node[1]].copy())
        else:
            mapping, cfg_id, _ = groups[node[1]]
            result.append(_make_cix(mapping, cfg_id, pool))
    return _eliminate_dead_moves(result)


def _eliminate_dead_moves(instructions):
    """Drop mov/movi whose value is provably dead within the block."""
    keep = [True] * len(instructions)
    for index, instr in enumerate(instructions):
        if instr.op not in (Op.MOV, Op.MOVI):
            continue
        dest = instr.rd
        if dest == 0:
            keep[index] = False
            continue
        dead = False
        for later in instructions[index + 1:]:
            if dest in later.reads():
                break
            if dest in later.writes():
                dead = True
                break
        keep[index] = not dead
    return [instr for index, instr in enumerate(instructions) if keep[index]]


def rewrite_program(program, block_rewrites, pool, cfg_table):
    """Assemble the final program: prologue + rewritten blocks.

    ``block_rewrites`` maps block index to its new instruction list
    (defaulting to the original instructions).  Branch targets — always
    block leaders — are remapped to the new leader positions.  The
    returned :class:`Program` carries ``cfg_table`` for the executor.
    """
    blocks = program.basic_blocks()
    prologue = pool.prologue()
    new_instructions = list(prologue)
    new_start = {}
    for block in blocks:
        new_start[block.start] = len(new_instructions)
        body = block_rewrites.get(block.index)
        if body is None:
            body = [instr.copy() for instr in block.instructions]
        new_instructions.extend(body)

    for instr in new_instructions:
        if instr.target is not None and instr.op is not Op.JR:
            if instr.target not in new_start:
                raise CodegenError(
                    f"branch targets non-leader index {instr.target}"
                )
            instr.target = new_start[instr.target]

    labels = {
        label: new_start[target]
        for label, target in program.labels.items()
        if target in new_start
    }
    result = Program(
        new_instructions, labels=labels,
        name=f"{program.name}+ise", symbols=dict(program.symbols),
    )
    result.cfg_table = list(cfg_table)
    return result
