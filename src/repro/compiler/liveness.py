"""Register liveness over the basic-block CFG.

Backward dataflow with the usual equations::

    live_in(B)  = use(B) | (live_out(B) - def(B))
    live_out(B) = union of live_in over successors

``exit_live`` names the registers the surrounding harness reads after
``halt`` (a kernel's declared results); indirect jumps (``jr``)
conservatively reach every block leader.
"""

from repro.isa.instructions import Op

ALL_REGS = frozenset(range(1, 16))


def block_successors(program, block, blocks=None, start_to_index=None):
    """Successor block indices of ``block``.

    ``blocks`` and ``start_to_index`` may be passed in when the caller
    iterates many blocks of the same program (:func:`liveness` does), so
    the leader map is built once per program instead of once per block.
    """
    if blocks is None:
        blocks = program.basic_blocks()
    if start_to_index is None:
        start_to_index = {b.start: b.index for b in blocks}
    last = block.instructions[-1] if len(block) else None
    successors = []
    if last is None:
        return successors
    op = last.op
    if op is Op.HALT:
        return []
    if op is Op.JR:
        # Indirect: conservatively every block.
        return [b.index for b in blocks]
    fallthrough = block.index + 1 if block.index + 1 < len(blocks) else None
    if op in (Op.JMP, Op.JAL):
        successors.append(start_to_index[last.target])
        if op is Op.JAL and fallthrough is not None:
            # The callee eventually returns past the call site.
            successors.append(fallthrough)
    elif last.is_branch():
        successors.append(start_to_index[last.target])
        if fallthrough is not None:
            successors.append(fallthrough)
    elif fallthrough is not None:
        successors.append(fallthrough)
    return successors


def successor_map(program, blocks=None):
    """``{block index: successor indices}`` for the whole program."""
    if blocks is None:
        blocks = program.basic_blocks()
    start_to_index = {b.start: b.index for b in blocks}
    return {
        b.index: block_successors(program, b, blocks, start_to_index)
        for b in blocks
    }


def block_use_def(block):
    """(upward-exposed uses, defined registers) of a block."""
    use = set()
    define = set()
    for instr in block.instructions:
        for reg in instr.reads():
            if reg != 0 and reg not in define:
                use.add(reg)
        for reg in instr.writes():
            if reg != 0:
                define.add(reg)
    return use, define


def liveness(program, exit_live=ALL_REGS):
    """Per-block ``(live_in, live_out)`` register sets.

    Returns two dicts keyed by block index.
    """
    blocks = program.basic_blocks()
    succs = successor_map(program, blocks)
    use_def = {b.index: block_use_def(b) for b in blocks}
    exit_live = frozenset(exit_live)
    live_in = {b.index: set() for b in blocks}
    live_out = {b.index: set() for b in blocks}

    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            index = block.index
            out = set()
            if not succs[index]:
                out |= exit_live
            for successor in succs[index]:
                out |= live_in[successor]
            use, define = use_def[index]
            new_in = use | (out - define)
            if out != live_out[index] or new_in != live_in[index]:
                live_out[index] = out
                live_in[index] = new_in
                changed = True
    return live_in, live_out
