"""The op-chain study that motivated the patch designs (Section III-A).

Hot computational patterns are reduced to operation-class strings along
their DFG critical paths (e.g. ``MAAT``); multi-round Longest Common
Substring identification then extracts the dominant chains.  Each round
reports the chain's *occurrence rate* — the fraction of kernels whose
patterns contain it — and removes it before the next round, exactly as
described in the paper (the input of round n is round n-1's output with
the winning substring excised).

The paper's numbers for its kernel suite: {AT} 95.7 %, {MA} 47.8 %,
{AA} 34.8 %, {AS} 21.7 %, {SA} 21.7 %.
"""


def critical_path_classes(dfg, member_ids=None):
    """Op-class string of the longest dependence path.

    Moves are excluded (they synthesize to wiring); ties resolve toward
    earlier block positions for determinism.
    """
    nodes = [dfg.nodes[m] for m in member_ids] if member_ids is not None else dfg.nodes
    if not nodes:
        return ""
    allowed = {node.id for node in nodes}
    best_len = {}
    best_prev = {}
    order = sorted(nodes, key=lambda n: n.pos)
    for node in order:
        length, prev = 1, None
        for pred in node.value_pred_ids():
            if pred in allowed and best_len.get(pred, 0) + 1 > length:
                length = best_len[pred] + 1
                prev = pred
        best_len[node.id] = length
        best_prev[node.id] = prev
    end = max(order, key=lambda n: (best_len[n.id], -n.pos)).id
    path = []
    while end is not None:
        path.append(end)
        end = best_prev[end]
    path.reverse()
    return "".join(dfg.nodes[n].cls.value for n in path)


class OpChainRound:
    """One LCS round: the winning chain and its occurrence rate."""

    __slots__ = ("chain", "rate", "count")

    def __init__(self, chain, rate, count):
        self.chain = chain
        self.rate = rate
        self.count = count

    def __repr__(self):
        return f"OpChainRound({{{self.chain}}}: {self.rate:.1%})"


def _substrings(text, min_len, max_len):
    for start in range(len(text)):
        for length in range(min_len, min(max_len, len(text) - start) + 1):
            yield text[start:start + length]


def lcs_rounds(kernel_patterns, min_len=2, max_len=4, max_rounds=8):
    """Multi-round LCS over per-kernel pattern strings.

    ``kernel_patterns`` maps kernel name to a list of op-class strings
    (one per hot pattern).  Each round picks the substring present in
    the most kernels (ties: longer, then lexicographic), records its
    rate over the *original* kernel population, and excises it.
    """
    population = len(kernel_patterns) or 1
    working = {
        name: list(patterns) for name, patterns in kernel_patterns.items()
    }
    rounds = []
    for _ in range(max_rounds):
        counts = {}
        for name, patterns in working.items():
            seen = set()
            for pattern in patterns:
                for sub in _substrings(pattern, min_len, max_len):
                    seen.add(sub)
            for sub in seen:
                counts[sub] = counts.get(sub, 0) + 1
        if not counts:
            break
        chain = max(counts, key=lambda s: (counts[s], len(s), [-ord(c) for c in s]))
        count = counts[chain]
        rounds.append(OpChainRound(chain, count / population, count))
        # Excise the winner everywhere; fragments survive to later rounds.
        for name, patterns in working.items():
            fragments = []
            for pattern in patterns:
                fragments.extend(
                    piece for piece in pattern.split(chain) if piece
                )
            working[name] = fragments
    return rounds


def patch_mix_from_rounds(rounds, num_tiles=16):
    """Derive a patch allocation from occurrence rates (Section III-A).

    {AT} is owed to every core; each tail chain ({MA}/{AS}/{SA}) gets
    cores in proportion to its rate, quantized to the nearest power of
    two, then normalized to the tile count — reproducing the paper's
    8/4/4 split from its published rates (47.8 % / 21.7 % / 21.7 %).
    """
    import math

    tail_rates = {}
    for entry in rounds:
        if entry.chain in ("MA", "AS", "SA"):
            tail_rates[entry.chain] = entry.rate
    if not tail_rates:
        return {}
    mix = {}
    for chain, rate in tail_rates.items():
        ideal = max(rate * num_tiles, 1.0)
        mix[chain] = 1 << max(0, round(math.log2(ideal)))
    # Normalize to exactly num_tiles, adjusting the largest share.
    total = sum(mix.values())
    top = max(mix, key=lambda k: (mix[k], k))
    mix[top] += num_tiles - total
    if mix[top] < 1:
        raise ValueError("rates too skewed to fill the tile budget")
    return mix
