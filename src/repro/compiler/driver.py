"""Per-kernel compilation driver.

For every kernel the tool chain produces one executable version per
*patch option* — the patch (or fused pair) the kernel's tile could be
granted — and measures each version by actually simulating it
(Figure 6: "multiple executable versions of the original kernel").
Every accelerated version is validated bit-exactly against the
unmodified kernel before its speedup is trusted.

The stitcher (:mod:`repro.core.stitching`) later picks one version per
kernel chip-wide.
"""

import time

from repro.compiler.codegen import (
    ImmPool,
    rewrite_block,
    rewrite_program,
)
from repro.compiler.dfg import DFG
from repro.compiler.ise import enumerate_candidates
from repro.compiler.liveness import ALL_REGS, liveness
from repro.compiler.profiler import profile_kernel
from repro.compiler.selector import select_ises
from repro.core.executor import PatchExecutor
from repro.core.patches import AT_AS, AT_MA, AT_SA, LOCUS_SFU
from repro.cpu.core import Core, STOP_HALT
from repro.mem.hierarchy import MemorySystem
from repro.provenance.records import NULL_REPORT


def _first_divergence(expected, actual, prefix=""):
    """First location where two kernel results disagree, or ``None``.

    Walks nested sequences/dicts (kernel results are memory-word dumps,
    register values, or small structures of them) and returns
    ``(loc, expected_value, actual_value)`` with ``loc`` an index path
    like ``[2][17]``.
    """
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual), key=repr):
            if key not in expected:
                return (f"{prefix}[{key!r}]", "<absent>", actual[key])
            if key not in actual:
                return (f"{prefix}[{key!r}]", expected[key], "<absent>")
            found = _first_divergence(
                expected[key], actual[key], f"{prefix}[{key!r}]"
            )
            if found is not None:
                return found
        return None
    if (isinstance(expected, (list, tuple))
            and isinstance(actual, (list, tuple))):
        for index, (want, got) in enumerate(zip(expected, actual)):
            found = _first_divergence(want, got, f"{prefix}[{index}]")
            if found is not None:
                return found
        if len(expected) != len(actual):
            return (f"{prefix}.length", len(expected), len(actual))
        return None
    if expected != actual:
        return (prefix or "value", expected, actual)
    return None


class MiscompileError(AssertionError):
    """An accelerated kernel produced different results.

    Carries the kernel name, the patch option whose version failed, and
    the first diverging word — ``divergence`` is ``(loc, expected,
    actual)`` where ``loc`` indexes into the kernel's result structure
    (for memory dumps, the word index) — so a miscompile names exactly
    where the accelerated binary went wrong, mirroring the assembler's
    located :class:`~repro.isa.assembler.AssemblerError`.
    """

    def __init__(self, message, kernel=None, option=None, divergence=None):
        super().__init__(message)
        self.kernel = kernel
        self.option = option
        self.divergence = divergence

    @classmethod
    def from_results(cls, kernel_name, option_name, expected, actual):
        divergence = _first_divergence(expected, actual)
        head = f"{kernel_name} @ {option_name}: accelerated output "
        if divergence is None:
            message = head + "differs from reference"
        else:
            loc, want, got = divergence
            message = (
                head + f"diverges at word {loc}: "
                f"expected {want!r}, got {got!r}"
            )
        return cls(
            message, kernel=kernel_name, option=option_name,
            divergence=divergence,
        )


class PatchOption:
    """One acceleration scenario for a kernel's tile.

    ``max_outputs`` optionally narrows the register-file write ports
    for this option's custom instructions (the 2-output interface is a
    Stitch patch feature; conventional SFUs write one register).
    """

    def __init__(self, name, local_type, remote_type=None, max_outputs=None):
        self.name = name
        self.local_type = local_type
        self.remote_type = remote_type
        self.max_outputs = max_outputs

    @property
    def fused(self):
        return self.remote_type is not None

    def targets(self):
        """Mapping targets in preference order."""
        if self.fused:
            return [(self.local_type, self.remote_type), self.local_type]
        return [self.local_type]

    def __repr__(self):
        return f"PatchOption({self.name})"

    def __eq__(self, other):
        return isinstance(other, PatchOption) and other.name == self.name

    def __hash__(self):
        return hash(self.name)


_AT_TYPES = (AT_MA, AT_AS, AT_SA)

SINGLE_OPTIONS = tuple(PatchOption(p.name, p) for p in _AT_TYPES)
FUSED_OPTIONS = tuple(
    PatchOption(f"{a.name}+{b.name}", a, b)
    for a in _AT_TYPES
    for b in _AT_TYPES
)
ALL_OPTIONS = SINGLE_OPTIONS + FUSED_OPTIONS
# The paper's per-core SFU executes op-chain ISEs without load/store
# (Section VI-B) and, like conventional ISE interfaces, writes a single
# result register — the 4-input/2-output register file plumbing is part
# of the Stitch patch design.
LOCUS_OPTION = PatchOption(LOCUS_SFU.name, LOCUS_SFU, max_outputs=1)


class CompiledKernel:
    """One measured executable version of a kernel."""

    def __init__(self, kernel, option, program, cfg_table, mappings,
                 cycles, baseline_cycles, replicated_regions=()):
        self.kernel = kernel
        self.option = option
        self.program = program
        self.cfg_table = cfg_table
        self.mappings = mappings
        self.cycles = cycles
        self.baseline_cycles = baseline_cycles
        # Read-only regions a remote tile must replicate before this
        # binary's fused custom instructions may execute there.
        self.replicated_regions = tuple(replicated_regions)

    @property
    def speedup(self):
        return self.baseline_cycles / self.cycles if self.cycles else 1.0

    @property
    def uses_fusion(self):
        return any(m.is_fused for m in self.mappings)

    def __repr__(self):
        return (
            f"CompiledKernel({self.kernel.name} @ {self.option.name}: "
            f"{self.speedup:.2f}x)"
        )


class KernelCompiler:
    """Compiles and measures one kernel across patch options."""

    def __init__(self, kernel, hot_threshold=0.05, max_instructions=20_000_000,
                 max_inputs=4, max_outputs=2, allow_replication=True,
                 verify=False, report=None, platform=None):
        self.kernel = kernel
        self.hot_threshold = hot_threshold
        self.max_instructions = max_instructions
        # Platform the measured versions are simulated on (None = the
        # stitch preset; sweeps pass alternative configurations).
        self.platform = platform
        # Opt-in static verification: every compiled artifact must pass
        # the repro.verify ISE checks (and the kernel body its lint)
        # before it is returned or cached.
        self.verify = verify
        # Opt-in decision provenance; the null report swallows every
        # hook so the default path pays a single attribute load.
        self.report = report if report is not None else NULL_REPORT
        if not (1 <= max_outputs <= 2 and 1 <= max_inputs <= 4):
            raise ValueError(
                "the register file provides at most 4 read / 2 write ports"
            )
        self.max_inputs = max_inputs
        self.max_outputs = max_outputs
        self.allow_replication = allow_replication
        with self.report.phase("profile"):
            self.profile = profile_kernel(
                kernel.program, kernel.setup, max_instructions=max_instructions
            )
        self.baseline_cycles = self.profile.cycles
        self.report.baseline_cycles = self.baseline_cycles
        exit_live = getattr(kernel, "live_out_regs", None)
        with self.report.phase("liveness"):
            _, self.block_live_out = liveness(
                kernel.program, ALL_REGS if exit_live is None else exit_live
            )
        # Loads confined to read-only (const) regions may run on a
        # remote patch's LMAU once the region is replicated there.
        const_regions = [r for r, _ in getattr(kernel, "consts", [])]
        self.replicable = (
            self.profile.replicable_loads(const_regions)
            if allow_replication and const_regions else {}
        )
        with self.report.phase("reference"):
            self._reference = self._run(kernel.program, cfg_table=None)[1]
        self._cache = {}

    # -- execution ------------------------------------------------------------

    def _memory(self):
        if self.platform is None:
            return MemorySystem.stitch()
        return MemorySystem(self.platform.mem)

    def _replica_memory(self, cfg_table):
        """A stand-in remote scratchpad preloaded with the replicated
        read-only regions, when any fused config's B half loads."""
        from repro.core.fusion import FusedConfig

        needs = any(
            isinstance(cfg, FusedConfig) and cfg.cfg_b.uses_lmau()
            for cfg in cfg_table or ()
        )
        if not needs:
            return None
        replica = self._memory()
        for region, words in getattr(self.kernel, "consts", []):
            replica.load(region.addr, words)
        return replica

    def _run(self, program, cfg_table):
        memory = self._memory()
        patch = None
        if cfg_table:
            patch = PatchExecutor(
                cfg_table, memory,
                replica_memory=self._replica_memory(cfg_table),
            )
        core_params = None if self.platform is None else self.platform.core
        core = Core(program, memory, patch=patch, params=core_params)
        self.kernel.setup(core)
        outcome = core.run(max_instructions=self.max_instructions)
        if outcome.reason != STOP_HALT:
            raise RuntimeError(
                f"kernel {self.kernel.name!r} did not halt ({outcome.reason})"
            )
        return core.cycles, self.kernel.result(core)

    # -- compilation ------------------------------------------------------------

    def compile(self, option):
        """Compile + measure + validate one option (cached)."""
        if option.name in self._cache:
            return self._cache[option.name]
        version = self.report.version(option)
        wall_start = time.perf_counter()
        try:
            compiled = self._compile(option, version)
        finally:
            version.wall_seconds = time.perf_counter() - wall_start
        self._cache[option.name] = compiled
        return compiled

    def _compile(self, option, version):
        program = self.kernel.program
        pool = ImmPool.for_program(program)
        all_mappings = []
        rewrites = {}
        for hot in self.profile.hot_blocks(self.hot_threshold):
            block_rec = version.block(hot.block.index, hot.weight)
            dfg = DFG(
                hot.block,
                spm_only=self.profile.spm_only,
                live_out=self.block_live_out[hot.block.index],
                replicable=frozenset(self.replicable),
            )
            max_outputs = (
                option.max_outputs if option.max_outputs is not None
                else self.max_outputs
            )
            with self.report.phase("enumerate", owner=version):
                candidates = enumerate_candidates(
                    dfg, max_inputs=self.max_inputs, max_outputs=max_outputs,
                    observer=(
                        block_rec.enumeration
                        if block_rec is not None else None
                    ),
                )
            if block_rec is not None:
                block_rec.enumerated = len(candidates)
            with self.report.phase("select", owner=version):
                mappings = select_ises(
                    candidates, option.targets(), pool, observer=block_rec
                )
            if mappings:
                rewrites[hot.block.index] = mappings
        cfg_table = []
        block_rewrites = {}
        with self.report.phase("rewrite", owner=version):
            for block_index, placements in rewrites.items():
                numbered = []
                for mapping in placements:
                    numbered.append((mapping, len(cfg_table)))
                    cfg_table.append(mapping.config)
                    all_mappings.append(mapping)
                block = self.kernel.program.basic_blocks()[block_index]
                block_rewrites[block_index] = rewrite_block(
                    block, numbered, pool
                )
            new_program = rewrite_program(
                program, block_rewrites, pool, cfg_table
            )
        with self.report.phase("measure", owner=version):
            cycles, result = self._run(new_program, cfg_table)
        replicated = []
        for mapping in all_mappings:
            for node_id in mapping.remote_node_ids:
                node = mapping.candidate.dfg.nodes[node_id]
                if not node.is_mem:
                    continue
                pc = mapping.candidate.dfg.block.start + node.pos
                region = self.replicable.get(pc)
                if region is not None and region not in replicated:
                    replicated.append(region)
        version.measured(
            cycles, self.baseline_cycles, all_mappings,
            replicated_regions=replicated,
        )
        with self.report.phase("validate", owner=version):
            if result != self._reference:
                version.note_validation(False)
                raise MiscompileError.from_results(
                    self.kernel.name, option.name, self._reference, result
                )
            version.note_validation(True)
        compiled = CompiledKernel(
            self.kernel, option, new_program, cfg_table, all_mappings,
            cycles, self.baseline_cycles, replicated_regions=replicated,
        )
        if self.verify:
            self._verify(compiled)
        return compiled

    def _verify(self, compiled):
        """Reject the artifact if the static verifier finds errors."""
        # Local import: repro.verify pulls compiler modules for its
        # passes, so binding it at call time keeps the graph acyclic.
        from repro.verify.dataflow_checks import check_dataflow
        from repro.verify.diagnostics import Report, VerificationError
        from repro.verify.ise_checks import check_ises
        from repro.verify.program_lint import lint_program

        report = Report(f"{self.kernel.name}@{compiled.option.name}")
        lint_program(
            self.kernel.program,
            kernel_conventions=True,
            exit_live=self.kernel.live_out_regs,
            report=report,
        )
        check_ises(
            compiled.program,
            cfg_table=compiled.cfg_table,
            mappings=compiled.mappings,
            original_program=self.kernel.program,
            report=report,
        )
        check_dataflow(
            compiled.program,
            mem=self.platform.mem if self.platform is not None else None,
            cfg_table=compiled.cfg_table,
            exit_live=self.kernel.live_out_regs,
            report=report,
        )
        if not report.ok():
            raise VerificationError(report)

    def compile_options(self, options=ALL_OPTIONS):
        """Compile every option; returns {option name: CompiledKernel}."""
        return {option.name: self.compile(option) for option in options}

    def best_option(self, options=ALL_OPTIONS):
        compiled = self.compile_options(options)
        return max(compiled.values(), key=lambda c: c.speedup)
