"""Kernel profiling: hot-basic-block and SPM-address detection.

The tool chain profiles each kernel (Figure 6) and marks a block *hot*
when it contributes at least 5 % of the dynamic instruction count — the
occurrence-rate threshold of Section III-A.  The profiler also records,
per load/store, whether every observed address fell inside the SPM
window; only such operations may join a custom instruction
(Section III-C).
"""

from repro.cpu.core import Core, STOP_HALT
from repro.mem.hierarchy import MemorySystem

HOT_THRESHOLD = 0.05


class HotBlock:
    """A basic block worth mining for ISE candidates."""

    __slots__ = ("block", "weight", "entries")

    def __init__(self, block, weight, entries):
        self.block = block
        self.weight = weight
        self.entries = entries

    def __repr__(self):
        return f"HotBlock(#{self.block.index}, weight={self.weight:.3f})"


class ProfileResult:
    """Outcome of profiling one kernel on one core."""

    def __init__(self, program, cycles, instructions, block_weights,
                 block_entries, spm_only, mem_ranges=None):
        self.program = program
        self.cycles = cycles
        self.instructions = instructions
        self.block_weights = block_weights      # block index -> dynamic share
        self.block_entries = block_entries      # block index -> entry count
        self.spm_only = spm_only                # program indices, all-SPM mem ops
        self.mem_ranges = mem_ranges or {}      # program index -> (lo, hi)

    def replicable_loads(self, const_regions):
        """Program indices of loads confined to one read-only region.

        Such loads may execute on a *remote* patch's LMAU if the
        compiler replicates the region into that tile's scratchpad
        (Section III-C's per-region data placement).  A region only
        qualifies when the profile shows NO store ever touching it —
        a replica of mutated state would go stale.
        """
        from repro.isa.instructions import Op

        store_spans = [
            span for pc, span in self.mem_ranges.items()
            if self.program[pc].op is Op.SW
        ]

        def written(region):
            return any(
                lo < region.end and hi >= region.addr
                for lo, hi in store_spans
            )

        read_only = [r for r in const_regions if not written(r)]
        result = {}
        for pc, (lo, hi) in self.mem_ranges.items():
            if pc not in self.spm_only or self.program[pc].op is not Op.LW:
                continue
            for region in read_only:
                if region.addr <= lo and hi < region.end:
                    result[pc] = region
                    break
        return result

    def hot_blocks(self, threshold=HOT_THRESHOLD):
        """Blocks above the dynamic-share threshold, hottest first."""
        blocks = self.program.basic_blocks()
        hot = [
            HotBlock(blocks[index], weight, self.block_entries[index])
            for index, weight in self.block_weights.items()
            if weight >= threshold and len(blocks[index]) > 1
        ]
        hot.sort(key=lambda h: h.weight, reverse=True)
        return hot


def profile_kernel(program, setup=None, memory=None, max_instructions=5_000_000):
    """Run ``program`` once with profiling and summarize.

    ``setup(core)`` initializes memory contents and registers.  Raises
    if the kernel does not halt within ``max_instructions`` — profiling
    needs a terminating run.
    """
    memory = memory if memory is not None else MemorySystem.stitch()
    core = Core(program, memory, profile=True)
    if setup is not None:
        setup(core)
    result = core.run(max_instructions=max_instructions)
    if result.reason != STOP_HALT:
        raise RuntimeError(
            f"kernel {program.name!r} did not halt within "
            f"{max_instructions} instructions (reason: {result.reason})"
        )
    counts = core.block_instruction_counts()
    total = sum(counts.values()) or 1
    weights = {index: count / total for index, count in counts.items() if count}
    entries = {
        block.index: core.block_counts[block.start]
        for block in program.basic_blocks()
    }
    spm_only = {
        pc for pc, all_spm in core.spm_only_accesses.items() if all_spm
    }
    mem_ranges = {
        pc: (span[0], span[1]) for pc, span in core.mem_ranges.items()
    }
    return ProfileResult(
        program, core.cycles, core.instret, weights, entries, spm_only,
        mem_ranges,
    )
