"""Stitch (ISCA 2018) — full-system Python reproduction.

Fusible heterogeneous ISE accelerators ("polymorphic patches")
enmeshed with a 16-tile message-passing many-core, stitched into
virtual accelerators over a compiler-scheduled bufferless NoC.

Subpackages (bottom-up):

* :mod:`repro.isa`, :mod:`repro.cpu`, :mod:`repro.mem` — the ISA,
  in-order core and memory-hierarchy substrates,
* :mod:`repro.noc`, :mod:`repro.mpi` — the inter-core mesh NoC and the
  message-passing runtime,
* :mod:`repro.core`, :mod:`repro.interpatch` — the paper's
  contribution: patches, 19-bit configs, fusion, Algorithm 1, and the
  bufferless inter-patch network,
* :mod:`repro.compiler` — the ISE tool chain (Figure 6),
* :mod:`repro.sim` — the 16-tile co-simulator and architecture
  evaluator,
* :mod:`repro.workloads` — kernels and the four applications,
* :mod:`repro.power` — timing/area/power models,
* :mod:`repro.analysis` — the per-table/figure experiment harness.

Quick taste::

    from repro.compiler.driver import KernelCompiler, PatchOption
    from repro.core import AT_MA, AT_AS
    from repro.workloads import make_kernel

    compiled = KernelCompiler(make_kernel("2dconv")).compile(
        PatchOption("AT-MA+AT-AS", AT_MA, AT_AS)
    )
    print(compiled.speedup)   # measured, validated bit-exactly
"""

__version__ = "1.0.0"
__paper__ = (
    "Tan, Karunaratne, Mitra, Peh — Stitch: Fusible Heterogeneous "
    "Accelerators Enmeshed with Many-Core Architecture for Wearables, "
    "ISCA 2018"
)
