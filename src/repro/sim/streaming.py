"""Wrap a (possibly ISE-rewritten) kernel program into a stream loop.

The wrapped program receives its input regions from producer tiles,
runs the original body, sends its output regions to consumer tiles and
repeats ``items`` times.  Works on compiled programs too: the rewrite
happens on the standalone kernel, then the stream loop is wrapped
around the *rewritten* instructions, preserving the ``cfg_table``.
"""

from repro.isa.instructions import Instruction, Op
from repro.isa.program import Program

# r11 holds the item counter for the whole run; the comm operands use
# r1-r3, which every kernel body re-initializes before use (kernels own
# no cross-iteration register state by convention).
_PEER = 1
_ADDR = 2
_COUNT = 3
_ITEMS = 11


def _comm_sequence(op, peer, region):
    return [
        Instruction(Op.MOVI, rd=_PEER, imm=peer),
        Instruction(Op.MOVI, rd=_ADDR, imm=region.addr),
        Instruction(Op.MOVI, rd=_COUNT, imm=region.nwords),
        Instruction(op, ra=_PEER, rb=_ADDR, rd=_COUNT),
    ]


def wrap_streaming(program, sources, sinks, items, name=None):
    """Build the streaming variant of ``program``.

    ``sources``/``sinks`` are lists of ``(peer tile, Region)``; the
    program must end with its single ``halt``.  Branch targets are
    shifted past the loop header; the back-edge re-enters at the first
    receive.
    """
    if not program.instructions or program.instructions[-1].op is not Op.HALT:
        raise ValueError("expected the kernel's halt as the last instruction")
    body = [instr.copy() for instr in program.instructions[:-1]]

    head = [Instruction(Op.MOVI, rd=_ITEMS, imm=items)]
    loop_start = len(head)
    for peer, region in sources:
        head.extend(_comm_sequence(Op.RECV, peer, region))
    offset = len(head)

    for instr in body:
        if instr.target is not None and instr.op is not Op.JR:
            instr.target += offset

    tail = []
    for peer, region in sinks:
        tail.extend(_comm_sequence(Op.SEND, peer, region))
    tail.append(Instruction(Op.ADDI, rd=_ITEMS, ra=_ITEMS, imm=-1))
    tail.append(Instruction(Op.BNE, ra=_ITEMS, rb=0, target=loop_start))
    tail.append(Instruction(Op.HALT))

    instructions = head + body + tail
    labels = {
        label: target + offset for label, target in program.labels.items()
    }
    wrapped = Program(
        instructions, labels=labels,
        name=name or f"{program.name}.stream", symbols=dict(program.symbols),
    )
    wrapped.cfg_table = list(getattr(program, "cfg_table", []) or [])
    return wrapped
