"""The four evaluated architectures and the per-app evaluator.

Figure 12 compares, all at 200 MHz on 16 message-passing cores:

* **baseline** — no acceleration (8 KB D$, no SPM/patches),
* **LOCUS** — a conventional compute-only ISE accelerator per core,
* **Stitch w/o fusion** — polymorphic patches, local use only,
* **Stitch** — patches plus compiler-scheduled fusion (Algorithm 1).

:class:`AppEvaluator` measures per-stage cycle tables by compiling and
simulating each *structurally distinct* kernel once per option (stages
differing only in input seed share a measurement — their programs are
identical), then runs Algorithm 1 and the pipeline model per
architecture.  It can also materialize the full 16-tile streaming
binary set for the co-simulator.
"""

from repro.compiler.driver import (
    ALL_OPTIONS,
    KernelCompiler,
    LOCUS_OPTION,
    SINGLE_OPTIONS,
)
from repro.core.placement import DEFAULT_PLACEMENT, Placement
from repro.core.stitching import BASELINE, stitch_application, stitch_best
from repro.noc.topology import Mesh
from repro.sim.pipeline_model import PipelineModel, StageTiming
from repro.sim.streaming import wrap_streaming
from repro.sim.system import StitchSystem

ARCH_BASELINE = "baseline"
ARCH_LOCUS = "LOCUS"
ARCH_NOFUSE = "Stitch w/o fusion"
ARCH_STITCH = "Stitch"
ARCHITECTURES = (ARCH_BASELINE, ARCH_LOCUS, ARCH_NOFUSE, ARCH_STITCH)

_SINGLE_NAMES = frozenset(option.name for option in SINGLE_OPTIONS)

_COMPILE_CACHE = {}


def _structural_key(kernel):
    key = kernel.cache_key()
    return (key[0], tuple(kv for kv in key[2] if kv[0] != "seed"))


def compile_kernel_options(kernel, options=None, allow_replication=False,
                           platform=None):
    """Cycle table + compiled programs for one kernel (cached).

    Returns ``(cycles: {name: cycles}, compiled: {name: CompiledKernel})``
    with ``cycles["baseline"]`` included.  ``platform`` keys the cache
    too (via :meth:`~repro.platform.PlatformConfig.cache_key`), so
    sweeps over memory/NoC configurations never share measurements.

    Const-region replication defaults off: placing a replica needs free
    space at the region's address in the *remote* tile's scratchpad,
    and every tile of a 16-kernel application already hosts a kernel
    whose regions occupy that space.  App-level binaries therefore
    compile without it; the Fig. 11 kernel study turns it on.
    """
    options = options if options is not None else ALL_OPTIONS + (LOCUS_OPTION,)
    key = (_structural_key(kernel), tuple(o.name for o in options),
           allow_replication,
           platform.cache_key() if platform is not None else None)
    if key not in _COMPILE_CACHE:
        compiler = KernelCompiler(kernel, allow_replication=allow_replication,
                                  platform=platform)
        compiled = compiler.compile_options(options)
        cycles = {name: c.cycles for name, c in compiled.items()}
        cycles[BASELINE] = compiler.baseline_cycles
        _COMPILE_CACHE[key] = (cycles, compiled)
    return _COMPILE_CACHE[key]


class AppEvaluator:
    """Evaluate one application across the four architectures."""

    def __init__(self, app, placement=None, platform=None):
        self.app = app
        self.platform = platform
        if placement is None:
            placement = (
                DEFAULT_PLACEMENT if platform is None
                else Placement(mesh=Mesh.from_params(platform.noc))
            )
        self.placement = placement
        self._tables = None
        self._compiled = None

    # -- measurement ---------------------------------------------------------

    def cycle_tables(self):
        """{stage id: {option name: per-item cycles}} (measured)."""
        if self._tables is None:
            tables = {}
            compiled = {}
            for stage in self.app.stages:
                cycles, programs = compile_kernel_options(
                    stage.kernel, platform=self.platform
                )
                tables[stage.id] = dict(cycles)
                compiled[stage.id] = programs
            self._tables = tables
            self._compiled = compiled
        return self._tables

    def compiled_programs(self):
        self.cycle_tables()
        return self._compiled

    # -- architecture plans ------------------------------------------------------

    def plan(self, architecture, trace=None):
        """A StitchPlan-compatible assignment for each architecture.

        ``trace`` (a :class:`repro.provenance.StitchTrace`) records the
        stitcher's decisions for the two architectures that stitch.
        """
        tables = self.cycle_tables()
        if architecture == ARCH_STITCH:
            return stitch_best(
                f"{self.app.name}/{architecture}", tables, self.placement,
                trace=trace,
            )
        if architecture == ARCH_NOFUSE:
            return stitch_best(
                f"{self.app.name}/{architecture}", tables, self.placement,
                allowed=_SINGLE_NAMES, trace=trace,
            )
        # baseline / LOCUS: identity placement, uniform per-core option.
        option = LOCUS_OPTION.name if architecture == ARCH_LOCUS else BASELINE
        synthetic = {}
        for sid, table in tables.items():
            cycles = table.get(option, table[BASELINE])
            synthetic[sid] = {BASELINE: cycles}
        plan = stitch_application(
            f"{self.app.name}/{architecture}", synthetic, self.placement,
            allowed=frozenset(),
        )
        for sid, assignment in plan.assignments.items():
            assignment.option = option if option != BASELINE else BASELINE
        return plan

    def pipeline(self, architecture):
        """Analytic pipeline model for an architecture."""
        plan = self.plan(architecture)
        stages = []
        for stage in self.app.stages:
            recv, send = self.app.comm_words(stage.id)
            stages.append(
                StageTiming(
                    f"{stage.kernel.name}#{stage.id}",
                    plan.assignments[stage.id].cycles,
                    recv_words=recv,
                    send_words=send,
                )
            )
        return PipelineModel(stages)

    def cycles_per_item(self, architecture):
        return self.pipeline(architecture).cycles_per_item()

    def normalized_throughputs(self):
        """{architecture: speedup over baseline} (Figure 12's y-axis)."""
        base = self.cycles_per_item(ARCH_BASELINE)
        return {
            arch: base / self.cycles_per_item(arch) for arch in ARCHITECTURES
        }

    # -- co-simulation ------------------------------------------------------------

    def build_system(self, architecture, items=2, contention=False,
                     telemetry=None, profile_cycles=False, engine="auto",
                     injector=None, plan=None):
        """Materialize the 16-tile co-simulation for an architecture.

        All architectures run on the Stitch tile memory (4 KB D$ +
        4 KB SPM) so cycle tables and co-simulation agree; the paper
        reports the 8 KB-D$-vs-SPM difference is ~1.5 % (Section
        III-C), which the dedicated experiment measures separately.

        ``contention`` defaults to off here: the link-reservation model
        needs globally time-ordered injections, which the
        run-until-blocked co-simulator does not guarantee — host
        scheduling order would leak into simulated time.

        ``telemetry`` (``True`` or a :class:`repro.telemetry.Telemetry`
        bundle) enables stats/tracing across every tile and the NoC;
        ``profile_cycles`` turns on every core's retired-cycle PC
        histogram (the ``repro profile`` substrate).

        ``injector`` (an :class:`repro.chaos.Injector` or an
        :class:`~repro.chaos.InjectionPlan`) arms fault injection on
        every tile; ``plan`` overrides the stitch plan — graceful
        degradation rebuilds the system from a remapped plan that
        routes around a failed fused unit.
        """
        plan = plan if plan is not None else self.plan(architecture)
        compiled = self.compiled_programs()
        system = StitchSystem(self.placement.mesh, contention=contention,
                              telemetry=telemetry, platform=self.platform,
                              profile_cycles=profile_cycles, engine=engine,
                              injector=injector)
        for stage in self.app.stages:
            assignment = plan.assignments[stage.id]
            option = assignment.option
            if option == BASELINE:
                program = stage.kernel.program
            else:
                program = compiled[stage.id][option].program
            sources = [
                (plan.tile_of(c.src), stage.kernel.get_region(c.dst_region))
                for c in self.app.producers_of(stage.id)
            ]
            sinks = [
                (plan.tile_of(c.dst), stage.kernel.get_region(c.src_region))
                for c in self.app.consumers_of(stage.id)
            ]
            streaming = wrap_streaming(
                program, sources, sinks, items,
                name=f"{stage.kernel.name}#{stage.id}",
            )
            system.load(
                plan.tile_of(stage.id), streaming,
                setup=stage.kernel.setup,
            )
        return system, plan

    def cosim_cycles_per_item(self, architecture, warm_items=2, total_items=5):
        """Measured steady-state initiation interval from two co-sim runs."""
        short, _ = self.build_system(architecture, items=warm_items)
        long, _ = self.build_system(architecture, items=total_items)
        t_short = short.makespan()
        t_long = long.makespan()
        return (t_long - t_short) / (total_items - warm_items)

    def final_outputs(self, architecture, items=2):
        """Per-stage output dumps after a co-sim run (for validation)."""
        system, plan = self.build_system(architecture, items=items)
        system.run()
        outputs = {}
        for stage in self.app.stages:
            core = system.cores[plan.tile_of(stage.id)]
            outputs[stage.id] = stage.kernel.result(core)
        return outputs
