"""Analytic steady-state pipeline throughput model.

A multi-kernel application is a dataflow pipeline: one kernel per tile,
items streaming through.  In steady state the throughput is set by the
slowest stage, where a stage's per-item time is its compute cycles plus
the NIC serialization of everything it must receive and send (hop
latency affects pipeline fill, not steady-state rate).  This is the
cost function Algorithm 1 greedily minimizes — ``Bottleneck(A)`` —
and the co-simulator cross-validates it in the tests.
"""

from repro.noc.packet import WORDS_PER_FLIT, packetize


def _serialization_cycles(nwords):
    """NIC occupancy for one message of ``nwords`` (flit count)."""
    return sum(p.flits for p in packetize(0, 1, nwords))


class StageTiming:
    """Per-item timing of one pipeline stage."""

    __slots__ = ("name", "compute_cycles", "recv_words", "send_words")

    def __init__(self, name, compute_cycles, recv_words=(), send_words=()):
        self.name = name
        self.compute_cycles = compute_cycles
        self.recv_words = tuple(recv_words)
        self.send_words = tuple(send_words)

    @property
    def comm_cycles(self):
        receive = sum(
            (w + WORDS_PER_FLIT - 1) // WORDS_PER_FLIT for w in self.recv_words
        )
        send = sum(_serialization_cycles(w) for w in self.send_words)
        return receive + send

    @property
    def stage_cycles(self):
        return self.compute_cycles + self.comm_cycles

    def __repr__(self):
        return f"StageTiming({self.name}: {self.stage_cycles} cyc/item)"


class PipelineModel:
    """Throughput/latency estimates for a set of stages."""

    def __init__(self, stages):
        self.stages = list(stages)
        if not self.stages:
            raise ValueError("a pipeline needs at least one stage")

    def bottleneck(self):
        return max(self.stages, key=lambda s: s.stage_cycles)

    def cycles_per_item(self):
        """Steady-state initiation interval."""
        return self.bottleneck().stage_cycles

    def throughput(self, freq_hz):
        """Items per second at ``freq_hz``."""
        return freq_hz / self.cycles_per_item()

    def time_per_item_ms(self, freq_hz):
        return self.cycles_per_item() / freq_hz * 1e3

    def fill_latency(self):
        """Pipeline fill estimate: sum of stage times (worst chain)."""
        return sum(stage.stage_cycles for stage in self.stages)

    def speedup_over(self, other):
        return other.cycles_per_item() / self.cycles_per_item()
