"""Multi-core co-simulator.

Each tile runs until it halts or blocks on a receive; blocked tiles are
re-polled whenever new words have been pushed toward them.  Causality
holds because every received word carries its NoC arrival time and the
receive completes no earlier than that, regardless of host-side
scheduling order.  If every live tile is blocked and no channel can
satisfy any of them, the system is deadlocked and says so.
"""

from repro.core.executor import PatchExecutor
from repro.cpu.core import Core, STOP_HALT, STOP_RECV
from repro.mem.hierarchy import MemorySystem
from repro.mpi.runtime import MessagePassing
from repro.noc.network import Network
from repro.noc.topology import Mesh


class DeadlockError(RuntimeError):
    """All live tiles are blocked on receives that can never complete."""


class TileResult:
    """Final state summary of one tile."""

    __slots__ = ("tile", "cycles", "instructions", "halted")

    def __init__(self, tile, cycles, instructions, halted):
        self.tile = tile
        self.cycles = cycles
        self.instructions = instructions
        self.halted = halted

    def __repr__(self):
        state = "halted" if self.halted else "blocked"
        return f"TileResult(tile {self.tile}: {self.cycles} cycles, {state})"


class StitchSystem:
    """A 4x4 tile array over the message-passing fabric."""

    def __init__(self, mesh=None, contention=True, baseline_memory=False):
        self.mesh = mesh if mesh is not None else Mesh(4, 4)
        self.fabric = MessagePassing(
            Network(self.mesh, contention=contention),
            num_tiles=self.mesh.num_tiles,
        )
        self.memories = [
            MemorySystem.baseline() if baseline_memory else MemorySystem.stitch()
            for _ in range(self.mesh.num_tiles)
        ]
        self.cores = [None] * self.mesh.num_tiles

    def load(self, tile, program, setup=None, cfg_table=None):
        """Place a program on a tile; returns the core.

        ``cfg_table`` (or ``program.cfg_table``) attaches a patch
        executor wired to this tile's scratchpad — and, for stitched
        configurations, to every other tile's (the stitcher binds
        ``remote_tile`` on the fused configs it places).
        """
        memory = self.memories[tile]
        table = cfg_table if cfg_table is not None else getattr(program, "cfg_table", None)
        patch = None
        if table:
            remote = {t: self.memories[t] for t in range(self.mesh.num_tiles)}
            patch = PatchExecutor(table, memory, remote_memories=remote)
        core = Core(
            program, memory, patch=patch,
            comm=self.fabric.port(tile), core_id=tile,
        )
        if setup is not None:
            setup(core)
        self.cores[tile] = core
        return core

    def run(self, max_instructions_per_slice=2_000_000, max_rounds=100_000):
        """Run all tiles to completion; returns list of TileResult."""
        live = [core for core in self.cores if core is not None]
        blocked = {}  # core -> words pending toward it when it blocked
        pending = list(live)
        rounds = 0
        while pending or blocked:
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError("co-simulation exceeded the round budget")
            progressed = False
            next_pending = []
            for core in pending:
                retired_before = core.instret
                outcome = core.run(max_instructions=max_instructions_per_slice)
                if core.instret > retired_before or outcome.reason == STOP_HALT:
                    progressed = True
                if outcome.reason == STOP_RECV:
                    blocked[core] = self.fabric.pending_words(core.core_id)
                elif outcome.reason != STOP_HALT:
                    next_pending.append(core)
            pending = next_pending
            # Wake blocked cores only when new words arrived for them.
            for core in list(blocked):
                now_pending = self.fabric.pending_words(core.core_id)
                if now_pending > blocked[core]:
                    del blocked[core]
                    pending.append(core)
                    progressed = True
            if not progressed and not pending:
                if blocked:
                    tiles = sorted(core.core_id for core in blocked)
                    raise DeadlockError(
                        f"tiles {tiles} blocked on receives with no data in flight"
                    )
                break
        return [
            TileResult(core.core_id, core.cycles, core.instret, core.halted)
            for core in live
        ]

    def makespan(self, results=None):
        results = results if results is not None else self.run()
        return max(result.cycles for result in results)
