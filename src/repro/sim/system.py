"""Multi-core co-simulator.

Each tile runs until it halts or blocks on a receive; blocked tiles are
re-polled whenever new words have been pushed toward them.  Causality
holds because every received word carries its NoC arrival time and the
receive completes no earlier than that, regardless of host-side
scheduling order.  If every live tile is blocked and no channel can
satisfy any of them, the system is deadlocked and says so — including a
telemetry snapshot naming the blocked tiles and their pending channels.

Every :meth:`StitchSystem.run` returns a :class:`RunResults` — a plain
list of :class:`TileResult` with a :class:`SystemStats` roll-up on its
``stats`` attribute (cycle attribution per tile, per-run cache hit
rates, NoC/fabric/patch counters).  Pass ``telemetry=True`` (or a
:class:`repro.telemetry.Telemetry` bundle) to also record structured
trace events across the whole stack.
"""

import dataclasses

from repro.chaos.injector import ensure_injector
from repro.core.executor import PatchExecutor
from repro.cpu.core import Core, STOP_FROZEN, STOP_HALT, STOP_RECV
from repro.isa.instructions import Op
from repro.mem.hierarchy import MemorySystem
from repro.mpi.runtime import MessagePassing
from repro.noc.network import Network
from repro.noc.topology import Mesh
from repro.platform import DEFAULT_PLATFORM
from repro.telemetry import SystemStats, ensure_telemetry


class DeadlockError(RuntimeError):
    """All live tiles are blocked on receives that can never complete.

    ``snapshot`` maps each blocked tile to its pending receive — the
    peer it waits on, how many words it needs, and the words actually
    queued toward it per source channel.
    """

    def __init__(self, message, snapshot=None):
        super().__init__(message)
        self.snapshot = snapshot if snapshot is not None else {}


class RecvTimeoutError(RuntimeError):
    """A tile's blocked receive outlived the watchdog deadline.

    Unlike :class:`DeadlockError` the system may still be making
    progress elsewhere — the watchdog fires per-tile once the cycle
    horizon (the furthest any live tile has advanced) moves more than
    ``recv_timeout`` cycles past the point where the receive blocked.
    ``snapshot`` uses the same per-tile vocabulary as the deadlock
    snapshot (``waiting_on``/``words_needed``/``pending``/``cycles``)
    plus ``blocked_since``, and carries the top-level ``deadline`` and
    ``horizon`` that tripped it.
    """

    def __init__(self, message, snapshot=None):
        super().__init__(message)
        self.snapshot = snapshot if snapshot is not None else {}


class RoundBudgetError(RuntimeError):
    """The co-simulation exceeded ``max_rounds`` without finishing.

    Unlike a deadlock the system was still making progress — tiles kept
    retiring instructions or waking each other up — it just did not
    converge within the budget (usually a ping-pong workload with the
    budget set too low, or a livelock).  ``snapshot`` carries the
    scheduler's state at the point of surrender: which tiles were still
    runnable, and for each blocked tile the words queued toward it.
    """

    def __init__(self, message, snapshot=None):
        super().__init__(message)
        self.snapshot = snapshot if snapshot is not None else {}


class TileResult:
    """Final state summary of one tile."""

    __slots__ = ("tile", "cycles", "instructions", "reason", "attribution")

    def __init__(self, tile, cycles, instructions, reason, attribution=None):
        self.tile = tile
        self.cycles = cycles
        self.instructions = instructions
        self.reason = reason
        self.attribution = attribution

    @property
    def halted(self):
        return self.reason == STOP_HALT

    def __repr__(self):
        state = {STOP_HALT: "halted", STOP_RECV: "blocked"}.get(
            self.reason, self.reason
        )
        summary = ""
        if self.attribution is not None:
            a = self.attribution
            summary = (
                f", stalls mem={a['memory_stall']} i$={a['icache_stall']} "
                f"branch={a['branch_bubble']} comm={a['comm_blocked']}"
            )
        return f"TileResult(tile {self.tile}: {self.cycles} cycles, {state}{summary})"


class RunResults(list):
    """The list of :class:`TileResult` plus the run's stats roll-up."""

    def __init__(self, results, stats):
        super().__init__(results)
        self.stats = stats


class StitchSystem:
    """A tile array over the message-passing fabric.

    ``platform`` (a :class:`repro.platform.PlatformConfig`) sizes every
    component: the mesh, the NoC timing, each tile's memory system and
    the core parameters.  ``mesh`` overrides the platform's mesh when
    given.  ``baseline_memory=True`` re-purposes each tile's SPM budget
    as extra D$ (the paper's baseline many-core memory system).
    ``engine`` selects every core's execution loop (see
    :class:`repro.cpu.Core`): the default ``auto`` runs the pre-decoded
    fast loop unless telemetry/profiling is enabled.
    """

    def __init__(self, mesh=None, contention=True, baseline_memory=False,
                 telemetry=None, platform=None, profile_cycles=False,
                 engine="auto", injector=None, recv_timeout=None):
        self.platform = platform if platform is not None else DEFAULT_PLATFORM
        self.engine = engine
        self.mesh = mesh if mesh is not None else Mesh.from_params(self.platform.noc)
        self.telemetry = ensure_telemetry(telemetry)
        self.profile_cycles = profile_cycles
        self.injector = ensure_injector(injector, telemetry=self.telemetry)
        if recv_timeout is None:
            recovery = getattr(self.injector, "recovery", None)
            recv_timeout = recovery.recv_timeout if recovery is not None else 0
        self.recv_timeout = recv_timeout
        self.fabric = MessagePassing(
            Network(self.mesh, contention=contention,
                    telemetry=self.telemetry, params=self.platform.noc,
                    injector=self.injector),
            num_tiles=self.mesh.num_tiles,
            telemetry=self.telemetry,
            injector=self.injector,
        )
        mem_params = self.platform.mem
        if baseline_memory:
            mem_params = dataclasses.replace(
                mem_params,
                dcache_bytes=mem_params.dcache_bytes + mem_params.spm_bytes,
                spm_bytes=0,
            )
        self.memories = [
            MemorySystem(mem_params) for _ in range(self.mesh.num_tiles)
        ]
        self.cores = [None] * self.mesh.num_tiles

    def load(self, tile, program, setup=None, cfg_table=None):
        """Place a program on a tile; returns the core.

        ``cfg_table`` (or ``program.cfg_table``) attaches a patch
        executor wired to this tile's scratchpad — and, for stitched
        configurations, to every other tile's (the stitcher binds
        ``remote_tile`` on the fused configs it places).
        """
        memory = self.memories[tile]
        table = cfg_table if cfg_table is not None else getattr(program, "cfg_table", None)
        patch = None
        if table:
            remote = {t: self.memories[t] for t in range(self.mesh.num_tiles)}
            patch = PatchExecutor(table, memory, remote_memories=remote)
        core = Core(
            program, memory, patch=patch,
            comm=self.fabric.port(tile), core_id=tile,
            tracer=self.telemetry.tracer,
            timeseries=self.telemetry.timeseries,
            recorder=self.telemetry.recorder,
            profile_cycles=self.profile_cycles,
            params=self.platform.core,
            engine=self.engine,
            injector=self.injector,
        )
        if setup is not None:
            setup(core)
        self.cores[tile] = core
        return core

    def run(self, max_instructions_per_slice=2_000_000, max_rounds=100_000):
        """Run all tiles to completion; returns :class:`RunResults`."""
        live = [core for core in self.cores if core is not None]
        cache_baseline = self._cache_counters()
        reasons = {core: STOP_HALT for core in live}
        blocked = {}     # core -> words pending toward it when it blocked
        blocked_at = {}  # core -> its cycle count when it blocked
        pending = list(live)
        rounds = 0
        tracer = self.telemetry.tracer
        recorder = self.telemetry.recorder
        timeout = self.recv_timeout
        while pending or blocked:
            rounds += 1
            if rounds > max_rounds:
                error = self._round_budget(max_rounds, pending, blocked)
                self._finalize_recorder(recorder, live, reasons, "budget",
                                        error.snapshot)
                raise error
            progressed = False
            next_pending = []
            for core in pending:
                retired_before = core.instret
                outcome = core.run(max_instructions=max_instructions_per_slice)
                reasons[core] = outcome.reason
                if core.instret > retired_before or outcome.reason == STOP_HALT:
                    progressed = True
                if outcome.reason == STOP_RECV:
                    blocked[core] = self.fabric.pending_words(core.core_id)
                    blocked_at[core] = core.cycles
                elif outcome.reason not in (STOP_HALT, STOP_FROZEN):
                    # A frozen core (injected fault) is terminal: it
                    # never retires again, so it leaves the schedule and
                    # its peers run into the watchdog/deadlock nets.
                    next_pending.append(core)
            pending = next_pending
            # Wake blocked cores only when new words arrived for them.
            for core in list(blocked):
                now_pending = self.fabric.pending_words(core.core_id)
                if now_pending > blocked[core]:
                    del blocked[core]
                    del blocked_at[core]
                    pending.append(core)
                    progressed = True
                    if tracer.enabled:
                        tracer.comm_unblocked(core.core_id, core.cycles)
            # Receive watchdog: a blocked tile whose wait outlives the
            # deadline fails loud even while the rest of the system is
            # still making progress.
            if timeout and blocked:
                horizon = max(core.cycles for core in live)
                expired = [core for core in blocked
                           if horizon - blocked_at[core] >= timeout]
                if expired:
                    error = self._recv_timeout(expired, blocked_at, horizon,
                                               timeout)
                    self._finalize_recorder(recorder, live, reasons,
                                            "timeout", error.snapshot)
                    raise error
            if not progressed and not pending:
                if blocked:
                    error = self._deadlock(blocked)
                    self._finalize_recorder(recorder, live, reasons,
                                            "deadlock", error.snapshot)
                    raise error
                break
        self._finalize_recorder(recorder, live, reasons, "complete")
        timeseries = self.telemetry.timeseries
        if timeseries.enabled:
            from repro.power.chip import EnergyModel

            for core in live:
                core.flush_timeseries()
            timeseries.add_energy(
                EnergyModel(self.platform.power, num_tiles=self.mesh.num_tiles)
            )
        stats = self._roll_up(live, reasons, cache_baseline)
        attach = self.telemetry.enabled
        return RunResults(
            [
                TileResult(
                    core.core_id, core.cycles, core.instret, reasons[core],
                    attribution=core.attribution() if attach else None,
                )
                for core in live
            ],
            stats,
        )

    def _finalize_recorder(self, recorder, live, reasons, outcome,
                           snapshot=None):
        """Close every tile's causal timeline — also for partial runs,
        whose blocked receives become the analyzable frontier."""
        if not recorder.enabled:
            return
        for core in live:
            recorder.tile_done(core.core_id, core.cycles, reasons[core],
                               core._recorder_counters())
        recorder.finish(outcome, snapshot=snapshot)

    def makespan(self, results=None):
        results = results if results is not None else self.run()
        return max(result.cycles for result in results)

    def reset_stats(self):
        """Zero every component's counters (simulated state untouched)."""
        for memory in self.memories:
            memory.reset_stats()
        self.fabric.reset_stats()
        self.fabric.network.reset_stats()

    # -- telemetry -----------------------------------------------------------

    def _cache_counters(self):
        return [
            (m.icache.hits, m.icache.misses, m.icache.writebacks,
             m.dcache.hits, m.dcache.misses, m.dcache.writebacks)
            for m in self.memories
        ]

    def _roll_up(self, live, reasons, cache_baseline):
        """Build the :class:`SystemStats` for the run just finished."""
        tiles = {}
        patch = {
            "executions": 0, "fused_executions": 0,
            "remote_spm_accesses": 0, "per_config": {},
        }
        for core in live:
            attribution = core.attribution()
            attribution["instructions"] = core.instret
            attribution["reason"] = reasons[core]
            tiles[core.core_id] = attribution
            executor_stats = getattr(core.patch, "stats", None)
            if executor_stats is not None:
                for key, value in executor_stats().items():
                    if key == "per_config":
                        for cfg_id, count in value.items():
                            patch["per_config"][cfg_id] = (
                                patch["per_config"].get(cfg_id, 0) + count
                            )
                    else:
                        patch[key] += value
        caches = {
            "icache": {"hits": 0, "misses": 0, "writebacks": 0},
            "dcache": {"hits": 0, "misses": 0, "writebacks": 0},
        }
        for memory, before in zip(self.memories, cache_baseline):
            ih, im, iw, dh, dm, dw = before
            caches["icache"]["hits"] += memory.icache.hits - ih
            caches["icache"]["misses"] += memory.icache.misses - im
            caches["icache"]["writebacks"] += memory.icache.writebacks - iw
            caches["dcache"]["hits"] += memory.dcache.hits - dh
            caches["dcache"]["misses"] += memory.dcache.misses - dm
            caches["dcache"]["writebacks"] += memory.dcache.writebacks - dw
        stats = SystemStats(
            tiles, caches, self.fabric.network.stats(), self.fabric.stats(),
            patch,
        )
        if self.telemetry.stats.enabled:
            stats.populate(self.telemetry.stats)
        return stats

    def _round_budget(self, max_rounds, pending, blocked):
        """Build the RoundBudgetError with its scheduler snapshot."""
        snapshot = {
            "rounds": max_rounds,
            "pending_tiles": sorted(core.core_id for core in pending),
            "blocked_tiles": {
                core.core_id: {
                    "words_queued": self.fabric.pending_words(core.core_id),
                    "channels": self.fabric.pending_channels(core.core_id),
                    "cycles": core.cycles,
                }
                for core in blocked
            },
        }
        message = (
            f"co-simulation exceeded the {max_rounds}-round budget: "
            f"{len(snapshot['pending_tiles'])} tile(s) still runnable "
            f"{snapshot['pending_tiles']}, "
            f"{len(snapshot['blocked_tiles'])} blocked "
            f"{sorted(snapshot['blocked_tiles'])}"
        )
        return RoundBudgetError(message, snapshot=snapshot)

    def _blocked_receive(self, core):
        """Per-tile snapshot of one blocked receive (shared vocabulary
        between the deadlock and watchdog snapshots)."""
        instr = core.program.instructions[core.pc]
        peer = core.regs[instr.ra] if instr.op is Op.RECV else None
        count = core.regs[instr.rd] if instr.op is Op.RECV else None
        return {
            "waiting_on": peer,
            "words_needed": count,
            "pending": self.fabric.pending_channels(core.core_id),
            "cycles": core.cycles,
        }

    def _recv_timeout(self, expired, blocked_at, horizon, timeout):
        """Build the RecvTimeoutError with its watchdog snapshot."""
        tracer = self.telemetry.tracer
        snapshot = {"deadline": timeout, "horizon": horizon, "tiles": {}}
        details = []
        for core in sorted(expired, key=lambda c: c.core_id):
            tile = core.core_id
            entry = self._blocked_receive(core)
            entry["blocked_since"] = blocked_at[core]
            snapshot["tiles"][tile] = entry
            waited = horizon - blocked_at[core]
            details.append(
                f"tile {tile} has waited {waited} cycle(s) for "
                f"{entry['words_needed']} word(s) from tile "
                f"{entry['waiting_on']}"
            )
            if tracer.enabled:
                tracer.recv_timeout(tile, entry["waiting_on"], waited,
                                    core.cycles)
            if self.injector.armed:
                self.injector.log_detect(
                    "recv", tile, core.cycles,
                    waiting_on=entry["waiting_on"], deadline=timeout,
                    horizon=horizon,
                )
        tiles = sorted(snapshot["tiles"])
        message = (
            f"receive watchdog expired ({timeout}-cycle deadline) on "
            f"tiles {tiles}: " + "; ".join(details)
        )
        return RecvTimeoutError(message, snapshot=snapshot)

    def _deadlock(self, blocked):
        """Build the DeadlockError with its telemetry snapshot."""
        tracer = self.telemetry.tracer
        snapshot = {}
        details = []
        for core in sorted(blocked, key=lambda c: c.core_id):
            tile = core.core_id
            entry = self._blocked_receive(core)
            snapshot[tile] = entry
            peer = entry["waiting_on"]
            count = entry["words_needed"]
            queued = entry["pending"].get(peer, 0)
            details.append(
                f"tile {tile} needs {count} word(s) from tile {peer} "
                f"(channel holds {queued})"
            )
            if tracer.enabled:
                tracer.deadlock(tile, peer, queued, core.cycles)
            if self.injector.armed:
                self.injector.log_detect("deadlock", tile, core.cycles,
                                         waiting_on=peer)
        tiles = sorted(snapshot)
        message = (
            f"tiles {tiles} blocked on receives with no data in flight: "
            + "; ".join(details)
        )
        return DeadlockError(message, snapshot=snapshot)
