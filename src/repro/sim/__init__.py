"""System-level simulation: 16 tiles, message passing, pipelines.

* :mod:`repro.sim.system` — the multi-core co-simulator (cores run
  between communication events; the NoC provides arrival times),
* :mod:`repro.sim.streaming` — wraps compiled kernels into
  receive/compute/send loops,
* :mod:`repro.sim.pipeline_model` — the analytic steady-state
  throughput model Algorithm 1 optimizes against,
* :mod:`repro.sim.baselines` — the four evaluated architectures
  (baseline / LOCUS / Stitch w/o fusion / Stitch).
"""

from repro.sim.system import (
    DeadlockError,
    RecvTimeoutError,
    RoundBudgetError,
    RunResults,
    StitchSystem,
    TileResult,
)
from repro.sim.streaming import wrap_streaming
from repro.sim.pipeline_model import PipelineModel, StageTiming

__all__ = [
    "StitchSystem",
    "TileResult",
    "RunResults",
    "DeadlockError",
    "RecvTimeoutError",
    "RoundBudgetError",
    "wrap_streaming",
    "PipelineModel",
    "StageTiming",
]
