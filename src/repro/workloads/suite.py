"""Kernel registry: the Figure 11 suite by name."""

from repro.workloads.kernels import (
    AesDecryptKernel,
    AesEncryptKernel,
    AstarKernel,
    ClassifyKernel,
    Conv2dKernel,
    DtwKernel,
    FcKernel,
    FftKernel,
    FirKernel,
    HistogramKernel,
    IfftKernel,
    PoolKernel,
    SpecFilterKernel,
    SvmKernel,
    UpdateFeatureKernel,
)

KERNEL_FACTORIES = {
    "fft": FftKernel,
    "ifft": IfftKernel,
    "2dconv": Conv2dKernel,
    "dtw": DtwKernel,
    "aes": AesEncryptKernel,
    "aesdec": AesDecryptKernel,
    "histogram": HistogramKernel,
    "svm": SvmKernel,
    "pool": PoolKernel,
    "fc": FcKernel,
    "fir": FirKernel,
    "specfilter": SpecFilterKernel,
    "update": UpdateFeatureKernel,
    "classify": ClassifyKernel,
    "astar": AstarKernel,
}


def make_kernel(name, **kwargs):
    """Instantiate a suite kernel by its Figure 11 name."""
    try:
        factory = KERNEL_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; choose from {sorted(KERNEL_FACTORIES)}"
        ) from None
    return factory(**kwargs)


def kernel_suite(seed=1, names=None):
    """Instantiate the full suite (or a named subset)."""
    selected = names if names is not None else sorted(KERNEL_FACTORIES)
    return [make_kernel(name, seed=seed) for name in selected]
