"""Kernel framework: regions, the Kernel base class, stream wrapping.

Register convention: kernel bodies use ``r1``-``r10`` and ``r12``-
``r15`` freely but must re-initialize every register before reading it
within an iteration (no cross-iteration register state); ``r11`` is the
streaming wrapper's item counter and is never touched by bodies.  The
wrapper's receive/send sequences use ``r1``-``r3``, which is safe under
the re-initialization rule.  Registers the ISE compiler's constant pool
claims are untouched by construction (the pool only takes registers the
program never references).
"""

from repro.isa.assembler import assemble
from repro.isa.builder import Asm
from repro.mem.spm import SPM_BASE, SPM_SIZE

STREAM_COUNT_REG = "r11"
_COMM_PEER_REG = "r1"
_COMM_ARG_REG = "r2"
_COMM_COUNT_REG = "r3"


class Region:
    """A named word region in the tile's memory (usually the SPM)."""

    __slots__ = ("name", "addr", "nwords")

    def __init__(self, name, addr, nwords):
        if addr % 4 != 0:
            raise ValueError(f"region {name!r} must be word aligned")
        self.name = name
        self.addr = addr
        self.nwords = nwords

    @property
    def end(self):
        return self.addr + 4 * self.nwords

    def __repr__(self):
        return f"Region({self.name}@{self.addr:#x}, {self.nwords}w)"


class Kernel:
    """Base class for workload kernels.

    Subclasses implement :meth:`build` (emit the body, no ``halt``),
    declare ``inputs`` / ``outputs`` / ``consts`` regions plus the data
    for them, and implement :meth:`reference` returning the expected
    output words.
    """

    name = "kernel"
    live_out_regs = frozenset()  # results live in memory regions

    def __init__(self, seed=1):
        self.seed = seed
        self.inputs = []     # (Region, list of words) streamed per item
        self.consts = []     # (Region, list of words) loaded once
        self.outputs = []    # Region
        self.composites = {}  # name -> Region spanning adjacent regions
        self.configure()
        self._check_layout()
        asm = Asm(self.name)
        self.build(asm)
        self._body_lines = list(asm.lines)
        self._program = None

    # -- subclass API --------------------------------------------------------

    def configure(self):
        """Set up regions and input data (runs before build)."""
        raise NotImplementedError

    def build(self, asm):
        """Emit the kernel body (no halt)."""
        raise NotImplementedError

    def reference(self):
        """Expected output words (concatenated over output regions)."""
        raise NotImplementedError

    # -- helpers for subclasses ------------------------------------------------

    _cursor = None

    def region(self, name, nwords):
        """Allocate the next ``nwords`` of SPM as a region."""
        if self._cursor is None:
            self._cursor = SPM_BASE
        region = Region(name, self._cursor, nwords)
        self._cursor += 4 * nwords
        return region

    def _check_layout(self):
        regions = [r for r, _ in self.inputs] + [r for r, _ in self.consts]
        regions += list(self.outputs)
        for region in regions:
            if region.end > SPM_BASE + SPM_SIZE:
                raise ValueError(
                    f"{self.name}: region {region.name} exceeds the 4 KB SPM"
                )

    # -- programs -----------------------------------------------------------------

    @property
    def program(self):
        """Standalone program (cached)."""
        if self._program is None:
            source = "\n".join(self._body_lines + ["    halt"])
            self._program = assemble(source, name=self.name)
        return self._program

    def streaming_program(self, sources, sinks, items):
        """Wrap the body in a recv/compute/send loop.

        ``sources`` — list of ``(peer tile, Region)`` received per item,
        ``sinks`` — list of ``(peer tile, Region)`` sent per item,
        ``items`` — iterations before halting.
        """
        asm = Asm(f"{self.name}.stream")
        asm.movi(STREAM_COUNT_REG, items)
        loop = asm.label("stream_loop")
        for peer, region in sources:
            asm.movi(_COMM_PEER_REG, peer)
            asm.movi(_COMM_ARG_REG, region.addr)
            asm.movi(_COMM_COUNT_REG, region.nwords)
            asm.recv(_COMM_PEER_REG, _COMM_ARG_REG, _COMM_COUNT_REG)
        asm.lines.extend(self._body_lines)
        for peer, region in sinks:
            asm.movi(_COMM_PEER_REG, peer)
            asm.movi(_COMM_ARG_REG, region.addr)
            asm.movi(_COMM_COUNT_REG, region.nwords)
            asm.send(_COMM_PEER_REG, _COMM_ARG_REG, _COMM_COUNT_REG)
        asm.addi(STREAM_COUNT_REG, STREAM_COUNT_REG, -1)
        asm.bne(STREAM_COUNT_REG, "r0", loop)
        asm.halt()
        return asm.assemble()

    # -- harness hooks ---------------------------------------------------------------

    def load_consts(self, core):
        for region, words in self.consts:
            if len(words) != region.nwords:
                raise ValueError(f"{region.name}: data/region size mismatch")
            core.memory.load(region.addr, words)

    def load_inputs(self, core):
        for region, words in self.inputs:
            if len(words) != region.nwords:
                raise ValueError(f"{region.name}: data/region size mismatch")
            core.memory.load(region.addr, words)

    def setup(self, core):
        self.load_consts(core)
        self.load_inputs(core)

    def result(self, core):
        values = []
        for region in self.outputs:
            values.extend(core.memory.dump(region.addr, region.nwords))
        return values

    def get_region(self, name):
        """Look up a region by name (inputs, outputs or composites)."""
        if name in self.composites:
            return self.composites[name]
        for region, _ in self.inputs + self.consts:
            if region.name == name:
                return region
        for region in self.outputs:
            if region.name == name:
                return region
        raise KeyError(f"{self.name} has no region named {name!r}")

    def cache_key(self):
        """Key identifying this kernel build (for compile caches)."""
        return (type(self).__name__, self.seed, tuple(
            sorted(
                (k, v) for k, v in vars(self).items()
                if isinstance(v, (int, str)) and not k.startswith("_")
            )
        ))

    def __repr__(self):
        return f"Kernel({self.name})"
