"""The wearable kernel suite (Figure 11's x-axis).

Signal chain: :mod:`fft`, :mod:`ifft`, :mod:`specfilter`,
:mod:`update`, :mod:`classify`, :mod:`fir`; vision: :mod:`conv2d`,
:mod:`pool`, :mod:`fc`, :mod:`histogram`; learning: :mod:`svm`,
:mod:`dtw`; crypto: :mod:`aes` (encrypt/decrypt); search: :mod:`astar`.
"""

from repro.workloads.kernels.fir import FirKernel
from repro.workloads.kernels.histogram import HistogramKernel
from repro.workloads.kernels.pool import PoolKernel
from repro.workloads.kernels.fc import FcKernel
from repro.workloads.kernels.specfilter import SpecFilterKernel
from repro.workloads.kernels.update import UpdateFeatureKernel
from repro.workloads.kernels.fft import FftKernel, IfftKernel
from repro.workloads.kernels.conv2d import Conv2dKernel
from repro.workloads.kernels.svm import SvmKernel
from repro.workloads.kernels.classify import ClassifyKernel
from repro.workloads.kernels.dtw import DtwKernel
from repro.workloads.kernels.aes import AesDecryptKernel, AesEncryptKernel
from repro.workloads.kernels.astar import AstarKernel

__all__ = [
    "FirKernel",
    "HistogramKernel",
    "PoolKernel",
    "FcKernel",
    "SpecFilterKernel",
    "UpdateFeatureKernel",
    "FftKernel",
    "IfftKernel",
    "Conv2dKernel",
    "SvmKernel",
    "ClassifyKernel",
    "DtwKernel",
    "AesEncryptKernel",
    "AesDecryptKernel",
    "AstarKernel",
]
