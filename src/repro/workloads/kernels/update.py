"""Update-feature stage of the gesture pipeline.

Per spectral bin: magnitude approximation ``(|re| + |im|) >> 1``
followed by exponential smoothing against the running feature state:
``f += (mag - f) >> 3``.  Absolute values use the branchless
``s = x >> 31; |x| = (x ^ s) - s`` idiom — shift/ALU chains all the
way down, which is why this stage loves the {AT-SA}/{AT-AS} patches
(Section V stitches two patches for it).
"""

from repro.workloads.base import Kernel, Region
from repro.workloads.generators import sensor_signal


class UpdateFeatureKernel(Kernel):
    name = "update"

    def __init__(self, n=64, seed=1):
        self.n = n
        super().__init__(seed=seed)

    def configure(self):
        self.re = self.region("re", self.n)
        self.im = self.region("im", self.n)
        self.feat = self.region("feature", self.n)
        self.re_data = sensor_signal(self.n, seed=self.seed)
        self.im_data = sensor_signal(self.n, seed=self.seed + 1)
        self.feat_init = [abs(v) for v in sensor_signal(self.n, seed=self.seed + 2)]
        self.inputs = [(self.re, self.re_data), (self.im, self.im_data)]
        self.consts = [(self.feat, self.feat_init)]
        self.outputs = [self.feat]
        # The untouched complex input doubles as a forwarding region so
        # pipeline stages can pass the spectrum through this stage.
        self.composites["cplx"] = Region("cplx", self.re.addr, 2 * self.n)

    def build(self, asm):
        asm.movi("r1", self.re.addr)
        asm.movi("r2", self.im.addr)
        asm.movi("r3", self.feat.addr)
        asm.movi("r8", self.re.end)
        loop = asm.label("update_loop")
        asm.lw("r4", 0, "r1")
        asm.srai("r5", "r4", 31)      # |re|
        asm.xor("r4", "r4", "r5")
        asm.sub("r4", "r4", "r5")
        asm.lw("r6", 0, "r2")
        asm.srai("r5", "r6", 31)      # |im|
        asm.xor("r6", "r6", "r5")
        asm.sub("r6", "r6", "r5")
        asm.add("r4", "r4", "r6")
        asm.srai("r4", "r4", 1)       # magnitude approx
        asm.lw("r7", 0, "r3")         # previous feature
        asm.sub("r4", "r4", "r7")
        asm.srai("r4", "r4", 3)
        asm.add("r7", "r7", "r4")     # smoothed
        asm.sw("r7", 0, "r3")
        asm.addi("r1", "r1", 4)
        asm.addi("r2", "r2", 4)
        asm.addi("r3", "r3", 4)
        asm.bne("r1", "r8", loop)

    def reference(self):
        out = []
        for re, im, prev in zip(self.re_data, self.im_data, self.feat_init):
            mag = (abs(re) + abs(im)) >> 1
            out.append(prev + ((mag - prev) >> 3))
        return out
