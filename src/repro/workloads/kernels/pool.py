"""2x2 max pooling over a square feature map (CNN layer).

Branchless max: ``d = b - a; m = d >> 31; max = b - (d & m)``
— an all-A/S chain the shifter-bearing patches accelerate well.
"""

from repro.workloads.base import Kernel
from repro.workloads.generators import image


class PoolKernel(Kernel):
    name = "pool"

    def __init__(self, width=16, seed=1):
        if width % 2:
            raise ValueError("pooling needs an even width")
        self.width = width
        super().__init__(seed=seed)

    def configure(self):
        w = self.width
        self.src = self.region("fmap", w * w)
        self.dst = self.region("pooled", (w // 2) * (w // 2))
        self.src_data = image(w, w, seed=self.seed)
        self.inputs = [(self.src, self.src_data)]
        self.outputs = [self.dst]

    def _emit_max(self, asm, acc, new, t1):
        """acc = max(acc, new) without branches."""
        asm.sub(t1, new, acc)       # d = new - acc
        asm.srai("r9", t1, 31)      # m = d >> 31 (-1 when new < acc)
        asm.and_(t1, t1, "r9")      # d & m
        asm.sub(acc, new, t1)       # new - (d & m)

    def build(self, asm):
        w = self.width
        row_bytes = 4 * w
        asm.movi("r1", self.src.addr)     # top-left of current 2x2
        asm.movi("r2", self.dst.addr)
        asm.movi("r8", self.dst.end)
        asm.movi("r6", 0)                 # column counter
        outer = asm.label("pool_loop")
        asm.lw("r3", 0, "r1")                  # a
        asm.lw("r4", 4, "r1")                  # b
        self._emit_max(asm, "r3", "r4", "r5")
        asm.lw("r4", row_bytes, "r1")          # c
        self._emit_max(asm, "r3", "r4", "r5")
        asm.lw("r4", row_bytes + 4, "r1")      # d
        self._emit_max(asm, "r3", "r4", "r5")
        asm.sw("r3", 0, "r2")
        asm.addi("r2", "r2", 4)
        asm.addi("r1", "r1", 8)
        # Row stride: after w/2 outputs, skip a full source row.
        # Detect via output address: (dst - base) % (w/2 words) == 0.
        # Cheaper: keep a column counter.
        asm.addi("r6", "r6", 1)
        asm.movi("r7", w // 2)
        asm.bne("r6", "r7", outer)
        asm.movi("r6", 0)
        asm.addi("r1", "r1", row_bytes)
        asm.bne("r2", "r8", outer)

    def reference(self):
        w = self.width
        out = []
        for y in range(0, w, 2):
            for x in range(0, w, 2):
                out.append(
                    max(
                        self.src_data[y * w + x],
                        self.src_data[y * w + x + 1],
                        self.src_data[(y + 1) * w + x],
                        self.src_data[(y + 1) * w + x + 1],
                    )
                )
        return out
