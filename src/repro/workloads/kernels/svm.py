"""Linear multi-class SVM scoring (anomaly recognition, APP3).

One dot product per class over the feature vector, then an argmax.
"""

from repro.isa.instructions import wrap32
from repro.workloads.base import Kernel
from repro.workloads.generators import sensor_signal, weights


class SvmKernel(Kernel):
    name = "svm"

    def __init__(self, dim=64, classes=4, seed=1):
        self.dim = dim
        self.classes = classes
        super().__init__(seed=seed)

    def configure(self):
        self.x = self.region("features", self.dim)
        self.w = self.region("weights", self.dim * self.classes)
        self.b = self.region("bias", self.classes)
        self.scores = self.region("scores", self.classes)
        self.label = self.region("label", 1)
        self.x_data = [v >> 4 for v in sensor_signal(self.dim, seed=self.seed)]
        self.w_data = weights(self.dim * self.classes, seed=self.seed + 5)
        self.b_data = weights(self.classes, seed=self.seed + 9, lo=-1024, hi=1024)
        self.inputs = [(self.x, self.x_data)]
        self.consts = [(self.w, self.w_data), (self.b, self.b_data)]
        self.outputs = [self.label, self.scores]

    def build(self, asm):
        asm.movi("r1", self.w.addr)
        asm.movi("r2", self.scores.addr)
        asm.movi("r3", self.b.addr)
        asm.movi("r8", self.scores.end)
        outer = asm.label("svm_class")
        asm.movi("r4", 0)
        asm.movi("r5", self.x.addr)
        asm.movi("r9", self.x.end)
        inner = asm.label("svm_dot")
        asm.lw("r6", 0, "r1")
        asm.lw("r7", 0, "r5")
        asm.mul("r6", "r6", "r7")
        asm.add("r4", "r4", "r6")
        asm.addi("r1", "r1", 4)
        asm.addi("r5", "r5", 4)
        asm.bne("r5", "r9", inner)
        asm.srai("r4", "r4", 6)
        asm.lw("r6", 0, "r3")
        asm.add("r4", "r4", "r6")
        asm.sw("r4", 0, "r2")
        asm.addi("r2", "r2", 4)
        asm.addi("r3", "r3", 4)
        asm.bne("r2", "r8", outer)
        # Argmax over the scores.
        asm.movi("r1", self.scores.addr)
        asm.movi("r8", self.scores.end)
        asm.lw("r4", 0, "r1")           # best score
        asm.movi("r5", 0)               # best index
        asm.movi("r6", 0)               # current index
        scan = asm.label("svm_argmax")
        asm.lw("r7", 0, "r1")
        skip = asm.forward_label("svm_keep")
        asm.bge("r4", "r7", skip)
        asm.mov("r4", "r7")
        asm.mov("r5", "r6")
        asm.place(skip)
        asm.addi("r6", "r6", 1)
        asm.addi("r1", "r1", 4)
        asm.bne("r1", "r8", scan)
        asm.movi("r1", self.label.addr)
        asm.sw("r5", 0, "r1")

    def reference(self):
        scores = []
        for c in range(self.classes):
            acc = 0
            for i in range(self.dim):
                acc = wrap32(acc + wrap32(
                    self.w_data[c * self.dim + i] * self.x_data[i]
                ))
            scores.append((acc >> 6) + self.b_data[c])
        best = max(range(self.classes), key=lambda c: (scores[c], -c))
        return [best] + scores
