"""Time-domain FIR filter (sensor smoothing).

``y[i] = (sum_k x[i - k] * h[k]) >> 8`` for ``i = K-1 .. N-1``.
Inner loop is the classic load/load/multiply/accumulate chain.
"""

from repro.isa.instructions import wrap32
from repro.workloads.base import Kernel
from repro.workloads.generators import sensor_signal, weights


class FirKernel(Kernel):
    name = "fir"

    def __init__(self, n=96, taps=16, seed=1):
        self.n = n
        self.taps = taps
        super().__init__(seed=seed)

    def configure(self):
        self.x = self.region("x", self.n)
        self.h = self.region("h", self.taps)
        self.y = self.region("y", self.n - self.taps + 1)
        self.x_data = sensor_signal(self.n, seed=self.seed)
        self.h_data = weights(self.taps, seed=self.seed + 100)
        self.inputs = [(self.x, self.x_data)]
        self.consts = [(self.h, self.h_data)]
        self.outputs = [self.y]

    def build(self, asm):
        first = self.x.addr + 4 * (self.taps - 1)
        asm.movi("r1", first)               # newest sample of the window
        asm.movi("r2", self.y.addr)         # output pointer
        asm.movi("r8", self.x.end)          # end of input
        asm.movi("r9", self.h.end)          # end of taps
        outer = asm.label("fir_outer")
        asm.movi("r4", 0)                   # accumulator
        asm.movi("r5", self.h.addr)         # tap pointer
        asm.mov("r6", "r1")                 # sample pointer (walks back)
        inner = asm.label("fir_inner")
        asm.lw("r7", 0, "r5")
        asm.lw("r3", 0, "r6")
        asm.mul("r7", "r7", "r3")
        asm.add("r4", "r4", "r7")
        asm.addi("r5", "r5", 4)
        asm.addi("r6", "r6", -4)
        asm.bne("r5", "r9", inner)
        asm.srai("r4", "r4", 8)
        asm.sw("r4", 0, "r2")
        asm.addi("r2", "r2", 4)
        asm.addi("r1", "r1", 4)
        asm.bne("r1", "r8", outer)

    def reference(self):
        out = []
        for i in range(self.taps - 1, self.n):
            acc = 0
            for k in range(self.taps):
                acc = wrap32(acc + wrap32(self.x_data[i - k] * self.h_data[k]))
            out.append(acc >> 8)
        return out
