"""256-bin histogram of byte-valued samples.

The paper notes the histogram kernel is the largest SPM user (4 KB);
samples and bins both live in the scratchpad.  The increment chain —
shift, address add, load, add-1, store — is a showcase pattern for the
{AT-SA} patch with its LMAU.
"""

from repro.workloads.base import Kernel
from repro.workloads.generators import byte_block


class HistogramKernel(Kernel):
    name = "histogram"

    def __init__(self, n=512, bins=256, seed=1):
        self.n = n
        self.bins = bins
        super().__init__(seed=seed)

    def configure(self):
        self.samples = self.region("samples", self.n)
        self.hist = self.region("hist", self.bins)
        self.sample_data = byte_block(self.n, seed=self.seed)
        self.inputs = [(self.samples, self.sample_data)]
        self.outputs = [self.hist]

    def build(self, asm):
        # Clear the bins.
        asm.movi("r1", self.hist.addr)
        asm.movi("r2", self.hist.end)
        clear = asm.label("hist_clear")
        asm.sw("r0", 0, "r1")
        asm.addi("r1", "r1", 4)
        asm.bne("r1", "r2", clear)
        # Count.
        asm.movi("r1", self.samples.addr)
        asm.movi("r2", self.samples.end)
        asm.movi("r3", self.hist.addr)
        loop = asm.label("hist_loop")
        asm.lw("r4", 0, "r1")        # sample (0..255)
        asm.slli("r5", "r4", 2)      # byte offset of its bin
        asm.add("r5", "r5", "r3")    # bin address
        asm.lw("r6", 0, "r5")
        asm.addi("r6", "r6", 1)
        asm.sw("r6", 0, "r5")
        asm.addi("r1", "r1", 4)
        asm.bne("r1", "r2", loop)

    def reference(self):
        hist = [0] * self.bins
        for value in self.sample_data:
            hist[value] += 1
        return hist
