"""Nearest-centroid gesture classifier (the gesture pipeline's tail).

L1 distance of the feature vector to each class centroid, argmin.
"""

from repro.workloads.base import Kernel
from repro.workloads.generators import sensor_signal


class ClassifyKernel(Kernel):
    name = "classify"

    def __init__(self, dim=64, classes=8, seed=1):
        self.dim = dim
        self.classes = classes
        super().__init__(seed=seed)

    def configure(self):
        self.x = self.region("feature", self.dim)
        self.c = self.region("centroids", self.dim * self.classes)
        self.dists = self.region("dists", self.classes)
        self.label = self.region("label", 1)
        self.x_data = [abs(v) for v in sensor_signal(self.dim, seed=self.seed)]
        self.c_data = []
        for k in range(self.classes):
            self.c_data.extend(
                abs(v) for v in sensor_signal(self.dim, seed=self.seed + 20 + k)
            )
        self.inputs = [(self.x, self.x_data)]
        self.consts = [(self.c, self.c_data)]
        self.outputs = [self.label, self.dists]

    def build(self, asm):
        asm.movi("r1", self.c.addr)
        asm.movi("r2", self.dists.addr)
        asm.movi("r8", self.dists.end)
        outer = asm.label("cls_outer")
        asm.movi("r4", 0)               # distance accumulator
        asm.movi("r5", self.x.addr)
        asm.movi("r9", self.x.end)
        inner = asm.label("cls_inner")
        asm.lw("r6", 0, "r1")
        asm.lw("r7", 0, "r5")
        asm.sub("r6", "r6", "r7")
        asm.srai("r7", "r6", 31)        # |diff|
        asm.xor("r6", "r6", "r7")
        asm.sub("r6", "r6", "r7")
        asm.add("r4", "r4", "r6")
        asm.addi("r1", "r1", 4)
        asm.addi("r5", "r5", 4)
        asm.bne("r5", "r9", inner)
        asm.sw("r4", 0, "r2")
        asm.addi("r2", "r2", 4)
        asm.bne("r2", "r8", outer)
        # Argmin.
        asm.movi("r1", self.dists.addr)
        asm.lw("r4", 0, "r1")
        asm.movi("r5", 0)
        asm.movi("r6", 0)
        scan = asm.label("cls_argmin")
        asm.lw("r7", 0, "r1")
        keep = asm.forward_label("cls_keep")
        asm.bge("r7", "r4", keep)
        asm.mov("r4", "r7")
        asm.mov("r5", "r6")
        asm.place(keep)
        asm.addi("r6", "r6", 1)
        asm.addi("r1", "r1", 4)
        asm.movi("r7", self.dists.end)
        asm.bne("r1", "r7", scan)
        asm.movi("r1", self.label.addr)
        asm.sw("r5", 0, "r1")

    def reference(self):
        dists = []
        for k in range(self.classes):
            dists.append(sum(
                abs(self.c_data[k * self.dim + i] - self.x_data[i])
                for i in range(self.dim)
            ))
        best = min(range(self.classes), key=lambda k: (dists[k], k))
        return [best] + dists
