"""Fixed-point radix-2 FFT / IFFT (the gesture pipeline's heavy stages).

A compile-time *schedule* drives the kernel: the bit-reversal swap
pairs and every butterfly's operand addresses + Q14 twiddles are laid
out in the scratchpad, so the inner loop is a pure
load/multiply/sub/shift/store stream — the richest source of fusible
patterns in the suite.  Each butterfly scales by ``>> 1`` to prevent
overflow (a standard fixed-point FFT guard), and the Python reference
executes the identical schedule word-for-word.

The IFFT kernel uses conjugate twiddles and appends the extra
update-feature pass the paper attributes to the IFFT stages
(Section V: they "incorporate additional processing, such as another
Update feature processing").
"""

import math

from repro.isa.instructions import wrap32
from repro.workloads.base import Kernel, Region
from repro.workloads.generators import sensor_signal


def _bitrev(value, bits):
    out = 0
    for _ in range(bits):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


def build_schedule(n, re_addr, invert):
    """(swap pairs, butterfly tuples) for an n-point transform.

    Swap pairs are index pairs; butterflies are
    ``(addr_a, addr_b, wr, wi)`` with absolute SPM byte addresses into
    the ``re`` array (the ``im`` array sits at a fixed +4n offset).
    """
    bits = n.bit_length() - 1
    if 1 << bits != n:
        raise ValueError("FFT size must be a power of two")
    swaps = []
    for i in range(n):
        rev = _bitrev(i, bits)
        if rev > i:
            swaps.append((i, rev))
    sign = 1.0 if invert else -1.0
    butterflies = []
    m = 2
    while m <= n:
        half = m // 2
        for k in range(0, n, m):
            for j in range(half):
                angle = sign * 2.0 * math.pi * j / m
                wr = int(round(math.cos(angle) * (1 << 14)))
                wi = int(round(math.sin(angle) * (1 << 14)))
                butterflies.append(
                    (re_addr + 4 * (k + j), re_addr + 4 * (k + j + half), wr, wi)
                )
        m *= 2
    return swaps, butterflies


class FftKernel(Kernel):
    name = "fft"
    invert = False
    extra_update = False
    update_passes = 0

    def __init__(self, n=64, seed=1):
        self.n = n
        super().__init__(seed=seed)

    def configure(self):
        n = self.n
        self.re = self.region("re", n)
        self.im = self.region("im", n)
        self.im_offset = self.im.addr - self.re.addr
        swaps, butterflies = build_schedule(n, self.re.addr, self.invert)
        self.swaps = swaps
        self.butterflies = butterflies
        swap_words = []
        for i, j in swaps:
            swap_words.extend((self.re.addr + 4 * i, self.re.addr + 4 * j))
        bf_words = []
        for addr_a, addr_b, wr, wi in butterflies:
            bf_words.extend((addr_a, addr_b, wr, wi))
        self.swap_table = self.region("swaps", len(swap_words))
        self.bf_table = self.region("butterflies", len(bf_words))
        self.re_data = sensor_signal(n, seed=self.seed)
        self.im_data = sensor_signal(n, seed=self.seed + 1)
        self.inputs = [(self.re, self.re_data), (self.im, self.im_data)]
        self.consts = [
            (self.swap_table, swap_words),
            (self.bf_table, bf_words),
        ]
        self.outputs = [self.re, self.im]
        # re and im are allocated back to back: expose the whole complex
        # buffer as one region for pipeline channels.
        self.composites["cplx"] = Region("cplx", self.re.addr, 2 * n)
        if self.extra_update:
            self.feat = self.region("feature", n)
            self.feat_init = [abs(v) >> 1 for v in sensor_signal(n, seed=self.seed + 2)]
            self.consts.append((self.feat, self.feat_init))
            self.outputs.append(self.feat)

    def build(self, asm):
        im_off = self.im_offset
        # Phase 1: bit-reversal swaps.
        if self.swaps:
            asm.movi("r1", self.swap_table.addr)
            asm.movi("r2", self.swap_table.end)
            swap = asm.label("fft_swap")
            asm.lw("r3", 0, "r1")
            asm.lw("r4", 4, "r1")
            asm.lw("r5", 0, "r3")
            asm.lw("r6", 0, "r4")
            asm.sw("r6", 0, "r3")
            asm.sw("r5", 0, "r4")
            asm.lw("r5", im_off, "r3")
            asm.lw("r6", im_off, "r4")
            asm.sw("r6", im_off, "r3")
            asm.sw("r5", im_off, "r4")
            asm.addi("r1", "r1", 8)
            asm.bne("r1", "r2", swap)
        # Phase 2: butterflies.
        asm.movi("r1", self.bf_table.addr)
        asm.movi("r2", self.bf_table.end)
        loop = asm.label("fft_bf")
        asm.lw("r3", 0, "r1")          # addr_a
        asm.lw("r4", 4, "r1")          # addr_b
        asm.lw("r5", 8, "r1")          # wr
        asm.lw("r6", 12, "r1")         # wi
        asm.lw("r7", 0, "r4")          # re_b
        asm.lw("r8", im_off, "r4")     # im_b
        asm.mul("r9", "r5", "r7")
        asm.mul("r14", "r6", "r8")
        asm.sub("r9", "r9", "r14")
        asm.srai("r9", "r9", 14)       # tr
        asm.mul("r5", "r5", "r8")
        asm.mul("r6", "r6", "r7")
        asm.add("r5", "r5", "r6")
        asm.srai("r5", "r5", 14)       # ti
        asm.lw("r7", 0, "r3")          # re_a
        asm.sub("r8", "r7", "r9")
        asm.srai("r8", "r8", 1)
        asm.sw("r8", 0, "r4")
        asm.add("r7", "r7", "r9")
        asm.srai("r7", "r7", 1)
        asm.sw("r7", 0, "r3")
        asm.lw("r7", im_off, "r3")     # im_a
        asm.sub("r8", "r7", "r5")
        asm.srai("r8", "r8", 1)
        asm.sw("r8", im_off, "r4")
        asm.add("r7", "r7", "r5")
        asm.srai("r7", "r7", 1)
        asm.sw("r7", im_off, "r3")
        asm.addi("r1", "r1", 16)
        asm.bne("r1", "r2", loop)
        if self.extra_update:
            self._build_update(asm, im_off)

    def _build_update(self, asm, im_off):
        # The paper's IFFT kernels "incorporate additional processing,
        # such as another Update feature processing, resulting in longer
        # execution time" (Section V): several smoothing passes over the
        # feature vector.
        for _pass in range(self.update_passes):
            self._build_update_pass(asm, im_off)

    def _build_update_pass(self, asm, im_off):
        asm.movi("r1", self.re.addr)
        asm.movi("r3", self.feat.addr)
        asm.movi("r8", self.re.end)
        loop = asm.label("ifft_update")
        asm.lw("r4", 0, "r1")
        asm.srai("r5", "r4", 31)
        asm.xor("r4", "r4", "r5")
        asm.sub("r4", "r4", "r5")      # |re|
        asm.lw("r6", im_off, "r1")
        asm.srai("r5", "r6", 31)
        asm.xor("r6", "r6", "r5")
        asm.sub("r6", "r6", "r5")      # |im|
        asm.add("r4", "r4", "r6")
        asm.srai("r4", "r4", 1)
        asm.lw("r7", 0, "r3")
        asm.sub("r4", "r4", "r7")
        asm.srai("r4", "r4", 3)
        asm.add("r7", "r7", "r4")
        asm.sw("r7", 0, "r3")
        asm.addi("r1", "r1", 4)
        asm.addi("r3", "r3", 4)
        asm.bne("r1", "r8", loop)

    def reference(self):
        re = list(self.re_data)
        im = list(self.im_data)
        base = self.re.addr
        for i, j in self.swaps:
            re[i], re[j] = re[j], re[i]
            im[i], im[j] = im[j], im[i]
        for addr_a, addr_b, wr, wi in self.butterflies:
            a = (addr_a - base) >> 2
            b = (addr_b - base) >> 2
            tr = wrap32(wrap32(wr * re[b]) - wrap32(wi * im[b])) >> 14
            ti = wrap32(wrap32(wr * im[b]) + wrap32(wi * re[b])) >> 14
            re[b] = wrap32(re[a] - tr) >> 1
            re[a] = wrap32(re[a] + tr) >> 1
            im[b] = wrap32(im[a] - ti) >> 1
            im[a] = wrap32(im[a] + ti) >> 1
        out = re + im
        if self.extra_update:
            feat = list(self.feat_init)
            for _pass in range(self.update_passes):
                for index, (r, i) in enumerate(zip(re, im)):
                    mag = (abs(r) + abs(i)) >> 1
                    feat[index] += (mag - feat[index]) >> 3
            out = out + feat
        return out


class IfftKernel(FftKernel):
    name = "ifft"
    invert = True
    extra_update = True
    update_passes = 3
