"""Dynamic time warping (transportation context detection, APP4).

Classic O(n*m) DP with two rolling rows; cell cost is |a_i - b_j|,
recurrence ``d[i][j] = cost + min(left, up, diag)``.  The paper finds
dtw benefits most from {AT-AS} (Section VI-C) — the abs-diff chain is
shift+ALU — while the min selection stays branchy.
"""

from repro.workloads.base import Kernel
from repro.workloads.generators import walk_sequence

_BIG = 1 << 28


class DtwKernel(Kernel):
    name = "dtw"

    def __init__(self, n=24, seed=1):
        self.n = n
        super().__init__(seed=seed)

    def configure(self):
        n = self.n
        self.a = self.region("a", n)
        self.b = self.region("b", n)
        self.prev = self.region("prev_row", n + 1)
        self.curr = self.region("curr_row", n + 1)
        self.out = self.region("distance", 1)
        self.a_data = walk_sequence(n, seed=self.seed)
        self.b_data = walk_sequence(n, seed=self.seed + 1)
        self.inputs = [(self.a, self.a_data), (self.b, self.b_data)]
        self.outputs = [self.out]

    def build(self, asm):
        n = self.n
        # prev row = [0, BIG, BIG, ...]; rows swap via pointer registers.
        asm.movi("r1", self.prev.addr)
        asm.movi("r2", self.prev.end)
        asm.movi("r3", _BIG)
        init = asm.label("dtw_init")
        asm.sw("r3", 0, "r1")
        asm.addi("r1", "r1", 4)
        asm.bne("r1", "r2", init)
        asm.movi("r1", self.prev.addr)
        asm.sw("r0", 0, "r1")
        # r1 = prev row base, r2 = curr row base, r3 = a pointer.
        asm.movi("r2", self.curr.addr)
        asm.movi("r3", self.a.addr)
        row = asm.label("dtw_row")
        asm.movi("r4", _BIG)
        asm.sw("r4", 0, "r2")          # curr[0] = BIG
        asm.lw("r4", 0, "r3")          # a_i
        asm.movi("r5", self.b.addr)    # b pointer
        asm.movi("r6", 0)              # j (word offset within the row)
        col = asm.label("dtw_col")
        asm.lw("r7", 0, "r5")          # b_j
        asm.sub("r7", "r4", "r7")
        asm.srai("r8", "r7", 31)
        asm.xor("r7", "r7", "r8")
        asm.sub("r7", "r7", "r8")      # cost = |a_i - b_j|
        # min(prev[j], prev[j+1], curr[j]) with j indexing word offsets.
        asm.add("r8", "r1", "r6")
        asm.lw("r9", 0, "r8")          # diag = prev[j]
        asm.lw("r8", 4, "r8")          # up = prev[j+1]
        take_up = asm.forward_label("dtw_take")
        asm.bge("r8", "r9", take_up)
        asm.mov("r9", "r8")
        asm.place(take_up)
        asm.add("r8", "r2", "r6")
        asm.lw("r8", 0, "r8")          # left = curr[j]
        take_left = asm.forward_label("dtw_left")
        asm.bge("r8", "r9", take_left)
        asm.mov("r9", "r8")
        asm.place(take_left)
        asm.add("r7", "r7", "r9")      # cell = cost + min
        asm.add("r8", "r2", "r6")
        asm.sw("r7", 4, "r8")          # curr[j+1] = cell
        asm.addi("r5", "r5", 4)
        asm.addi("r6", "r6", 4)
        asm.movi("r8", 4 * n)
        asm.bne("r6", "r8", col)
        # Swap rows, advance a.
        asm.mov("r7", "r1")
        asm.mov("r1", "r2")
        asm.mov("r2", "r7")
        asm.addi("r3", "r3", 4)
        asm.movi("r8", self.a.end)
        asm.bne("r3", "r8", row)
        # Result = prev[n] (prev holds the last written row after swap).
        asm.movi("r8", 4 * n)
        asm.add("r8", "r1", "r8")
        asm.lw("r7", 0, "r8")
        asm.movi("r8", self.out.addr)
        asm.sw("r7", 0, "r8")

    def reference(self):
        n = self.n
        prev = [0] + [_BIG] * n
        for i in range(n):
            curr = [_BIG] * (n + 1)
            for j in range(n):
                cost = abs(self.a_data[i] - self.b_data[j])
                curr[j + 1] = cost + min(prev[j], prev[j + 1], curr[j])
            prev = curr
        return [prev[n]]
