"""Spectral filter (the gesture pipeline's Filter stage).

Element-wise Q14 gain applied to a complex spectrum:
``out[i] = (x[i] * g[i]) >> 14`` over the interleaved re/im words.
"""

from repro.isa.instructions import wrap32
from repro.workloads.base import Kernel
from repro.workloads.generators import sensor_signal


class SpecFilterKernel(Kernel):
    name = "specfilter"

    def __init__(self, n=128, seed=1):
        self.n = n
        super().__init__(seed=seed)

    def configure(self):
        self.x = self.region("spectrum", self.n)
        self.g = self.region("gains", self.n)
        self.y = self.region("filtered", self.n)
        self.x_data = sensor_signal(self.n, seed=self.seed)
        # Band-pass-ish gain profile in Q14.
        self.g_data = [
            (1 << 14) if self.n // 8 <= i < self.n // 2 else (1 << 12)
            for i in range(self.n)
        ]
        self.inputs = [(self.x, self.x_data)]
        self.consts = [(self.g, self.g_data)]
        self.outputs = [self.y]

    def build(self, asm):
        asm.movi("r1", self.x.addr)
        asm.movi("r2", self.g.addr)
        asm.movi("r3", self.y.addr)
        asm.movi("r8", self.x.end)
        loop = asm.label("filter_loop")
        asm.lw("r4", 0, "r1")
        asm.lw("r5", 0, "r2")
        asm.mul("r4", "r4", "r5")
        asm.srai("r4", "r4", 14)
        asm.sw("r4", 0, "r3")
        asm.addi("r1", "r1", 4)
        asm.addi("r2", "r2", 4)
        asm.addi("r3", "r3", 4)
        asm.bne("r1", "r8", loop)

    def reference(self):
        return [
            wrap32(x * g) >> 14 for x, g in zip(self.x_data, self.g_data)
        ]
