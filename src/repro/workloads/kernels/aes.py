"""AES-128 block encryption/decryption (APP3 encrypts, APP4 decrypts).

State bytes are stored one-per-word (column-major, FIPS-197 order) so
the assembly works in whole words; the S-boxes and the expanded key
schedule live in the scratchpad (the paper cites AES as the smallest
SPM user at 256 B — the S-box).  MixColumns runs on inline ``xtime``
chains (shift/and/xor), InvMixColumns stages its GF(2^8) multiples
through a 16-word scratch area.

The pure-Python reference below follows FIPS-197 directly and is
checked against the specification's Appendix B vector in the tests.
"""

from repro.workloads.base import Kernel
from repro.workloads.generators import byte_block

# -- FIPS-197 reference ------------------------------------------------------

SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B,
    0xFE, 0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
    0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7, 0xFD, 0x93, 0x26,
    0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2,
    0xEB, 0x27, 0xB2, 0x75, 0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
    0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED,
    0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F,
    0x50, 0x3C, 0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
    0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C, 0x13, 0xEC,
    0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14,
    0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
    0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79, 0xE7, 0xC8, 0x37, 0x6D,
    0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F,
    0x4B, 0xBD, 0x8B, 0x8A, 0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
    0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11,
    0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F,
    0xB0, 0x54, 0xBB, 0x16,
]

INV_SBOX = [0] * 256
for _i, _v in enumerate(SBOX):
    INV_SBOX[_v] = _i

# new[i] = old[SHIFT_PERM[i]] (column-major flat state, s[r][c] = st[r+4c])
SHIFT_PERM = [(i + 4 * (i % 4)) % 16 for i in range(16)]
INV_SHIFT_PERM = [0] * 16
for _i, _p in enumerate(SHIFT_PERM):
    INV_SHIFT_PERM[_p] = _i

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def xtime(value):
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def gmul(a, b):
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = xtime(a)
        b >>= 1
    return result


def expand_key(key_bytes):
    """176-byte AES-128 key schedule (flat list)."""
    if len(key_bytes) != 16:
        raise ValueError("AES-128 key must be 16 bytes")
    words = [list(key_bytes[4 * i:4 * i + 4]) for i in range(4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [SBOX[b] for b in temp]
            temp[0] ^= _RCON[i // 4 - 1]
        words.append([t ^ p for t, p in zip(temp, words[i - 4])])
    return [b for word in words for b in word]


def _add_round_key(state, schedule, rnd):
    return [s ^ k for s, k in zip(state, schedule[16 * rnd:16 * rnd + 16])]


def _mix_single_column(col):
    t = col[0] ^ col[1] ^ col[2] ^ col[3]
    return [
        col[i] ^ t ^ xtime(col[i] ^ col[(i + 1) % 4]) for i in range(4)
    ]


def _inv_mix_single_column(col):
    return [
        gmul(col[i], 14) ^ gmul(col[(i + 1) % 4], 11)
        ^ gmul(col[(i + 2) % 4], 13) ^ gmul(col[(i + 3) % 4], 9)
        for i in range(4)
    ]


def aes_encrypt_block(block, schedule):
    state = _add_round_key(list(block), schedule, 0)
    for rnd in range(1, 10):
        state = [SBOX[b] for b in state]
        state = [state[SHIFT_PERM[i]] for i in range(16)]
        cols = [state[4 * c:4 * c + 4] for c in range(4)]
        state = [b for col in cols for b in _mix_single_column(col)]
        state = _add_round_key(state, schedule, rnd)
    state = [SBOX[b] for b in state]
    state = [state[SHIFT_PERM[i]] for i in range(16)]
    return _add_round_key(state, schedule, 10)


def aes_decrypt_block(block, schedule):
    state = _add_round_key(list(block), schedule, 10)
    for rnd in range(9, 0, -1):
        state = [state[INV_SHIFT_PERM[i]] for i in range(16)]
        state = [INV_SBOX[b] for b in state]
        state = _add_round_key(state, schedule, rnd)
        cols = [state[4 * c:4 * c + 4] for c in range(4)]
        state = [b for col in cols for b in _inv_mix_single_column(col)]
    state = [state[INV_SHIFT_PERM[i]] for i in range(16)]
    state = [INV_SBOX[b] for b in state]
    return _add_round_key(state, schedule, 0)


# -- assembly emission ---------------------------------------------------------

def _emit_xtime(asm, x, t):
    """x = xtime(x) using temp register t (x holds a byte)."""
    asm.srli(t, x, 7)
    asm.sub(t, "r0", t)        # 0 or -1
    asm.andi(t, t, 0x1B)
    asm.slli(x, x, 1)
    asm.xor(x, x, t)
    asm.andi(x, x, 0xFF)


class _AesBase(Kernel):
    """Shared layout: state, S-box, permutation, key schedule, scratch."""

    decrypt = False

    def __init__(self, seed=1, key=None):
        self.key = key if key is not None else byte_block(16, seed=seed + 40)
        super().__init__(seed=seed)

    def configure(self):
        self.state = self.region("state", 16)
        self.tmp = self.region("tmp", 16)
        self.sbox_region = self.region("sbox", 256)
        self.perm_region = self.region("perm", 16)
        self.rk_region = self.region("roundkeys", 176)
        self.scratch = self.region("scratch", 16)
        # Round-loop state (key pointer, round counter) lives in the
        # SPM rather than pinned registers, leaving r14/r15 free for
        # the ISE compiler's constant pool.
        self.spill = self.region("spill", 2)
        self.block = byte_block(16, seed=self.seed)
        schedule = expand_key(self.key)
        if self.decrypt:
            sbox = INV_SBOX
            perm = INV_SHIFT_PERM
            order = [10] + list(range(9, 0, -1)) + [0]
            # The input block is a real ciphertext so decryption is
            # meaningful end to end.
            self.block = aes_encrypt_block(self.block, schedule)
        else:
            sbox = SBOX
            perm = SHIFT_PERM
            order = list(range(11))
        rk_words = []
        for rnd in order:
            rk_words.extend(schedule[16 * rnd:16 * rnd + 16])
        self.schedule = schedule
        self.inputs = [(self.state, self.block)]
        self.consts = [
            (self.sbox_region, list(sbox)),
            (self.perm_region, [4 * p for p in perm]),
            (self.rk_region, rk_words),
        ]
        self.outputs = [self.state]

    # -- emission helpers (key pointer and round counter spill to SPM) --

    def _emit_key_init(self, asm):
        asm.movi("r1", self.spill.addr)
        asm.movi("r2", self.rk_region.addr)
        asm.sw("r2", 0, "r1")        # spill[0] = round-key pointer

    def _emit_round_init(self, asm, rounds=9):
        asm.movi("r1", self.spill.addr)
        asm.movi("r2", rounds)
        asm.sw("r2", 4, "r1")        # spill[1] = round counter

    def _emit_round_branch(self, asm, target):
        asm.movi("r1", self.spill.addr)
        asm.lw("r2", 4, "r1")
        asm.addi("r2", "r2", -1)
        asm.sw("r2", 4, "r1")
        asm.bne("r2", "r0", target)

    def _emit_ark(self, asm, tag):
        asm.movi("r5", self.spill.addr)
        asm.lw("r4", 0, "r5")        # running round-key pointer
        asm.movi("r1", self.state.addr)
        asm.movi("r2", self.state.end)
        loop = asm.label(f"ark_{tag}")
        asm.lw("r3", 0, "r1")
        asm.lw("r6", 0, "r4")
        asm.xor("r3", "r3", "r6")
        asm.sw("r3", 0, "r1")
        asm.addi("r1", "r1", 4)
        asm.addi("r4", "r4", 4)
        asm.bne("r1", "r2", loop)
        asm.movi("r5", self.spill.addr)
        asm.sw("r4", 0, "r5")

    def _emit_subbytes(self, asm, tag):
        asm.movi("r1", self.state.addr)
        asm.movi("r2", self.state.end)
        asm.movi("r3", self.sbox_region.addr)
        loop = asm.label(f"sub_{tag}")
        asm.lw("r4", 0, "r1")
        asm.slli("r4", "r4", 2)
        asm.add("r4", "r4", "r3")
        asm.lw("r4", 0, "r4")
        asm.sw("r4", 0, "r1")
        asm.addi("r1", "r1", 4)
        asm.bne("r1", "r2", loop)

    def _emit_shiftrows(self, asm, tag):
        asm.movi("r1", self.perm_region.addr)
        asm.movi("r2", self.perm_region.end)
        asm.movi("r3", self.state.addr)
        asm.movi("r4", self.tmp.addr)
        gather = asm.label(f"sr_gather_{tag}")
        asm.lw("r5", 0, "r1")
        asm.add("r5", "r5", "r3")
        asm.lw("r5", 0, "r5")
        asm.sw("r5", 0, "r4")
        asm.addi("r1", "r1", 4)
        asm.addi("r4", "r4", 4)
        asm.bne("r1", "r2", gather)
        asm.movi("r1", self.state.addr)
        asm.movi("r2", self.state.end)
        asm.movi("r4", self.tmp.addr)
        copy = asm.label(f"sr_copy_{tag}")
        asm.lw("r5", 0, "r4")
        asm.sw("r5", 0, "r1")
        asm.addi("r1", "r1", 4)
        asm.addi("r4", "r4", 4)
        asm.bne("r1", "r2", copy)


class AesEncryptKernel(_AesBase):
    name = "aes"
    decrypt = False

    def build(self, asm):
        self._emit_key_init(asm)
        self._emit_ark(asm, "init")
        self._emit_round_init(asm)
        round_top = asm.label("enc_round")
        self._emit_subbytes(asm, "enc")
        self._emit_shiftrows(asm, "enc")
        self._emit_mixcolumns(asm)
        self._emit_ark(asm, "enc")
        self._emit_round_branch(asm, round_top)
        self._emit_subbytes(asm, "fin")
        self._emit_shiftrows(asm, "fin")
        self._emit_ark(asm, "fin")

    def _emit_mixcolumns(self, asm):
        asm.movi("r1", self.state.addr)
        asm.movi("r2", self.state.end)
        col = asm.label("mix_col")
        asm.lw("r3", 0, "r1")
        asm.lw("r4", 4, "r1")
        asm.lw("r5", 8, "r1")
        asm.lw("r6", 12, "r1")
        asm.xor("r7", "r3", "r4")
        asm.xor("r8", "r5", "r6")
        asm.xor("r7", "r7", "r8")      # t = a0^a1^a2^a3
        for index, (a, b) in enumerate(
            (("r3", "r4"), ("r4", "r5"), ("r5", "r6"), ("r6", "r3"))
        ):
            asm.xor("r8", a, b)
            _emit_xtime(asm, "r8", "r9")
            asm.xor("r8", "r8", "r7")
            asm.xor("r8", "r8", a)
            asm.sw("r8", 4 * index, "r1")
        asm.addi("r1", "r1", 16)
        asm.bne("r1", "r2", col)

    def reference(self):
        return aes_encrypt_block(self.block, self.schedule)


class AesDecryptKernel(_AesBase):
    name = "aesdec"
    decrypt = True

    def build(self, asm):
        self._emit_key_init(asm)
        self._emit_ark(asm, "init")
        self._emit_round_init(asm)
        round_top = asm.label("dec_round")
        self._emit_shiftrows(asm, "dec")
        self._emit_subbytes(asm, "dec")
        self._emit_ark(asm, "dec")
        self._emit_inv_mixcolumns(asm)
        self._emit_round_branch(asm, round_top)
        self._emit_shiftrows(asm, "fin")
        self._emit_subbytes(asm, "fin")
        self._emit_ark(asm, "fin")

    def _emit_inv_mixcolumns(self, asm):
        asm.movi("r1", self.state.addr)
        col = asm.label("imix_col")
        # Phase A: per byte, stage m9/m11/m13/m14 into the scratch area.
        asm.movi("r5", 0)               # byte index within the column
        asm.movi("r6", self.scratch.addr)
        byte_loop = asm.label("imix_byte")
        asm.add("r2", "r1", "r5")
        asm.lw("r3", 0, "r2")           # a
        asm.mov("r4", "r3")
        _emit_xtime(asm, "r4", "r7")    # x1 = 2a
        asm.mov("r8", "r4")
        _emit_xtime(asm, "r8", "r7")    # x2 = 4a
        asm.mov("r9", "r8")
        _emit_xtime(asm, "r9", "r7")    # x3 = 8a
        asm.xor("r7", "r9", "r3")
        asm.sw("r7", 0, "r6")           # m9 = x3 ^ a
        asm.xor("r7", "r9", "r4")
        asm.xor("r7", "r7", "r3")
        asm.sw("r7", 4, "r6")           # m11 = x3 ^ x1 ^ a
        asm.xor("r7", "r9", "r8")
        asm.xor("r7", "r7", "r3")
        asm.sw("r7", 8, "r6")           # m13 = x3 ^ x2 ^ a
        asm.xor("r7", "r9", "r8")
        asm.xor("r7", "r7", "r4")
        asm.sw("r7", 12, "r6")          # m14 = x3 ^ x2 ^ x1
        asm.addi("r5", "r5", 4)
        asm.addi("r6", "r6", 16)
        asm.movi("r7", 16)
        asm.bne("r5", "r7", byte_loop)
        # Phase B: combine (b_i = m14[i] ^ m11[i+1] ^ m13[i+2] ^ m9[i+3]).
        asm.movi("r6", self.scratch.addr)
        for i in range(4):
            offsets = (
                16 * i + 12,
                16 * ((i + 1) % 4) + 4,
                16 * ((i + 2) % 4) + 8,
                16 * ((i + 3) % 4) + 0,
            )
            asm.lw("r3", offsets[0], "r6")
            asm.lw("r4", offsets[1], "r6")
            asm.xor("r3", "r3", "r4")
            asm.lw("r4", offsets[2], "r6")
            asm.xor("r3", "r3", "r4")
            asm.lw("r4", offsets[3], "r6")
            asm.xor("r3", "r3", "r4")
            asm.sw("r3", 4 * i, "r1")
        asm.addi("r1", "r1", 16)
        asm.movi("r2", self.state.end)
        asm.bne("r1", "r2", col)

    def reference(self):
        return aes_decrypt_block(self.block, self.schedule)
