"""3x3 convolution over a square image (CNN feature extractor).

The inner loop walks a 9-entry (pixel byte-offset, weight) schedule:
address add -> load -> multiply -> accumulate, the full {AT-MA} chain
— the paper singles out 2dconv as the kernel that gains most from
{AT-MA} (Section VI-C).
"""

from repro.isa.instructions import wrap32
from repro.workloads.base import Kernel
from repro.workloads.generators import image, weights


class Conv2dKernel(Kernel):
    name = "2dconv"

    def __init__(self, width=16, seed=1):
        self.width = width
        super().__init__(seed=seed)

    def configure(self):
        w = self.width
        out_w = w - 2
        self.src = self.region("image", w * w)
        self.coef = self.region("coef", 9 * 2)   # (offset, weight) pairs
        self.dst = self.region("out", out_w * out_w)
        self.src_data = image(w, w, seed=self.seed)
        self.k_data = weights(9, seed=self.seed + 3, lo=-16, hi=16)
        coef_words = []
        for dy in range(3):
            for dx in range(3):
                coef_words.append(4 * (dy * w + dx))
                coef_words.append(self.k_data[dy * 3 + dx])
        self.inputs = [(self.src, self.src_data)]
        self.consts = [(self.coef, coef_words)]
        self.outputs = [self.dst]

    def build(self, asm):
        w = self.width
        out_w = w - 2
        asm.movi("r1", self.src.addr)   # window origin
        asm.movi("r2", self.dst.addr)
        asm.movi("r8", self.dst.end)
        asm.movi("r6", 0)               # column counter
        outer = asm.label("conv_outer")
        asm.movi("r4", 0)               # accumulator
        asm.movi("r5", self.coef.addr)
        asm.movi("r9", self.coef.end)
        inner = asm.label("conv_inner")
        asm.lw("r3", 0, "r5")           # pixel offset
        asm.add("r3", "r3", "r1")       # pixel address
        asm.lw("r3", 0, "r3")           # pixel
        asm.lw("r7", 4, "r5")           # weight
        asm.mul("r3", "r3", "r7")
        asm.add("r4", "r4", "r3")
        asm.addi("r5", "r5", 8)
        asm.bne("r5", "r9", inner)
        asm.srai("r4", "r4", 4)
        asm.sw("r4", 0, "r2")
        asm.addi("r2", "r2", 4)
        asm.addi("r1", "r1", 4)
        asm.addi("r6", "r6", 1)
        asm.movi("r7", out_w)
        asm.bne("r6", "r7", outer)
        asm.movi("r6", 0)
        asm.addi("r1", "r1", 8)         # skip the two edge columns
        asm.bne("r2", "r8", outer)

    def reference(self):
        w = self.width
        out = []
        for y in range(w - 2):
            for x in range(w - 2):
                acc = 0
                for dy in range(3):
                    for dx in range(3):
                        acc = wrap32(acc + wrap32(
                            self.src_data[(y + dy) * w + (x + dx)]
                            * self.k_data[dy * 3 + dx]
                        ))
                out.append(acc >> 4)
        return out
