"""A* grid search (navigation).

Open-set scan + relaxation over a 10x10 obstacle grid with a
precomputed Manhattan-heuristic table and per-cell neighbor lists
(walls and out-of-bounds excluded at build time).  Control-heavy with
tiny arithmetic patterns — the paper observes astar gains almost
nothing from stitching (Section VI-C), and this kernel reproduces that.
"""

from repro.workloads.base import Kernel
from repro.workloads.generators import obstacle_grid

_BIG = 1 << 20


class AstarKernel(Kernel):
    name = "astar"

    def __init__(self, width=10, seed=1):
        self.width = width
        super().__init__(seed=seed)

    def configure(self):
        w = self.width
        cells = w * w
        self.cells = cells
        self.goal = cells - 1
        self.grid = obstacle_grid(w, w, seed=self.seed)
        self.h_table = self.region("heur", cells)
        self.nbrs = self.region("nbrs", cells * 4)
        self.g = self.region("g", cells)
        self.status = self.region("status", cells)
        self.out = self.region("pathcost", 1)

        gx, gy = self.goal % w, self.goal // w
        h_words = [abs(i % w - gx) + abs(i // w - gy) for i in range(cells)]
        nbr_words = []
        for i in range(cells):
            x, y = i % w, i // w
            entries = []
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                nx, ny = x + dx, y + dy
                j = ny * w + nx
                if 0 <= nx < w and 0 <= ny < w and not self.grid[j]:
                    entries.append(4 * j)       # neighbor byte offset
            entries += [-1] * (4 - len(entries))
            nbr_words.extend(entries)
        self.consts = [(self.h_table, h_words), (self.nbrs, nbr_words)]
        # The obstacle grid itself is the per-item input (a new map per
        # navigation request); neighbor lists derive from it.
        self.inputs = []
        self.outputs = [self.out]

    def build(self, asm):
        cells = self.cells
        end_off = 4 * cells
        # init g = BIG, status = 0; start cell opened with g = 0.
        asm.movi("r1", self.g.addr)
        asm.movi("r2", self.g.end)
        asm.movi("r3", _BIG)
        ginit = asm.label("as_ginit")
        asm.sw("r3", 0, "r1")
        asm.addi("r1", "r1", 4)
        asm.bne("r1", "r2", ginit)
        asm.movi("r1", self.status.addr)
        asm.movi("r2", self.status.end)
        sinit = asm.label("as_sinit")
        asm.sw("r0", 0, "r1")
        asm.addi("r1", "r1", 4)
        asm.bne("r1", "r2", sinit)
        asm.movi("r1", self.g.addr)
        asm.sw("r0", 0, "r1")
        asm.movi("r1", self.status.addr)
        asm.movi("r3", 1)
        asm.sw("r3", 0, "r1")

        asm.movi("r5", self.status.addr)
        asm.movi("r6", self.g.addr)
        asm.movi("r7", self.h_table.addr)
        main = asm.label("as_main")
        # scan for the open cell with minimal f = g + h
        asm.movi("r1", -1)             # best offset (none)
        asm.movi("r2", 2 * _BIG)       # best f
        asm.movi("r3", 0)              # scan offset
        scan = asm.label("as_scan")
        skip = asm.forward_label("as_skip")
        asm.add("r4", "r5", "r3")
        asm.lw("r4", 0, "r4")
        asm.movi("r8", 1)
        asm.bne("r4", "r8", skip)      # not open
        asm.add("r4", "r6", "r3")
        asm.lw("r4", 0, "r4")          # g
        asm.add("r8", "r7", "r3")
        asm.lw("r8", 0, "r8")          # h
        asm.add("r4", "r4", "r8")      # f
        asm.bge("r4", "r2", skip)
        asm.mov("r2", "r4")
        asm.mov("r1", "r3")
        asm.place(skip)
        asm.addi("r3", "r3", 4)
        asm.movi("r8", end_off)
        asm.bne("r3", "r8", scan)
        finish = asm.forward_label("as_done")
        asm.blt("r1", "r0", finish)    # open set empty: unreachable
        asm.movi("r8", 4 * self.goal)
        asm.beq("r1", "r8", finish)    # goal expanded
        # close the best cell
        asm.add("r4", "r5", "r1")
        asm.movi("r8", 2)
        asm.sw("r8", 0, "r4")
        asm.add("r4", "r6", "r1")
        asm.lw("r14", 0, "r4")
        asm.addi("r14", "r14", 1)      # candidate g via this cell
        # neighbor table entry: nbrs.addr + best*4 (4 words per cell)
        asm.slli("r4", "r1", 2)
        asm.movi("r8", self.nbrs.addr)
        asm.add("r4", "r4", "r8")
        for k in range(4):
            skip_k = asm.forward_label(f"as_nb{k}")
            asm.lw("r8", 4 * k, "r4")
            asm.blt("r8", "r0", skip_k)
            asm.add("r9", "r6", "r8")
            asm.lw("r3", 0, "r9")      # g[nbr]
            asm.bge("r14", "r3", skip_k)
            asm.sw("r14", 0, "r9")     # improve
            asm.add("r9", "r5", "r8")
            asm.movi("r3", 1)
            asm.sw("r3", 0, "r9")      # (re)open
            asm.place(skip_k)
        asm.jmp(main)
        asm.place(finish)
        asm.movi("r1", 4 * self.goal)
        asm.add("r1", "r6", "r1")
        asm.lw("r2", 0, "r1")
        asm.movi("r1", self.out.addr)
        asm.sw("r2", 0, "r1")

    def reference(self):
        cells = self.cells
        h = self.consts[0][1]
        nbrs = self.consts[1][1]
        g = [_BIG] * cells
        status = [0] * cells
        g[0] = 0
        status[0] = 1
        while True:
            best, best_f = -1, 2 * _BIG
            for i in range(cells):
                if status[i] == 1:
                    f = g[i] + h[i]
                    if f < best_f:
                        best_f, best = f, i
            if best < 0 or best == self.goal:
                break
            status[best] = 2
            ng = g[best] + 1
            for k in range(4):
                off = nbrs[4 * best + k]
                if off < 0:
                    continue
                j = off // 4
                if ng < g[j]:
                    g[j] = ng
                    status[j] = 1
        return [g[self.goal]]
