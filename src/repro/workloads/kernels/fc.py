"""Fully connected layer with ReLU (CNN classifier head).

``y[o] = relu(((sum_i W[o][i] * x[i]) >> 8) + b[o])`` with branchless
ReLU: ``m = y >> 31; y = y & ~m``.
"""

from repro.isa.instructions import wrap32
from repro.workloads.base import Kernel
from repro.workloads.generators import sensor_signal, weights


class FcKernel(Kernel):
    name = "fc"

    def __init__(self, in_dim=32, out_dim=16, seed=1):
        self.in_dim = in_dim
        self.out_dim = out_dim
        super().__init__(seed=seed)

    def configure(self):
        self.x = self.region("x", self.in_dim)
        self.w = self.region("w", self.in_dim * self.out_dim)
        self.b = self.region("b", self.out_dim)
        self.y = self.region("y", self.out_dim)
        self.x_data = [v >> 4 for v in sensor_signal(self.in_dim, seed=self.seed)]
        self.w_data = weights(self.in_dim * self.out_dim, seed=self.seed + 7)
        self.b_data = weights(self.out_dim, seed=self.seed + 13, lo=-512, hi=512)
        self.inputs = [(self.x, self.x_data)]
        self.consts = [(self.w, self.w_data), (self.b, self.b_data)]
        self.outputs = [self.y]

    def build(self, asm):
        asm.movi("r1", self.w.addr)     # weight pointer (row major)
        asm.movi("r2", self.y.addr)     # output pointer
        asm.movi("r3", self.b.addr)     # bias pointer
        asm.movi("r8", self.y.end)
        outer = asm.label("fc_outer")
        asm.movi("r4", 0)               # accumulator
        asm.movi("r5", self.x.addr)
        asm.movi("r9", self.x.end)
        inner = asm.label("fc_inner")
        asm.lw("r6", 0, "r1")
        asm.lw("r7", 0, "r5")
        asm.mul("r6", "r6", "r7")
        asm.add("r4", "r4", "r6")
        asm.addi("r1", "r1", 4)
        asm.addi("r5", "r5", 4)
        asm.bne("r5", "r9", inner)
        asm.srai("r4", "r4", 8)
        asm.lw("r6", 0, "r3")
        asm.add("r4", "r4", "r6")
        # ReLU.
        asm.srai("r6", "r4", 31)
        asm.xori("r6", "r6", -1)
        asm.and_("r4", "r4", "r6")
        asm.sw("r4", 0, "r2")
        asm.addi("r2", "r2", 4)
        asm.addi("r3", "r3", 4)
        asm.bne("r2", "r8", outer)

    def reference(self):
        out = []
        for o in range(self.out_dim):
            acc = 0
            for i in range(self.in_dim):
                acc = wrap32(acc + wrap32(
                    self.w_data[o * self.in_dim + i] * self.x_data[i]
                ))
            value = (acc >> 8) + self.b_data[o]
            out.append(max(0, value))
        return out
