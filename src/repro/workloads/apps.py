"""The four 16-kernel wearable applications of Section VI-A (Figure 9).

Every application is a dataflow pipeline of 16 kernels (one per tile)
connected by typed channels; sizes are checked at construction.  Source
stages read their preloaded sensor/frame data each item (standing in
for sensor DMA); sink stages' outputs are the application results.

* **APP1** — finger gesture recognition: sense -> 6x FFT -> update /
  filter -> 6x IFFT -> classify (Figure 7).
* **APP2** — CNN image recognition: 13 convolution kernels, 2 pooling,
  1 fully connected.
* **APP3** — SVM anomaly recognition + AES encryption.
* **APP4** — transportation context detection: AES decrypt -> 8x DTW
  -> AES re-encrypt.
"""

from repro.workloads.kernels import (
    AesDecryptKernel,
    AesEncryptKernel,
    ClassifyKernel,
    Conv2dKernel,
    DtwKernel,
    FcKernel,
    FftKernel,
    HistogramKernel,
    IfftKernel,
    PoolKernel,
    SpecFilterKernel,
    SvmKernel,
    UpdateFeatureKernel,
)

NUM_STAGES = 16


class Stage:
    """One pipeline stage: a kernel instance with an id."""

    __slots__ = ("id", "kernel")

    def __init__(self, stage_id, kernel):
        self.id = stage_id
        self.kernel = kernel

    def __repr__(self):
        return f"Stage({self.id}: {self.kernel.name})"


class Channel:
    """A region-to-region link between two stages."""

    __slots__ = ("src", "src_region", "dst", "dst_region")

    def __init__(self, src, src_region, dst, dst_region):
        self.src = src
        self.src_region = src_region
        self.dst = dst
        self.dst_region = dst_region

    def __repr__(self):
        return (
            f"Channel({self.src}.{self.src_region} -> "
            f"{self.dst}.{self.dst_region})"
        )


class App:
    """A validated 16-stage pipeline application."""

    def __init__(self, name, stages, channels):
        if len(stages) != NUM_STAGES:
            raise ValueError(f"{name}: expected {NUM_STAGES} stages, got {len(stages)}")
        self.name = name
        self.stages = list(stages)
        self.channels = list(channels)
        self._validate()

    def _validate(self):
        by_id = {stage.id: stage for stage in self.stages}
        if sorted(by_id) != list(range(NUM_STAGES)):
            raise ValueError(f"{self.name}: stage ids must be 0..15")
        for channel in self.channels:
            src = by_id[channel.src].kernel.get_region(channel.src_region)
            dst = by_id[channel.dst].kernel.get_region(channel.dst_region)
            if src.nwords != dst.nwords:
                raise ValueError(
                    f"{self.name}: channel {channel!r} size mismatch "
                    f"({src.nwords} vs {dst.nwords} words)"
                )
            if channel.src == channel.dst:
                raise ValueError(f"{self.name}: self channel {channel!r}")

    def stage(self, stage_id):
        return self.stages[stage_id]

    def producers_of(self, stage_id):
        return [c for c in self.channels if c.dst == stage_id]

    def consumers_of(self, stage_id):
        return [c for c in self.channels if c.src == stage_id]

    def source_stages(self):
        fed = {c.dst for c in self.channels}
        return [s for s in self.stages if s.id not in fed]

    def kernel_names(self):
        return [stage.kernel.name for stage in self.stages]

    def comm_words(self, stage_id, placement=None):
        """(recv word counts, send word counts) per item for a stage."""
        recv = [
            self.stage(c.dst).kernel.get_region(c.dst_region).nwords
            for c in self.producers_of(stage_id)
        ]
        send = [
            self.stage(c.src).kernel.get_region(c.src_region).nwords
            for c in self.consumers_of(stage_id)
        ]
        return recv, send

    def __repr__(self):
        return f"App({self.name}, 16 stages, {len(self.channels)} channels)"


def app1_gesture(seed=1):
    """Finger gesture recognition (Section V / Figure 7)."""
    stages = [
        Stage(0, SpecFilterKernel(n=128, seed=seed)),          # sense
        Stage(1, FftKernel(seed=seed + 1)),
        Stage(2, FftKernel(seed=seed + 2)),
        Stage(3, FftKernel(seed=seed + 3)),
        Stage(4, FftKernel(seed=seed + 4)),
        Stage(5, FftKernel(seed=seed + 5)),
        Stage(6, FftKernel(seed=seed + 6)),
        Stage(7, UpdateFeatureKernel(n=64, seed=seed + 7)),
        Stage(8, SpecFilterKernel(n=128, seed=seed + 8)),      # filter
        Stage(9, IfftKernel(seed=seed + 9)),
        Stage(10, IfftKernel(seed=seed + 10)),
        Stage(11, IfftKernel(seed=seed + 11)),
        Stage(12, IfftKernel(seed=seed + 12)),
        Stage(13, IfftKernel(seed=seed + 13)),
        Stage(14, IfftKernel(seed=seed + 14)),
        Stage(15, ClassifyKernel(dim=64, seed=seed + 15)),
    ]
    channels = [
        Channel(0, "filtered", f, "cplx") for f in range(1, 7)
    ] + [
        Channel(1, "cplx", 7, "cplx"),          # spectrum into update
        Channel(2, "cplx", 8, "spectrum"),      # spectrum into filter
        Channel(7, "cplx", 9, "cplx"),          # update forwards spectrum
        Channel(8, "filtered", 10, "cplx"),
        Channel(3, "cplx", 11, "cplx"),
        Channel(4, "cplx", 12, "cplx"),
        Channel(5, "cplx", 13, "cplx"),
        Channel(6, "cplx", 14, "cplx"),
        Channel(9, "feature", 15, "feature"),   # IFFT feature to classify
    ]
    return App("APP1-gesture", stages, channels)


def app2_cnn(seed=1):
    """CNN image recognition: 13 conv + 2 pool + 1 fc (Figure 9)."""
    stages = []
    for i in range(9):                          # layer-1 convolutions
        stages.append(Stage(i, Conv2dKernel(width=18, seed=seed + i)))
    stages.append(Stage(9, PoolKernel(width=16, seed=seed + 9)))
    stages.append(Stage(10, PoolKernel(width=16, seed=seed + 10)))
    for i in range(4):                          # layer-2 convolutions
        stages.append(Stage(11 + i, Conv2dKernel(width=8, seed=seed + 11 + i)))
    stages.append(Stage(15, FcKernel(in_dim=36, out_dim=16, seed=seed + 15)))
    channels = [
        Channel(0, "out", 9, "fmap"),
        Channel(1, "out", 10, "fmap"),
        Channel(9, "pooled", 11, "image"),
        Channel(9, "pooled", 12, "image"),
        Channel(10, "pooled", 13, "image"),
        Channel(10, "pooled", 14, "image"),
        Channel(11, "out", 15, "x"),
    ]
    return App("APP2-cnn", stages, channels)


def app3_svm(seed=1):
    """SVM anomaly recognition + AES encryption of results."""
    stages = [
        Stage(i, HistogramKernel(seed=seed + i)) for i in range(6)
    ] + [
        Stage(6, SvmKernel(dim=256, classes=2, seed=seed + 6)),
        Stage(7, SvmKernel(dim=256, classes=2, seed=seed + 7)),
        Stage(8, ClassifyKernel(dim=256, classes=2, seed=seed + 8)),
        Stage(9, UpdateFeatureKernel(n=128, seed=seed + 9)),
        Stage(10, ClassifyKernel(dim=128, classes=4, seed=seed + 10)),
        Stage(11, AesEncryptKernel(seed=seed + 11)),
        Stage(12, AesEncryptKernel(seed=seed + 12)),
        Stage(13, AesEncryptKernel(seed=seed + 13)),
        Stage(14, AesEncryptKernel(seed=seed + 14)),
        Stage(15, AesEncryptKernel(seed=seed + 15)),
    ]
    channels = [
        Channel(0, "hist", 6, "features"),
        Channel(1, "hist", 7, "features"),
        Channel(2, "hist", 8, "feature"),
        Channel(3, "hist", 9, "cplx"),
        Channel(9, "feature", 10, "feature"),
        Channel(11, "state", 12, "state"),     # encryption cascade
        Channel(12, "state", 13, "state"),
        Channel(13, "state", 14, "state"),
        Channel(14, "state", 15, "state"),
    ]
    return App("APP3-svm", stages, channels)


def app4_transport(seed=1):
    """Transport context detection: decrypt -> DTW -> re-encrypt."""
    stages = [
        Stage(i, AesDecryptKernel(seed=seed + i)) for i in range(4)
    ]
    for i in range(8):
        stages.append(Stage(4 + i, DtwKernel(n=16, seed=seed + 4 + i)))
    for i in range(4):
        stages.append(Stage(12 + i, AesEncryptKernel(seed=seed + 12 + i)))
    channels = []
    for d in range(4):
        channels.append(Channel(d, "state", 4 + 2 * d, "a"))
        channels.append(Channel(d, "state", 5 + 2 * d, "a"))
        channels.append(Channel(d, "state", 12 + d, "state"))
    return App("APP4-transport", stages, channels)


APP_FACTORIES = {
    "APP1": app1_gesture,
    "APP2": app2_cnn,
    "APP3": app3_svm,
    "APP4": app4_transport,
}


def all_apps(seed=1):
    return [factory(seed=seed) for factory in APP_FACTORIES.values()]
