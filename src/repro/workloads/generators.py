"""Deterministic synthetic input generators.

The paper evaluates on live sensor traces (accelerometer/gyroscope at
128 Hz, camera frames); those are substituted with seeded fixed-point
synthetic equivalents — the kernels are control-flow data-independent
(FFT, conv, AES, ...) or exercised across representative inputs (DTW,
A*), so cycle counts keep the paper's shape (see DESIGN.md §1).
"""

import math
import random


def sensor_signal(n, seed=1, amplitude=1 << 12):
    """Fixed-point multi-tone sensor trace (Q15-bounded)."""
    rng = random.Random(seed)
    phase = rng.random() * 2 * math.pi
    f1 = rng.uniform(0.02, 0.08)
    f2 = rng.uniform(0.1, 0.25)
    samples = []
    for i in range(n):
        value = (
            0.6 * math.sin(2 * math.pi * f1 * i + phase)
            + 0.3 * math.sin(2 * math.pi * f2 * i)
            + 0.1 * (rng.random() * 2 - 1)
        )
        samples.append(int(value * amplitude))
    return samples


def image(width, height, seed=1, depth=256):
    """Pseudo-natural image: smooth gradient plus speckle, 0..depth-1."""
    rng = random.Random(seed)
    cx, cy = rng.uniform(0, width), rng.uniform(0, height)
    pixels = []
    for y in range(height):
        for x in range(width):
            base = 128 + 100 * math.sin((x - cx) / 5.0) * math.cos((y - cy) / 7.0)
            value = int(base + rng.gauss(0, 12))
            pixels.append(max(0, min(depth - 1, value)))
    return pixels


def weights(n, seed=1, lo=-128, hi=127):
    """Small signed fixed-point weights."""
    rng = random.Random(seed)
    return [rng.randint(lo, hi) for _ in range(n)]


def byte_block(n, seed=1):
    """Random bytes (one per word)."""
    rng = random.Random(seed)
    return [rng.randint(0, 255) for _ in range(n)]


def walk_sequence(n, seed=1, start=0, step=64):
    """Random-walk sequence (DTW inputs)."""
    rng = random.Random(seed)
    value = start
    out = []
    for _ in range(n):
        value += rng.randint(-step, step)
        out.append(value)
    return out


def obstacle_grid(width, height, seed=1, density=0.25):
    """0/1 grid with a guaranteed clear snake path border-to-border."""
    rng = random.Random(seed)
    grid = [
        1 if rng.random() < density else 0
        for _ in range(width * height)
    ]
    # Clear the top row, right column and a diagonal-ish channel so a
    # path from (0,0) to (width-1, height-1) always exists.
    for x in range(width):
        grid[x] = 0
    for y in range(height):
        grid[y * width + (width - 1)] = 0
    grid[0] = 0
    grid[width * height - 1] = 0
    return grid
