"""Wearable workloads: kernels and multi-kernel applications.

Every kernel is written in the reproduction ISA (generated through
:class:`repro.isa.Asm`), carries a pure-Python reference implementation,
and fits its hot data in the 4 KB scratchpad (Section III-C reports
kernels needing 256 B — 4 KB).  Kernels exist in two forms:

* **standalone** — inputs preloaded, one item, ``halt`` at the end;
  used for profiling, ISE compilation and per-kernel speedups (Fig. 11),
* **streaming** — wrapped in a receive/compute/send loop over the
  message-passing fabric; used by the 16-core pipeline applications
  (Figs. 9, 10, 12).

The four applications of Section VI-A are built in
:mod:`repro.workloads.apps`.
"""

from repro.workloads.base import Kernel, Region, STREAM_COUNT_REG
from repro.workloads.suite import kernel_suite, make_kernel, KERNEL_FACTORIES

__all__ = [
    "Kernel",
    "Region",
    "STREAM_COUNT_REG",
    "kernel_suite",
    "make_kernel",
    "KERNEL_FACTORIES",
]
