"""Interpreter + cycle model for the in-order core.

Timing model (validated against the paper's counts in Figure 4):

* every instruction issues in 1 cycle, including the two-word ``movi``
  and ``cix`` encodings (the second word is fetched in parallel);
* loads/stores add the memory system's latency beyond the first cycle;
* taken branches pay a 1-cycle redirect bubble;
* instruction-cache misses stall the front end for the DRAM latency;
* ``cix`` executes the configured (possibly fused) patch in exactly one
  cycle — scratchpad accesses made by the LMAU inside the custom
  instruction are part of that cycle (Section III-C);
* ``send``/``recv`` timing is delegated to the attached comm port, and
  ``recv`` blocks (without retiring) until data is available.

Execution is pluggable (``engine=`` on :class:`Core`): ``auto`` selects
the pre-decoded fast loop of :mod:`repro.cpu.engine` when every
observability channel is disabled and the instrumented dispatch loop
otherwise; ``reference`` forces the retained original interpreter below
(:meth:`Core._run_reference`), the oracle the differential tests hold
both engines to.  All three produce identical architectural state,
cycles, stall attribution and cache/SPM counters.
"""

import math

from repro.isa.instructions import (
    Op,
    eval_alu,
    eval_mul,
    eval_shift,
    wrap32,
)
from repro.chaos.injector import NULL_INJECTOR
from repro.critpath.recorder import NULL_RECORDER
from repro.platform import DEFAULT_PLATFORM
from repro.telemetry.rollup import ATTRIBUTION_BUCKETS  # noqa: F401 (re-export)
from repro.telemetry.timeseries import NULL_TIMESERIES
from repro.telemetry.trace import NULL_TRACER

STOP_HALT = "halt"
STOP_LIMIT = "limit"
STOP_RECV = "recv"
STOP_FROZEN = "frozen"

#: Engine names accepted by :class:`Core`.  ``auto`` picks the fast
#: loop when every observability channel is off and the instrumented
#: loop otherwise; ``reference`` forces the retained original
#: interpreter (the differential-testing oracle).
ENGINES = ("auto", "fast", "instrumented", "reference")

# Immediate-form -> base-op folds, hoisted out of the hot loop (the
# interpreter used to allocate these dicts afresh per retired imm-ALU /
# imm-shift instruction).
_IMM_ALU_BASE = {
    Op.ANDI: Op.AND, Op.ORI: Op.OR, Op.XORI: Op.XOR, Op.SLTI: Op.SLT,
}
_IMM_SHIFT_BASE = {Op.SLLI: Op.SLL, Op.SRLI: Op.SRL, Op.SRAI: Op.SRA}


class BlockedError(RuntimeError):
    """Raised when a comm operation is attempted with no port attached."""


class ExecutionError(IndexError):
    """The pc left the program's instruction range (missing halt?).

    Subclasses :class:`IndexError` so existing callers that caught the
    interpreter's old bare ``IndexError`` keep working; carries the
    core id, program name and offending pc as attributes for
    diagnostics.
    """

    def __init__(self, core_id, program_name, pc):
        super().__init__(
            f"core {core_id}: pc {pc} ran off the end of "
            f"{program_name!r} (missing halt?)"
        )
        self.core_id = core_id
        self.program_name = program_name
        self.pc = pc


class RunResult:
    """Outcome of a :meth:`Core.run` call."""

    __slots__ = ("reason", "cycles", "instructions")

    def __init__(self, reason, cycles, instructions):
        self.reason = reason
        self.cycles = cycles
        self.instructions = instructions

    def __repr__(self):
        return (
            f"RunResult({self.reason}, cycles={self.cycles}, "
            f"instructions={self.instructions})"
        )


class PatchPort:
    """Interface of the tile's patch as seen by the core.

    ``execute(cfg_id, in_values)`` returns up to two output values; any
    SPM traffic happens through the LMAU inside the same cycle.
    """

    def execute(self, cfg_id, in_values):
        raise NotImplementedError


class CommPort:
    """Interface of the tile's NIC as seen by the core (blocking MPI).

    ``send`` always succeeds (the NIC injects at line rate) and returns
    the local finish time.  ``try_recv`` returns ``None`` when no
    matching message is ready, else ``(values, finish_time)``.
    """

    def send(self, peer, values, now):
        raise NotImplementedError

    def try_recv(self, peer, count, now):
        raise NotImplementedError


class NullComm(CommPort):
    """Comm port for single-core runs: any use is a programming error."""

    def send(self, peer, values, now):
        raise BlockedError("send executed but no network is attached")

    def try_recv(self, peer, count, now):
        raise BlockedError("recv executed but no network is attached")


class Core:
    """One in-order core executing an assembled :class:`Program`."""

    def __init__(
        self,
        program,
        memory,
        patch=None,
        comm=None,
        core_id=0,
        taken_branch_penalty=None,
        profile=False,
        profile_cycles=False,
        tracer=None,
        timeseries=None,
        recorder=None,
        params=None,
        engine="auto",
        injector=None,
    ):
        if params is None:
            params = DEFAULT_PLATFORM.core
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        self.engine = engine
        # Pre-decoded execution form + resident-line memo, built lazily
        # on first run (the reference engine never needs either).
        self._decoded = None
        self._resident = None
        self.program = program
        self.memory = memory
        self.patch = patch
        self.comm = comm if comm is not None else NullComm()
        self.core_id = core_id
        self.params = params
        self.taken_branch_penalty = (
            taken_branch_penalty
            if taken_branch_penalty is not None
            else params.taken_branch_penalty
        )
        self.profile = profile
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.timeseries = (
            timeseries if timeseries is not None else NULL_TIMESERIES
        )
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.injector = injector if injector is not None else NULL_INJECTOR
        #: Set by an armed injector's ``freeze`` fault: the core stops
        #: retiring and its run() returns ``STOP_FROZEN`` forever.
        self.frozen = False
        self.profile_cycles = profile_cycles
        # pc -> [cycles, retired]; every simulated cycle lands on exactly
        # one pc, so sum(cycles) == self.cycles at instruction boundaries
        # (the profiler-side twin of the attribution invariant).
        self.pc_profile = {} if profile_cycles else None

        self.regs = [0] * params.num_regs
        self.pc = 0
        self.cycles = 0
        self.instret = 0
        self.halted = False

        # Cycle attribution (always on — plain integer bumps): stall
        # cycles beyond the issue slot, by cause.  The issue slots
        # themselves are ``instret`` (one compute cycle per retired
        # instruction), so ``cycles == instret + sum(stalls)`` holds at
        # every instruction boundary.
        self.stall_memory = 0
        self.stall_icache = 0
        self.stall_branch = 0
        self.stall_comm = 0
        self.cix_retired = 0

        self.block_counts = {}
        self.spm_only_accesses = {}  # program index -> all addresses in SPM
        self.mem_ranges = {}         # program index -> [min addr, max addr]
        self._is_leader = None
        if profile:
            leaders = [False] * len(program)
            for block in program.basic_blocks():
                leaders[block.start] = True
                self.block_counts[block.start] = 0
            self._is_leader = leaders

        self.cfg_table = getattr(program, "cfg_table", None)

        # Interval sampling: the hot loop compares cycles against the
        # next interval boundary; disabled collectors pin it at +inf so
        # the disabled path costs exactly one comparison.
        if self.timeseries.enabled:
            self._ts_snap = self._timeseries_counters()
            self._ts_next = self.timeseries.interval
        else:
            self._ts_snap = None
            self._ts_next = math.inf

        # Fault-injection boundary: same +inf trick; an armed injector
        # sets the first trigger cycle (and the stalled-cfg set).
        self.injector.attach_core(self)

    # -- register helpers ----------------------------------------------------

    def write_reg(self, index, value):
        if index != 0:
            self.regs[index] = wrap32(value)

    def set_regs(self, **named):
        """Harness helper: ``core.set_regs(r1=addr, r2=count)``."""
        for name, value in named.items():
            self.write_reg(int(name[1:]), value)

    # -- execution -------------------------------------------------------------

    def run(self, max_instructions=None, max_cycles=None):
        """Run until halt, a blocking receive, or a limit; resumable."""
        tracer = self.tracer
        if not tracer.enabled:
            return self._dispatch(max_instructions, max_cycles)
        slice_cycles = self.cycles
        slice_instret = self.instret
        result = self._dispatch(max_instructions, max_cycles)
        retired = self.instret - slice_instret
        if retired or self.cycles > slice_cycles:
            tracer.tile_span(
                self.core_id, self.program.name, slice_cycles, self.cycles,
                result.reason, retired,
            )
        return result

    def selected_engine(self):
        """The loop ``run`` will enter: resolves ``auto`` to a mode.

        An armed injector needs the boundary/hook sites the fast loop
        deliberately omits, so both ``auto`` and an explicit ``fast``
        fall back to the instrumented loop transparently while faults
        are in play.
        """
        if self.engine == "fast":
            return "instrumented" if self.injector.armed else "fast"
        if self.engine != "auto":
            return self.engine
        if (self.profile or self.profile_cycles or self.tracer.enabled
                or self.timeseries.enabled or self.recorder.enabled
                or self.injector.armed):
            return "instrumented"
        return "fast"

    def _dispatch(self, max_instructions, max_cycles):
        from repro.cpu import engine as engine_mod

        if self.frozen:
            return RunResult(STOP_FROZEN, self.cycles, self.instret)
        mode = self.selected_engine()
        if mode == "fast":
            return engine_mod.run_fast(self, max_instructions, max_cycles)
        if mode == "instrumented":
            return engine_mod.run_instrumented(
                self, max_instructions, max_cycles
            )
        return self._run_reference(max_instructions, max_cycles)

    def _ensure_decoded(self):
        """Decode (memoized on the Program) + allocate the resident memo."""
        decoded = self._decoded
        if decoded is None:
            from repro.isa.decoded import decode_program

            decoded = decode_program(
                self.program, self.params, getattr(self.memory, "params", None)
            )
            self._decoded = decoded
            self._resident = bytearray(decoded.n)
        return decoded

    def _run_reference(self, max_instructions=None, max_cycles=None):
        """The retained original interpreter (re-decodes per retire).

        Kept as the executable specification of the timing model: the
        dispatch engines in :mod:`repro.cpu.engine` are held
        bit-identical to this loop by the differential suite
        (``tests/cpu/test_engine_differential.py``).  Select it with
        ``Core(..., engine="reference")``.
        """
        program = self.program.instructions
        regs = self.regs
        memory = self.memory
        fetch = memory.fetch
        profile = self.profile
        leaders = self._is_leader
        block_counts = self.block_counts
        penalty = self.taken_branch_penalty
        tracer = self.tracer
        pc_profile = self.pc_profile
        ts_next = self._ts_next
        inj_next = self._inj_next
        start_instret = self.instret

        while not self.halted:
            if max_instructions is not None and self.instret - start_instret >= max_instructions:
                return RunResult(STOP_LIMIT, self.cycles, self.instret)
            if max_cycles is not None and self.cycles >= max_cycles:
                return RunResult(STOP_LIMIT, self.cycles, self.instret)
            if self.cycles >= ts_next:
                self.flush_timeseries()
                ts_next = self._ts_next
            if self.cycles >= inj_next:
                inj_next = self._fire_injector()
                if self.frozen:
                    return RunResult(STOP_FROZEN, self.cycles, self.instret)
            pc = self.pc
            if not 0 <= pc < len(program):
                raise ExecutionError(self.core_id, self.program.name, pc)
            instr = program[pc]
            op = instr.op
            if profile and leaders[pc]:
                block_counts[pc] += 1

            cost = fetch(pc, instr.words) - (instr.words - 1)
            # fetch() returns hit_latency per word + miss stalls; the
            # issue slot already covers one cycle, extra words overlap.
            fetch_stall = cost - 1
            if fetch_stall:
                self.stall_icache += fetch_stall
                if tracer.enabled:
                    tracer.cache_miss(self.core_id, "icache", pc, self.cycles)
            next_pc = pc + 1

            if op is Op.LW:
                addr = (regs[instr.ra] + instr.imm) & 0xFFFFFFFF
                value, mem_cycles = memory.read(addr)
                if instr.rd != 0:
                    regs[instr.rd] = value
                cost += mem_cycles - 1
                if mem_cycles > 1:
                    self.stall_memory += mem_cycles - 1
                    if tracer.enabled:
                        tracer.cache_miss(self.core_id, "dcache", addr,
                                          self.cycles)
                if profile:
                    self._note_region(pc, addr)
            elif op is Op.SW:
                addr = (regs[instr.ra] + instr.imm) & 0xFFFFFFFF
                mem_cycles = memory.write(addr, regs[instr.rd])
                cost += mem_cycles - 1
                if mem_cycles > 1:
                    self.stall_memory += mem_cycles - 1
                    if tracer.enabled:
                        tracer.cache_miss(self.core_id, "dcache", addr,
                                          self.cycles)
                if profile:
                    self._note_region(pc, addr)
            elif op is Op.ADD:
                if instr.rd != 0:
                    regs[instr.rd] = wrap32(regs[instr.ra] + regs[instr.rb])
            elif op is Op.ADDI:
                if instr.rd != 0:
                    regs[instr.rd] = wrap32(regs[instr.ra] + instr.imm)
            elif op is Op.SUB:
                if instr.rd != 0:
                    regs[instr.rd] = wrap32(regs[instr.ra] - regs[instr.rb])
            elif op is Op.MUL:
                if instr.rd != 0:
                    regs[instr.rd] = wrap32(regs[instr.ra] * regs[instr.rb])
            elif op is Op.MULH:
                if instr.rd != 0:
                    regs[instr.rd] = eval_mul(op, regs[instr.ra], regs[instr.rb])
            elif op in (Op.AND, Op.OR, Op.XOR, Op.SLT, Op.SLTU, Op.SEQ):
                if instr.rd != 0:
                    regs[instr.rd] = eval_alu(op, regs[instr.ra], regs[instr.rb])
            elif op in (Op.ANDI, Op.ORI, Op.XORI, Op.SLTI):
                if instr.rd != 0:
                    regs[instr.rd] = eval_alu(
                        _IMM_ALU_BASE[op], regs[instr.ra], instr.imm
                    )
            elif op in (Op.SLL, Op.SRL, Op.SRA):
                if instr.rd != 0:
                    regs[instr.rd] = eval_shift(op, regs[instr.ra], regs[instr.rb])
            elif op in (Op.SLLI, Op.SRLI, Op.SRAI):
                if instr.rd != 0:
                    regs[instr.rd] = eval_shift(
                        _IMM_SHIFT_BASE[op], regs[instr.ra], instr.imm
                    )
            elif op is Op.MOV:
                if instr.rd != 0:
                    regs[instr.rd] = regs[instr.ra]
            elif op is Op.MOVI:
                if instr.rd != 0:
                    regs[instr.rd] = instr.imm
            elif op is Op.CIX:
                self.cix_retired += 1
                if tracer.enabled:
                    tracer.cix(self.core_id, instr.cfg, self.cycles)
                outs = self._execute_cix(instr)
                for reg, value in zip(instr.outs, outs):
                    if reg != 0:
                        regs[reg] = wrap32(value)
            elif op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU):
                lhs = regs[instr.ra]
                rhs = regs[instr.rb]
                if op is Op.BEQ:
                    taken = lhs == rhs
                elif op is Op.BNE:
                    taken = lhs != rhs
                elif op is Op.BLT:
                    taken = lhs < rhs
                elif op is Op.BGE:
                    taken = lhs >= rhs
                elif op is Op.BLTU:
                    taken = (lhs & 0xFFFFFFFF) < (rhs & 0xFFFFFFFF)
                else:
                    taken = (lhs & 0xFFFFFFFF) >= (rhs & 0xFFFFFFFF)
                if taken:
                    next_pc = instr.target
                    cost += penalty
                    self.stall_branch += penalty
            elif op is Op.JMP:
                next_pc = instr.target
                cost += penalty
                self.stall_branch += penalty
            elif op is Op.JAL:
                regs[15] = pc + 1
                next_pc = instr.target
                cost += penalty
                self.stall_branch += penalty
            elif op is Op.JR:
                next_pc = regs[instr.ra]
                cost += penalty
                self.stall_branch += penalty
            elif op is Op.HALT:
                self.halted = True
            elif op is Op.NOP:
                pass
            elif op is Op.SEND:
                peer = regs[instr.ra]
                base = regs[instr.rb]
                count = regs[instr.rd]
                values = memory.dump(base, count)  # NIC DMA bypasses the cache
                start = self.cycles
                finish = self.comm.send(peer, values, start)
                self.cycles = finish
                self.stall_comm += finish - start - 1  # 1 = the issue slot
                if self.recorder.enabled:
                    self.recorder.send(self.core_id, peer, count, start,
                                       finish, self._recorder_counters())
                if tracer.enabled:
                    tracer.comm_send(self.core_id, peer, count, start, finish)
                if pc_profile is not None:
                    entry = pc_profile.get(pc)
                    if entry is None:
                        entry = pc_profile[pc] = [0, 0]
                    entry[0] += finish - start
                    entry[1] += 1
                self.pc = next_pc
                self.instret += 1
                continue
            elif op is Op.RECV:
                peer = regs[instr.ra]
                base = regs[instr.rb]
                count = regs[instr.rd]
                result = self.comm.try_recv(peer, count, self.cycles)
                if result is None:
                    if self.recorder.enabled:
                        self.recorder.recv_blocked(self.core_id, peer, count,
                                                   self.cycles)
                    if tracer.enabled:
                        tracer.comm_blocked(self.core_id, peer, count,
                                            self.cycles)
                    return RunResult(STOP_RECV, self.cycles, self.instret)
                values, finish = result
                memory.load(base, values)  # NIC DMA bypasses the cache
                start = self.cycles
                self.cycles = finish
                self.stall_comm += finish - start - 1  # 1 = the issue slot
                if self.recorder.enabled:
                    self.recorder.recv(self.core_id, peer, count, start,
                                       finish, self._recorder_counters())
                if tracer.enabled:
                    tracer.comm_recv(self.core_id, peer, count, start, finish)
                if pc_profile is not None:
                    entry = pc_profile.get(pc)
                    if entry is None:
                        entry = pc_profile[pc] = [0, 0]
                    entry[0] += finish - start
                    entry[1] += 1
                self.pc = next_pc
                self.instret += 1
                continue
            else:  # pragma: no cover - all opcodes handled above
                raise NotImplementedError(f"opcode {op}")

            regs[0] = 0
            self.cycles += cost
            self.instret += 1
            self.pc = next_pc
            if pc_profile is not None:
                entry = pc_profile.get(pc)
                if entry is None:
                    entry = pc_profile[pc] = [0, 0]
                entry[0] += cost
                entry[1] += 1

        return RunResult(STOP_HALT, self.cycles, self.instret)

    # -- telemetry ---------------------------------------------------------------

    def attribution(self):
        """Cycle attribution: every cycle in exactly one bucket.

        ``compute`` is the retired-instruction count (each instruction
        owns one issue cycle); the stall buckets are tracked
        independently in the interpreter, so ``sum(buckets) == total``
        is a real cross-check of the timing model, not an identity
        (see :func:`repro.verify.check_cycle_attribution`).
        """
        return {
            "compute": self.instret,
            "memory_stall": self.stall_memory,
            "icache_stall": self.stall_icache,
            "branch_bubble": self.stall_branch,
            "comm_blocked": self.stall_comm,
            "total": self.cycles,
        }

    def _recorder_counters(self):
        """Counter snapshot in :data:`repro.critpath.COUNTER_FIELDS`
        order — the compute-segment deltas the dependency recorder
        attaches to each comm op."""
        memory = self.memory
        return (
            self.instret,
            self.stall_memory,
            self.stall_icache,
            self.stall_branch,
            memory.icache.misses,
            memory.dcache.misses,
            memory.dcache.writebacks,
            self.cix_retired,
        )

    def _timeseries_counters(self):
        """Current values of every counter the interval sampler tracks."""
        ih, im, dh, dm = self.memory.counter_snapshot()
        return {
            "cycles": self.cycles,
            "instructions": self.instret,
            "memory_stall": self.stall_memory,
            "icache_stall": self.stall_icache,
            "branch_bubble": self.stall_branch,
            "comm_blocked": self.stall_comm,
            "icache_hits": ih,
            "icache_misses": im,
            "dcache_hits": dh,
            "dcache_misses": dm,
        }

    def flush_timeseries(self):
        """Close the current sampling interval.

        Folds every counter delta since the previous sample into the
        interval containing the cycle at which the delta *began* (the
        previous snapshot), so per-interval sums reconcile exactly with
        the end-of-run totals no matter where the flush lands, and
        successive samples carry strictly increasing interval indices.
        Called by the interpreter at interval boundaries and by the
        harness once a run finishes.
        """
        ts = self.timeseries
        if not ts.enabled:
            return
        now = self._timeseries_counters()
        snap = self._ts_snap
        deltas = {
            field: now[field] - snap[field]
            for field in now
            if now[field] != snap[field]
        }
        if deltas:
            ts.tile_sample(self.core_id, snap["cycles"], deltas)
        self._ts_snap = now
        self._ts_next = (self.cycles // ts.interval + 1) * ts.interval

    def _fire_injector(self):
        """Apply due injected faults; returns the next boundary cycle."""
        self._inj_next = self.injector.fire_core(self)
        return self._inj_next

    def _execute_cix(self, instr):
        if self.patch is None:
            raise BlockedError(
                f"core {self.core_id}: cix executed but no patch is attached"
            )
        if self._inj_cix is not None and instr.cfg in self._inj_cix:
            self.injector.cix_stall(self.core_id, instr.cfg, self.cycles)
        in_values = [self.regs[r] for r in instr.ins]
        return self.patch.execute(instr.cfg, in_values)

    def _note_region(self, pc, addr):
        is_spm = self.memory.is_spm(addr)
        previous = self.spm_only_accesses.get(pc)
        self.spm_only_accesses[pc] = is_spm if previous is None else (previous and is_spm)
        span = self.mem_ranges.get(pc)
        if span is None:
            self.mem_ranges[pc] = [addr, addr]
        else:
            if addr < span[0]:
                span[0] = addr
            if addr > span[1]:
                span[1] = addr

    # -- profiling ---------------------------------------------------------------

    def block_instruction_counts(self):
        """Dynamic instruction count per basic block (requires profile=True)."""
        if not self.profile:
            raise RuntimeError("core was created with profile=False")
        result = {}
        for block in self.program.basic_blocks():
            result[block.index] = self.block_counts[block.start] * len(block)
        return result
