"""Execution engines over pre-decoded programs.

Two entry loops share the decode pass of :mod:`repro.isa.decoded` and
the architectural/timing semantics of the reference interpreter
(``Core._run_reference``):

* :func:`run_instrumented` — dispatches through :data:`HANDLERS` (one
  small function per op family) and preserves the reference loop's
  exact telemetry behaviour: tracer events, interval samples, recorder
  hooks, the PC-cycle profiler and the block/region profile all fire at
  the same simulated cycle with the same arguments.
* :func:`run_fast` — selected when every observability channel is
  disabled.  All flag checks are hoisted out of the per-instruction
  path, architectural and timing state live in locals, dispatch is a
  frequency-ordered ladder over dense integer kinds, and the two
  dominant memory operations take memoized fast paths:

  - **resident-line fetch**: when the program's code footprint fits the
    I-cache outright (``DecodedProgram.resident_ok``), a per-PC flag
    marks slots whose lines have been fetched once; marked slots charge
    the pre-computed all-hit cost without touching the cache model.
    Hit counters are accumulated locally and flushed on exit, so cache
    statistics stay bit-identical to the reference.
  - **SPM direct access**: aligned loads/stores inside the scratchpad
    window index the backing word list directly; anything else falls
    back to ``MemorySystem.read``/``write`` (same errors, same timing).

Both loops are resumable and idempotent: the fast loop syncs its locals
back to the core in a ``finally`` block, so limit stops, blocking
receives and even mid-instruction exceptions leave the core in exactly
the state the reference interpreter would.
"""

import math

from repro.cpu.core import (
    BlockedError,
    ExecutionError,
    RunResult,
    STOP_FROZEN,
    STOP_HALT,
    STOP_LIMIT,
    STOP_RECV,
)
from repro.isa.decoded import (
    FIRST_CONTROL,
    K_ADD,
    K_ADDI,
    K_AND,
    K_ANDI,
    K_BEQ,
    K_BGE,
    K_BGEU,
    K_BLT,
    K_BLTU,
    K_BNE,
    K_CIX,
    K_HALT,
    K_JAL,
    K_JMP,
    K_JR,
    K_LW,
    K_MOV,
    K_MOVI,
    K_MUL,
    K_MULH,
    K_NOP,
    K_OR,
    K_ORI,
    K_RECV,
    K_SEND,
    K_SEQ,
    K_SLL,
    K_SLLI,
    K_SLT,
    K_SLTI,
    K_SLTU,
    K_SRA,
    K_SRAI,
    K_SRL,
    K_SRLI,
    K_SUB,
    K_SW,
    K_XOR,
    K_XORI,
    NUM_KINDS,
)
from repro.isa.instructions import wrap32

_MASK32 = 0xFFFFFFFF
_SIGN32 = 0x80000000
_WRAP32 = 0x100000000


# -- handler table (instrumented loop) --------------------------------------
#
# One small function per op family, ``handler(core, ex, regs) -> extra
# cycles beyond the fetch cost``.  Control flow, halt and the comm pair
# are not in the table: they steer the loop (next pc, retire-without-
# regs[0]-reset), so the instrumented loop keeps them inline, exactly
# like the reference interpreter.

def _h_addi(core, ex, regs):
    if ex.rd != 0:
        regs[ex.rd] = wrap32(regs[ex.ra] + ex.imm)
    return 0


def _h_lw(core, ex, regs):
    addr = (regs[ex.ra] + ex.imm) & _MASK32
    value, mem_cycles = core.memory.read(addr)
    if ex.rd != 0:
        regs[ex.rd] = value
    extra = mem_cycles - 1
    if extra > 0:
        core.stall_memory += extra
        if core.tracer.enabled:
            core.tracer.cache_miss(core.core_id, "dcache", addr, core.cycles)
    if core.profile:
        core._note_region(ex.pc, addr)
    return extra


def _h_add(core, ex, regs):
    if ex.rd != 0:
        regs[ex.rd] = wrap32(regs[ex.ra] + regs[ex.rb])
    return 0


def _h_sw(core, ex, regs):
    addr = (regs[ex.ra] + ex.imm) & _MASK32
    mem_cycles = core.memory.write(addr, regs[ex.rd])
    extra = mem_cycles - 1
    if extra > 0:
        core.stall_memory += extra
        if core.tracer.enabled:
            core.tracer.cache_miss(core.core_id, "dcache", addr, core.cycles)
    if core.profile:
        core._note_region(ex.pc, addr)
    return extra


def _h_cix(core, ex, regs):
    core.cix_retired += 1
    if core.tracer.enabled:
        core.tracer.cix(core.core_id, ex.cfg, core.cycles)
    outs = core._execute_cix(ex)
    for reg, value in zip(ex.outs, outs):
        if reg != 0:
            regs[reg] = wrap32(value)
    return 0


def _h_movi(core, ex, regs):
    if ex.rd != 0:
        regs[ex.rd] = ex.imm
    return 0


def _h_mul(core, ex, regs):
    if ex.rd != 0:
        regs[ex.rd] = wrap32(regs[ex.ra] * regs[ex.rb])
    return 0


def _h_mulh(core, ex, regs):
    if ex.rd != 0:
        regs[ex.rd] = wrap32((regs[ex.ra] * regs[ex.rb]) >> 32)
    return 0


def _h_sub(core, ex, regs):
    if ex.rd != 0:
        regs[ex.rd] = wrap32(regs[ex.ra] - regs[ex.rb])
    return 0


def _h_and(core, ex, regs):
    if ex.rd != 0:
        regs[ex.rd] = wrap32(regs[ex.ra] & regs[ex.rb])
    return 0


def _h_or(core, ex, regs):
    if ex.rd != 0:
        regs[ex.rd] = wrap32(regs[ex.ra] | regs[ex.rb])
    return 0


def _h_xor(core, ex, regs):
    if ex.rd != 0:
        regs[ex.rd] = wrap32(regs[ex.ra] ^ regs[ex.rb])
    return 0


def _h_slt(core, ex, regs):
    if ex.rd != 0:
        regs[ex.rd] = 1 if regs[ex.ra] < regs[ex.rb] else 0
    return 0


def _h_sltu(core, ex, regs):
    if ex.rd != 0:
        regs[ex.rd] = (
            1 if (regs[ex.ra] & _MASK32) < (regs[ex.rb] & _MASK32) else 0
        )
    return 0


def _h_seq(core, ex, regs):
    if ex.rd != 0:
        regs[ex.rd] = 1 if regs[ex.ra] == regs[ex.rb] else 0
    return 0


def _h_andi(core, ex, regs):
    if ex.rd != 0:
        regs[ex.rd] = wrap32(regs[ex.ra] & ex.imm)
    return 0


def _h_ori(core, ex, regs):
    if ex.rd != 0:
        regs[ex.rd] = wrap32(regs[ex.ra] | ex.imm)
    return 0


def _h_xori(core, ex, regs):
    if ex.rd != 0:
        regs[ex.rd] = wrap32(regs[ex.ra] ^ ex.imm)
    return 0


def _h_slti(core, ex, regs):
    if ex.rd != 0:
        regs[ex.rd] = 1 if regs[ex.ra] < ex.imm else 0
    return 0


def _h_sll(core, ex, regs):
    if ex.rd != 0:
        regs[ex.rd] = wrap32(
            (regs[ex.ra] & _MASK32) << (regs[ex.rb] & 31)
        )
    return 0


def _h_srl(core, ex, regs):
    if ex.rd != 0:
        regs[ex.rd] = wrap32(
            (regs[ex.ra] & _MASK32) >> (regs[ex.rb] & 31)
        )
    return 0


def _h_sra(core, ex, regs):
    if ex.rd != 0:
        regs[ex.rd] = wrap32(regs[ex.ra] >> (regs[ex.rb] & 31))
    return 0


def _h_slli(core, ex, regs):  # ex.imm pre-masked to 5 bits at decode
    if ex.rd != 0:
        regs[ex.rd] = wrap32((regs[ex.ra] & _MASK32) << ex.imm)
    return 0


def _h_srli(core, ex, regs):
    if ex.rd != 0:
        regs[ex.rd] = wrap32((regs[ex.ra] & _MASK32) >> ex.imm)
    return 0


def _h_srai(core, ex, regs):
    if ex.rd != 0:
        regs[ex.rd] = wrap32(regs[ex.ra] >> ex.imm)
    return 0


def _h_mov(core, ex, regs):
    if ex.rd != 0:
        regs[ex.rd] = regs[ex.ra]
    return 0


def _h_nop(core, ex, regs):
    return 0


HANDLERS = [None] * NUM_KINDS
HANDLERS[K_ADDI] = _h_addi
HANDLERS[K_LW] = _h_lw
HANDLERS[K_ADD] = _h_add
HANDLERS[K_SW] = _h_sw
HANDLERS[K_CIX] = _h_cix
HANDLERS[K_MOVI] = _h_movi
HANDLERS[K_MUL] = _h_mul
HANDLERS[K_MULH] = _h_mulh
HANDLERS[K_SUB] = _h_sub
HANDLERS[K_AND] = _h_and
HANDLERS[K_OR] = _h_or
HANDLERS[K_XOR] = _h_xor
HANDLERS[K_SLT] = _h_slt
HANDLERS[K_SLTU] = _h_sltu
HANDLERS[K_SEQ] = _h_seq
HANDLERS[K_ANDI] = _h_andi
HANDLERS[K_ORI] = _h_ori
HANDLERS[K_XORI] = _h_xori
HANDLERS[K_SLTI] = _h_slti
HANDLERS[K_SLL] = _h_sll
HANDLERS[K_SRL] = _h_srl
HANDLERS[K_SRA] = _h_sra
HANDLERS[K_SLLI] = _h_slli
HANDLERS[K_SRLI] = _h_srli
HANDLERS[K_SRAI] = _h_srai
HANDLERS[K_MOV] = _h_mov
HANDLERS[K_NOP] = _h_nop


# -- instrumented loop ------------------------------------------------------

def run_instrumented(core, max_instructions=None, max_cycles=None):
    """Pre-decoded loop with full observability (reference-exact).

    Identical structure to ``Core._run_reference`` — same limit/sample
    checks, same hook call sites, same state update order — with the
    per-retire decode replaced by an :class:`ExecOp` slot lookup and
    the value-op ladder by the :data:`HANDLERS` table.
    """
    decoded = core._ensure_decoded()
    ops = decoded.ops
    n = decoded.n
    regs = core.regs
    memory = core.memory
    fetch = memory.fetch
    profile = core.profile
    leaders = core._is_leader
    block_counts = core.block_counts
    penalty = core.taken_branch_penalty
    tracer = core.tracer
    pc_profile = core.pc_profile
    ts_next = core._ts_next
    inj_next = core._inj_next
    start_instret = core.instret
    handlers = HANDLERS

    while not core.halted:
        if (max_instructions is not None
                and core.instret - start_instret >= max_instructions):
            return RunResult(STOP_LIMIT, core.cycles, core.instret)
        if max_cycles is not None and core.cycles >= max_cycles:
            return RunResult(STOP_LIMIT, core.cycles, core.instret)
        if core.cycles >= ts_next:
            core.flush_timeseries()
            ts_next = core._ts_next
        if core.cycles >= inj_next:
            inj_next = core._fire_injector()
            if core.frozen:
                return RunResult(STOP_FROZEN, core.cycles, core.instret)
        pc = core.pc
        if not 0 <= pc < n:
            raise ExecutionError(core.core_id, core.program.name, pc)
        ex = ops[pc]
        kind = ex.kind
        if profile and leaders[pc]:
            block_counts[pc] += 1

        cost = fetch(pc, ex.words) - (ex.words - 1)
        fetch_stall = cost - 1
        if fetch_stall:
            core.stall_icache += fetch_stall
            if tracer.enabled:
                tracer.cache_miss(core.core_id, "icache", pc, core.cycles)
        next_pc = pc + 1

        if kind < FIRST_CONTROL:
            cost += handlers[kind](core, ex, regs)
        elif kind <= K_BGEU:
            lhs = regs[ex.ra]
            rhs = regs[ex.rb]
            if kind == K_BEQ:
                taken = lhs == rhs
            elif kind == K_BNE:
                taken = lhs != rhs
            elif kind == K_BLT:
                taken = lhs < rhs
            elif kind == K_BGE:
                taken = lhs >= rhs
            elif kind == K_BLTU:
                taken = (lhs & _MASK32) < (rhs & _MASK32)
            else:
                taken = (lhs & _MASK32) >= (rhs & _MASK32)
            if taken:
                next_pc = ex.target
                cost += penalty
                core.stall_branch += penalty
        elif kind == K_JMP:
            next_pc = ex.target
            cost += penalty
            core.stall_branch += penalty
        elif kind == K_JAL:
            regs[15] = pc + 1
            next_pc = ex.target
            cost += penalty
            core.stall_branch += penalty
        elif kind == K_JR:
            next_pc = regs[ex.ra]
            cost += penalty
            core.stall_branch += penalty
        elif kind == K_HALT:
            core.halted = True
        elif kind == K_SEND:
            peer = regs[ex.ra]
            base = regs[ex.rb]
            count = regs[ex.rd]
            values = memory.dump(base, count)  # NIC DMA bypasses the cache
            start = core.cycles
            finish = core.comm.send(peer, values, start)
            core.cycles = finish
            core.stall_comm += finish - start - 1  # 1 = the issue slot
            if core.recorder.enabled:
                core.recorder.send(core.core_id, peer, count, start,
                                   finish, core._recorder_counters())
            if tracer.enabled:
                tracer.comm_send(core.core_id, peer, count, start, finish)
            if pc_profile is not None:
                entry = pc_profile.get(pc)
                if entry is None:
                    entry = pc_profile[pc] = [0, 0]
                entry[0] += finish - start
                entry[1] += 1
            core.pc = next_pc
            core.instret += 1
            continue
        elif kind == K_RECV:
            peer = regs[ex.ra]
            base = regs[ex.rb]
            count = regs[ex.rd]
            result = core.comm.try_recv(peer, count, core.cycles)
            if result is None:
                if core.recorder.enabled:
                    core.recorder.recv_blocked(core.core_id, peer, count,
                                               core.cycles)
                if tracer.enabled:
                    tracer.comm_blocked(core.core_id, peer, count,
                                        core.cycles)
                return RunResult(STOP_RECV, core.cycles, core.instret)
            values, finish = result
            memory.load(base, values)  # NIC DMA bypasses the cache
            start = core.cycles
            core.cycles = finish
            core.stall_comm += finish - start - 1  # 1 = the issue slot
            if core.recorder.enabled:
                core.recorder.recv(core.core_id, peer, count, start,
                                   finish, core._recorder_counters())
            if tracer.enabled:
                tracer.comm_recv(core.core_id, peer, count, start, finish)
            if pc_profile is not None:
                entry = pc_profile.get(pc)
                if entry is None:
                    entry = pc_profile[pc] = [0, 0]
                entry[0] += finish - start
                entry[1] += 1
            core.pc = next_pc
            core.instret += 1
            continue
        else:  # pragma: no cover - all kinds handled above
            raise NotImplementedError(f"kind {kind}")

        regs[0] = 0
        core.cycles += cost
        core.instret += 1
        core.pc = next_pc
        if pc_profile is not None:
            entry = pc_profile.get(pc)
            if entry is None:
                entry = pc_profile[pc] = [0, 0]
            entry[0] += cost
            entry[1] += 1

    return RunResult(STOP_HALT, core.cycles, core.instret)


# -- fast loop --------------------------------------------------------------

def run_fast(core, max_instructions=None, max_cycles=None):
    """Observability-free loop: locals, tuples, memoized memory paths.

    Requires every telemetry channel disabled (``Core`` only selects it
    then); raises ``ValueError`` if forced onto an instrumented core.
    Produces bit-identical architectural state, cycles, stall
    attribution and cache/SPM counters to the reference interpreter —
    the differential suite in ``tests/cpu`` holds it to that.
    """
    if (core.profile or core.profile_cycles or core.tracer.enabled
            or core.timeseries.enabled or core.recorder.enabled
            or core.injector.armed):
        raise ValueError(
            "engine='fast' cannot honor enabled observability "
            "(profiler/tracer/timeseries/recorder/injector); use "
            "engine='auto' or 'instrumented'"
        )
    if core.halted:
        return RunResult(STOP_HALT, core.cycles, core.instret)
    decoded = core._ensure_decoded()
    code = decoded.code
    n = decoded.n
    flags = core._resident
    mark = decoded.resident_ok
    regs = core.regs
    memory = core.memory
    fetch = memory.fetch
    read = memory.read
    write = memory.write
    comm = core.comm
    patch = core.patch
    penalty = core.taken_branch_penalty

    spm = getattr(memory, "spm", None)
    if spm is not None:
        spm_words, spm_base, spm_end, spm_latency = spm.window()
        spm_extra = spm_latency - 1
    else:
        spm_base, spm_end = 1, 0  # empty window: the test always fails
        spm_words = None
        spm_extra = 0

    pc = core.pc
    cycles = core.cycles
    instret = core.instret
    stall_memory = core.stall_memory
    stall_icache = core.stall_icache
    stall_branch = core.stall_branch
    stall_comm = core.stall_comm
    # Deferred counter deltas, flushed once on exit (the whole point of
    # the fast paths is not touching these objects per access).
    hit_words = 0
    spm_reads = 0
    spm_writes = 0
    cix_retired = 0

    stop_instret = (
        math.inf if max_instructions is None else instret + max_instructions
    )
    stop_cycles = math.inf if max_cycles is None else max_cycles

    try:
        while True:
            if instret >= stop_instret or cycles >= stop_cycles:
                return RunResult(STOP_LIMIT, cycles, instret)
            if not 0 <= pc < n:
                raise ExecutionError(core.core_id, core.program.name, pc)
            t = code[pc]
            if flags[pc]:
                cost = t[1]
                hit_words += t[2]
            else:
                words = t[2]
                cost = fetch(pc, words) - words + 1
                if mark:
                    flags[pc] = 1
            if cost != 1:
                stall_icache += cost - 1
            kind = t[0]

            if kind == K_ADDI:
                rd = t[3]
                if rd:
                    v = (regs[t[4]] + t[5]) & _MASK32
                    regs[rd] = v - _WRAP32 if v & _SIGN32 else v
            elif kind == K_LW:
                addr = (regs[t[4]] + t[5]) & _MASK32
                if spm_base <= addr < spm_end and not addr & 3:
                    value = spm_words[(addr - spm_base) >> 2]
                    spm_reads += 1
                    if spm_extra:
                        cost += spm_extra
                        if spm_extra > 0:
                            stall_memory += spm_extra
                else:
                    value, mem_cycles = read(addr)
                    if mem_cycles != 1:
                        extra = mem_cycles - 1
                        cost += extra
                        if extra > 0:
                            stall_memory += extra
                rd = t[3]
                if rd:
                    regs[rd] = value
            elif kind == K_ADD:
                rd = t[3]
                if rd:
                    v = (regs[t[4]] + regs[t[5]]) & _MASK32
                    regs[rd] = v - _WRAP32 if v & _SIGN32 else v
            elif kind == K_SW:
                addr = (regs[t[4]] + t[5]) & _MASK32
                if spm_base <= addr < spm_end and not addr & 3:
                    v = regs[t[3]] & _MASK32
                    spm_words[(addr - spm_base) >> 2] = (
                        v - _WRAP32 if v & _SIGN32 else v
                    )
                    spm_writes += 1
                    if spm_extra:
                        cost += spm_extra
                        if spm_extra > 0:
                            stall_memory += spm_extra
                else:
                    mem_cycles = write(addr, regs[t[3]])
                    if mem_cycles != 1:
                        extra = mem_cycles - 1
                        cost += extra
                        if extra > 0:
                            stall_memory += extra
            elif kind == K_BNE:
                if regs[t[3]] != regs[t[4]]:
                    stall_branch += penalty
                    cycles += cost + penalty
                    instret += 1
                    pc = t[5]
                    continue
            elif kind == K_CIX:
                cix_retired += 1
                if patch is None:
                    raise BlockedError(
                        f"core {core.core_id}: cix executed but no patch "
                        f"is attached"
                    )
                outs = patch.execute(t[3], [regs[r] for r in t[5]])
                for reg, value in zip(t[4], outs):
                    if reg:
                        v = value & _MASK32
                        regs[reg] = v - _WRAP32 if v & _SIGN32 else v
            elif kind == K_MOVI:
                rd = t[3]
                if rd:
                    regs[rd] = t[4]
            elif kind == K_BEQ:
                if regs[t[3]] == regs[t[4]]:
                    stall_branch += penalty
                    cycles += cost + penalty
                    instret += 1
                    pc = t[5]
                    continue
            elif kind == K_BLT:
                if regs[t[3]] < regs[t[4]]:
                    stall_branch += penalty
                    cycles += cost + penalty
                    instret += 1
                    pc = t[5]
                    continue
            elif kind == K_BGE:
                if regs[t[3]] >= regs[t[4]]:
                    stall_branch += penalty
                    cycles += cost + penalty
                    instret += 1
                    pc = t[5]
                    continue
            elif kind == K_MUL:
                rd = t[3]
                if rd:
                    v = (regs[t[4]] * regs[t[5]]) & _MASK32
                    regs[rd] = v - _WRAP32 if v & _SIGN32 else v
            elif kind == K_SLLI:
                rd = t[3]
                if rd:
                    v = ((regs[t[4]] & _MASK32) << t[5]) & _MASK32
                    regs[rd] = v - _WRAP32 if v & _SIGN32 else v
            elif kind == K_SRLI:
                rd = t[3]
                if rd:
                    v = (regs[t[4]] & _MASK32) >> t[5]
                    regs[rd] = v - _WRAP32 if v & _SIGN32 else v
            elif kind == K_SRAI:
                rd = t[3]
                if rd:
                    v = (regs[t[4]] >> t[5]) & _MASK32
                    regs[rd] = v - _WRAP32 if v & _SIGN32 else v
            elif kind == K_SUB:
                rd = t[3]
                if rd:
                    v = (regs[t[4]] - regs[t[5]]) & _MASK32
                    regs[rd] = v - _WRAP32 if v & _SIGN32 else v
            elif kind == K_MOV:
                rd = t[3]
                if rd:
                    regs[rd] = regs[t[4]]
            elif kind == K_AND:
                rd = t[3]
                if rd:
                    v = (regs[t[4]] & regs[t[5]]) & _MASK32
                    regs[rd] = v - _WRAP32 if v & _SIGN32 else v
            elif kind == K_OR:
                rd = t[3]
                if rd:
                    v = (regs[t[4]] | regs[t[5]]) & _MASK32
                    regs[rd] = v - _WRAP32 if v & _SIGN32 else v
            elif kind == K_XOR:
                rd = t[3]
                if rd:
                    v = (regs[t[4]] ^ regs[t[5]]) & _MASK32
                    regs[rd] = v - _WRAP32 if v & _SIGN32 else v
            elif kind == K_SLT:
                rd = t[3]
                if rd:
                    regs[rd] = 1 if regs[t[4]] < regs[t[5]] else 0
            elif kind == K_SLTU:
                rd = t[3]
                if rd:
                    regs[rd] = (
                        1 if (regs[t[4]] & _MASK32) < (regs[t[5]] & _MASK32)
                        else 0
                    )
            elif kind == K_SEQ:
                rd = t[3]
                if rd:
                    regs[rd] = 1 if regs[t[4]] == regs[t[5]] else 0
            elif kind == K_ANDI:
                rd = t[3]
                if rd:
                    v = (regs[t[4]] & t[5]) & _MASK32
                    regs[rd] = v - _WRAP32 if v & _SIGN32 else v
            elif kind == K_ORI:
                rd = t[3]
                if rd:
                    v = (regs[t[4]] | t[5]) & _MASK32
                    regs[rd] = v - _WRAP32 if v & _SIGN32 else v
            elif kind == K_XORI:
                rd = t[3]
                if rd:
                    v = (regs[t[4]] ^ t[5]) & _MASK32
                    regs[rd] = v - _WRAP32 if v & _SIGN32 else v
            elif kind == K_SLTI:
                rd = t[3]
                if rd:
                    regs[rd] = 1 if regs[t[4]] < t[5] else 0
            elif kind == K_SLL:
                rd = t[3]
                if rd:
                    v = ((regs[t[4]] & _MASK32) << (regs[t[5]] & 31)) & _MASK32
                    regs[rd] = v - _WRAP32 if v & _SIGN32 else v
            elif kind == K_SRL:
                rd = t[3]
                if rd:
                    v = (regs[t[4]] & _MASK32) >> (regs[t[5]] & 31)
                    regs[rd] = v - _WRAP32 if v & _SIGN32 else v
            elif kind == K_SRA:
                rd = t[3]
                if rd:
                    v = (regs[t[4]] >> (regs[t[5]] & 31)) & _MASK32
                    regs[rd] = v - _WRAP32 if v & _SIGN32 else v
            elif kind == K_MULH:
                rd = t[3]
                if rd:
                    v = ((regs[t[4]] * regs[t[5]]) >> 32) & _MASK32
                    regs[rd] = v - _WRAP32 if v & _SIGN32 else v
            elif kind == K_BLTU:
                if (regs[t[3]] & _MASK32) < (regs[t[4]] & _MASK32):
                    stall_branch += penalty
                    cycles += cost + penalty
                    instret += 1
                    pc = t[5]
                    continue
            elif kind == K_BGEU:
                if (regs[t[3]] & _MASK32) >= (regs[t[4]] & _MASK32):
                    stall_branch += penalty
                    cycles += cost + penalty
                    instret += 1
                    pc = t[5]
                    continue
            elif kind == K_JMP:
                stall_branch += penalty
                cycles += cost + penalty
                instret += 1
                pc = t[3]
                continue
            elif kind == K_JAL:
                regs[15] = pc + 1
                stall_branch += penalty
                cycles += cost + penalty
                instret += 1
                pc = t[3]
                continue
            elif kind == K_JR:
                stall_branch += penalty
                cycles += cost + penalty
                instret += 1
                pc = regs[t[3]]
                continue
            elif kind == K_HALT:
                core.halted = True
                cycles += cost
                instret += 1
                pc += 1
                return RunResult(STOP_HALT, cycles, instret)
            elif kind == K_NOP:
                pass
            elif kind == K_SEND:
                peer = regs[t[4]]
                base = regs[t[5]]
                count = regs[t[3]]
                values = memory.dump(base, count)  # NIC DMA, cache bypass
                finish = comm.send(peer, values, cycles)
                stall_comm += finish - cycles - 1  # 1 = the issue slot
                cycles = finish
                instret += 1
                pc += 1
                continue
            elif kind == K_RECV:
                peer = regs[t[4]]
                base = regs[t[5]]
                count = regs[t[3]]
                result = comm.try_recv(peer, count, cycles)
                if result is None:
                    return RunResult(STOP_RECV, cycles, instret)
                values, finish = result
                memory.load(base, values)  # NIC DMA, cache bypass
                stall_comm += finish - cycles - 1  # 1 = the issue slot
                cycles = finish
                instret += 1
                pc += 1
                continue
            else:  # pragma: no cover - all kinds handled above
                raise NotImplementedError(f"kind {kind}")

            cycles += cost
            instret += 1
            pc += 1
    finally:
        # Idempotent write-back: limit stops, blocking receives and
        # mid-instruction exceptions all leave the core exactly where
        # the reference interpreter would.
        core.pc = pc
        core.cycles = cycles
        core.instret = instret
        core.stall_memory = stall_memory
        core.stall_icache = stall_icache
        core.stall_branch = stall_branch
        core.stall_comm = stall_comm
        if cix_retired:
            core.cix_retired += cix_retired
        if hit_words:
            memory.icache.hits += hit_words
        if spm_reads:
            spm.reads += spm_reads
        if spm_writes:
            spm.writes += spm_writes
