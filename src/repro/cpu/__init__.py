"""In-order single-issue core model (one per tile).

The core mirrors the paper's simulation substrate: an in-order,
single-lane ARM-class pipeline at 200 MHz.  One instruction issues per
cycle; memory stalls come from the tile's :class:`~repro.mem.MemorySystem`;
custom instructions (``cix``) are dispatched to the tile's configured
patch through :class:`PatchPort` and complete in a single cycle; message
passing blocks on :class:`CommPort`.
"""

from repro.cpu.core import (
    ATTRIBUTION_BUCKETS,
    BlockedError,
    CommPort,
    Core,
    ENGINES,
    ExecutionError,
    NullComm,
    PatchPort,
    RunResult,
    STOP_FROZEN,
    STOP_HALT,
    STOP_LIMIT,
    STOP_RECV,
)

__all__ = [
    "ATTRIBUTION_BUCKETS",
    "BlockedError",
    "CommPort",
    "Core",
    "ENGINES",
    "ExecutionError",
    "NullComm",
    "PatchPort",
    "RunResult",
    "STOP_FROZEN",
    "STOP_HALT",
    "STOP_LIMIT",
    "STOP_RECV",
]
