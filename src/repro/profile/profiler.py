"""PC-attribution cycle profiles folded onto the control-flow graph.

:class:`Core` (with ``profile_cycles=True``) keeps a retired-cycle
histogram keyed by PC: every simulated cycle lands on exactly one
program counter, so the histogram's cycle total equals ``core.cycles``
*exactly* — the profiler-side twin of the attribution invariant the
V500 rules check.  :class:`CycleProfile` folds that histogram onto the
program's basic blocks and (via the abstract interpreter's CFG) its
natural loops, giving per-block and per-loop self/total cycle counts,
flamegraph folded stacks, and annotated disassembly.

``profile_kernel_cycles`` / ``profile_app_cycles`` are the harness
entries ``repro profile`` uses: one bare tile for a kernel, the 16-tile
co-simulation for an application.
"""

from repro.verify.absint.cfg import CFG, targets_valid


class BlockProfile:
    """Cycles and retirements attributed to one basic block."""

    __slots__ = ("index", "label", "start", "end", "cycles", "retired")

    def __init__(self, index, label, start, end):
        self.index = index
        self.label = label
        self.start = start
        self.end = end
        self.cycles = 0
        self.retired = 0

    def __repr__(self):
        return f"BlockProfile({self.label}, cycles={self.cycles})"


class LoopProfile:
    """Self/total cycles of one natural loop (totals include children)."""

    __slots__ = ("name", "header", "blocks", "depth", "parent",
                 "total_cycles", "self_cycles", "entries")

    def __init__(self, name, header, blocks):
        self.name = name
        self.header = header
        self.blocks = blocks        # frozenset of block indices
        self.depth = 0              # 0 = outermost
        self.parent = None          # enclosing LoopProfile, if any
        self.total_cycles = 0
        self.self_cycles = 0
        self.entries = 0

    def __repr__(self):
        return (f"LoopProfile({self.name}, total={self.total_cycles}, "
                f"self={self.self_cycles})")


class CycleProfile:
    """One tile's retired-cycle histogram, folded onto its CFG."""

    def __init__(self, program, pc_cycles, total_cycles, tile=0):
        self.program = program
        self.tile = tile
        # pc -> (cycles, retired); immutable view of the core histogram.
        self.pc_cycles = {
            pc: (entry[0], entry[1]) for pc, entry in pc_cycles.items()
        }
        self.total_cycles = total_cycles
        self.cfg = CFG(program) if targets_valid(program) else None
        self.blocks = self._fold_blocks()
        self.loops = self._fold_loops()

    @classmethod
    def from_core(cls, core):
        """Build the profile of a finished ``profile_cycles=True`` core."""
        if core.pc_profile is None:
            raise RuntimeError("core was created with profile_cycles=False")
        return cls(core.program, core.pc_profile, core.cycles,
                   tile=core.core_id)

    # -- folding -----------------------------------------------------------

    def _block_label(self, block):
        label = self.program.label_of(block.start)
        return label if label is not None else f"bb{block.index}"

    def _fold_blocks(self):
        blocks = []
        for block in self.program.basic_blocks():
            profile = BlockProfile(
                block.index, self._block_label(block), block.start, block.end
            )
            for pc in range(block.start, block.end):
                entry = self.pc_cycles.get(pc)
                if entry is not None:
                    profile.cycles += entry[0]
                    profile.retired += entry[1]
            blocks.append(profile)
        return blocks

    def _fold_loops(self):
        """Per-loop totals with nesting (needs a valid CFG)."""
        if self.cfg is None:
            return []
        by_block = {b.index: b for b in self.blocks}
        loops = []
        for loop in self.cfg.loops:
            header_block = by_block[loop.header]
            name = f"loop@{header_block.label}"
            profile = LoopProfile(name, loop.header, loop.blocks)
            profile.total_cycles = sum(
                by_block[index].cycles for index in loop.blocks
            )
            # Retirements per header instruction ~= times the loop ran.
            profile.entries = header_block.retired // (
                header_block.end - header_block.start
            )
            loops.append(profile)
        # Nest by body inclusion: the smallest strict superset is the
        # parent (natural loops of distinct headers either nest or are
        # disjoint on reducible graphs).
        loops.sort(key=lambda lp: len(lp.blocks))
        for i, inner in enumerate(loops):
            for outer in loops[i + 1:]:
                if inner.blocks < outer.blocks:
                    inner.parent = outer
                    break
        for loop in loops:
            loop.depth = 0
            parent = loop.parent
            while parent is not None:
                loop.depth += 1
                parent = parent.parent
        # Self = total minus immediate children (clamped: irreducible
        # sharing could otherwise over-subtract).
        for loop in loops:
            children = sum(
                child.total_cycles for child in loops if child.parent is loop
            )
            loop.self_cycles = max(0, loop.total_cycles - children)
        loops.sort(key=lambda lp: (-lp.total_cycles, lp.header))
        return loops

    # -- queries -----------------------------------------------------------

    def profiled_cycles(self):
        """Sum of the histogram — must equal ``total_cycles`` exactly."""
        return sum(cycles for cycles, _ in self.pc_cycles.values())

    def retired_instructions(self):
        return sum(retired for _, retired in self.pc_cycles.values())

    def reconciles(self):
        """True when every simulated cycle is attributed to some PC."""
        return self.profiled_cycles() == self.total_cycles

    def loops_of_block(self, index):
        """Enclosing loops of a block, outermost first."""
        chain = [loop for loop in self.loops if index in loop.blocks]
        chain.sort(key=lambda lp: lp.depth)
        return chain

    def folded_stacks(self):
        """Flamegraph folded lines: ``prog;loop;block self-cycles``."""
        lines = []
        for block in self.blocks:
            if not block.cycles:
                continue
            frames = [self.program.name]
            frames.extend(lp.name for lp in self.loops_of_block(block.index))
            frames.append(block.label)
            lines.append((";".join(frames), block.cycles))
        lines.sort(key=lambda pair: (-pair[1], pair[0]))
        return lines

    def hottest_blocks(self, limit=None):
        ranked = sorted(self.blocks, key=lambda b: (-b.cycles, b.index))
        return ranked[:limit] if limit is not None else ranked

    def to_dict(self):
        """The ``repro profile --json`` payload."""
        return {
            "program": self.program.name,
            "tile": self.tile,
            "total_cycles": self.total_cycles,
            "profiled_cycles": self.profiled_cycles(),
            "reconciled": self.reconciles(),
            "instructions": self.retired_instructions(),
            "has_cfg": self.cfg is not None,
            "blocks": [
                {
                    "index": b.index,
                    "label": b.label,
                    "range": [b.start, b.end],
                    "cycles": b.cycles,
                    "retired": b.retired,
                }
                for b in self.blocks
            ],
            "loops": [
                {
                    "name": lp.name,
                    "header": lp.header,
                    "blocks": sorted(lp.blocks),
                    "depth": lp.depth,
                    "parent": lp.parent.name if lp.parent else None,
                    "total_cycles": lp.total_cycles,
                    "self_cycles": lp.self_cycles,
                }
                for lp in self.loops
            ],
            "pcs": {
                str(pc): {"cycles": cycles, "retired": retired}
                for pc, (cycles, retired) in sorted(self.pc_cycles.items())
            },
        }


def profile_kernel_cycles(name, seed=1, max_instructions=5_000_000):
    """Profile one kernel's baseline program on a bare tile.

    Returns ``(profile, core)`` — the core is kept so callers can
    cross-check against its attribution counters.
    """
    from repro.cpu.core import Core, STOP_HALT
    from repro.mem.hierarchy import MemorySystem
    from repro.workloads import make_kernel

    kernel = make_kernel(name, seed=seed)
    core = Core(kernel.program, MemorySystem.stitch(), profile_cycles=True)
    if kernel.setup is not None:
        kernel.setup(core)
    outcome = core.run(max_instructions=max_instructions)
    if outcome.reason != STOP_HALT:
        raise RuntimeError(
            f"kernel {name!r} did not halt within {max_instructions} "
            f"instructions (reason: {outcome.reason})"
        )
    return CycleProfile.from_core(core), core


def profile_app_cycles(app_name, seed=1, items=2, telemetry=None):
    """Profile every tile of an application's Stitch co-simulation.

    Returns ``(profiles, results)`` — ``profiles`` maps tile id to its
    :class:`CycleProfile`, ``results`` is the co-simulator's
    :class:`~repro.sim.system.RunResults` (whose ``stats`` roll-up the
    V900 check reconciles against).
    """
    from repro.sim.baselines import ARCH_STITCH, AppEvaluator
    from repro.workloads.apps import APP_FACTORIES

    factory = APP_FACTORIES.get(app_name.upper())
    if factory is None:
        raise KeyError(
            f"unknown app {app_name!r}; choose from {sorted(APP_FACTORIES)}"
        )
    evaluator = AppEvaluator(factory(seed=seed))
    system, _plan = evaluator.build_system(
        ARCH_STITCH, items=items, telemetry=telemetry, profile_cycles=True
    )
    results = system.run()
    profiles = {
        core.core_id: CycleProfile.from_core(core)
        for core in system.cores
        if core is not None
    }
    return profiles, results
