"""Text renderings of a :class:`~repro.profile.CycleProfile`.

Three forms, matching ``repro profile``'s flags:

* :func:`render_summary` — ranked hot blocks and loops with cycle
  shares (the default view),
* :func:`render_annotated` — the disassembly with per-instruction
  cycles, retirements and cycle share in the margin,
* :func:`render_folded` — flamegraph "folded stacks" lines
  (``prog;loop;block cycles``) for ``flamegraph.pl`` / speedscope.
"""


def _share(cycles, total):
    return cycles / total if total else 0.0


def render_summary(profile, limit=10):
    """Ranked hot loops + blocks, with the reconciliation line."""
    total = profile.total_cycles
    lines = [
        f"{profile.program.name} (tile {profile.tile}): "
        f"{total} cycles, {profile.retired_instructions()} instructions",
        f"profiled cycles: {profile.profiled_cycles()} "
        f"({'reconciled' if profile.reconciles() else 'MISSING CYCLES'})",
    ]
    if profile.loops:
        lines.append("hot loops (total incl. nested / self):")
        for loop in profile.loops[:limit]:
            indent = "  " * loop.depth
            lines.append(
                f"  {indent}{loop.name:20s} "
                f"{loop.total_cycles:10d} ({_share(loop.total_cycles, total):6.1%})"
                f" / {loop.self_cycles:10d} ({_share(loop.self_cycles, total):6.1%})"
                f"  x{loop.entries}"
            )
    elif profile.cfg is None:
        lines.append("(no CFG: branch targets unresolved, block view only)")
    lines.append("hot blocks (self):")
    for block in profile.hottest_blocks(limit):
        if not block.cycles:
            continue
        lines.append(
            f"  {block.label:20s} [{block.start}:{block.end}) "
            f"{block.cycles:10d} ({_share(block.cycles, total):6.1%})"
            f"  {block.retired} retired"
        )
    return "\n".join(lines)


def render_annotated(profile):
    """Disassembly with cycles / retirements / share per instruction."""
    program = profile.program
    total = profile.total_cycles
    index_labels = {}
    for label, target in program.labels.items():
        index_labels.setdefault(target, []).append(label)
    lines = [
        f"{program.name} (tile {profile.tile}): {total} cycles",
        f"{'cycles':>10s} {'share':>7s} {'retired':>8s}  instruction",
    ]
    for index, instr in enumerate(program.instructions):
        for label in index_labels.get(index, ()):
            lines.append(f"{label}:")
        cycles, retired = profile.pc_cycles.get(index, (0, 0))
        share = f"{_share(cycles, total):6.1%}" if cycles else "      "
        count = f"{cycles}" if cycles else "."
        lines.append(
            f"{count:>10s} {share:>7s} {retired if retired else '.':>8}  "
            f"    {instr.text()}"
        )
    return "\n".join(lines)


def render_folded(profile):
    """Folded-stack lines (one per block with self cycles)."""
    return "\n".join(
        f"{frames} {cycles}" for frames, cycles in profile.folded_stacks()
    )
