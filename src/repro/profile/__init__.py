"""Cycle-attribution profiler (``repro profile``).

Folds each core's retired-cycle PC histogram onto basic blocks and
natural loops; cycle totals reconcile *exactly* with the simulator's
attribution counters (rule V900 enforces this).
"""

from repro.profile.profiler import (
    BlockProfile,
    CycleProfile,
    LoopProfile,
    profile_app_cycles,
    profile_kernel_cycles,
)
from repro.profile.report import (
    render_annotated,
    render_folded,
    render_summary,
)

__all__ = [
    "BlockProfile",
    "CycleProfile",
    "LoopProfile",
    "profile_app_cycles",
    "profile_kernel_cycles",
    "render_annotated",
    "render_folded",
    "render_summary",
]
