"""Built-in design-space studies.

Each study is a function returning a list of sweep points (see
:mod:`repro.sweep.runner` for the point shape).  All configs are
derived from the ``stitch`` preset, so a study varies exactly one axis
and holds everything else at the paper's numbers:

* ``mesh`` — the token ring on 2x2 / 4x4 / 8x8 meshes (NoC scaling),
* ``dram`` — kernel cycles as DRAM latency sweeps 10..100 cycles,
* ``dcache`` — kernel cycles as the D$ sweeps 2..16 KB.
"""

from repro.platform import PlatformConfig

# Kernels the memory studies run: FIR streams through the D$, the
# histogram's table lives in the SPM — together they show which axis a
# memory knob actually moves.
STUDY_KERNELS = ("fir", "histogram")

MESH_SIZES = ((2, 2), (4, 4), (8, 8))
DRAM_LATENCIES = (10, 30, 50, 70, 100)
DCACHE_KB = (2, 4, 8, 16)


def _kernel_point(config, kernel, seed=1):
    return {
        "id": f"{config.name}/{kernel}",
        "config": config.to_dict(),
        "workload": {"kind": "kernel", "name": kernel, "seed": seed},
    }


def _ring_point(config, laps=2):
    return {
        "id": f"{config.name}/ring",
        "config": config.to_dict(),
        "workload": {"kind": "ring", "laps": laps},
    }


def study_mesh():
    """Token-ring scaling over mesh sizes (Section VI's 16-tile array
    versus smaller/larger wearable-class fabrics)."""
    points = []
    for width, height in MESH_SIZES:
        config = PlatformConfig.stitch().derive(
            f"mesh{width}x{height}",
            noc={"mesh_width": width, "mesh_height": height},
        )
        points.append(_ring_point(config))
    return points


def study_dram():
    """Kernel sensitivity to DRAM latency (Table II says 30 cycles).

    Derived from the *baseline* preset: with the SPM folded into the
    D$ the kernels' data traffic actually reaches DRAM on misses, so
    the latency knob moves cycle counts instead of only the I$ fill.
    """
    points = []
    for latency in DRAM_LATENCIES:
        config = PlatformConfig.baseline().derive(
            f"dram{latency}", mem={"dram_latency": latency}
        )
        for kernel in STUDY_KERNELS:
            points.append(_kernel_point(config, kernel))
    return points


def study_dcache():
    """Kernel sensitivity to D$ capacity (the paper's SPM-vs-8KB-D$
    discussion, Section III-C).  Baseline-derived for the same reason
    as :func:`study_dram`: the suite's data lives in the SPM when one
    exists, so only a cache-backed tile shows the capacity effect."""
    points = []
    for kilobytes in DCACHE_KB:
        config = PlatformConfig.baseline().derive(
            f"dcache{kilobytes}k", mem={"dcache_bytes": kilobytes * 1024}
        )
        for kernel in STUDY_KERNELS:
            points.append(_kernel_point(config, kernel))
    return points


STUDIES = {
    "mesh": study_mesh,
    "dram": study_dram,
    "dcache": study_dcache,
}


def make_points(studies=None):
    """Concatenate the requested studies (default: all, in name order)."""
    names = tuple(studies) if studies is not None else tuple(sorted(STUDIES))
    points = []
    for name in names:
        try:
            study = STUDIES[name]
        except KeyError:
            raise KeyError(
                f"unknown study {name!r}; choose from {sorted(STUDIES)}"
            ) from None
        points.extend(study())
    return points


def smoke_points():
    """The CI smoke sweep: 2 configs x 2 kernels, a few seconds total."""
    stitch = PlatformConfig.stitch()
    dram50 = stitch.derive("dram50", mem={"dram_latency": 50})
    return [
        _kernel_point(config, kernel)
        for config in (stitch, dram50)
        for kernel in STUDY_KERNELS
    ]
