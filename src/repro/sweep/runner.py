"""Process-parallel execution of sweep points.

A *point* is a plain JSON-shaped dict::

    {"id": "dram50/fir",
     "config": {...PlatformConfig.to_dict()...},
     "workload": {"kind": "kernel", "name": "fir", "seed": 1}}

Workload kinds:

* ``kernel`` — run one Figure-11 kernel on a single tile built from the
  config's memory parameters; reports cycles, instructions, cache hit
  rates and a result checksum (the bit-exactness witness).
* ``ring`` — a token ring over every tile of the config's mesh: tile 0
  injects a token, each tile increments and forwards it, and the run
  reports the makespan plus the final token value.  This exercises the
  whole co-simulator (NoC timing, message passing, per-tile memories),
  so it is the workload the mesh study sweeps.

:func:`run_sweep` fans points over a :class:`ProcessPoolExecutor`.
Points are pure functions of their dict (fresh processes, no shared
caches), and the merge step reassembles results in the submitted
order — parallel and serial runs are byte-identical by construction,
which ``--check-serial`` (and the CI smoke job) assert.

A workload may pin ``"engine"`` (``auto``/``fast``/``instrumented``/
``reference``, see :class:`repro.cpu.Core`) to force a particular
execution loop — the differential harness uses this to diff sweep
points between engines; the default ``auto`` picks the fast loop
whenever the point records no telemetry.

A workload with ``"telemetry": true`` additionally captures a per-point
:class:`~repro.telemetry.Stats` registry (shipped across the process
boundary in its flat picklable form) and the payload gains a
``stats_total`` — every point's registry folded together with
:meth:`Stats.merge` in submission order, so the aggregate is as
deterministic as the per-point records.
"""

import json
import zlib
from concurrent.futures import ProcessPoolExecutor

from repro.platform import PlatformConfig

SCHEMA_VERSION = 1


def _checksum(value):
    """Stable checksum of a kernel-result structure (ints/sequences)."""
    return zlib.crc32(repr(value).encode("utf-8")) & 0xFFFFFFFF


def _hit_rate(cache):
    total = cache.hits + cache.misses
    return round(cache.hits / total, 6) if total else None


def _kernel_stats(core, memory):
    """Per-point Stats registry of one kernel run (telemetry mode)."""
    from repro.telemetry import Stats

    stats = Stats()
    stats.add("kernel.cycles", core.cycles)
    stats.add("kernel.instructions", core.instret)
    for bucket, value in core.attribution().items():
        if bucket != "total":
            stats.add(f"kernel.attribution.{bucket}", value)
    for level in ("icache", "dcache"):
        cache = getattr(memory, level)
        stats.add(f"kernel.{level}.hits", cache.hits)
        stats.add(f"kernel.{level}.misses", cache.misses)
    return stats


def _critpath_metrics(recorder, measured):
    """Compact causal-analysis record for one sweep point.

    The full graph stays out of the payload (sweeps run thousands of
    points); what survives is the reconciliation verdict and the
    critical-time decomposition — the numbers a study plots.
    """
    from repro.critpath import DependencyGraph, analyze

    graph = DependencyGraph.from_recorder(recorder)
    analysis = analyze(graph)
    attribution = analysis.attribution()
    return {
        "reconciled": analysis.reconciled(),
        "consistent": analysis.consistent(),
        "critical_cycles": analysis.total,
        "by_kind": attribution["kinds"],
        "tile_critical_cycles": {
            str(tile): cycles
            for tile, cycles in sorted(
                attribution["tile_critical_cycles"].items()
            )
        },
    }


def _run_kernel(config, workload):
    from repro.cpu.core import Core
    from repro.mem.hierarchy import MemorySystem
    from repro.workloads import make_kernel

    recorder = None
    if workload.get("critpath"):
        from repro.critpath import DependencyRecorder

        recorder = DependencyRecorder(config)
    kernel = make_kernel(workload["name"], seed=workload.get("seed", 1))
    memory = MemorySystem(config.mem)
    core = Core(kernel.program, memory, params=config.core,
                recorder=recorder,
                engine=workload.get("engine", "auto"))
    kernel.setup(core)
    outcome = core.run(
        max_instructions=workload.get("max_instructions", 20_000_000)
    )
    if outcome.reason != "halt":
        raise RuntimeError(
            f"kernel {workload['name']!r} did not halt ({outcome.reason})"
        )
    metrics = {
        "cycles": core.cycles,
        "instructions": core.instret,
        "icache_hit_rate": _hit_rate(memory.icache),
        "dcache_hit_rate": _hit_rate(memory.dcache),
        "result_checksum": _checksum(kernel.result(core)),
    }
    if recorder is not None:
        recorder.tile_done(0, core.cycles, outcome.reason,
                           core._recorder_counters())
        recorder.finish("complete")
        metrics["critpath"] = _critpath_metrics(recorder, core.cycles)
    stats = _kernel_stats(core, memory) if workload.get("telemetry") else None
    return metrics, stats


def ring_programs(num_tiles, token=1, laps=1):
    """Token-ring binaries: ``{tile: program}`` for an N-tile ring.

    Tile 0 injects ``token``, every tile adds its tile id and forwards,
    and after ``laps`` trips tile 0 holds the final value in ``r4``.
    The expected value is :func:`ring_expected`.
    """
    from repro.isa import assemble

    if num_tiles < 2:
        raise ValueError("a ring needs at least two tiles")
    programs = {}
    for tile in range(num_tiles):
        nxt = (tile + 1) % num_tiles
        prev = (tile - 1) % num_tiles
        if tile == 0:
            body = [f"movi r4, {token}"]
            for _ in range(laps):
                body += [
                    f"movi r1, {nxt}",
                    "movi r2, 0x100",
                    "movi r3, 1",
                    "sw   r4, 0(r2)",
                    "send r1, r2, r3",
                    f"movi r1, {prev}",
                    "movi r2, 0x200",
                    "recv r1, r2, r3",
                    "lw   r4, 0(r2)",
                ]
            body.append("halt")
        else:
            body = []
            for _ in range(laps):
                body += [
                    f"movi r1, {prev}",
                    "movi r2, 0x200",
                    "movi r3, 1",
                    "recv r1, r2, r3",
                    "lw   r4, 0(r2)",
                    f"addi r4, r4, {tile}",
                    "movi r2, 0x100",
                    "sw   r4, 0(r2)",
                    f"movi r1, {nxt}",
                    "send r1, r2, r3",
                ]
            body.append("halt")
        programs[tile] = assemble("\n".join(body))
    return programs


def ring_expected(num_tiles, token=1, laps=1):
    """Final token value after ``laps`` trips around the ring."""
    return token + laps * sum(range(1, num_tiles))


def _run_ring(config, workload):
    from repro.sim.system import StitchSystem

    token = workload.get("token", 1)
    laps = workload.get("laps", 1)
    telemetry = None
    recorder = None
    if workload.get("telemetry") or workload.get("critpath"):
        from repro.telemetry import NULL_STATS, NULL_TRACER, Stats, Telemetry

        if workload.get("critpath"):
            from repro.critpath import DependencyRecorder

            recorder = DependencyRecorder(config)
        stats = Stats() if workload.get("telemetry") else NULL_STATS
        telemetry = Telemetry(stats=stats, tracer=NULL_TRACER,
                              recorder=recorder)
    system = StitchSystem(platform=config, telemetry=telemetry,
                          engine=workload.get("engine", "auto"))
    num_tiles = system.mesh.num_tiles
    for tile, program in ring_programs(num_tiles, token, laps).items():
        system.load(tile, program)
    results = system.run()
    metrics = {
        "tiles": num_tiles,
        "makespan": system.makespan(results),
        "total_instructions": sum(r.instructions for r in results),
        "token": system.cores[0].regs[4],
        "token_expected": ring_expected(num_tiles, token, laps),
    }
    if recorder is not None:
        metrics["critpath"] = _critpath_metrics(
            recorder, metrics["makespan"]
        )
    stats = (telemetry.stats if telemetry is not None
             and telemetry.stats.enabled else None)
    return metrics, stats


def _run_chaos(config, workload):
    """One fault-injection point (see :mod:`repro.chaos.campaign`)."""
    from repro.chaos.campaign import run_chaos_point

    return run_chaos_point(config, workload)


_WORKLOADS = {"kernel": _run_kernel, "ring": _run_ring, "chaos": _run_chaos}


def run_point(point):
    """Execute one sweep point; pure function of the point dict.

    Top-level (picklable) so :class:`ProcessPoolExecutor` can ship it
    to worker processes.  Returns the point's result record; workload
    failures are captured as an ``error`` field rather than raised, so
    one bad point never sinks a whole sweep.
    """
    config = PlatformConfig.from_dict(point["config"])
    workload = point["workload"]
    record = {
        "id": point["id"],
        "config": config.name,
        "workload": dict(workload),
    }
    runner = _WORKLOADS.get(workload.get("kind"))
    try:
        if runner is None:
            raise ValueError(f"unknown workload kind {workload.get('kind')!r}")
        record["metrics"], stats = runner(config, workload)
        if stats is not None:
            # Flat form crosses the process boundary; merged by run_sweep.
            record["stats"] = stats.to_flat()
    except Exception as exc:  # captured, not raised: keep the sweep going
        record["error"] = f"{type(exc).__name__}: {exc}"
    return record


def run_sweep(points, workers=None):
    """Run every point; returns the merged sweep payload.

    ``workers`` <= 1 (or ``None``) runs serially in-process; anything
    larger fans out over a process pool.  The merged payload lists
    results in the submitted point order either way.
    """
    points = list(points)
    duplicates = sorted(
        {p["id"] for p in points if sum(q["id"] == p["id"] for q in points) > 1}
    )
    if duplicates:
        raise ValueError(f"duplicate sweep point id(s): {duplicates}")
    if workers is not None and workers > 1 and len(points) > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # executor.map preserves input order, so the merge is
            # deterministic no matter which worker finishes first.
            results = list(pool.map(run_point, points))
    else:
        results = [run_point(point) for point in points]
    payload = {
        "schema": SCHEMA_VERSION,
        "points": len(results),
        "errors": sum(1 for r in results if "error" in r),
        "results": results,
    }
    carried = [r["stats"] for r in results if "stats" in r]
    if carried:
        from repro.telemetry import Stats

        total = Stats()
        for flat in carried:  # submission order == results order
            total.merge(flat)
        payload["stats_total"] = total.to_flat()
    return payload


def sweep_to_json(payload):
    """Canonical JSON rendering (what ``--check-serial`` compares)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
