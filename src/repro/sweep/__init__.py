"""Design-space sweep runner (``python -m repro sweep``).

A sweep point pairs a :class:`repro.platform.PlatformConfig` (as its
JSON dict) with a workload; :func:`repro.sweep.runner.run_sweep` fans
the points over a process pool and merges the results
deterministically, so ``--workers 8`` and ``--workers 1`` produce
byte-identical JSON.  :mod:`repro.sweep.studies` defines the built-in
studies (mesh size, DRAM latency, D$ capacity).
"""

from repro.sweep.runner import run_point, run_sweep, sweep_to_json
from repro.sweep.studies import STUDIES, make_points, smoke_points

__all__ = [
    "run_point",
    "run_sweep",
    "sweep_to_json",
    "STUDIES",
    "make_points",
    "smoke_points",
]
