"""Message-passing fabric over the inter-core NoC.

Each ordered pair of tiles has a :class:`Channel` — a word FIFO where
every word carries the cycle at which it arrived at the receiver.  A
``recv`` of N words completes at::

    max(local time, arrival of the Nth word) + drain cycles

where draining charges one cycle per flit of NIC-to-memory transfer.
"""

from repro.chaos.injector import NULL_INJECTOR
from repro.cpu.core import CommPort
from repro.noc.network import Network
from repro.noc.packet import WORDS_PER_FLIT
from repro.telemetry import NULL_TELEMETRY


class Channel:
    """Words in flight (or delivered) from one tile to another."""

    __slots__ = ("words", "arrivals")

    def __init__(self):
        self.words = []
        self.arrivals = []

    def push(self, values, arrival):
        self.words.extend(values)
        self.arrivals.extend([arrival] * len(values))

    def available(self, count):
        return len(self.words) >= count

    def ready_time(self, count):
        """Arrival cycle of the ``count``-th queued word."""
        return self.arrivals[count - 1] if count else 0

    def pop(self, count):
        values = self.words[:count]
        del self.words[:count]
        del self.arrivals[:count]
        return values

    def __len__(self):
        return len(self.words)


class TileComm(CommPort):
    """The CommPort wired into one tile's core."""

    def __init__(self, fabric, tile):
        self.fabric = fabric
        self.tile = tile

    def send(self, peer, values, now):
        return self.fabric.send(self.tile, peer, values, now)

    def try_recv(self, peer, count, now):
        return self.fabric.try_recv(peer, self.tile, count, now)


class MessagePassing:
    """The shared fabric: channels + the NoC timing model."""

    def __init__(self, network=None, num_tiles=16, telemetry=None,
                 injector=None):
        self.network = network if network is not None else Network()
        self.num_tiles = num_tiles
        self.injector = injector if injector is not None else NULL_INJECTOR
        telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._occupancy_hist = telemetry.stats.histogram(
            "fabric.channel_occupancy"
        )
        self._timeseries = telemetry.timeseries
        self._recorder = telemetry.recorder
        self._channels = {}
        self.messages = 0
        self.words = 0
        # Occupancy tracking: words currently queued anywhere, the
        # all-time high-water mark, and a per-channel high-water mark.
        self.words_in_flight = 0
        self.max_words_in_flight = 0
        self.channel_high_water = {}

    def port(self, tile):
        """Create the comm port for ``tile``."""
        if not 0 <= tile < self.num_tiles:
            raise ValueError(f"tile out of range: {tile}")
        return TileComm(self, tile)

    def channel(self, src, dst):
        key = (src, dst)
        chan = self._channels.get(key)
        if chan is None:
            chan = Channel()
            self._channels[key] = chan
        return chan

    def send(self, src, dst, values, now):
        """Inject ``values`` from ``src`` to ``dst``; returns sender finish."""
        if not 0 <= dst < self.num_tiles:
            raise ValueError(f"destination tile out of range: {dst}")
        dropped = False
        if self.injector.armed:
            # Channel corruption / dropped flits: the NoC still burns
            # the cycles either way, but dropped payloads never land.
            values, dropped = self.injector.outbound(src, dst, values, now)
        arrival, injection_done = self.network.send(src, dst, len(values), now)
        if dropped:
            return injection_done
        chan = self.channel(src, dst)
        chan.push(values, arrival)
        if self._recorder.enabled:
            self._recorder.fabric_send(src, dst, len(values), now, arrival,
                                       injection_done)
        self.messages += 1
        self.words += len(values)
        self.words_in_flight += len(values)
        if self.words_in_flight > self.max_words_in_flight:
            self.max_words_in_flight = self.words_in_flight
        key = (src, dst)
        occupancy = len(chan)
        if occupancy > self.channel_high_water.get(key, 0):
            self.channel_high_water[key] = occupancy
        self._occupancy_hist.observe(occupancy)
        if self._timeseries.enabled:
            self._timeseries.channel_occupancy(src, dst, now, occupancy)
        return injection_done

    def try_recv(self, src, dst, count, now):
        """Receive ``count`` words at ``dst`` from ``src``; None if not ready."""
        chan = self.channel(src, dst)
        if not chan.available(count):
            return None
        ready = chan.ready_time(count)
        values = chan.pop(count)
        self.words_in_flight -= count
        drain = (count + WORDS_PER_FLIT - 1) // WORDS_PER_FLIT
        finish = max(now, ready) + drain
        if self.injector.armed:
            # Checksum side-band verification + bounded retry-backoff.
            values, finish = self.injector.inbound(src, dst, values, finish)
        if self._recorder.enabled:
            self._recorder.fabric_recv(src, dst, count, now, ready, finish,
                                       drain)
        return values, finish

    def earliest_ready(self, dst):
        """Earliest arrival among words queued for ``dst`` (None if empty).

        Used by the system simulator to decide when a blocked core can
        be re-polled.
        """
        times = [
            chan.arrivals[0]
            for (src, d), chan in self._channels.items()
            if d == dst and chan.arrivals
        ]
        return min(times) if times else None

    def pending_words(self, dst=None):
        if dst is None:
            return sum(len(chan) for chan in self._channels.values())
        return sum(len(chan) for (s, d), chan in self._channels.items() if d == dst)

    def pending_channels(self, dst):
        """{src: queued words} for every non-empty channel into ``dst``."""
        return {
            src: len(chan)
            for (src, d), chan in self._channels.items()
            if d == dst and len(chan)
        }

    def stats(self):
        """Aggregate fabric statistics (feeds the SystemStats roll-up)."""
        return {
            "messages": self.messages,
            "words": self.words,
            "words_in_flight": self.words_in_flight,
            "max_words_in_flight": self.max_words_in_flight,
            "channel_high_water": dict(self.channel_high_water),
        }

    def reset_stats(self):
        """Zero the counters/high-water marks (queued words are kept)."""
        self.messages = 0
        self.words = 0
        self.max_words_in_flight = self.words_in_flight
        self.channel_high_water.clear()
