"""Lightweight message-passing runtime (the paper's MPI-subset library).

Stitch uses message passing instead of shared memory to avoid coherence
overhead.  :class:`MessagePassing` gives each tile a
:class:`~repro.cpu.CommPort` backed by the inter-core NoC: ``send`` is
asynchronous (the NIC injects and the core continues once injection
completes), ``recv`` blocks until the requested number of words from the
named peer has arrived.
"""

from repro.mpi.runtime import Channel, MessagePassing, TileComm

__all__ = ["Channel", "MessagePassing", "TileComm"]
