"""ASCII Gantt rendering of a recorded run, critical path highlighted.

One row per tile, time left to right, the whole makespan scaled into
the requested width.  Lowercase glyphs are off-path activity, their
uppercase/emphasized twins mark cycles the critical path runs through:

    - / #   compute          s / S   send (NIC injection)
    . / W   waiting on data  d / D   recv drain (NIC -> memory)

A summary of the critical path's hops and each tile's critical-time
share follows the chart.
"""

from repro.critpath.graph import (
    COMPUTE,
    DRAIN,
    INJECT,
    NOC,
    SYNC,
)
from repro.critpath.recorder import KIND_RECV, KIND_SEND

_GLYPHS = {
    COMPUTE: ("-", "#"),
    INJECT: ("s", "S"),
    SYNC: (".", "W"),
    DRAIN: ("d", "D"),
}

LEGEND = ("legend: -/# compute   s/S send   ./W wait-for-data   "
          "d/D drain   (uppercase = critical path)")


def _critical_windows(analysis):
    """{tile: [(start, end, kind)]} intervals the critical path covers."""
    windows = {}
    for step in analysis.steps:
        if step.kind == NOC or step.tile is None or step.weight == 0:
            continue
        windows.setdefault(step.tile, []).append(
            (step.src.time, step.dst.time, step.kind)
        )
    return windows


def _paint(row, span, width, start, end, glyph):
    if end <= start:
        return
    lo = int(start * width // span)
    hi = max(lo + 1, int(end * width // span))
    for col in range(lo, min(hi, width)):
        row[col] = glyph


def render_gantt(graph, analysis, width=72):
    """The chart + critical-path summary as one string."""
    span = max(graph.makespan, 1)
    width = max(16, width)
    critical = _critical_windows(analysis)
    lines = []
    for tile in graph.tiles():
        row = [" "] * width
        prev_end = 0
        for record in graph.tile_records(tile):
            _paint(row, span, width, prev_end, record.issue,
                   _GLYPHS[COMPUTE][0])
            if record.kind == KIND_SEND:
                _paint(row, span, width, record.issue, record.end,
                       _GLYPHS[INJECT][0])
            elif record.kind == KIND_RECV:
                ready = max(record.issue, record.ready)
                _paint(row, span, width, record.issue, ready,
                       _GLYPHS[SYNC][0])
                _paint(row, span, width, ready, record.end,
                       _GLYPHS[DRAIN][0])
            prev_end = record.end
        for start, end, kind in critical.get(tile, ()):
            _paint(row, span, width, start, end, _GLYPHS[kind][1])
        lines.append(f"tile {tile:>3} |{''.join(row)}|")
    lines.append(f"{'':9s}0{'cycles':^{width - 1}s}{graph.makespan}")
    lines.append(LEGEND)
    return "\n".join(lines)


def render_summary(graph, analysis, top=8):
    """Textual critical-path narrative + per-tile shares."""
    lines = [
        f"makespan: {graph.makespan} cycles ({graph.outcome})",
        f"critical path: {analysis.total} cycles over "
        f"{len(analysis.steps)} segment(s)"
        + ("" if analysis.reconciled() else
           "  ** DOES NOT RECONCILE (V1000) **"),
    ]
    attribution = analysis.attribution()
    kinds = attribution["kinds"]
    if kinds:
        parts = ", ".join(
            f"{kind} {cycles}" for kind, cycles in sorted(
                kinds.items(), key=lambda kv: -kv[1]
            ) if cycles
        )
        lines.append(f"by kind: {parts}")
    shares = attribution["tile_critical_cycles"]
    total = analysis.total or 1
    for tile in sorted(shares, key=lambda t: -shares[t]):
        lines.append(
            f"  tile {tile}: {shares[tile]} critical cycles "
            f"({shares[tile] / total:.1%})"
        )
    for channel, cycles in sorted(attribution["channels"].items(),
                                  key=lambda kv: -kv[1]):
        lines.append(f"  channel {channel}: {cycles} critical cycles "
                     f"({cycles / total:.1%})")
    hops = [step for step in analysis.steps if step.kind == NOC]
    if hops:
        lines.append(f"cross-tile hops on the path: {len(hops)}")
    frontier = analysis.frontier()
    if frontier:
        lines.append("blocked frontier (partial run):")
        for tile in sorted(frontier):
            info = frontier[tile]
            peer = info.get("peer")
            words = info.get("words")
            lines.append(
                f"  tile {tile}: waiting on tile {peer} for {words} word(s)"
            )
    slack_top = analysis.slack_summary(top=top)
    if slack_top:
        lines.append("largest slack (cheapest places to lose time):")
        for entry in slack_top[:top]:
            lines.append(
                f"  {entry['kind']:8s} tile {entry['tile']}  "
                f"float {entry['float']} cycles  "
                f"window {entry['window'][0]}..{entry['window'][1]}"
            )
    return "\n".join(lines)
