"""Causal execution-graph recording for multi-tile runs.

A :class:`DependencyRecorder` observes one run of the co-simulator and
keeps, per tile, the alternating compute/communication segments in
program order, plus the cross-tile provenance of every received word.
The hooks are *telemetry-style*: components hold the shared
:data:`NULL_RECORDER` when recording is off, and every warm call site
is guarded by a single ``if recorder.enabled`` check — the interpreter
hot loop itself carries **no** per-instruction work, because compute
segments are reconstructed from the tile-local clock at the comm
events that bracket them.

Two half-hooks meet per communication op:

* the **fabric** reports the timing facts it alone knows —
  ``fabric_send`` (NoC arrival + injection-done cycles, per-link
  crossings) and ``fabric_recv`` (ready time, drain, and the FIFO
  provenance of the popped words via :class:`ChannelMatcher`);
* the **core** closes the op — ``send``/``recv`` with its local issue
  and finish cycles plus a counter snapshot (instructions, stall
  buckets, cache misses/writebacks) so each compute segment carries an
  exact attribution and miss composition (the substrate of
  DRAM-latency what-ifs).

``tile_done``/``finish`` finalize a complete run; ``finish`` with a
``deadlock``/``budget`` outcome finalizes a *partial* graph whose
blocked receives become frontier nodes instead of crashing the
analysis.

This module must not import :mod:`repro.telemetry` or the simulator —
both import it.
"""

from repro.critpath.matcher import ChannelMatcher

#: Counter snapshot order (see :meth:`Core._recorder_counters`).  The
#: first four partition a compute segment's cycles exactly
#: (``cycles == instructions + memory + icache + branch`` between comm
#: ops — the attribution invariant); the last three are the DRAM-touch
#: counts a ``dram_latency`` what-if needs (each miss/writeback costs
#: exactly one DRAM latency).
COUNTER_FIELDS = (
    "instructions",
    "memory_stall",
    "icache_stall",
    "branch_bubble",
    "icache_misses",
    "dcache_misses",
    "dcache_writebacks",
    "cix",
)

_ZEROS = (0,) * len(COUNTER_FIELDS)

KIND_SEND = "send"
KIND_RECV = "recv"
KIND_HALT = "halt"
KIND_BLOCKED = "blocked"
KIND_CUT = "cut"


class OpRecord:
    """One tile-local event: a comm op, the halt, or a blocked recv.

    ``issue``/``end`` are tile-local cycles; the compute segment that
    *precedes* the event (from the previous event's ``end``) is stored
    on the record as ``compute`` plus its counter deltas, so each
    record fully describes one "compute then operate" step.
    """

    __slots__ = (
        "index", "kind", "tile", "seq", "issue", "end", "compute",
        "counters", "peer", "words",
        "arrival", "inject", "crossings",       # send
        "ready", "drain", "sources",            # recv
    )

    def __init__(self, index, kind, tile, seq, issue, end, compute,
                 counters, peer=None, words=None, arrival=None,
                 inject=None, crossings=(), ready=None, drain=None,
                 sources=()):
        self.index = index
        self.kind = kind
        self.tile = tile
        self.seq = seq
        self.issue = issue
        self.end = end
        self.compute = compute
        self.counters = counters
        self.peer = peer
        self.words = words
        self.arrival = arrival
        self.inject = inject
        self.crossings = list(crossings)
        self.ready = ready
        self.drain = drain
        self.sources = list(sources)

    @property
    def noc(self):
        """NoC flight time of a send: issue to last-flit arrival."""
        return self.arrival - self.issue if self.arrival is not None else None

    @property
    def wait(self):
        """Cycles a recv stalled beyond its local issue point."""
        if self.ready is None:
            return 0
        return max(0, self.ready - self.issue)

    @property
    def binding(self):
        """Record index of the send that delivered the last word."""
        return self.sources[-1][0] if self.sources else None

    def to_dict(self):
        payload = {
            "index": self.index,
            "kind": self.kind,
            "tile": self.tile,
            "seq": self.seq,
            "issue": self.issue,
            "end": self.end,
            "compute": self.compute,
            "counters": dict(self.counters),
        }
        if self.peer is not None:
            payload["peer"] = self.peer
        if self.words is not None:
            payload["words"] = self.words
        if self.kind == KIND_SEND:
            payload["arrival"] = self.arrival
            payload["inject"] = self.inject
            if self.crossings:
                payload["crossings"] = [list(c) for c in self.crossings]
        if self.kind == KIND_RECV:
            payload["ready"] = self.ready
            payload["drain"] = self.drain
            payload["sources"] = [list(s) for s in self.sources]
        return payload

    @classmethod
    def from_dict(cls, payload):
        return cls(
            payload["index"], payload["kind"], payload["tile"],
            payload["seq"], payload["issue"], payload["end"],
            payload["compute"], dict(payload.get("counters", {})),
            peer=payload.get("peer"), words=payload.get("words"),
            arrival=payload.get("arrival"), inject=payload.get("inject"),
            crossings=[tuple(c) for c in payload.get("crossings", ())],
            ready=payload.get("ready"), drain=payload.get("drain"),
            sources=[tuple(s) for s in payload.get("sources", ())],
        )

    def __repr__(self):
        return (f"OpRecord({self.kind} tile {self.tile} seq {self.seq} "
                f"@{self.issue}..{self.end})")


class DependencyRecorder:
    """Records the causal dependency structure of one run."""

    enabled = True

    def __init__(self, platform=None):
        self.records = []
        self.outcome = None            # "complete" | "deadlock" | "budget"
        self.snapshot = {}             # error snapshot for partial runs
        self.blocked = {}              # tile -> {"peer", "words", "cycles"}
        self.meta = {}
        if platform is not None:
            self.meta = {
                "platform": platform.name,
                "dram_latency": platform.mem.dram_latency,
            }
        self.chaos_events = []         # (tile, kind, site, cycle) tuples
        self._matcher = ChannelMatcher()
        self._snap = {}                # tile -> counter tuple
        self._prev_end = {}            # tile -> local clock after last event
        self._seq = {}                 # tile -> next sequence number
        self._crossings = []           # scratch: current packet's links
        self._pending_send = None
        self._pending_recv = None

    # -- fabric-side half-hooks ---------------------------------------------

    def noc_crossing(self, link, crossed, flits, waited):
        """One packet crossing one directed link (from the NoC model)."""
        self._crossings.append((f"{link[0]}->{link[1]}", crossed, flits,
                                waited))

    def fabric_send(self, src, dst, words, now, arrival, injection_done):
        """The fabric injected a message; core-side ``send`` closes it."""
        crossings = self._crossings
        self._crossings = []
        self._pending_send = (src, dst, words, now, arrival, injection_done,
                              crossings)

    def fabric_recv(self, src, dst, words, now, ready, finish, drain):
        """The fabric satisfied a receive; core-side ``recv`` closes it."""
        sources = self._matcher.pop(src, dst, words)
        self._pending_recv = (src, dst, words, now, ready, finish, drain,
                              sources)

    # -- core-side hooks -----------------------------------------------------

    def send(self, tile, peer, words, issue, end, counters):
        pending = self._pending_send
        self._pending_send = None
        if pending is not None and pending[0] == tile and pending[3] == issue:
            arrival, crossings = pending[4], pending[6]
        else:  # no fabric hook (bare harness): injection is all we know
            arrival, crossings = end, ()
        record = self._record(KIND_SEND, tile, issue, end, counters,
                              peer=peer, words=words, arrival=arrival,
                              inject=end - issue, crossings=crossings)
        self._matcher.push(tile, peer, record.index, words)
        return record

    def recv(self, tile, peer, words, issue, end, counters):
        pending = self._pending_recv
        self._pending_recv = None
        if pending is not None and pending[1] == tile and pending[3] == issue:
            ready, drain, sources = pending[4], pending[6], pending[7]
        else:
            ready, drain, sources = issue, end - issue, ()
        self.blocked.pop(tile, None)
        return self._record(KIND_RECV, tile, issue, end, counters,
                            peer=peer, words=words, ready=ready,
                            drain=drain, sources=sources)

    def recv_blocked(self, tile, peer, words, now):
        """A receive found no data; overwritten on every re-poll."""
        self.blocked[tile] = {"peer": peer, "words": words, "cycles": now}

    def chaos_event(self, tile, kind, site, cycle):
        """A fault-injection event (fault/detect/recover) on one tile.

        Kept as a side-band annotation stream so causal analyses can
        correlate anomalous segments with the injected faults that
        caused them.
        """
        self.chaos_events.append((tile, kind, site, cycle))

    # -- finalization --------------------------------------------------------

    def tile_done(self, tile, cycles, reason, counters):
        """Close a tile's timeline: its final compute segment + state.

        ``reason`` is the core's stop reason — ``halt`` for a finished
        tile, anything else (a blocked receive, an exhausted round
        budget) yields a ``blocked`` or ``cut`` terminal so partial
        graphs stay analyzable.
        """
        if reason == KIND_HALT:
            return self._record(KIND_HALT, tile, cycles, cycles, counters)
        info = self.blocked.get(tile)
        if info is not None:
            return self._record(KIND_BLOCKED, tile, cycles, cycles, counters,
                                peer=info["peer"], words=info["words"])
        return self._record(KIND_CUT, tile, cycles, cycles, counters)

    def finish(self, outcome="complete", snapshot=None):
        self.outcome = outcome
        if snapshot is not None:
            self.snapshot = snapshot

    # -- views ---------------------------------------------------------------

    def tiles(self):
        """{tile: [records in program order]}."""
        by_tile = {}
        for record in self.records:
            by_tile.setdefault(record.tile, []).append(record)
        return by_tile

    def makespan(self):
        """Latest recorded local cycle across all tiles (0 if empty)."""
        return max((r.end for r in self.records), default=0)

    def __len__(self):
        return len(self.records)

    # -- internals -----------------------------------------------------------

    def _record(self, kind, tile, issue, end, counters, **fields):
        previous = self._snap.get(tile, _ZEROS)
        deltas = {
            field: counters[i] - previous[i]
            for i, field in enumerate(COUNTER_FIELDS)
            if counters[i] != previous[i]
        }
        self._snap[tile] = counters
        prev_end = self._prev_end.get(tile, 0)
        self._prev_end[tile] = end
        seq = self._seq.get(tile, 0)
        self._seq[tile] = seq + 1
        record = OpRecord(len(self.records), kind, tile, seq, issue, end,
                          issue - prev_end, deltas, **fields)
        self.records.append(record)
        return record


class NullDependencyRecorder:
    """Disabled recorder: every hook is a no-op."""

    enabled = False
    records = ()
    outcome = None
    snapshot = {}
    blocked = {}
    meta = {}
    chaos_events = ()

    def noc_crossing(self, *args, **kwargs):
        pass

    fabric_send = fabric_recv = noc_crossing
    send = recv = recv_blocked = noc_crossing
    tile_done = finish = chaos_event = noc_crossing

    def tiles(self):
        return {}

    def makespan(self):
        return 0

    def __len__(self):
        return 0


NULL_RECORDER = NullDependencyRecorder()


def ensure_recorder(value):
    """Normalize a ``recorder=`` argument (None/False -> disabled)."""
    if value is None or value is False:
        return NULL_RECORDER
    if value is True:
        return DependencyRecorder()
    return value
