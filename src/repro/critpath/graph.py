"""The causal execution graph of one recorded run.

Nodes are single-timestamped events; edges carry the cycles that
separate cause from effect.  An edge is *tight* when its successor
happened exactly ``weight`` cycles after its predecessor — the
constraint was binding — and the whole design rides on one identity:
walking tight edges backward from the virtual END node telescopes the
node times, so the sum of critical-path edge weights equals the
makespan *exactly* (rule V1000 re-checks it anyway).

Per tile the recorder's op stream expands to:

* a ``start`` node at cycle 0,
* a send → ``send_issue`` (at issue) and ``send_done`` (at
  injection-done), joined by an ``inject`` edge (NIC serialization),
* a recv → ``recv_issue`` (at issue), ``recv_ready`` (at
  ``max(issue, ready)``) and ``recv_done`` (after the NIC drain),
  joined by a zero-weight ``sync`` edge (tight when the data was
  already waiting) and a ``drain`` edge,
* a terminal ``halt``/``blocked``/``cut`` node,

with ``compute`` edges chaining consecutive events of the tile (their
weight is the compute segment between them, carrying the counter
deltas) and two cross-cutting families:

* ``noc`` — from the *binding* send's ``send_done`` to the receive's
  ``recv_ready``, weighted by the message's flight time beyond
  injection; tight exactly when the receiver waited on the network,
* ``finish`` — zero-weight edges from every terminal node to the
  virtual END at the makespan; tight only for the last tile(s).

Channel-capacity back-edges do not appear here — the recorded fabric's
channels are unbounded, so sends never block; the what-if engine
synthesizes them when replaying under a ``channel_capacity=N`` clause.

Everything is reconstructible from the flat record list, so the JSON
form (:meth:`DependencyGraph.to_dict`) stores records + run metadata
and :meth:`from_dict` rebuilds nodes and edges deterministically.
"""

from repro.critpath.recorder import (
    KIND_BLOCKED,
    KIND_CUT,
    KIND_HALT,
    KIND_RECV,
    KIND_SEND,
    OpRecord,
)

SCHEMA_VERSION = 1

# Node roles.
START = "start"
SEND_ISSUE = "send_issue"
SEND_DONE = "send_done"
RECV_ISSUE = "recv_issue"
RECV_READY = "recv_ready"
RECV_DONE = "recv_done"
TERMINAL = "terminal"
END = "END"

# Edge kinds.
COMPUTE = "compute"
INJECT = "inject"
SYNC = "sync"
NOC = "noc"
DRAIN = "drain"
FINISH = "finish"


class Node:
    """One timestamped event of one tile (or the virtual END)."""

    __slots__ = ("id", "role", "tile", "time", "record")

    def __init__(self, id, role, tile, time, record=None):
        self.id = id
        self.role = role
        self.tile = tile        # None for END
        self.time = time
        self.record = record    # owning OpRecord index, if any

    def __repr__(self):
        return f"Node({self.id}: {self.role} tile {self.tile} @{self.time})"


class Edge:
    """A causal constraint: ``dst`` happened >= ``weight`` after ``src``."""

    __slots__ = ("src", "dst", "kind", "weight", "record")

    def __init__(self, src, dst, kind, weight, record=None):
        self.src = src
        self.dst = dst
        self.kind = kind
        self.weight = weight
        self.record = record    # OpRecord index the edge belongs to

    def __repr__(self):
        return f"Edge({self.src}->{self.dst} {self.kind} w={self.weight})"


class DependencyGraph:
    """Nodes + edges + the recorder context they came from."""

    def __init__(self, records, outcome=None, blocked=None, snapshot=None,
                 meta=None):
        self.records = list(records)
        self.outcome = outcome or "complete"
        self.blocked = dict(blocked or {})
        self.snapshot = dict(snapshot or {})
        self.meta = dict(meta or {})
        self.nodes = []
        self.edges = []
        self.end_node = None
        self.makespan = 0
        # record index -> {role: node id} for analysis/what-if cross-refs.
        self.record_nodes = {}
        self._build()

    @classmethod
    def from_recorder(cls, recorder):
        return cls(recorder.records, outcome=recorder.outcome,
                   blocked=recorder.blocked, snapshot=recorder.snapshot,
                   meta=recorder.meta)

    # -- construction --------------------------------------------------------

    def _node(self, role, tile, time, record=None):
        node = Node(len(self.nodes), role, tile, time, record)
        self.nodes.append(node)
        return node

    def _edge(self, src, dst, kind, weight, record=None):
        edge = Edge(src.id, dst.id, kind, weight, record)
        self.edges.append(edge)
        return edge

    def _build(self):
        by_tile = {}
        for record in self.records:
            by_tile.setdefault(record.tile, []).append(record)
        terminals = []
        for tile in sorted(by_tile):
            prev = self._node(START, tile, 0)
            for record in by_tile[tile]:
                roles = self.record_nodes.setdefault(record.index, {})
                if record.kind == KIND_SEND:
                    issue = self._node(SEND_ISSUE, tile, record.issue,
                                       record.index)
                    done = self._node(SEND_DONE, tile, record.end,
                                      record.index)
                    self._edge(prev, issue, COMPUTE, record.issue - prev.time,
                               record.index)
                    self._edge(issue, done, INJECT, record.end - record.issue,
                               record.index)
                    roles[SEND_ISSUE] = issue.id
                    roles[SEND_DONE] = done.id
                    prev = done
                elif record.kind == KIND_RECV:
                    issue = self._node(RECV_ISSUE, tile, record.issue,
                                       record.index)
                    ready_t = max(record.issue, record.ready)
                    ready = self._node(RECV_READY, tile, ready_t,
                                       record.index)
                    done = self._node(RECV_DONE, tile, record.end,
                                      record.index)
                    self._edge(prev, issue, COMPUTE, record.issue - prev.time,
                               record.index)
                    # Tight when the data beat the receiver to the NIC.
                    sync_weight = 0 if record.sources else ready_t - record.issue
                    self._edge(issue, ready, SYNC, sync_weight, record.index)
                    self._edge(ready, done, DRAIN, record.end - ready_t,
                               record.index)
                    roles[RECV_ISSUE] = issue.id
                    roles[RECV_READY] = ready.id
                    roles[RECV_DONE] = done.id
                    prev = done
                else:  # halt / blocked / cut
                    node = self._node(TERMINAL, tile, record.end, record.index)
                    self._edge(prev, node, COMPUTE, record.end - prev.time,
                               record.index)
                    roles[TERMINAL] = node.id
                    terminals.append(node)
                    prev = node
        # Message edges second: both endpoints now exist.
        for record in self.records:
            if record.kind != KIND_RECV or not record.sources:
                continue
            binding = self.records[record.binding]
            src_id = self.record_nodes[binding.index].get(SEND_DONE)
            dst_id = self.record_nodes[record.index][RECV_READY]
            if src_id is None:
                continue
            self._edge(self.nodes[src_id], self.nodes[dst_id], NOC,
                       record.ready - binding.end, record.index)
        self.makespan = max((n.time for n in self.nodes), default=0)
        self.end_node = self._node(END, None, self.makespan)
        for node in terminals:
            self._edge(node, self.end_node, FINISH, 0, node.record)

    # -- queries -------------------------------------------------------------

    def in_edges(self):
        """{node id: [edges]} incoming adjacency."""
        incoming = {node.id: [] for node in self.nodes}
        for edge in self.edges:
            incoming[edge.dst].append(edge)
        return incoming

    def out_edges(self):
        """{node id: [edges]} outgoing adjacency."""
        outgoing = {node.id: [] for node in self.nodes}
        for edge in self.edges:
            outgoing[edge.src].append(edge)
        return outgoing

    def slack(self, edge):
        """Local slack: cycles the constraint had to spare (>= 0 in a
        causally consistent recording; < 0 trips V1001)."""
        return (self.nodes[edge.dst].time - self.nodes[edge.src].time
                - edge.weight)

    def is_tight(self, edge):
        return self.slack(edge) == 0

    def tiles(self):
        seen = []
        for node in self.nodes:
            if node.tile is not None and node.tile not in seen:
                seen.append(node.tile)
        return sorted(seen)

    def tile_records(self, tile):
        return [r for r in self.records if r.tile == tile]

    def partial(self):
        """True when the run was cut short (deadlock / round budget)."""
        return self.outcome != "complete"

    # -- serialization -------------------------------------------------------

    def to_dict(self):
        return {
            "schema": SCHEMA_VERSION,
            "outcome": self.outcome,
            "makespan": self.makespan,
            "meta": dict(self.meta),
            "blocked": {str(t): dict(info) for t, info in self.blocked.items()},
            "snapshot": self.snapshot,
            "records": [record.to_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, payload):
        if payload.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported critpath graph schema {payload.get('schema')!r}"
            )
        records = [OpRecord.from_dict(r) for r in payload.get("records", ())]
        blocked = {
            int(tile): info
            for tile, info in payload.get("blocked", {}).items()
        }
        graph = cls(records, outcome=payload.get("outcome"),
                    blocked=blocked, snapshot=payload.get("snapshot"),
                    meta=payload.get("meta"))
        if graph.makespan != payload.get("makespan", graph.makespan):
            raise ValueError(
                f"critpath graph makespan mismatch: rebuilt "
                f"{graph.makespan}, stored {payload.get('makespan')}"
            )
        return graph

    def __repr__(self):
        return (f"DependencyGraph({len(self.nodes)} nodes, "
                f"{len(self.edges)} edges, makespan={self.makespan}, "
                f"{self.outcome})")
