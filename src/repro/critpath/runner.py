"""Harness entries: record kernels, apps and ad-hoc systems.

Kept out of :mod:`repro.critpath`'s package namespace on purpose — it
imports the simulator stack (workloads, the co-simulator, platform
presets), which the analysis modules must stay independent of.  The
CLI and tests import it directly.
"""

from repro.critpath.analyze import analyze
from repro.critpath.graph import DependencyGraph
from repro.critpath.recorder import DependencyRecorder
from repro.critpath.whatif import WhatIfSpec, replay


class RecordedRun:
    """A recorded run: the graph plus what the simulator reported."""

    __slots__ = ("target", "graph", "analysis", "measured", "results",
                 "error", "platform")

    def __init__(self, target, graph, measured, results=None, error=None,
                 platform=None):
        self.target = target
        self.graph = graph
        self.analysis = analyze(graph)
        self.measured = measured
        self.results = results
        self.error = error
        self.platform = platform

    @property
    def partial(self):
        return self.error is not None

    def project(self, expressions):
        return replay(self.graph, WhatIfSpec.parse(expressions))

    def to_dict(self):
        payload = {
            "target": self.target,
            "measured_cycles": self.measured,
            "partial": self.partial,
            "graph": self.graph.to_dict(),
            "analysis": self.analysis.to_dict(),
        }
        if self.error is not None:
            payload["error"] = f"{type(self.error).__name__}: {self.error}"
        return payload


def recording_telemetry(platform=None):
    """A telemetry bundle with *only* the dependency recorder enabled.

    Returns ``(telemetry, recorder)``; stats/tracing/sampling stay the
    null sinks so recording adds nothing to the instruction hot loop.
    """
    from repro.telemetry import (
        NULL_STATS,
        NULL_TIMESERIES,
        NULL_TRACER,
        Telemetry,
    )

    recorder = DependencyRecorder(platform)
    telemetry = Telemetry(NULL_STATS, NULL_TRACER, NULL_TIMESERIES,
                          recorder=recorder)
    return telemetry, recorder


def record_kernel(name, seed=1, platform=None, max_instructions=5_000_000):
    """Record one kernel's baseline program on a bare tile."""
    from repro.cpu.core import Core, STOP_HALT
    from repro.mem.hierarchy import MemorySystem
    from repro.platform import PlatformConfig
    from repro.workloads import make_kernel

    platform = platform if platform is not None else PlatformConfig.stitch()
    recorder = DependencyRecorder(platform)
    kernel = make_kernel(name, seed=seed)
    core = Core(kernel.program, MemorySystem(platform.mem),
                params=platform.core, recorder=recorder)
    if kernel.setup is not None:
        kernel.setup(core)
    outcome = core.run(max_instructions=max_instructions)
    if outcome.reason != STOP_HALT:
        raise RuntimeError(
            f"kernel {name!r} did not halt within {max_instructions} "
            f"instructions (reason: {outcome.reason})"
        )
    recorder.tile_done(0, core.cycles, outcome.reason,
                       core._recorder_counters())
    recorder.finish("complete")
    graph = DependencyGraph.from_recorder(recorder)
    return RecordedRun(name, graph, core.cycles, platform=platform)


def record_app(name, seed=1, items=2, platform=None):
    """Record an application's 16-tile Stitch co-simulation.

    Deadlocks and exhausted round budgets come back as a *partial*
    :class:`RecordedRun` (``error`` set, frontier in the analysis)
    instead of propagating.
    """
    from repro.sim.baselines import ARCH_STITCH, AppEvaluator
    from repro.sim.system import DeadlockError, RoundBudgetError
    from repro.workloads.apps import APP_FACTORIES

    factory = APP_FACTORIES.get(name.upper())
    if factory is None:
        raise KeyError(
            f"unknown app {name!r}; choose from {sorted(APP_FACTORIES)}"
        )
    evaluator = AppEvaluator(factory(seed=seed), platform=platform)
    telemetry, recorder = recording_telemetry(
        platform if platform is not None else _default_platform()
    )
    system, _plan = evaluator.build_system(
        ARCH_STITCH, items=items, telemetry=telemetry
    )
    return _run_recorded(name.upper(), system, recorder,
                         platform=platform, errors=(DeadlockError,
                                                    RoundBudgetError))


def record_system(target, system, recorder, **run_kwargs):
    """Record an already-loaded :class:`StitchSystem` (test harness)."""
    from repro.sim.system import DeadlockError, RoundBudgetError

    return _run_recorded(target, system, recorder,
                         platform=system.platform,
                         errors=(DeadlockError, RoundBudgetError),
                         **run_kwargs)


def _default_platform():
    from repro.platform import DEFAULT_PLATFORM

    return DEFAULT_PLATFORM


def _run_recorded(target, system, recorder, platform=None, errors=(),
                  **run_kwargs):
    try:
        results = system.run(**run_kwargs)
    except errors as exc:
        # system.run already finalized the partial graph on the recorder.
        graph = DependencyGraph.from_recorder(recorder)
        return RecordedRun(target, graph, graph.makespan, error=exc,
                           platform=platform)
    measured = max((result.cycles for result in results), default=0)
    graph = DependencyGraph.from_recorder(recorder)
    return RecordedRun(target, graph, measured, results=results,
                       platform=platform)


def record_target(target, seed=1, items=2, platform=None):
    """Record a kernel or APPn by name (the CLI's dispatcher)."""
    from repro.workloads import KERNEL_FACTORIES
    from repro.workloads.apps import APP_FACTORIES

    if target in KERNEL_FACTORIES:
        return record_kernel(target, seed=seed, platform=platform)
    if target.upper() in APP_FACTORIES:
        return record_app(target, seed=seed, items=items, platform=platform)
    raise KeyError(
        f"unknown critpath target {target!r}: not a kernel "
        f"({sorted(KERNEL_FACTORIES)}) or app ({sorted(APP_FACTORIES)})"
    )


def validate_whatif(run, expressions, seed=1, items=2):
    """Project ``expressions`` on ``run`` AND re-run the simulator with
    the equivalent platform change; returns the comparison dict.

    Only platform-parameter what-ifs can be validated this way; today
    that means a single ``dram_latency`` clause.
    """
    from repro.critpath.whatif import WhatIfError

    spec = WhatIfSpec.parse(expressions)
    unsupported = [
        e for e in spec.expressions if not e.replace(" ", "").startswith(
            "dram_latency"
        )
    ]
    if unsupported or spec.dram is None:
        raise WhatIfError(
            f"--validate needs exactly one dram_latency clause; got "
            f"{list(expressions)}"
        )
    projection = replay(run.graph, spec)
    base = run.platform if run.platform is not None else _default_platform()
    base_latency = base.mem.dram_latency
    op, value = spec.dram
    new_latency = int(round(value * base_latency if op == "*" else value))
    derived = base.derive(mem={"dram_latency": new_latency})
    rerun = record_target(run.target, seed=seed, items=items,
                          platform=derived)
    actual = rerun.measured
    projected = projection["projected_cycles"]
    drift = (projected - actual) / actual if actual else 0.0
    return {
        "expressions": list(spec.expressions),
        "dram_latency": {"baseline": base_latency, "what_if": new_latency},
        "projected_cycles": projected,
        "actual_cycles": actual,
        "drift": round(drift, 6),
        "within_2pct": abs(drift) <= 0.02,
    }
