"""Causal critical-path analysis for multi-tile stitched runs.

The package splits into a recording side and an analysis side:

* :mod:`repro.critpath.recorder` — the :class:`DependencyRecorder`
  hooks that observe a run (cores, message fabric, NoC) and the
  :data:`NULL_RECORDER` null object installed when recording is off;
* :mod:`repro.critpath.graph` — the causal
  :class:`DependencyGraph` built from a recording (JSON-round-trippable);
* :mod:`repro.critpath.analyze` — critical path, slack/float,
  attribution, blocked frontier;
* :mod:`repro.critpath.whatif` — scaled-weight replay projections;
* :mod:`repro.critpath.gantt` — ASCII rendering.

None of these import the simulator.  The harness entries that *do*
(record a kernel/app by name, validate a what-if against a re-run)
live in :mod:`repro.critpath.runner`, imported lazily by the CLI.
"""

from repro.critpath.analyze import CritPathAnalysis, analyze
from repro.critpath.gantt import render_gantt, render_summary
from repro.critpath.graph import DependencyGraph
from repro.critpath.matcher import ChannelMatcher
from repro.critpath.recorder import (
    COUNTER_FIELDS,
    DependencyRecorder,
    NULL_RECORDER,
    NullDependencyRecorder,
    OpRecord,
    ensure_recorder,
)
from repro.critpath.whatif import (
    WhatIfError,
    WhatIfInfeasible,
    WhatIfSpec,
    project,
    replay,
)

__all__ = [
    "COUNTER_FIELDS",
    "ChannelMatcher",
    "CritPathAnalysis",
    "DependencyGraph",
    "DependencyRecorder",
    "NULL_RECORDER",
    "NullDependencyRecorder",
    "OpRecord",
    "WhatIfError",
    "WhatIfInfeasible",
    "WhatIfSpec",
    "analyze",
    "ensure_recorder",
    "project",
    "render_gantt",
    "render_summary",
    "replay",
]
