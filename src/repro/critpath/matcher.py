"""FIFO word-provenance matching of sends to receives.

Channels are ordered word FIFOs keyed by the directed pair of tiles
(:class:`repro.mpi.runtime.Channel`), so matching a receive of *N*
words back to the send(s) that produced them is a pure replay of the
FIFO discipline: pop words in push order and note which pushes they
came from.  This logic is shared by the dependency recorder (message
edges of the causal graph) and by the tracer's Chrome flow-event
export (``ph: "s"/"f"`` arrows in Perfetto) so the two views can never
disagree about which send fed which recv.

No imports from :mod:`repro.telemetry` or the simulator here — both
sides import this module.
"""


class ChannelMatcher:
    """Replays per-channel word FIFOs to attribute pops to pushes.

    ``push`` registers ``words`` words from ``ref`` (any caller-chosen
    handle — a node id, a trace-event index) on the ``src -> dst``
    channel; ``pop`` consumes ``words`` words in FIFO order and returns
    ``[(ref, words_taken), ...]`` in push order.  The last entry is the
    *binding* contributor: the one that delivered the final word and
    therefore set the receive's ready time.
    """

    def __init__(self):
        self._channels = {}

    def push(self, src, dst, ref, words):
        if words <= 0:
            return
        self._channels.setdefault((src, dst), []).append([ref, words])

    def pop(self, src, dst, words):
        """Consume ``words`` words; returns the contributing pushes.

        Under-supplied channels (a malformed capture, or a partial run
        cut mid-flight) return whatever provenance exists rather than
        raising — callers surface the shortfall themselves.
        """
        queue = self._channels.get((src, dst), [])
        taken = []
        remaining = words
        while remaining > 0 and queue:
            entry = queue[0]
            use = min(entry[1], remaining)
            taken.append((entry[0], use))
            entry[1] -= use
            remaining -= use
            if entry[1] == 0:
                queue.pop(0)
        return taken

    def pending(self, src, dst):
        """Words still queued on one channel (provenance view)."""
        return sum(entry[1] for entry in self._channels.get((src, dst), []))
