"""What-if projections: replay the causal graph with scaled weights.

The engine re-times every recorded op with a per-tile logical clock,
resolving cross-tile dependencies (a receive cannot become ready
before its binding send's re-timed arrival) with a work-list sweep.
Because the recorded run is causally consistent the sweep always
converges — unless a ``channel_capacity=N`` clause synthesizes
back-pressure edges that deadlock the replayed schedule, which is
reported as :class:`WhatIfInfeasible` (naming the stuck tiles) rather
than a bogus number.

Expression grammar (clauses compose; later clauses of the same kind
override earlier ones)::

    compute*F            scale every compute segment
    tile<N>.compute*F    scale tile N's compute segments only
    cix*F                scale the cix issue slots inside compute
                         segments (per-segment cix counts; F<1 models a
                         faster patch, F>1 a slower one)
    dram_latency=N | *F  re-price every cache miss/writeback exactly
                         (each costs one DRAM latency in the simulator)
    link_latency*F       scale NoC time: injection serialization and
                         post-injection flight
    drain*F              scale the NIC drain of receives
    channel_capacity=N   bound every channel to N words; sends block
                         until the receiver frees space (back-edges)

Known limits (documented in DESIGN.md §5i): scaled weights are rounded
to whole cycles per segment; link scaling treats recorded contention
waits as part of the flight being scaled (re-timed packets do not
re-arbitrate links); ``dram_latency`` assumes miss *counts* are
latency-independent, which holds in this simulator.
"""

import re

from repro.critpath.recorder import (
    KIND_RECV,
    KIND_SEND,
)

_TILE_RE = re.compile(r"^tile(\d+)\.compute$")

_SCALE_TARGETS = ("compute", "cix", "link_latency", "drain", "dram_latency")
_SET_TARGETS = ("dram_latency", "channel_capacity")


class WhatIfError(ValueError):
    """Malformed what-if expression or missing metadata."""


class WhatIfInfeasible(RuntimeError):
    """The replayed schedule deadlocks under the requested constraints."""


class WhatIfSpec:
    """Parsed, composed what-if clauses."""

    def __init__(self):
        self.expressions = []
        self.compute_scale = 1.0
        self.tile_compute_scale = {}
        self.cix_scale = 1.0
        self.link_scale = 1.0
        self.drain_scale = 1.0
        self.dram = None              # ("*", factor) or ("=", latency)
        self.channel_capacity = None

    @classmethod
    def parse(cls, expressions):
        spec = cls()
        for expression in expressions:
            spec.add(expression)
        return spec

    def add(self, expression):
        text = expression.strip().replace(" ", "")
        match = re.match(r"^([A-Za-z_][A-Za-z_0-9.]*)([*=])(.+)$", text)
        if not match:
            raise WhatIfError(
                f"cannot parse what-if {expression!r}: expected "
                f"TARGET*FACTOR or TARGET=VALUE"
            )
        target, op, raw = match.groups()
        try:
            value = float(raw)
        except ValueError:
            raise WhatIfError(
                f"cannot parse what-if value {raw!r} in {expression!r}"
            ) from None
        if value < 0:
            raise WhatIfError(f"what-if value must be >= 0: {expression!r}")
        tile_match = _TILE_RE.match(target)
        if tile_match:
            if op != "*":
                raise WhatIfError(f"{target} only supports '*': {expression!r}")
            self.tile_compute_scale[int(tile_match.group(1))] = value
        elif target == "compute" and op == "*":
            self.compute_scale = value
        elif target == "cix" and op == "*":
            self.cix_scale = value
        elif target == "link_latency" and op == "*":
            self.link_scale = value
        elif target == "drain" and op == "*":
            self.drain_scale = value
        elif target == "dram_latency":
            self.dram = (op, value)
        elif target == "channel_capacity" and op == "=":
            capacity = int(value)
            if capacity < 1 or capacity != value:
                raise WhatIfError(
                    f"channel_capacity needs a positive integer: "
                    f"{expression!r}"
                )
            self.channel_capacity = capacity
        else:
            known = sorted(
                {f"{t}*F" for t in _SCALE_TARGETS}
                | {f"{t}=N" for t in _SET_TARGETS}
                | {"tile<N>.compute*F"}
            )
            raise WhatIfError(
                f"unknown what-if target {target!r} (op {op!r}) in "
                f"{expression!r}; supported: {', '.join(known)}"
            )
        self.expressions.append(expression)
        return self

    # -- weight transforms ---------------------------------------------------

    def dram_delta_per_miss(self, meta):
        """Cycles added per cache miss/writeback, from the meta's
        recorded DRAM latency."""
        if self.dram is None:
            return 0
        base = meta.get("dram_latency")
        if base is None:
            raise WhatIfError(
                "this capture has no dram_latency metadata; "
                "re-record with a platform attached"
            )
        op, value = self.dram
        new = value * base if op == "*" else value
        return new - base

    def compute_weight(self, record, meta):
        """Re-timed compute segment preceding ``record``."""
        weight = record.compute
        delta = self.dram_delta_per_miss(meta)
        if delta:
            misses = (record.counters.get("icache_misses", 0)
                      + record.counters.get("dcache_misses", 0)
                      + record.counters.get("dcache_writebacks", 0))
            weight += delta * misses
        if self.cix_scale != 1.0:
            weight += (self.cix_scale - 1.0) * record.counters.get("cix", 0)
        factor = self.tile_compute_scale.get(record.tile, self.compute_scale)
        return max(0, int(round(weight * factor)))

    def scale_link(self, cycles):
        return max(0, int(round(cycles * self.link_scale)))

    def scale_drain(self, cycles):
        return max(0, int(round(cycles * self.drain_scale)))


def _channel_pops(records):
    """{channel: [recv record index per popped word, FIFO order]}.

    Replays the word FIFOs over the record stream (global order ==
    host order == channel order) so capacity replay knows which recv
    frees which word.
    """
    pops = {}
    queued = {}
    for record in records:
        if record.kind == KIND_SEND:
            queued.setdefault((record.tile, record.peer), []).extend(
                [None] * record.words
            )
        elif record.kind == KIND_RECV:
            key = (record.peer, record.tile)
            queue = queued.get(key, [])
            del queue[:record.words]
            pops.setdefault(key, []).extend([record.index] * record.words)
    return pops


def replay(graph, spec):
    """Re-time the run under ``spec``; returns the projection dict."""
    records = graph.records
    by_tile = {}
    for record in records:
        by_tile.setdefault(record.tile, []).append(record)
    pops = _channel_pops(records) if spec.channel_capacity else {}

    clock = {tile: 0 for tile in by_tile}
    cursor = {tile: 0 for tile in by_tile}
    new_arrival = {}          # send record index -> re-timed arrival
    new_end = {}              # record index -> re-timed end
    pushed_before = {}        # channel -> words pushed so far (replay)
    meta = graph.meta
    capacity = spec.channel_capacity

    def ready_to_replay(record):
        if record.kind == KIND_RECV and record.sources:
            if record.binding not in new_arrival:
                return False
        if capacity and record.kind == KIND_SEND:
            key = (record.tile, record.peer)
            before = pushed_before.get(key, 0)
            overflow = before + record.words - capacity
            if overflow > 0:
                channel_pops = pops.get(key, ())
                if overflow > len(channel_pops):
                    raise WhatIfInfeasible(
                        f"channel {key[0]}->{key[1]} never drains word "
                        f"{overflow} in the recorded run; "
                        f"channel_capacity={capacity} cannot be replayed"
                    )
                if channel_pops[overflow - 1] not in new_end:
                    return False
        return True

    def replay_one(record):
        tile = record.tile
        issue = clock[tile] + spec.compute_weight(record, meta)
        if record.kind == KIND_SEND:
            if capacity:
                key = (tile, record.peer)
                before = pushed_before.get(key, 0)
                overflow = before + record.words - capacity
                if overflow > 0:
                    issue = max(issue, new_end[pops[key][overflow - 1]])
                pushed_before[key] = before + record.words
            end = issue + spec.scale_link(record.end - record.issue)
            new_arrival[record.index] = (
                end + spec.scale_link(record.arrival - record.end)
            )
        elif record.kind == KIND_RECV:
            if record.sources:
                ready = new_arrival[record.binding]
            else:
                ready = issue + max(0, record.ready - record.issue)
            end = max(issue, ready) + spec.scale_drain(record.drain)
        else:  # terminal
            end = issue
        clock[tile] = end
        new_end[record.index] = end

    remaining = sum(len(seq) for seq in by_tile.values())
    while remaining:
        progressed = False
        for tile, sequence in by_tile.items():
            while cursor[tile] < len(sequence):
                record = sequence[cursor[tile]]
                if not ready_to_replay(record):
                    break
                replay_one(record)
                cursor[tile] += 1
                remaining -= 1
                progressed = True
        if not progressed:
            stuck = sorted(
                tile for tile, sequence in by_tile.items()
                if cursor[tile] < len(sequence)
            )
            raise WhatIfInfeasible(
                f"what-if replay deadlocked; tiles {stuck} cannot make "
                f"progress under {spec.expressions}"
            )

    projected = max(clock.values(), default=0)
    baseline = graph.makespan
    return {
        "expressions": list(spec.expressions),
        "baseline_cycles": baseline,
        "projected_cycles": projected,
        "speedup": round(baseline / projected, 4) if projected else None,
        "per_tile": {
            str(tile): {"baseline": max(r.end for r in by_tile[tile]),
                        "projected": clock[tile]}
            for tile in sorted(by_tile)
        },
    }


def project(graph, expressions):
    """Parse ``expressions`` and replay ``graph`` under them."""
    return replay(graph, WhatIfSpec.parse(expressions))
