"""Critical-path extraction, slack and attribution.

The critical path is found by walking *tight* edges (zero local slack)
backward from the virtual END node.  Construction guarantees at least
one tight incoming edge at every non-start node of a causally
consistent recording, and the walk telescopes node times, so the sum
of the path's edge weights equals the makespan exactly — the V1000
invariant.

On top of the path itself the analyzer computes:

* per-edge **local slack** (``t_dst - t_src - weight``; negative means
  an effect preceded its cause — V1001) and CPM **total float** (how
  far the segment could stretch before END moves),
* **attribution** of critical time — per edge kind, per tile (compute/
  inject/drain/sync), per channel (noc edges) and per NoC link (the
  crossings recorded under critical noc edges),
* for partial runs, the **blocked frontier**: the receives that were
  still waiting when the run died, straight from the recorder and the
  scheduler's error snapshot.
"""

from repro.critpath.graph import (
    COMPUTE,
    DRAIN,
    FINISH,
    INJECT,
    NOC,
    SYNC,
)

TILE_KINDS = (COMPUTE, INJECT, DRAIN, SYNC, FINISH)


class CriticalStep:
    """One edge of the critical path, annotated for reporting."""

    __slots__ = ("edge", "src", "dst", "kind", "weight", "tile", "channel")

    def __init__(self, edge, src, dst):
        self.edge = edge
        self.src = src
        self.dst = dst
        self.kind = edge.kind
        self.weight = edge.weight
        if edge.kind == NOC:
            self.tile = None
            self.channel = (src.tile, dst.tile)
        else:
            self.tile = dst.tile if dst.tile is not None else src.tile
            self.channel = None

    def to_dict(self):
        payload = {
            "kind": self.kind,
            "weight": self.weight,
            "from": {"node": self.src.id, "tile": self.src.tile,
                     "time": self.src.time, "role": self.src.role},
            "to": {"node": self.dst.id, "tile": self.dst.tile,
                   "time": self.dst.time, "role": self.dst.role},
        }
        if self.channel is not None:
            payload["channel"] = list(self.channel)
        if self.edge.record is not None:
            payload["record"] = self.edge.record
        return payload


class CritPathAnalysis:
    """The analyzer's full result for one graph."""

    def __init__(self, graph):
        self.graph = graph
        self.makespan = graph.makespan
        self.negative_edges = []     # edges with local slack < 0
        self.backward_edges = []     # edges whose dst precedes src
        self.cycle_nodes = []        # non-empty if the graph is not a DAG
        self.steps = []              # critical path, execution order
        self.total = 0               # sum of critical edge weights
        self.float_by_edge = {}      # edge index -> CPM total float
        self._analyze()

    # -- construction --------------------------------------------------------

    def _analyze(self):
        graph = self.graph
        for edge in graph.edges:
            slack = graph.slack(edge)
            if slack < 0:
                self.negative_edges.append(edge)
            if graph.nodes[edge.dst].time < graph.nodes[edge.src].time:
                self.backward_edges.append(edge)
        self._walk_critical()
        self._total_float()

    def _walk_critical(self):
        graph = self.graph
        incoming = graph.in_edges()
        node = graph.end_node
        path = []
        # A causally broken graph (tight cycle) could otherwise walk
        # forever; every step consumes a distinct edge in a DAG.
        for _ in range(len(graph.edges) + 1):
            candidates = [e for e in incoming[node.id] if graph.is_tight(e)]
            if not candidates:
                break
            # Deterministic tie-break: stay on the same tile if possible,
            # then take the earliest-created predecessor.
            candidates.sort(
                key=lambda e: (graph.nodes[e.src].tile != node.tile, e.src)
            )
            edge = candidates[0]
            src = graph.nodes[edge.src]
            path.append(CriticalStep(edge, src, node))
            node = src
            if node.role == "start":
                break
        path.reverse()
        self.steps = path
        self.total = sum(step.weight for step in path)

    def _topo_order(self):
        """Kahn's order over the edge list; detects causal cycles."""
        graph = self.graph
        indegree = {node.id: 0 for node in graph.nodes}
        outgoing = graph.out_edges()
        for edge in graph.edges:
            indegree[edge.dst] += 1
        frontier = [nid for nid, deg in sorted(indegree.items()) if deg == 0]
        order = []
        while frontier:
            nid = frontier.pop()
            order.append(nid)
            for edge in outgoing[nid]:
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    frontier.append(edge.dst)
        if len(order) != len(graph.nodes):
            self.cycle_nodes = sorted(
                nid for nid, deg in indegree.items() if deg > 0
            )
        return order

    def _total_float(self):
        """CPM latest times -> per-edge total float."""
        graph = self.graph
        order = self._topo_order()
        if self.cycle_nodes:
            return
        outgoing = graph.out_edges()
        latest = {node.id: None for node in graph.nodes}
        latest[graph.end_node.id] = graph.makespan
        for nid in reversed(order):
            if not outgoing[nid]:
                if latest[nid] is None:
                    latest[nid] = graph.nodes[nid].time
                continue
            bound = min(
                latest[edge.dst] - edge.weight for edge in outgoing[nid]
            )
            latest[nid] = bound if latest[nid] is None else min(latest[nid],
                                                                bound)
        for index, edge in enumerate(graph.edges):
            self.float_by_edge[index] = (
                latest[edge.dst] - graph.nodes[edge.src].time - edge.weight
            )

    # -- queries -------------------------------------------------------------

    def reconciled(self):
        """The V1000 invariant: path length == end-to-end cycles."""
        return self.total == self.makespan

    def consistent(self):
        """The V1001 invariant: causality holds everywhere."""
        return not (self.negative_edges or self.backward_edges
                    or self.cycle_nodes)

    def attribution(self):
        """Critical time split per kind / tile / channel / link."""
        kinds = {}
        tiles = {}
        channels = {}
        links = {}
        for step in self.steps:
            kinds[step.kind] = kinds.get(step.kind, 0) + step.weight
            if step.channel is not None:
                key = f"{step.channel[0]}->{step.channel[1]}"
                channels[key] = channels.get(key, 0) + step.weight
                record = self.graph.records[step.edge.record]
                binding = self.graph.records[record.binding]
                for link, _crossed, flits, waited in binding.crossings:
                    entry = links.setdefault(
                        link, {"crossings": 0, "flits": 0, "waited": 0}
                    )
                    entry["crossings"] += 1
                    entry["flits"] += flits
                    entry["waited"] += waited
            elif step.tile is not None:
                entry = tiles.setdefault(step.tile, {})
                entry[step.kind] = entry.get(step.kind, 0) + step.weight
        shares = {}
        for tile, entry in tiles.items():
            shares[tile] = sum(entry.values())
        return {
            "kinds": kinds,
            "tiles": tiles,
            "tile_critical_cycles": shares,
            "channels": channels,
            "links": links,
        }

    def slack_summary(self, top=10):
        graph = self.graph
        ranked = sorted(
            (
                (self.float_by_edge.get(i, graph.slack(edge)), i, edge)
                for i, edge in enumerate(graph.edges)
                if edge.kind != FINISH
            ),
            key=lambda item: (-item[0], item[1]),
        )
        entries = []
        for slack, index, edge in ranked:
            if slack <= 0 or len(entries) >= top:
                break
            src = graph.nodes[edge.src]
            dst = graph.nodes[edge.dst]
            entries.append({
                "edge": index,
                "kind": edge.kind,
                "tile": dst.tile,
                "weight": edge.weight,
                "float": slack,
                "window": [src.time, dst.time],
            })
        return entries

    def frontier(self):
        """The blocked receives of a partial run (empty if complete)."""
        if not self.graph.partial():
            return {}
        frontier = {
            tile: dict(info) for tile, info in self.graph.blocked.items()
        }
        blocked_snap = self.graph.snapshot.get("blocked_tiles")
        if blocked_snap is None and self.graph.snapshot:
            # DeadlockError snapshots map tiles directly.
            blocked_snap = self.graph.snapshot
        for tile, info in (blocked_snap or {}).items():
            entry = frontier.setdefault(int(tile), {})
            entry["snapshot"] = info
        return frontier

    def to_dict(self):
        graph = self.graph
        return {
            "makespan": self.makespan,
            "critical_cycles": self.total,
            "reconciled": self.reconciled(),
            "consistent": self.consistent(),
            "outcome": graph.outcome,
            "critical_path": [step.to_dict() for step in self.steps],
            "attribution": self.attribution(),
            "slack": {
                "negative_edges": len(self.negative_edges),
                "backward_edges": len(self.backward_edges),
                "causal_cycle_nodes": self.cycle_nodes,
                "top": self.slack_summary(),
            },
            "frontier": {
                str(tile): info for tile, info in self.frontier().items()
            },
        }


def analyze(graph):
    """Analyze one :class:`~repro.critpath.graph.DependencyGraph`."""
    return CritPathAnalysis(graph)
