"""ASCII rendering of :class:`~repro.telemetry.TimeSeries` payloads.

``repro monitor`` uses these to turn a time-series capture (live or a
``--timeseries`` JSON file) into terminal pictures:

* a **link-utilization heatmap** — one row per directed NoC link, one
  column per (re-binned) interval, brightness = flit-cycles carried
  over the interval width,
* a **per-tile stall timeline** — one row per tile, each column showing
  the *dominant* attribution bucket of that interval (``#`` compute,
  ``m`` memory stall, ``i`` I-cache stall, ``b`` branch bubble, ``c``
  comm blocked, ``.`` no activity sampled).

Renderers take the JSON-shaped dict (:meth:`TimeSeries.to_dict`), so a
saved capture and a live run render identically.
"""

# Ten-step brightness ramp for the heatmap (space = idle).
HEAT_RAMP = " .:-=+*#%@"

#: (sample field, glyph, legend label) for the stall timeline, in
#: display order.  Each retired instruction owns one compute cycle, so
#: the per-interval ``instructions`` delta IS the compute bucket.
STALL_GLYPHS = (
    ("instructions", "#", "compute"),
    ("memory_stall", "m", "memory_stall"),
    ("icache_stall", "i", "icache_stall"),
    ("branch_bubble", "b", "branch_bubble"),
    ("comm_blocked", "c", "comm_blocked"),
)

_IDLE = "."


def _span(payload):
    """(first, last) interval index across every series; None if empty."""
    indices = []
    for samples in payload.get("tiles", {}).values():
        indices.extend(s["index"] for s in samples)
    for samples in payload.get("noc", {}).get("links", {}).values():
        indices.extend(s["index"] for s in samples)
    for samples in payload.get("fabric", {}).get("channels", {}).values():
        indices.extend(s["index"] for s in samples)
    if not indices:
        return None
    return min(indices), max(indices)


def _link_key(name):
    """Numeric sort for '3->7'-style link names (lexical fallback)."""
    try:
        src, dst = name.split("->")
        return (0, int(src), int(dst))
    except ValueError:
        return (1, 0, 0)


def _columns(first, last, width):
    """Map interval indices onto at most ``width`` display columns."""
    count = last - first + 1
    per_column = max(1, -(-count // width))  # ceil
    ncols = -(-count // per_column)
    return per_column, ncols


def _timescale(first, last, interval, per_column, ncols, label_pad):
    """The 'cycles N..M, K cycles/column' footer line."""
    lo = first * interval
    hi = (last + 1) * interval
    return (" " * label_pad
            + f"cycles {lo}..{hi} ({per_column * interval} cycles/column, "
            f"{ncols} columns)")


def render_link_heatmap(payload, width=64):
    """The per-link flit-utilization heatmap (one row per link)."""
    links = payload.get("noc", {}).get("links", {})
    interval = payload.get("interval") or 1
    if not links:
        return "no NoC link traffic sampled"
    span = _span(payload)
    first, last = span
    per_column, ncols = _columns(first, last, width)
    capacity = per_column * interval  # flit-cycles one column can carry
    label_width = max(len(name) for name in links) + 2
    lines = [f"link utilization ({len(links)} links, "
             f"ramp '{HEAT_RAMP}' = 0..100%):"]
    for name in sorted(links, key=_link_key):
        cells = [0] * ncols
        for sample in links[name]:
            cells[(sample["index"] - first) // per_column] += sample["flits"]
        # Any traffic at all shows at least the dimmest glyph.
        row = "".join(
            HEAT_RAMP[max(1, min(len(HEAT_RAMP) - 1,
                                 int(len(HEAT_RAMP) * cell / capacity)))]
            if cell else HEAT_RAMP[0]
            for cell in cells
        )
        lines.append(f"{name:<{label_width}}|{row}|")
    lines.append(_timescale(first, last, interval, per_column, ncols,
                            label_width + 1))
    return "\n".join(lines)


def render_stall_timeline(payload, width=64):
    """The per-tile dominant-bucket timeline (one row per tile)."""
    tiles = payload.get("tiles", {})
    interval = payload.get("interval") or 1
    if not tiles:
        return "no tile samples"
    span = _span(payload)
    first, last = span
    per_column, ncols = _columns(first, last, width)
    label_width = max(len(f"tile {tile}") for tile in tiles) + 2
    legend = "  ".join(
        f"{glyph}={label}" for _field, glyph, label in STALL_GLYPHS
    )
    lines = [f"per-tile stall timeline ({legend}, {_IDLE}=idle):"]
    for tile in sorted(tiles, key=int):
        cells = [None] * ncols
        for sample in tiles[tile]:
            column = (sample["index"] - first) // per_column
            bucket = cells[column]
            if bucket is None:
                bucket = cells[column] = {}
            for field, _glyph, _label in STALL_GLYPHS:
                value = sample.get(field, 0)
                if value:
                    bucket[field] = bucket.get(field, 0) + value
        row = []
        for bucket in cells:
            if not bucket:
                row.append(_IDLE)
                continue
            dominant = max(
                STALL_GLYPHS,
                key=lambda item: bucket.get(item[0], 0),
            )
            row.append(dominant[1])
        lines.append(f"{f'tile {tile}':<{label_width}}|{''.join(row)}|")
    lines.append(_timescale(first, last, interval, per_column, ncols,
                            label_width + 1))
    return "\n".join(lines)


def render_monitor(payload, width=64):
    """The full ``repro monitor`` picture: timeline + heatmap."""
    parts = [render_stall_timeline(payload, width=width)]
    links = payload.get("noc", {}).get("links", {})
    if links:
        parts.append(render_link_heatmap(payload, width=width))
    dropped = payload.get("dropped_intervals", 0)
    if dropped:
        parts.append(f"warning: {dropped} interval(s) evicted from the "
                     f"ring buffer (raise --interval or capacity)")
    return "\n\n".join(parts)
