"""Hierarchical named counters and histograms.

A :class:`Stats` registry maps dotted paths (``"tile3.core.compute"``,
``"noc.link.(0,0)->(0,1).busy"``) to :class:`Counter`/:class:`Histogram`
instances.  Components hold the *instrument object* — not the registry —
so the hot path is one attribute bump, and the disabled path is the
module-level :data:`NULL_STATS` whose instruments are shared no-ops
(no ``if telemetry:`` forests inside simulation loops).
"""


class Counter:
    """One monotonically growing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name=""):
        self.name = name
        self.value = 0

    def add(self, amount=1):
        self.value += amount

    def reset(self):
        self.value = 0

    def __repr__(self):
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Streaming summary (count/total/min/max) of observed values."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name=""):
        self.name = name
        self.reset()

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def mean(self):
        return self.total / self.count if self.count else 0.0

    def merge(self, other):
        """Fold another histogram's summary into this one."""
        if not other.count:
            return
        self.count += other.count
        self.total += other.total
        if self.min is None or other.min < self.min:
            self.min = other.min
        if self.max is None or other.max > self.max:
            self.max = other.max

    def reset(self):
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def snapshot(self):
        return {
            "count": self.count, "total": self.total,
            "min": self.min, "max": self.max, "mean": self.mean(),
        }

    def __repr__(self):
        return f"Histogram({self.name}: n={self.count}, mean={self.mean():.3g})"


class _NullCounter:
    """Shared do-nothing counter handed out by :class:`NullStats`."""

    __slots__ = ()
    name = ""
    value = 0

    def add(self, amount=1):
        pass

    def reset(self):
        pass


class _NullHistogram:
    __slots__ = ()
    name = ""
    count = 0
    total = 0
    min = None
    max = None

    def observe(self, value):
        pass

    def mean(self):
        return 0.0

    def reset(self):
        pass

    def snapshot(self):
        return {}


NULL_COUNTER = _NullCounter()
NULL_HISTOGRAM = _NullHistogram()


class Stats:
    """Registry of named counters/histograms, addressed by dotted path."""

    enabled = True

    def __init__(self):
        self._counters = {}
        self._histograms = {}

    def counter(self, name):
        """Get or create the counter at ``name`` (dotted path)."""
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def histogram(self, name):
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(name)
            self._histograms[name] = histogram
        return histogram

    def add(self, name, amount=1):
        """One-shot convenience for cold paths."""
        self.counter(name).add(amount)

    def observe(self, name, value):
        self.histogram(name).observe(value)

    def reset(self):
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()

    def merge(self, other):
        """Fold another registry's instruments into this one.

        Merging is commutative and associative over the summary fields
        (sums, running min/max), so sweep workers can be aggregated in
        submission order and parallel == serial holds bit-for-bit.
        Accepts a :class:`Stats`, a :class:`NullStats` (no-op) or a
        flat dict from :meth:`to_flat` (how sweep results cross the
        process boundary).
        """
        if isinstance(other, dict):
            other = Stats.from_flat(other)
        if not other.enabled:
            return
        for name, counter in other._counters.items():
            self.counter(name).add(counter.value)
        for name, histogram in other._histograms.items():
            self.histogram(name).merge(histogram)

    def to_flat(self):
        """Picklable flat form: ``{"counters": ..., "histograms": ...}``."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "histograms": {
                name: {"count": h.count, "total": h.total,
                       "min": h.min, "max": h.max}
                for name, h in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_flat(cls, flat):
        """Rebuild a registry from :meth:`to_flat` output."""
        stats = cls()
        for name, value in flat.get("counters", {}).items():
            stats.counter(name).add(value)
        for name, fields in flat.get("histograms", {}).items():
            histogram = stats.histogram(name)
            histogram.count = fields["count"]
            histogram.total = fields["total"]
            histogram.min = fields["min"]
            histogram.max = fields["max"]
        return stats

    def snapshot(self):
        """Nested dict keyed by the dotted-path components."""
        tree = {}
        for name, counter in sorted(self._counters.items()):
            _insert(tree, name, counter.value)
        for name, histogram in sorted(self._histograms.items()):
            _insert(tree, name, histogram.snapshot())
        return tree

    def render(self, indent=0):
        """Flat sorted text dump (one ``path = value`` line each)."""
        pad = " " * indent
        lines = [
            f"{pad}{name} = {counter.value}"
            for name, counter in sorted(self._counters.items())
        ]
        lines.extend(
            f"{pad}{name} = n={h.count} total={h.total} mean={h.mean():.3g} "
            f"min={h.min} max={h.max}"
            for name, h in sorted(self._histograms.items())
        )
        return "\n".join(lines)

    def __len__(self):
        return len(self._counters) + len(self._histograms)


class NullStats:
    """Disabled registry: every instrument is the shared no-op one."""

    enabled = False

    def counter(self, name):
        return NULL_COUNTER

    def histogram(self, name):
        return NULL_HISTOGRAM

    def add(self, name, amount=1):
        pass

    def observe(self, name, value):
        pass

    def merge(self, other):
        pass

    def to_flat(self):
        return {"counters": {}, "histograms": {}}

    def reset(self):
        pass

    def snapshot(self):
        return {}

    def render(self, indent=0):
        return ""

    def __len__(self):
        return 0


NULL_STATS = NullStats()


def _insert(tree, dotted, value):
    parts = dotted.split(".")
    node = tree
    for part in parts[:-1]:
        child = node.get(part)
        if not isinstance(child, dict):
            child = {}
            node[part] = child
        node = child
    node[parts[-1]] = value
