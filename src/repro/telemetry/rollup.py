"""Whole-system roll-up of one co-simulation run.

:class:`SystemStats` is attached to every :meth:`StitchSystem.run`
result.  It aggregates, per run (cache counters are delta-corrected
against the start-of-run snapshot):

* per-tile cycle attribution (the "every core cycle lands in exactly
  one bucket" invariant: ``compute + memory_stall + icache_stall +
  branch_bubble + comm_blocked == total``),
* cache hits/misses/writebacks per level,
* NoC packets/flits/hops, per-link busy cycles and contention waits,
* fabric messages/words and per-channel occupancy high-water marks,
* patch invocations per config id and remote-SPM accesses.
"""

ATTRIBUTION_BUCKETS = (
    "compute", "memory_stall", "icache_stall", "branch_bubble", "comm_blocked",
)


class SystemStats:
    """Aggregated per-run telemetry of one :class:`StitchSystem` run."""

    def __init__(self, tiles, caches, noc, fabric, patch):
        self.tiles = tiles      # {tile: attribution dict + instructions/reason}
        self.caches = caches    # {"icache"/"dcache": {hits, misses, ...}}
        self.noc = noc          # packets/flits/hops/links/contention
        self.fabric = fabric    # messages/words/channel high-water marks
        self.patch = patch      # executions/fused/remote_spm/per-config

    # -- derived views -------------------------------------------------------

    def total_cycles(self):
        return sum(t["total"] for t in self.tiles.values())

    def attribution_totals(self):
        """Bucket sums across all tiles (cycles)."""
        totals = {bucket: 0 for bucket in ATTRIBUTION_BUCKETS}
        for tile in self.tiles.values():
            for bucket in ATTRIBUTION_BUCKETS:
                totals[bucket] += tile[bucket]
        return totals

    def attribution_ok(self):
        """Does every tile's bucket sum equal its total exactly?"""
        return all(
            sum(t[bucket] for bucket in ATTRIBUTION_BUCKETS) == t["total"]
            for t in self.tiles.values()
        )

    def breakdown(self):
        """Execution-time fractions with patch split out of compute.

        ``scalar_compute`` is issue slots minus ``cix`` issues (the
        patch executes inside its own single issue cycle), so the six
        fractions still sum to 1 exactly.
        """
        totals = self.attribution_totals()
        grand = self.total_cycles()
        if not grand:
            return {}
        patch_cycles = self.patch.get("executions", 0)
        fractions = {
            "scalar_compute": (totals["compute"] - patch_cycles) / grand,
            "patch": patch_cycles / grand,
            "communication": totals["comm_blocked"] / grand,
            "memory_stall": totals["memory_stall"] / grand,
            "icache_stall": totals["icache_stall"] / grand,
            "branch_bubble": totals["branch_bubble"] / grand,
        }
        return fractions

    # -- export --------------------------------------------------------------

    def populate(self, stats):
        """Mirror the roll-up into a :class:`~repro.telemetry.Stats` registry."""
        for tile, attribution in self.tiles.items():
            for key, value in attribution.items():
                if isinstance(value, (int, float)):
                    stats.counter(f"tile{tile}.core.{key}").add(value)
        for level, counts in self.caches.items():
            for key in ("hits", "misses", "writebacks"):
                stats.counter(f"mem.{level}.{key}").add(counts[key])
        for key in ("packets", "flits", "hops", "contention_delay"):
            stats.counter(f"noc.{key}").add(self.noc.get(key, 0))
        for link, busy in self.noc.get("link_busy", {}).items():
            stats.counter(f"noc.link.{link[0]}->{link[1]}.busy").add(busy)
        for key in ("messages", "words", "max_words_in_flight"):
            stats.counter(f"fabric.{key}").add(self.fabric.get(key, 0))
        for (src, dst), high in self.fabric.get("channel_high_water", {}).items():
            stats.counter(f"fabric.channel.{src}->{dst}.high_water").add(high)
        for key in ("executions", "fused_executions", "remote_spm_accesses"):
            stats.counter(f"patch.{key}").add(self.patch.get(key, 0))
        for cfg_id, count in self.patch.get("per_config", {}).items():
            stats.counter(f"patch.cfg{cfg_id}.invocations").add(count)
        return stats

    def to_dict(self):
        return {
            "tiles": {tile: dict(t) for tile, t in self.tiles.items()},
            "caches": {level: dict(c) for level, c in self.caches.items()},
            "noc": {
                key: (dict(value) if isinstance(value, dict) else value)
                for key, value in self.noc.items()
            },
            "fabric": {
                key: (dict(value) if isinstance(value, dict) else value)
                for key, value in self.fabric.items()
            },
            "patch": {
                key: (dict(value) if isinstance(value, dict) else value)
                for key, value in self.patch.items()
            },
        }

    def render(self):
        """Human summary for the CLI's ``--stats`` output."""
        lines = ["cycle attribution per tile "
                 "(compute/mem/icache/branch/comm = total):"]
        for tile in sorted(self.tiles):
            t = self.tiles[tile]
            lines.append(
                f"  tile {tile:2d}: {t['compute']}/{t['memory_stall']}"
                f"/{t['icache_stall']}/{t['branch_bubble']}"
                f"/{t['comm_blocked']} = {t['total']} cycles "
                f"({t['instructions']} instr, {t['reason']})"
            )
        totals = self.attribution_totals()
        grand = self.total_cycles()
        lines.append(
            "  all tiles: "
            + "/".join(str(totals[b]) for b in ATTRIBUTION_BUCKETS)
            + f" = {grand} cycles"
            + ("" if self.attribution_ok() else "  [ATTRIBUTION DRIFT]")
        )
        if grand:
            parts = ", ".join(
                f"{name} {fraction:.1%}"
                for name, fraction in self.breakdown().items()
            )
            lines.append(f"breakdown: {parts}")
        for level in ("icache", "dcache"):
            counts = self.caches.get(level)
            if counts:
                total = counts["hits"] + counts["misses"]
                rate = counts["hits"] / total if total else 1.0
                lines.append(
                    f"{level}: {counts['hits']} hits / {counts['misses']} "
                    f"misses ({rate:.1%} hit rate, "
                    f"{counts['writebacks']} writebacks)"
                )
        lines.append(
            f"noc: {self.noc.get('packets', 0)} packets, "
            f"{self.noc.get('flits', 0)} flits, "
            f"{self.noc.get('hops', 0)} hops, "
            f"{self.noc.get('contention_delay', 0)} contention cycles"
        )
        lines.append(
            f"fabric: {self.fabric.get('messages', 0)} messages, "
            f"{self.fabric.get('words', 0)} words, "
            f"in-flight high water {self.fabric.get('max_words_in_flight', 0)}"
        )
        lines.append(
            f"patch: {self.patch.get('executions', 0)} invocations "
            f"({self.patch.get('fused_executions', 0)} fused, "
            f"{self.patch.get('remote_spm_accesses', 0)} remote-SPM accesses)"
        )
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"SystemStats({len(self.tiles)} tiles, "
            f"{self.total_cycles()} cycles)"
        )
