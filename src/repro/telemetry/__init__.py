"""Simulation telemetry: counters, histograms and event tracing.

Three layers, all with near-zero-cost disabled paths:

* :mod:`repro.telemetry.stats` — a hierarchical :class:`Stats` registry
  of named counters/histograms; hot loops hold the instrument object so
  the disabled path is a shared no-op sink,
* :mod:`repro.telemetry.trace` — a structured :class:`Tracer` of typed
  events (instruction slices, send/recv/block/unblock, ``cix``
  invocations, cache misses, NoC link reservations) exporting Chrome
  trace-event JSON,
* :mod:`repro.telemetry.timeseries` — a :class:`TimeSeries` collector
  of fixed-interval ring-buffered samples (per-tile IPC/stall mix,
  per-link flit utilization, channel occupancy, energy per interval),
  rendered by :mod:`repro.telemetry.monitor` and ``repro monitor``,
* :mod:`repro.telemetry.rollup` — the :class:`SystemStats` per-run
  aggregation attached to every :meth:`StitchSystem.run` result.

A :class:`Telemetry` bundle carries one ``stats`` and one ``tracer``;
``ensure_telemetry`` normalizes the values accepted by constructor
``telemetry=`` parameters (``None``/``False`` → disabled singleton,
``True`` → fresh enabled bundle, a bundle → itself).
"""

from repro.telemetry.stats import (
    Counter,
    Histogram,
    NULL_COUNTER,
    NULL_HISTOGRAM,
    NULL_STATS,
    NullStats,
    Stats,
)
from repro.telemetry.trace import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
)
from repro.telemetry.timeseries import (
    NULL_TIMESERIES,
    NullTimeSeries,
    TimeSeries,
)
from repro.telemetry.rollup import ATTRIBUTION_BUCKETS, SystemStats
from repro.critpath.recorder import (
    DependencyRecorder,
    NULL_RECORDER,
    ensure_recorder,
)


class Telemetry:
    """One stats registry, one tracer, one time-series collector and
    one dependency recorder, threaded through a system.

    ``timeseries`` and ``recorder`` stay their null singletons unless
    passed explicitly — interval sampling and causal recording are
    opt-in (``repro monitor`` / ``repro critpath``), unlike
    stats/tracing which a bare ``Telemetry()`` enables."""

    __slots__ = ("stats", "tracer", "timeseries", "recorder")

    def __init__(self, stats=None, tracer=None, timeseries=None,
                 recorder=None):
        self.stats = stats if stats is not None else Stats()
        self.tracer = tracer if tracer is not None else Tracer()
        self.timeseries = (
            timeseries if timeseries is not None else NULL_TIMESERIES
        )
        self.recorder = ensure_recorder(recorder)

    @property
    def enabled(self):
        return (self.stats.enabled or self.tracer.enabled
                or self.timeseries.enabled or self.recorder.enabled)

    def __repr__(self):
        return f"Telemetry(enabled={self.enabled}, {len(self.tracer)} events)"


NULL_TELEMETRY = Telemetry(NULL_STATS, NULL_TRACER, NULL_TIMESERIES)


def ensure_telemetry(value):
    """Normalize a constructor's ``telemetry=`` argument to a bundle."""
    if value is None or value is False:
        return NULL_TELEMETRY
    if value is True:
        return Telemetry()
    return value


__all__ = [
    "ATTRIBUTION_BUCKETS",
    "Counter",
    "DependencyRecorder",
    "Histogram",
    "NULL_COUNTER",
    "NULL_HISTOGRAM",
    "NULL_RECORDER",
    "NULL_STATS",
    "NULL_TELEMETRY",
    "NULL_TIMESERIES",
    "NULL_TRACER",
    "NullStats",
    "NullTimeSeries",
    "NullTracer",
    "Stats",
    "SystemStats",
    "Telemetry",
    "TimeSeries",
    "TraceEvent",
    "Tracer",
    "ensure_recorder",
    "ensure_telemetry",
]
