"""Simulation telemetry: counters, histograms and event tracing.

Three layers, all with near-zero-cost disabled paths:

* :mod:`repro.telemetry.stats` — a hierarchical :class:`Stats` registry
  of named counters/histograms; hot loops hold the instrument object so
  the disabled path is a shared no-op sink,
* :mod:`repro.telemetry.trace` — a structured :class:`Tracer` of typed
  events (instruction slices, send/recv/block/unblock, ``cix``
  invocations, cache misses, NoC link reservations) exporting Chrome
  trace-event JSON,
* :mod:`repro.telemetry.rollup` — the :class:`SystemStats` per-run
  aggregation attached to every :meth:`StitchSystem.run` result.

A :class:`Telemetry` bundle carries one ``stats`` and one ``tracer``;
``ensure_telemetry`` normalizes the values accepted by constructor
``telemetry=`` parameters (``None``/``False`` → disabled singleton,
``True`` → fresh enabled bundle, a bundle → itself).
"""

from repro.telemetry.stats import (
    Counter,
    Histogram,
    NULL_COUNTER,
    NULL_HISTOGRAM,
    NULL_STATS,
    NullStats,
    Stats,
)
from repro.telemetry.trace import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
)
from repro.telemetry.rollup import ATTRIBUTION_BUCKETS, SystemStats


class Telemetry:
    """One stats registry plus one tracer, threaded through a system."""

    __slots__ = ("stats", "tracer")

    def __init__(self, stats=None, tracer=None):
        self.stats = stats if stats is not None else Stats()
        self.tracer = tracer if tracer is not None else Tracer()

    @property
    def enabled(self):
        return self.stats.enabled or self.tracer.enabled

    def __repr__(self):
        return f"Telemetry(enabled={self.enabled}, {len(self.tracer)} events)"


NULL_TELEMETRY = Telemetry(NULL_STATS, NULL_TRACER)


def ensure_telemetry(value):
    """Normalize a constructor's ``telemetry=`` argument to a bundle."""
    if value is None or value is False:
        return NULL_TELEMETRY
    if value is True:
        return Telemetry()
    return value


__all__ = [
    "ATTRIBUTION_BUCKETS",
    "Counter",
    "Histogram",
    "NULL_COUNTER",
    "NULL_HISTOGRAM",
    "NULL_STATS",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "NullStats",
    "NullTracer",
    "Stats",
    "SystemStats",
    "Telemetry",
    "TraceEvent",
    "Tracer",
    "ensure_telemetry",
]
