"""Structured event tracing with Chrome trace-event export.

The :class:`Tracer` records typed :class:`TraceEvent` records — spans
(instruction slices, NoC link reservations), instants (send/recv,
block/unblock, cache misses, ``cix`` invocations) and counters — on
named tracks, and exports them as a Chrome trace-event JSON object
(loadable by ``chrome://tracing`` and Perfetto).  Tracks map to one
thread per tile under a ``tiles`` process plus one thread per directed
link under a ``noc`` process.

Timestamps are simulated cycles, written to the ``ts``/``dur``
microsecond fields verbatim (at the paper's 200 MHz, 1 cycle = 5 ns;
the viewer's absolute unit is irrelevant — relative placement is what
matters).

Hot paths must not pay for tracing when it is off: components share the
module-level :data:`NULL_TRACER` (``enabled = False``) and guard warm
per-event calls with a single ``if tracer.enabled`` check.
"""

import gzip
import json

SPAN = "span"
INSTANT = "instant"
COUNTER = "counter"

# Track namespaces (Chrome "processes").
TILES = "tiles"
NOC = "noc"
COMPILER = "compiler"

_PIDS = {TILES: 1, NOC: 2, COMPILER: 3}


def _open_trace(path, mode="w"):
    """Text handle for a trace file; a ``.gz`` suffix selects gzip.

    Chrome traces compress ~10x and both ``chrome://tracing`` and
    Perfetto load gzipped JSON directly, so long co-simulations should
    just name the file ``trace.json.gz``.  ``mode`` is ``"w"`` or
    ``"r"`` — readers (``repro monitor``) get the same transparent
    gzip handling as writers.
    """
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode)


class TraceEvent:
    """One recorded event on one track."""

    __slots__ = ("kind", "track", "name", "time", "duration", "category", "args")

    def __init__(self, kind, track, name, time, duration=0, category="", args=None):
        self.kind = kind
        self.track = track      # (namespace, label) e.g. ("tiles", 3)
        self.name = name
        self.time = time
        self.duration = duration
        self.category = category
        self.args = args or {}

    def __repr__(self):
        return (
            f"TraceEvent({self.kind} {self.name!r} on {self.track} "
            f"@{self.time}+{self.duration})"
        )


class Tracer:
    """Ordered in-memory event log with domain-specific constructors."""

    enabled = True

    def __init__(self):
        self.events = []

    # -- generic event kinds -------------------------------------------------

    def span(self, track, name, start, end, category="", **args):
        self.events.append(
            TraceEvent(SPAN, track, name, start, max(end - start, 0),
                       category, args)
        )

    def instant(self, track, name, time, category="", **args):
        self.events.append(TraceEvent(INSTANT, track, name, time, 0,
                                      category, args))

    def counter(self, track, name, time, value):
        self.events.append(
            TraceEvent(COUNTER, track, name, time, 0, "counter",
                       {"value": value})
        )

    # -- typed domain events -------------------------------------------------

    def tile_span(self, tile, name, start, end, reason, instructions):
        """One ``Core.run`` instruction slice."""
        self.span((TILES, tile), name, start, end, category="core",
                  reason=reason, instructions=instructions)

    def comm_send(self, tile, peer, words, start, end):
        self.span((TILES, tile), f"send->{peer}", start, end,
                  category="comm", peer=peer, words=words)

    def comm_recv(self, tile, peer, words, start, end):
        self.span((TILES, tile), f"recv<-{peer}", start, end,
                  category="comm", peer=peer, words=words)

    def comm_blocked(self, tile, peer, words, time):
        self.instant((TILES, tile), f"blocked<-{peer}", time,
                     category="comm", peer=peer, words=words)

    def comm_unblocked(self, tile, time):
        self.instant((TILES, tile), "unblocked", time, category="comm")

    def cix(self, tile, cfg_id, time):
        self.instant((TILES, tile), f"cix cfg{cfg_id}", time,
                     category="patch", cfg=cfg_id)

    def cache_miss(self, tile, level, addr, time, writeback=False):
        self.instant((TILES, tile), f"{level} miss", time, category="mem",
                     addr=addr, writeback=writeback)

    def link_reserved(self, link, src, dst, start, flits, waited):
        """One packet crossing one directed NoC link."""
        self.span((NOC, f"{link[0]}->{link[1]}"), f"pkt {src}->{dst}",
                  start, start + flits, category="noc",
                  flits=flits, waited=waited)

    def deadlock(self, tile, peer, words_waiting, time):
        self.instant((TILES, tile), f"DEADLOCK waiting<-{peer}", time,
                     category="comm", peer=peer, words=words_waiting)

    def recv_timeout(self, tile, peer, waited, time):
        """The receive watchdog expired on one blocked tile."""
        self.instant((TILES, tile), f"RECV TIMEOUT waiting<-{peer}", time,
                     category="chaos", peer=peer, waited=waited)

    def fault(self, tile, site, time, **detail):
        """An injected fault fired at its trigger."""
        self.instant((TILES, tile), f"FAULT {site}", time,
                     category="chaos", site=site, **detail)

    def fault_detected(self, tile, site, time, **detail):
        """A detection policy noticed an injected fault."""
        self.instant((TILES, tile), f"DETECT {site}", time,
                     category="chaos", site=site, **detail)

    def fault_recovered(self, tile, site, time, **detail):
        """A recovery policy repaired an injected fault."""
        self.instant((TILES, tile), f"RECOVER {site}", time,
                     category="chaos", site=site, **detail)

    # -- export --------------------------------------------------------------

    def tracks(self):
        """All tracks in first-appearance order."""
        seen = []
        for event in self.events:
            if event.track not in seen:
                seen.append(event.track)
        return seen

    def to_chrome(self):
        """The Chrome trace-event JSON object (dict)."""
        tids = {}
        trace_events = []
        for namespace, pid in sorted(_PIDS.items(), key=lambda kv: kv[1]):
            trace_events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": namespace},
            })
        for track in self.tracks():
            namespace, label = track
            pid = _PIDS[namespace]
            tid = tids.setdefault(track, len(tids))
            if namespace == TILES:
                name = f"tile {label}"
            elif namespace == NOC:
                name = f"link {label}"
            else:
                name = f"compile {label}"
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": name},
            })
        # Flow events tie each send span to the recv span(s) that
        # consume its words, so the viewer draws delivery arrows across
        # tiles.  The pairing is the dependency recorder's word-FIFO
        # provenance replay (ChannelMatcher), applied to the span
        # stream — event order is channel order on the host-serial
        # simulator, exactly as in the fabric.
        from repro.critpath.matcher import ChannelMatcher

        matcher = ChannelMatcher()
        flows = []
        flow_id = 0
        for event in self.events:
            pid = _PIDS[event.track[0]]
            tid = tids[event.track]
            record = {
                "name": event.name,
                "cat": event.category or event.track[0],
                "pid": pid,
                "tid": tid,
                "ts": event.time,
            }
            if event.kind == SPAN:
                record["ph"] = "X"
                record["dur"] = event.duration
            elif event.kind == INSTANT:
                record["ph"] = "i"
                record["s"] = "t"
            else:  # COUNTER
                record["ph"] = "C"
            if event.args:
                record["args"] = dict(event.args)
            trace_events.append(record)
            if event.kind == SPAN and event.category == "comm":
                tile = event.track[1]
                peer = event.args.get("peer")
                words = event.args.get("words", 0)
                if event.name.startswith("send->"):
                    matcher.push(tile, peer, record, words)
                elif event.name.startswith("recv<-"):
                    for source, taken in matcher.pop(peer, tile, words):
                        flow_id += 1
                        base = {
                            "name": "msg", "cat": "comm", "id": flow_id,
                            "args": {"words": taken},
                        }
                        flows.append(dict(
                            base, ph="s", pid=source["pid"],
                            tid=source["tid"], ts=source["ts"],
                        ))
                        flows.append(dict(
                            base, ph="f", bp="e", pid=record["pid"],
                            tid=record["tid"], ts=record["ts"],
                        ))
        trace_events.extend(flows)
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write_chrome(self, path):
        """Write the Chrome trace JSON file (gzipped for ``*.gz``);
        returns the path."""
        with _open_trace(path) as handle:
            json.dump(self.to_chrome(), handle)
        return path

    def __len__(self):
        return len(self.events)


class NullTracer:
    """Disabled tracer: records nothing, exports an empty trace."""

    enabled = False
    events = ()

    def span(self, *args, **kwargs):
        pass

    def instant(self, *args, **kwargs):
        pass

    def counter(self, *args, **kwargs):
        pass

    tile_span = comm_send = comm_recv = span
    comm_blocked = comm_unblocked = cix = cache_miss = instant
    link_reserved = deadlock = recv_timeout = instant
    fault = fault_detected = fault_recovered = instant

    def tracks(self):
        return []

    def to_chrome(self):
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def write_chrome(self, path):
        with _open_trace(path) as handle:
            json.dump(self.to_chrome(), handle)
        return path

    def __len__(self):
        return 0


NULL_TRACER = NullTracer()
