"""Fixed-interval time-series sampling of a running simulation.

Where :class:`~repro.telemetry.Stats` answers *how much* (end-of-run
aggregates) and :class:`~repro.telemetry.Tracer` answers *what exactly
happened* (every event), :class:`TimeSeries` answers *when*: it bins
counter deltas into fixed-width intervals of simulated cycles, so a run
can be replayed as per-interval per-tile IPC and stall mix, per-link
NoC flit utilization, per-channel occupancy high-water marks and
energy-per-interval.

Sampling discipline (the part the verifier's V901 rule checks):

* producers push *deltas* of monotonically growing counters, keyed by
  the simulated cycle at which the delta was observed;
* a delta is attributed to the interval containing that cycle — when a
  single long-latency event (a multi-interval ``recv`` block, say)
  overshoots several boundaries, the whole delta lands in the interval
  that finally closed, so per-interval sums always reconcile exactly
  with the end-of-run totals;
* per series, interval indices are strictly increasing (samples never
  go back in time) and every sample spans exactly
  ``[index * interval, (index + 1) * interval)``.

The collector is ring-buffered: each series keeps at most ``capacity``
intervals and evicts the oldest beyond that (counted in
``dropped_intervals`` — reconciliation checks are skipped once samples
have been dropped).  The disabled path is the shared
:data:`NULL_TIMESERIES` null object, mirroring :data:`~repro.telemetry.
stats.NULL_STATS`: hot loops hold the object and pay one ``enabled``
test (or, in the core, one compare against an infinite next-boundary).
"""

import csv
import json

DEFAULT_INTERVAL = 1024
DEFAULT_CAPACITY = 65536

#: Per-tile sample fields, in export order.  All are deltas of the
#: core-side counters except ``energy_nj`` (derived, see
#: :meth:`TimeSeries.add_energy`).
TILE_FIELDS = (
    "cycles", "instructions",
    "memory_stall", "icache_stall", "branch_bubble", "comm_blocked",
    "icache_hits", "icache_misses", "dcache_hits", "dcache_misses",
)


class TimeSeries:
    """Ring-buffered fixed-interval samples of one simulation."""

    enabled = True

    def __init__(self, interval=DEFAULT_INTERVAL, capacity=DEFAULT_CAPACITY):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.interval = interval
        self.capacity = capacity
        self.tiles = {}      # tile -> {interval index -> {field: delta}}
        self.links = {}      # (src, dst) -> {interval index -> flits}
        self.channels = {}   # (src, dst) -> {interval index -> max occupancy}
        self.dropped_intervals = 0

    # -- recording -----------------------------------------------------------

    def index_of(self, time):
        """Interval index containing the cycle ``time``."""
        return time // self.interval

    def _bucket(self, series, index):
        bucket = series.get(index)
        if bucket is None:
            bucket = series[index] = {}
            if len(series) > self.capacity:
                series.pop(min(series))
                self.dropped_intervals += 1
        return bucket

    def tile_sample(self, tile, time, deltas):
        """Fold counter ``deltas`` into tile ``tile``'s interval at ``time``."""
        bucket = self._bucket(self.tiles.setdefault(tile, {}),
                              self.index_of(time))
        for field, value in deltas.items():
            bucket[field] = bucket.get(field, 0) + value

    def link_flits(self, link, time, flits):
        """Record ``flits`` crossing directed ``link`` at cycle ``time``."""
        series = self.links.setdefault(link, {})
        index = self.index_of(time)
        series[index] = series.get(index, 0) + flits
        if len(series) > self.capacity:
            series.pop(min(series))
            self.dropped_intervals += 1

    def channel_occupancy(self, src, dst, time, occupancy):
        """Record a channel occupancy observation (per-interval max)."""
        series = self.channels.setdefault((src, dst), {})
        index = self.index_of(time)
        if occupancy > series.get(index, -1):
            series[index] = occupancy
            if len(series) > self.capacity:
                series.pop(min(series))
                self.dropped_intervals += 1

    def add_energy(self, model):
        """Derive per-interval tile energy from the cycle samples.

        ``model`` provides ``interval_energy_nj(cycles)`` (see
        :class:`repro.power.chip.EnergyModel`).  Idempotent: values are
        assigned, not accumulated, so re-finalizing after another run
        slice recomputes instead of double-counting.
        """
        for series in self.tiles.values():
            for bucket in series.values():
                bucket["energy_nj"] = round(
                    model.interval_energy_nj(bucket.get("cycles", 0)), 6
                )

    # -- queries -------------------------------------------------------------

    def tile_series(self, tile):
        """Sorted ``[(index, sample_dict), ...]`` for one tile."""
        return sorted(self.tiles.get(tile, {}).items())

    def tile_totals(self, tile):
        """Field sums across all of a tile's intervals (the
        reconciliation side of the V901/acceptance contract)."""
        totals = {}
        for _, bucket in self.tile_series(tile):
            for field, value in bucket.items():
                totals[field] = totals.get(field, 0) + value
        return totals

    def span(self):
        """``(first_index, last_index)`` across every series (None if empty)."""
        indices = [
            index
            for series in (
                list(self.tiles.values()) + list(self.links.values())
                + list(self.channels.values())
            )
            for index in series
        ]
        if not indices:
            return None
        return min(indices), max(indices)

    def __len__(self):
        return sum(
            len(series)
            for series in (
                list(self.tiles.values()) + list(self.links.values())
                + list(self.channels.values())
            )
        )

    # -- export --------------------------------------------------------------

    def _samples(self, series, shape):
        samples = []
        for index in sorted(series):
            record = {
                "index": index,
                "start": index * self.interval,
                "end": (index + 1) * self.interval,
            }
            record.update(shape(series[index]))
            samples.append(record)
        return samples

    def to_dict(self):
        """JSON-shaped form (string keys, sorted samples)."""
        return {
            "interval": self.interval,
            "dropped_intervals": self.dropped_intervals,
            "tiles": {
                str(tile): self._samples(series, dict)
                for tile, series in sorted(self.tiles.items())
            },
            "noc": {
                "links": {
                    f"{link[0]}->{link[1]}": self._samples(
                        series,
                        lambda flits: {
                            "flits": flits,
                            "utilization": round(flits / self.interval, 6),
                        },
                    )
                    for link, series in sorted(self.links.items())
                },
            },
            "fabric": {
                "channels": {
                    f"{src}->{dst}": self._samples(
                        series,
                        lambda occupancy: {"occupancy_high_water": occupancy},
                    )
                    for (src, dst), series in sorted(self.channels.items())
                },
            },
        }

    def to_csv(self):
        """Flat CSV: one row per (series, interval, field)."""
        import io

        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(["kind", "id", "start", "end", "field", "value"])
        payload = self.to_dict()
        for tile, samples in payload["tiles"].items():
            for sample in samples:
                for field in TILE_FIELDS + ("energy_nj",):
                    if field in sample:
                        writer.writerow([
                            "tile", tile, sample["start"], sample["end"],
                            field, sample[field],
                        ])
        for link, samples in payload["noc"]["links"].items():
            for sample in samples:
                writer.writerow([
                    "link", link, sample["start"], sample["end"],
                    "flits", sample["flits"],
                ])
        for channel, samples in payload["fabric"]["channels"].items():
            for sample in samples:
                writer.writerow([
                    "channel", channel, sample["start"], sample["end"],
                    "occupancy_high_water", sample["occupancy_high_water"],
                ])
        return out.getvalue()

    def write(self, path):
        """Write JSON (default) or CSV (``.csv`` suffix); returns path."""
        if str(path).endswith(".csv"):
            with open(path, "w", newline="") as handle:
                handle.write(self.to_csv())
        else:
            with open(path, "w") as handle:
                json.dump(self.to_dict(), handle, indent=2)
        return path

    def __repr__(self):
        return (
            f"TimeSeries(interval={self.interval}, {len(self.tiles)} tiles, "
            f"{len(self)} samples)"
        )


class NullTimeSeries:
    """Disabled collector: records nothing, exports an empty payload."""

    enabled = False
    interval = None
    capacity = 0
    tiles = {}
    links = {}
    channels = {}
    dropped_intervals = 0

    def index_of(self, time):
        return 0

    def tile_sample(self, tile, time, deltas):
        pass

    def link_flits(self, link, time, flits):
        pass

    def channel_occupancy(self, src, dst, time, occupancy):
        pass

    def add_energy(self, model):
        pass

    def tile_series(self, tile):
        return []

    def tile_totals(self, tile):
        return {}

    def span(self):
        return None

    def to_dict(self):
        return {
            "interval": None, "dropped_intervals": 0, "tiles": {},
            "noc": {"links": {}}, "fabric": {"channels": {}},
        }

    def to_csv(self):
        return "kind,id,start,end,field,value\r\n"

    def write(self, path):
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle)
        return path

    def __len__(self):
        return 0


NULL_TIMESERIES = NullTimeSeries()
