"""Programmatic assembly builder.

Larger kernels (AES, FFT, ...) are generated from Python rather than
hand-written as flat text.  :class:`Asm` accumulates source lines with a
method per mnemonic and assembles at the end, so builder output goes
through the exact same parser/validation path as hand-written assembly.

    asm = Asm("dot")
    loop = asm.label("loop")
    asm.lw("r3", 0, "r1").lw("r4", 0, "r2")
    asm.mul("r5", "r3", "r4").add("r6", "r6", "r5")
    asm.addi("r1", "r1", 4).addi("r2", "r2", 4)
    asm.bne("r1", "r7", loop)
    asm.halt()
    program = asm.assemble()
"""

import itertools

from repro.isa.assembler import assemble


def _fmt_reg(reg):
    if isinstance(reg, int):
        return f"r{reg}"
    return str(reg)


class Asm:
    """Fluent assembly-source builder; every emitter returns ``self``."""

    _R3 = ("add", "sub", "and_", "or_", "xor", "slt", "sltu", "seq",
           "sll", "srl", "sra", "mul", "mulh")
    _RI = ("addi", "andi", "ori", "xori", "slti", "slli", "srli", "srai")
    _BR = ("beq", "bne", "blt", "bge", "bltu", "bgeu")

    def __init__(self, name="program"):
        self.name = name
        self.lines = []
        self._fresh = itertools.count()

    # -- structure ---------------------------------------------------------

    def raw(self, line):
        """Append a raw source line (escape hatch)."""
        self.lines.append(line)
        return self

    def comment(self, text):
        self.lines.append(f"    # {text}")
        return self

    def equ(self, symbol, value):
        self.lines.append(f".equ {symbol} {value}")
        return self

    def label(self, stem=None):
        """Place a fresh (or named) label here and return its name."""
        name = stem if stem and stem not in self._placed_labels() else (
            f"{stem or 'L'}_{next(self._fresh)}"
        )
        self.lines.append(f"{name}:")
        return name

    def forward_label(self, stem="L"):
        """Reserve a label name to be placed later via :meth:`place`."""
        return f"{stem}_{next(self._fresh)}"

    def place(self, name):
        """Place a previously reserved forward label here."""
        self.lines.append(f"{name}:")
        return self

    def _placed_labels(self):
        return {line[:-1] for line in self.lines if line.endswith(":")}

    # -- instructions ------------------------------------------------------

    def _emit3(self, mnemonic, rd, ra, rb):
        self.lines.append(
            f"    {mnemonic} {_fmt_reg(rd)}, {_fmt_reg(ra)}, {_fmt_reg(rb)}"
        )
        return self

    def _emit_ri(self, mnemonic, rd, ra, imm):
        self.lines.append(f"    {mnemonic} {_fmt_reg(rd)}, {_fmt_reg(ra)}, {imm}")
        return self

    def mov(self, rd, ra):
        self.lines.append(f"    mov {_fmt_reg(rd)}, {_fmt_reg(ra)}")
        return self

    def movi(self, rd, imm):
        self.lines.append(f"    movi {_fmt_reg(rd)}, {imm}")
        return self

    def lw(self, rd, offset, base):
        self.lines.append(f"    lw {_fmt_reg(rd)}, {offset}({_fmt_reg(base)})")
        return self

    def sw(self, rs, offset, base):
        self.lines.append(f"    sw {_fmt_reg(rs)}, {offset}({_fmt_reg(base)})")
        return self

    def jmp(self, target):
        self.lines.append(f"    jmp {target}")
        return self

    def jal(self, target):
        self.lines.append(f"    jal {target}")
        return self

    def jr(self, ra):
        self.lines.append(f"    jr {_fmt_reg(ra)}")
        return self

    def halt(self):
        self.lines.append("    halt")
        return self

    def nop(self):
        self.lines.append("    nop")
        return self

    def send(self, peer, base, count):
        self.lines.append(
            f"    send {_fmt_reg(peer)}, {_fmt_reg(base)}, {_fmt_reg(count)}"
        )
        return self

    def recv(self, peer, base, count):
        self.lines.append(
            f"    recv {_fmt_reg(peer)}, {_fmt_reg(base)}, {_fmt_reg(count)}"
        )
        return self

    def cix(self, cfg, outs, ins):
        outs_text = ", ".join(_fmt_reg(r) for r in outs)
        ins_text = ", ".join(_fmt_reg(r) for r in ins)
        self.lines.append(f"    cix {cfg}, ({outs_text}), ({ins_text})")
        return self

    # -- output ------------------------------------------------------------

    def source(self):
        return "\n".join(self.lines) + "\n"

    def assemble(self):
        return assemble(self.source(), name=self.name)


def _make_r3(mnemonic):
    attr = mnemonic.rstrip("_")

    def emit(self, rd, ra, rb):
        return self._emit3(attr, rd, ra, rb)

    emit.__name__ = mnemonic
    emit.__doc__ = f"Emit ``{attr} rd, ra, rb``."
    return emit


def _make_ri(mnemonic):
    def emit(self, rd, ra, imm):
        return self._emit_ri(mnemonic, rd, ra, imm)

    emit.__name__ = mnemonic
    emit.__doc__ = f"Emit ``{mnemonic} rd, ra, imm``."
    return emit


def _make_br(mnemonic):
    def emit(self, ra, rb, target):
        self.lines.append(
            f"    {mnemonic} {_fmt_reg(ra)}, {_fmt_reg(rb)}, {target}"
        )
        return self

    emit.__name__ = mnemonic
    emit.__doc__ = f"Emit ``{mnemonic} ra, rb, target``."
    return emit


for _m in Asm._R3:
    setattr(Asm, _m, _make_r3(_m))
for _m in Asm._RI:
    setattr(Asm, _m, _make_ri(_m))
for _m in Asm._BR:
    setattr(Asm, _m, _make_br(_m))
