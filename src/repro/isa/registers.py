"""Register file conventions.

Sixteen 32-bit general-purpose registers, mirroring the 4-bit register
specifiers of compact embedded ISAs:

* ``r0`` — hardwired zero (writes are discarded),
* ``r1`` .. ``r13`` — general purpose,
* ``r14`` (``sp``) — stack pointer by convention,
* ``r15`` (``lr``) — link register written by ``jal``.
"""

NUM_REGS = 16

ZERO = 0
SP = 14
LR = 15

REG_NAMES = tuple(f"r{i}" for i in range(NUM_REGS))

_ALIASES = {"zero": ZERO, "sp": SP, "lr": LR}


def reg_index(name):
    """Return the register index for ``name`` (``r7``, ``sp``, ...).

    Raises ``ValueError`` for anything that is not a register.
    """
    text = name.strip().lower()
    if text in _ALIASES:
        return _ALIASES[text]
    if text.startswith("r") and text[1:].isdigit():
        idx = int(text[1:])
        if 0 <= idx < NUM_REGS:
            return idx
    raise ValueError(f"not a register: {name!r}")


def reg_name(index):
    """Return the canonical name (``rN``) for a register index."""
    if not 0 <= index < NUM_REGS:
        raise ValueError(f"register index out of range: {index}")
    return REG_NAMES[index]
