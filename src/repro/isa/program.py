"""Program container and basic-block analysis.

Branch targets are stored as instruction indices after assembly, so a
program is position independent with respect to data layout and can be
sliced into basic blocks by the standard leader algorithm.  Basic blocks
are the unit the compiler profiles and mines for ISE candidates.
"""

from repro.isa.instructions import Op


class BasicBlock:
    """A maximal straight-line region ``[start, end)`` of a program."""

    __slots__ = ("index", "start", "end", "instructions")

    def __init__(self, index, start, end, instructions):
        self.index = index
        self.start = start
        self.end = end
        self.instructions = instructions

    def __len__(self):
        return self.end - self.start

    def __iter__(self):
        return iter(self.instructions)

    def __repr__(self):
        return f"BasicBlock(#{self.index}, [{self.start}:{self.end}))"


class Program:
    """An assembled program: instructions, labels and symbol table."""

    def __init__(self, instructions, labels=None, name="program", symbols=None):
        self.instructions = list(instructions)
        self.labels = dict(labels or {})
        self.symbols = dict(symbols or {})
        self.name = name
        self._blocks = None

    def __len__(self):
        return len(self.instructions)

    def __getitem__(self, index):
        return self.instructions[index]

    def __iter__(self):
        return iter(self.instructions)

    def label_of(self, index):
        """Return a label naming ``index``, if any."""
        for label, target in self.labels.items():
            if target == index:
                return label
        return None

    def basic_blocks(self):
        """Partition into basic blocks (leader algorithm); cached."""
        if self._blocks is None:
            self._blocks = self._compute_blocks()
        return self._blocks

    def _compute_blocks(self):
        count = len(self.instructions)
        if count == 0:
            return []
        leaders = {0}
        for index, instr in enumerate(self.instructions):
            if instr.is_branch() or instr.op is Op.HALT:
                if index + 1 < count:
                    leaders.add(index + 1)
                if instr.target is not None and instr.op is not Op.JR:
                    leaders.add(instr.target)
        ordered = sorted(leaders)
        blocks = []
        for block_index, start in enumerate(ordered):
            end = ordered[block_index + 1] if block_index + 1 < len(ordered) else count
            blocks.append(
                BasicBlock(block_index, start, end, self.instructions[start:end])
            )
        return blocks

    def block_at(self, instruction_index):
        """Return the basic block containing ``instruction_index``."""
        for block in self.basic_blocks():
            if block.start <= instruction_index < block.end:
                return block
        raise IndexError(f"no block contains instruction {instruction_index}")

    def static_words(self):
        """Encoded size in 32-bit words (movi and cix are two words)."""
        return sum(instr.words for instr in self.instructions)

    def text(self):
        """Disassemble back to readable assembly with block markers."""
        index_labels = {}
        for label, target in self.labels.items():
            index_labels.setdefault(target, []).append(label)
        lines = []
        for index, instr in enumerate(self.instructions):
            for label in index_labels.get(index, ()):
                lines.append(f"{label}:")
            rendered = instr.text()
            if instr.target is not None and instr.op is not Op.JR:
                label = self.label_of(instr.target)
                if label is not None:
                    rendered = rendered.rsplit(" ", 1)[0] + f" {label}"
            lines.append(f"    {rendered}")
        return "\n".join(lines) + "\n"

    def copy(self, name=None):
        return Program(
            [instr.copy() for instr in self.instructions],
            labels=dict(self.labels),
            name=name or self.name,
            symbols=dict(self.symbols),
        )
