"""Instruction-set architecture substrate for the Stitch reproduction.

The paper evaluates on ARM (gem5 + the Amber core).  We reproduce the
architectural behaviour with a compact word-oriented RISC ISA that exposes
the same four operation classes the polymorphic-patch design is derived
from (arithmetic/logic ``A``, shift ``S``, multiply ``M``, local-memory
``T``), plus control flow, message-passing primitives and the two-word
custom instruction (``cix``) that drives a configured patch.
"""

from repro.isa.instructions import (
    Instruction,
    Op,
    OpClass,
    op_class,
    ALU_OPS,
    SHIFT_OPS,
    MUL_OPS,
    eval_alu,
    eval_shift,
    eval_mul,
    wrap32,
)
from repro.isa.registers import (
    NUM_REGS,
    REG_NAMES,
    ZERO,
    SP,
    LR,
    reg_index,
    reg_name,
)
from repro.isa.assembler import AssemblerError, assemble
from repro.isa.program import BasicBlock, Program
from repro.isa.builder import Asm

__all__ = [
    "Instruction",
    "Op",
    "OpClass",
    "op_class",
    "ALU_OPS",
    "SHIFT_OPS",
    "MUL_OPS",
    "eval_alu",
    "eval_shift",
    "eval_mul",
    "wrap32",
    "NUM_REGS",
    "REG_NAMES",
    "ZERO",
    "SP",
    "LR",
    "reg_index",
    "reg_name",
    "AssemblerError",
    "assemble",
    "BasicBlock",
    "Program",
    "Asm",
]
