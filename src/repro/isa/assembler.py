"""Two-pass text assembler.

Syntax::

    .equ  N 64            ; named constant, usable wherever an immediate is
    loop:                 ; labels end with ':'
        lw   r1, 0(r2)
        addi r2, r2, 4    ; '#' and ';' start comments
        mul  r3, r1, r1
        add  r4, r4, r3
        bne  r2, r5, loop
        cix  2, (r5, r6), (r1, r2, r3, r4)
        halt

Branch/jump targets are labels.  The assembler resolves them to
instruction indices and returns a :class:`repro.isa.program.Program`.
"""

import re

from repro.isa.instructions import (
    IMM16_MAX,
    IMM16_MIN,
    OP_FORMAT,
    Instruction,
    Op,
)
from repro.isa.program import Program
from repro.isa.registers import reg_index


class AssemblerError(ValueError):
    """Malformed assembly input.

    Carries the program name, the 1-based line number and the offending
    source line text so callers (``repro verify`` / ``repro run``) can
    show an actionable message without re-reading the file.
    """

    def __init__(self, message, program="program", lineno=None, line=None):
        self.program = program
        self.lineno = lineno
        self.line = line
        self.bare_message = message
        where = f"{program}: line {lineno}: " if lineno is not None else f"{program}: "
        rendered = f"{where}{message}"
        if line:
            rendered += f"\n    --> {line.strip()}"
        super().__init__(rendered)


_MNEMONICS = {op.value: op for op in Op}
_MEM_RE = re.compile(r"^(-?\w+)\((\w+)\)$")
_LABEL_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")


def _strip(line):
    for marker in ("#", ";"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _split_operands(text):
    """Split an operand string on top-level commas, keeping (...) groups."""
    parts = []
    depth = 0
    current = []
    for ch in text:
        if ch == "(":
            depth += 1
            current.append(ch)
        elif ch == ")":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class _Parser:
    def __init__(self, name="program"):
        self.name = name
        self.symbols = {}
        self.instructions = []
        self.labels = {}
        self.pending = []  # (instr index, label, line number)
        self.lineno = 0
        self.source_lines = {}  # line number -> raw text

    def error(self, message, lineno=None):
        lineno = self.lineno if lineno is None else lineno
        raise AssemblerError(
            message, program=self.name, lineno=lineno,
            line=self.source_lines.get(lineno),
        )

    def reg(self, token):
        try:
            return reg_index(token)
        except ValueError:
            self.error(f"expected register, got {token!r}")

    def imm(self, token, lo=IMM16_MIN, hi=IMM16_MAX):
        token = token.strip()
        if token in self.symbols:
            value = self.symbols[token]
        else:
            try:
                value = int(token, 0)
            except ValueError:
                self.error(f"expected immediate or .equ symbol, got {token!r}")
        if not lo <= value <= hi:
            self.error(f"immediate {value} out of range [{lo}, {hi}]")
        return value

    def reg_group(self, token, limit, what):
        if not (token.startswith("(") and token.endswith(")")):
            self.error(f"expected parenthesized register group for {what}")
        body = token[1:-1].strip()
        regs = []
        if body:
            for item in body.split(","):
                item = item.strip()
                if item == "-":
                    continue
                regs.append(self.reg(item))
        if not regs:
            self.error(f"{what} group must name at least one register")
        if len(regs) > limit:
            self.error(f"{what} group allows at most {limit} registers")
        return regs

    def parse_line(self, raw):
        line = _strip(raw)
        if not line:
            return
        if line.startswith(".equ"):
            parts = line.split()
            if len(parts) != 3:
                self.error(".equ expects: .equ NAME VALUE")
            _, name, value = parts
            try:
                self.symbols[name] = int(value, 0)
            except ValueError:
                self.error(f".equ value must be an integer, got {value!r}")
            return
        while True:
            head, sep, rest = line.partition(":")
            if sep and _LABEL_RE.match(head.strip()) and "," not in head:
                label = head.strip()
                if label in self.labels:
                    self.error(f"duplicate label {label!r}")
                self.labels[label] = len(self.instructions)
                line = rest.strip()
                if not line:
                    return
            else:
                break
        self.parse_instruction(line)

    def parse_instruction(self, line):
        mnemonic, _, operand_text = line.partition(" ")
        mnemonic = mnemonic.strip().lower()
        if mnemonic not in _MNEMONICS:
            self.error(f"unknown mnemonic {mnemonic!r}")
        op = _MNEMONICS[mnemonic]
        ops = _split_operands(operand_text) if operand_text.strip() else []
        fmt = OP_FORMAT[op]
        handler = getattr(self, f"_fmt_{fmt}")
        self.instructions.append(handler(op, ops))

    def _need(self, ops, count, op):
        if len(ops) != count:
            self.error(f"{op.value} expects {count} operands, got {len(ops)}")

    def _fmt_r3(self, op, ops):
        self._need(ops, 3, op)
        return Instruction(op, rd=self.reg(ops[0]), ra=self.reg(ops[1]), rb=self.reg(ops[2]))

    def _fmt_ri(self, op, ops):
        self._need(ops, 3, op)
        return Instruction(op, rd=self.reg(ops[0]), ra=self.reg(ops[1]), imm=self.imm(ops[2]))

    def _fmt_mov(self, op, ops):
        self._need(ops, 2, op)
        return Instruction(op, rd=self.reg(ops[0]), ra=self.reg(ops[1]))

    def _fmt_movi(self, op, ops):
        self._need(ops, 2, op)
        value = self.imm(ops[1], lo=-(1 << 31), hi=(1 << 32) - 1)
        if value >= 1 << 31:
            value -= 1 << 32
        return Instruction(op, rd=self.reg(ops[0]), imm=value)

    def _fmt_mem(self, op, ops):
        self._need(ops, 2, op)
        match = _MEM_RE.match(ops[1].replace(" ", ""))
        if not match:
            self.error(f"expected offset(base), got {ops[1]!r}")
        offset, base = match.groups()
        return Instruction(
            op, rd=self.reg(ops[0]), ra=self.reg(base), imm=self.imm(offset)
        )

    def _fmt_br(self, op, ops):
        self._need(ops, 3, op)
        instr = Instruction(op, ra=self.reg(ops[0]), rb=self.reg(ops[1]), target=ops[2])
        self.pending.append((len(self.instructions), ops[2], self.lineno))
        return instr

    def _fmt_j(self, op, ops):
        self._need(ops, 1, op)
        instr = Instruction(op, target=ops[0])
        self.pending.append((len(self.instructions), ops[0], self.lineno))
        return instr

    def _fmt_jr(self, op, ops):
        self._need(ops, 1, op)
        return Instruction(op, ra=self.reg(ops[0]))

    def _fmt_none(self, op, ops):
        self._need(ops, 0, op)
        return Instruction(op)

    def _fmt_comm(self, op, ops):
        self._need(ops, 3, op)
        return Instruction(op, ra=self.reg(ops[0]), rb=self.reg(ops[1]), rd=self.reg(ops[2]))

    def _fmt_cix(self, op, ops):
        self._need(ops, 3, op)
        cfg = self.imm(ops[0], lo=0, hi=(1 << 16) - 1)
        outs = self.reg_group(ops[1], 2, "output")
        ins = self.reg_group(ops[2], 4, "input")
        return Instruction(op, cfg=cfg, outs=outs, ins=ins)

    def resolve(self):
        import difflib

        for index, label, lineno in self.pending:
            if label not in self.labels:
                message = f"undefined label {label!r}"
                close = difflib.get_close_matches(
                    label, self.labels, n=1, cutoff=0.6
                )
                if close:
                    message += f" (did you mean {close[0]!r}?)"
                self.error(message, lineno=lineno)
            self.instructions[index].target = self.labels[label]


def assemble(source, name="program"):
    """Assemble ``source`` text into a :class:`Program`."""
    parser = _Parser(name=name)
    for lineno, raw in enumerate(source.splitlines(), start=1):
        parser.lineno = lineno
        parser.source_lines[lineno] = raw
        parser.parse_line(raw)
    parser.resolve()
    return Program(parser.instructions, labels=dict(parser.labels), name=name,
                   symbols=dict(parser.symbols))
