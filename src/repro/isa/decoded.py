"""Pre-decoded execution form of a :class:`Program`.

The interpreter used to re-decode every instruction on every retire:
look up ``instr.op`` (an enum attribute), walk a ~30-arm ``if/elif``
ladder of enum identity tests, and — for the immediate ALU forms —
allocate a fresh ``{imm op: base op}`` dict per retired instruction.
This module performs all of that work once per ``(program, platform)``
pair and caches the result on the ``Program`` instance:

* every instruction is lowered to an :class:`ExecOp` slot with a dense
  integer ``kind`` (the dispatch key), pre-bound register indices and
  immediates, pre-folded ANDI→AND-style base operations and pre-masked
  shift amounts;
* alongside the rich slots, a parallel ``code`` list of plain tuples
  ``(kind, resident_cost, words, *operands)`` feeds the fast loop in
  :mod:`repro.cpu.engine` — tuple indexing is the cheapest per-retire
  access path CPython offers;
* block-leader flags (the profiler's unit of accounting) and per-slot
  word counts ride along as metadata;
* ``resident_ok`` records whether the program's code footprint can ever
  be evicted from the I-cache (see :func:`code_fully_cacheable`), which
  is what licenses the engine's memoized resident-line fetch path.

Decodes are memoized per ``Program`` instance, keyed by the
``(CoreParams, MemParams)`` pair — the execution-relevant projection of
``PlatformConfig.cache_key()`` (NoC and power parameters cannot change
decode output).  Both params types are frozen dataclasses, so the key
is hashable and two configs that agree on core+mem share one decode.
"""

from repro.isa.instructions import Op

# -- dispatch kinds ---------------------------------------------------------
#
# Dense small ints; the fast loop dispatches on them with an if/elif
# ladder ordered by dynamic frequency, the instrumented loop indexes a
# handler list.  Grouped: value-computing families first, then control
# flow, then the comm pair (which manage cycles themselves).

K_ADDI = 0    # also the pre-folded home of rd = ra + imm
K_LW = 1
K_ADD = 2
K_SW = 3
K_CIX = 4
K_MOVI = 5
K_MUL = 6
K_MULH = 7
K_SUB = 8
K_AND = 9
K_OR = 10
K_XOR = 11
K_SLT = 12
K_SLTU = 13
K_SEQ = 14
K_ANDI = 15   # pre-folded: rd = ra & imm
K_ORI = 16
K_XORI = 17
K_SLTI = 18
K_SLL = 19
K_SRL = 20
K_SRA = 21
K_SLLI = 22   # imm shift amount pre-masked to the low 5 bits at decode
K_SRLI = 23
K_SRAI = 24
K_MOV = 25
K_NOP = 26
K_BEQ = 27
K_BNE = 28
K_BLT = 29
K_BGE = 30
K_BLTU = 31
K_BGEU = 32
K_JMP = 33
K_JAL = 34
K_JR = 35
K_HALT = 36
K_SEND = 37
K_RECV = 38

FIRST_CONTROL = K_BEQ  # kinds below this are simple (fall-through) ops
NUM_KINDS = 39

_OP_KIND = {
    Op.ADDI: K_ADDI, Op.LW: K_LW, Op.ADD: K_ADD, Op.SW: K_SW,
    Op.CIX: K_CIX, Op.MOVI: K_MOVI, Op.MUL: K_MUL, Op.MULH: K_MULH,
    Op.SUB: K_SUB, Op.AND: K_AND, Op.OR: K_OR, Op.XOR: K_XOR,
    Op.SLT: K_SLT, Op.SLTU: K_SLTU, Op.SEQ: K_SEQ,
    Op.ANDI: K_ANDI, Op.ORI: K_ORI, Op.XORI: K_XORI, Op.SLTI: K_SLTI,
    Op.SLL: K_SLL, Op.SRL: K_SRL, Op.SRA: K_SRA,
    Op.SLLI: K_SLLI, Op.SRLI: K_SRLI, Op.SRAI: K_SRAI,
    Op.MOV: K_MOV, Op.NOP: K_NOP,
    Op.BEQ: K_BEQ, Op.BNE: K_BNE, Op.BLT: K_BLT, Op.BGE: K_BGE,
    Op.BLTU: K_BLTU, Op.BGEU: K_BGEU,
    Op.JMP: K_JMP, Op.JAL: K_JAL, Op.JR: K_JR, Op.HALT: K_HALT,
    Op.SEND: K_SEND, Op.RECV: K_RECV,
}

_SHIFT_IMM_KINDS = frozenset({K_SLLI, K_SRLI, K_SRAI})


class ExecOp:
    """One pre-decoded execution slot (rich form).

    Carries everything a loop or an analysis pass might want about the
    instruction at ``pc`` without touching the enum or re-deriving
    metadata: the dispatch ``kind``, the original :class:`Instruction`
    fields (with immediates already folded to base-op semantics), the
    encoded word count, the block-leader flag and the fetch cost the
    slot charges when its code lines are I-cache resident.
    """

    __slots__ = ("pc", "kind", "op", "rd", "ra", "rb", "imm", "target",
                 "cfg", "outs", "ins", "words", "is_leader",
                 "resident_cost")

    def __init__(self, pc, kind, instr, is_leader, resident_cost):
        self.pc = pc
        self.kind = kind
        self.op = instr.op
        self.rd = instr.rd
        self.ra = instr.ra
        self.rb = instr.rb
        imm = instr.imm
        if kind in _SHIFT_IMM_KINDS and imm is not None:
            imm = imm & 31
        self.imm = imm
        self.target = instr.target
        self.cfg = instr.cfg
        self.outs = tuple(instr.outs) if instr.outs is not None else None
        self.ins = tuple(instr.ins) if instr.ins is not None else None
        self.words = instr.words
        self.is_leader = is_leader
        self.resident_cost = resident_cost

    def __repr__(self):
        return f"ExecOp(pc={self.pc}, kind={self.kind}, {self.op.value})"


class DecodedProgram:
    """The decode pass's output: per-PC slots plus fast-loop tuples.

    ``ops``
        list of :class:`ExecOp`, index == pc (rich form, instrumented
        loop and tooling).
    ``code``
        parallel list of plain tuples ``(kind, resident_cost, words,
        *operands)`` — the fast loop's representation.
    ``leaders``
        per-PC block-leader flags from the program's basic blocks.
    ``resident_ok``
        True when the code footprint fits the I-cache outright (no
        eviction is ever possible), licensing the resident-line fetch
        memo.
    """

    __slots__ = ("program", "ops", "code", "leaders", "n", "resident_ok",
                 "key")

    def __init__(self, program, ops, code, leaders, resident_ok, key):
        self.program = program
        self.ops = ops
        self.code = code
        self.leaders = leaders
        self.n = len(ops)
        self.resident_ok = resident_ok
        self.key = key

    def __len__(self):
        return self.n


def code_fully_cacheable(num_words, mem_params):
    """True when a ``num_words``-word code image can never be evicted.

    The code window is contiguous starting at ``code_base``, so its
    lines map round-robin over the I-cache sets: no set ever holds more
    than ``ceil(lines / num_sets)`` code lines, which is within the
    associativity exactly when the total line count fits the cache.
    Data accesses go to the D-cache (a distinct tag store), so code
    lines have no other competitors — once fetched, a line is resident
    for the rest of the simulation and its LRU position is irrelevant
    (every future access would be a hit regardless of replacement
    order).
    """
    if num_words == 0:
        return True
    line = mem_params.cache_line_bytes
    shift = line.bit_length() - 1
    first = mem_params.code_base >> shift
    last = (mem_params.code_base + 4 * num_words - 1) >> shift
    total_lines = mem_params.icache_bytes // line
    return (last - first + 1) <= total_lines


def _fast_tuple(ex):
    """Lower one :class:`ExecOp` to the fast loop's plain tuple."""
    k = ex.kind
    head = (k, ex.resident_cost, ex.words)
    if k in (K_ADD, K_SUB, K_MUL, K_MULH, K_AND, K_OR, K_XOR, K_SLT,
             K_SLTU, K_SEQ, K_SLL, K_SRL, K_SRA):
        return head + (ex.rd, ex.ra, ex.rb)
    if k in (K_ADDI, K_ANDI, K_ORI, K_XORI, K_SLTI, K_SLLI, K_SRLI,
             K_SRAI, K_LW, K_SW):
        return head + (ex.rd, ex.ra, ex.imm)
    if k == K_MOV:
        return head + (ex.rd, ex.ra)
    if k == K_MOVI:
        return head + (ex.rd, ex.imm)
    if k in (K_BEQ, K_BNE, K_BLT, K_BGE, K_BLTU, K_BGEU):
        return head + (ex.ra, ex.rb, ex.target)
    if k in (K_JMP, K_JAL):
        return head + (ex.target,)
    if k == K_JR:
        return head + (ex.ra,)
    if k == K_CIX:
        return head + (ex.cfg, ex.outs, ex.ins)
    if k in (K_SEND, K_RECV):
        return head + (ex.rd, ex.ra, ex.rb)
    return head  # HALT / NOP


def _decode(program, core_params, mem_params, key):
    if mem_params is not None:
        hit_latency = mem_params.cache_hit_latency
        resident_ok = code_fully_cacheable(
            program.static_words(), mem_params
        )
    else:
        # Custom memory model: fetch timing is unknowable at decode, so
        # the engine always takes the real fetch path.
        hit_latency = 1
        resident_ok = False
    leaders = [False] * len(program)
    for block in program.basic_blocks():
        leaders[block.start] = True
    ops = []
    for pc, instr in enumerate(program.instructions):
        kind = _OP_KIND.get(instr.op)
        if kind is None:  # pragma: no cover - full ISA covered above
            raise NotImplementedError(f"opcode {instr.op}")
        words = instr.words
        # fetch() charges hit_latency per word on an all-hit fetch; the
        # core folds multi-word overlap back out as cost = fetch - (w-1).
        resident_cost = words * hit_latency - (words - 1)
        ops.append(ExecOp(pc, kind, instr, leaders[pc], resident_cost))
    code = [_fast_tuple(ex) for ex in ops]
    return DecodedProgram(program, ops, code, leaders, resident_ok, key)


def decode_program(program, core_params=None, mem_params=None):
    """Decode ``program`` for one platform; memoized on the Program.

    The cache lives on the ``Program`` instance (``_decoded_cache``), so
    it dies with the program and never outlives a mutation-free
    lifetime; like ``Program.basic_blocks`` it assumes instructions are
    not mutated in place after first execution.
    """
    cache = getattr(program, "_decoded_cache", None)
    if cache is None:
        cache = program._decoded_cache = {}
    key = (core_params, mem_params)
    decoded = cache.get(key)
    if decoded is None:
        decoded = cache[key] = _decode(program, core_params, mem_params, key)
    return decoded


def decode_for_platform(program, platform):
    """Decode against a :class:`~repro.platform.PlatformConfig`.

    Convenience wrapper: projects the platform down to the
    ``(core, mem)`` params that actually determine decode output, so
    two platforms differing only in NoC/power share a cache entry.
    """
    return decode_program(program, platform.core, platform.mem)
