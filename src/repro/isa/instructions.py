"""Instruction definitions and reference semantics.

Every operation the paper's patch-design study classifies is tagged with
its operation class (Section III-A of the paper):

* ``A`` — arithmetic and logic,
* ``S`` — shifts,
* ``M`` — multiplication,
* ``T`` — load/store to the local scratchpad,
* moves are "wiring" and carry no class.

The pure-value evaluators (:func:`eval_alu`, :func:`eval_shift`,
:func:`eval_mul`) are shared between the CPU interpreter and the patch
executor so that a custom instruction is bit-identical to the software
sequence it replaces.
"""

import enum


_MASK32 = 0xFFFFFFFF


def wrap32(value):
    """Wrap an integer to signed 32-bit two's complement."""
    value &= _MASK32
    return value - 0x100000000 if value & 0x80000000 else value


def _u32(value):
    return value & _MASK32


class OpClass(enum.Enum):
    """Operation classes used by the patch-design analysis."""

    A = "A"
    S = "S"
    M = "M"
    T = "T"
    MOVE = "move"
    CTRL = "ctrl"
    COMM = "comm"
    CIX = "cix"
    MISC = "misc"


class Op(enum.Enum):
    """Mnemonics of the reproduction ISA."""

    # Arithmetic / logic (class A)
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLT = "slt"
    SLTU = "sltu"
    SEQ = "seq"
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLTI = "slti"
    # Shifts (class S)
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLLI = "slli"
    SRLI = "srli"
    SRAI = "srai"
    # Multiply (class M)
    MUL = "mul"
    MULH = "mulh"
    # Memory (class T when the address falls in the SPM window)
    LW = "lw"
    SW = "sw"
    # Moves (wiring)
    MOV = "mov"
    MOVI = "movi"
    # Control flow
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLTU = "bltu"
    BGEU = "bgeu"
    JMP = "jmp"
    JAL = "jal"
    JR = "jr"
    HALT = "halt"
    NOP = "nop"
    # Message passing (blocking, over the inter-core NoC)
    SEND = "send"
    RECV = "recv"
    # Custom instruction driving a configured (possibly fused) patch
    CIX = "cix"


# --------------------------------------------------------------------------
# Operand formats.  The assembler uses these to parse, the interpreter to
# dispatch.  Fields of Instruction used per format:
#   R3    op rd, ra, rb
#   RI    op rd, ra, imm
#   MOV   op rd, ra
#   MOVI  op rd, imm            (full 32-bit immediate; two-word encode)
#   MEM   lw rd, imm(ra) / sw rd, imm(ra)   (for sw, rd is the source)
#   BR    op ra, rb, target
#   J     op target             (jal also writes lr)
#   JR    op ra
#   NONE  op
#   COMM  op ra, rb, rc         (peer core, base address, word count)
#   CIX   op cfg, (outs...), (ins...)
# --------------------------------------------------------------------------

FMT_R3 = "r3"
FMT_RI = "ri"
FMT_MOV = "mov"
FMT_MOVI = "movi"
FMT_MEM = "mem"
FMT_BR = "br"
FMT_J = "j"
FMT_JR = "jr"
FMT_NONE = "none"
FMT_COMM = "comm"
FMT_CIX = "cix"

_R3_A = {Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SLT, Op.SLTU, Op.SEQ}
_RI_A = {Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLTI}
_R3_S = {Op.SLL, Op.SRL, Op.SRA}
_RI_S = {Op.SLLI, Op.SRLI, Op.SRAI}
_R3_M = {Op.MUL, Op.MULH}

OP_FORMAT = {}
OP_CLASS = {}
for _op in _R3_A | _R3_S | _R3_M:
    OP_FORMAT[_op] = FMT_R3
for _op in _RI_A | _RI_S:
    OP_FORMAT[_op] = FMT_RI
for _op in _R3_A | _RI_A:
    OP_CLASS[_op] = OpClass.A
for _op in _R3_S | _RI_S:
    OP_CLASS[_op] = OpClass.S
for _op in _R3_M:
    OP_CLASS[_op] = OpClass.M
OP_FORMAT.update(
    {
        Op.LW: FMT_MEM,
        Op.SW: FMT_MEM,
        Op.MOV: FMT_MOV,
        Op.MOVI: FMT_MOVI,
        Op.BEQ: FMT_BR,
        Op.BNE: FMT_BR,
        Op.BLT: FMT_BR,
        Op.BGE: FMT_BR,
        Op.BLTU: FMT_BR,
        Op.BGEU: FMT_BR,
        Op.JMP: FMT_J,
        Op.JAL: FMT_J,
        Op.JR: FMT_JR,
        Op.HALT: FMT_NONE,
        Op.NOP: FMT_NONE,
        Op.SEND: FMT_COMM,
        Op.RECV: FMT_COMM,
        Op.CIX: FMT_CIX,
    }
)
OP_CLASS.update(
    {
        Op.LW: OpClass.T,
        Op.SW: OpClass.T,
        Op.MOV: OpClass.MOVE,
        Op.MOVI: OpClass.MOVE,
        Op.BEQ: OpClass.CTRL,
        Op.BNE: OpClass.CTRL,
        Op.BLT: OpClass.CTRL,
        Op.BGE: OpClass.CTRL,
        Op.BLTU: OpClass.CTRL,
        Op.BGEU: OpClass.CTRL,
        Op.JMP: OpClass.CTRL,
        Op.JAL: OpClass.CTRL,
        Op.JR: OpClass.CTRL,
        Op.HALT: OpClass.CTRL,
        Op.NOP: OpClass.MISC,
        Op.SEND: OpClass.COMM,
        Op.RECV: OpClass.COMM,
        Op.CIX: OpClass.CIX,
    }
)

ALU_OPS = frozenset(op for op, cls in OP_CLASS.items() if cls is OpClass.A)
SHIFT_OPS = frozenset(op for op, cls in OP_CLASS.items() if cls is OpClass.S)
MUL_OPS = frozenset(op for op, cls in OP_CLASS.items() if cls is OpClass.M)
BRANCH_OPS = frozenset(
    {Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU, Op.JMP, Op.JAL, Op.JR}
)

# Base (register-register) operation computed by each mnemonic, used when a
# DFG node is placed on a patch functional unit: the immediate form of an
# op computes the same function as the register form.
BASE_OP = {
    Op.ADDI: Op.ADD,
    Op.ANDI: Op.AND,
    Op.ORI: Op.OR,
    Op.XORI: Op.XOR,
    Op.SLTI: Op.SLT,
    Op.SLLI: Op.SLL,
    Op.SRLI: Op.SRL,
    Op.SRAI: Op.SRA,
}


def base_op(op):
    """Map an immediate-form mnemonic to its register-form base operation."""
    return BASE_OP.get(op, op)


def op_class(op):
    """Return the :class:`OpClass` of a mnemonic."""
    return OP_CLASS[op]


def eval_alu(op, lhs, rhs):
    """Evaluate an A-class operation on signed 32-bit values."""
    if op is Op.ADD:
        return wrap32(lhs + rhs)
    if op is Op.SUB:
        return wrap32(lhs - rhs)
    if op is Op.AND:
        return wrap32(lhs & rhs)
    if op is Op.OR:
        return wrap32(lhs | rhs)
    if op is Op.XOR:
        return wrap32(lhs ^ rhs)
    if op is Op.SLT:
        return 1 if lhs < rhs else 0
    if op is Op.SLTU:
        return 1 if _u32(lhs) < _u32(rhs) else 0
    if op is Op.SEQ:
        return 1 if lhs == rhs else 0
    raise ValueError(f"not an ALU register op: {op}")


def eval_shift(op, value, amount):
    """Evaluate an S-class operation; shift amounts use the low 5 bits."""
    amount = amount & 31
    if op is Op.SLL:
        return wrap32(_u32(value) << amount)
    if op is Op.SRL:
        return wrap32(_u32(value) >> amount)
    if op is Op.SRA:
        return wrap32(value >> amount)
    raise ValueError(f"not a shift register op: {op}")


def eval_mul(op, lhs, rhs):
    """Evaluate an M-class operation (signed 32x32 multiply)."""
    if op is Op.MUL:
        return wrap32(lhs * rhs)
    if op is Op.MULH:
        return wrap32((lhs * rhs) >> 32)
    raise ValueError(f"not a multiply op: {op}")


IMM16_MIN = -(1 << 15)
IMM16_MAX = (1 << 15) - 1


class Instruction:
    """One decoded instruction.

    ``words`` is the encoded size: 2 for ``movi`` (32-bit immediate) and
    ``cix`` (19-bit patch control does not fit one word, Section III-A of
    the paper), 1 otherwise.
    """

    __slots__ = ("op", "rd", "ra", "rb", "imm", "target", "cfg", "outs", "ins")

    def __init__(
        self,
        op,
        rd=None,
        ra=None,
        rb=None,
        imm=None,
        target=None,
        cfg=None,
        outs=None,
        ins=None,
    ):
        self.op = op
        self.rd = rd
        self.ra = ra
        self.rb = rb
        self.imm = imm
        self.target = target
        self.cfg = cfg
        self.outs = outs
        self.ins = ins

    @property
    def fmt(self):
        return OP_FORMAT[self.op]

    @property
    def opclass(self):
        return OP_CLASS[self.op]

    @property
    def words(self):
        return 2 if self.op in (Op.MOVI, Op.CIX) else 1

    def is_branch(self):
        return self.op in BRANCH_OPS

    def reads(self):
        """Register indices this instruction reads, in operand order."""
        fmt = self.fmt
        if fmt == FMT_R3:
            return (self.ra, self.rb)
        if fmt == FMT_RI:
            return (self.ra,)
        if fmt == FMT_MOV:
            return (self.ra,)
        if fmt == FMT_MEM:
            return (self.ra,) if self.op is Op.LW else (self.rd, self.ra)
        if fmt == FMT_BR:
            return (self.ra, self.rb) if self.op not in (Op.JMP, Op.JAL) else ()
        if fmt == FMT_JR:
            return (self.ra,)
        if fmt == FMT_COMM:
            return (self.ra, self.rb, self.rd)
        if fmt == FMT_CIX:
            return tuple(self.ins)
        return ()

    def writes(self):
        """Register indices this instruction writes."""
        fmt = self.fmt
        if fmt in (FMT_R3, FMT_RI, FMT_MOV, FMT_MOVI):
            return (self.rd,)
        if fmt == FMT_MEM:
            return (self.rd,) if self.op is Op.LW else ()
        if self.op is Op.JAL:
            return (15,)
        if fmt == FMT_CIX:
            return tuple(self.outs)
        return ()

    def __repr__(self):
        return f"Instruction({self.text()})"

    def text(self):
        """Render back to assembly syntax."""
        op = self.op.value
        fmt = self.fmt
        if fmt == FMT_R3:
            return f"{op} r{self.rd}, r{self.ra}, r{self.rb}"
        if fmt == FMT_RI:
            return f"{op} r{self.rd}, r{self.ra}, {self.imm}"
        if fmt == FMT_MOV:
            return f"{op} r{self.rd}, r{self.ra}"
        if fmt == FMT_MOVI:
            return f"{op} r{self.rd}, {self.imm}"
        if fmt == FMT_MEM:
            return f"{op} r{self.rd}, {self.imm}(r{self.ra})"
        if fmt == FMT_BR:
            return f"{op} r{self.ra}, r{self.rb}, {self.target}"
        if fmt == FMT_J:
            return f"{op} {self.target}"
        if fmt == FMT_JR:
            return f"{op} r{self.ra}"
        if fmt == FMT_COMM:
            return f"{op} r{self.ra}, r{self.rb}, r{self.rd}"
        if fmt == FMT_CIX:
            outs = ", ".join(f"r{r}" for r in self.outs)
            ins = ", ".join(f"r{r}" for r in self.ins)
            return f"cix {self.cfg}, ({outs}), ({ins})"
        return op

    def copy(self):
        return Instruction(
            self.op,
            rd=self.rd,
            ra=self.ra,
            rb=self.rb,
            imm=self.imm,
            target=self.target,
            cfg=self.cfg,
            outs=list(self.outs) if self.outs is not None else None,
            ins=list(self.ins) if self.ins is not None else None,
        )
