"""Compiler decision provenance: the :class:`CompileReport`.

The tool chain of Figure 6 makes three kinds of decisions per kernel —
which DFG subgraphs become ISE candidates, which candidates are
committed as custom instructions, and which executable version each
patch option yields.  A :class:`CompileReport` records all of them:

* per-phase wall-time spans (profile/liveness/reference at the kernel
  level; enumerate/select/rewrite/measure/validate per option), mirrored
  into a :class:`repro.telemetry.Stats` registry and onto a
  :class:`repro.telemetry.Tracer` ``compiler`` track,
* per hot block, the enumeration tally (subgraphs visited, rejections by
  reason, truncation) plus the fate of **every** feasible candidate —
  selected, or rejected with a reason — so accepted + rejected always
  sums to the enumeration total (the V600 invariant),
* per patch option, one :class:`VersionRecord` with the measured cycles,
  the bit-exact validation verdict and whether a fused option fell back
  to single-patch mappings.

The disabled path follows the telemetry null-object idiom: the driver
always talks to a report object, and :data:`NULL_REPORT` swallows every
call, so the hot compile path carries no ``if report:`` forests.
"""

import time
from contextlib import contextmanager

from repro.telemetry import NULL_STATS, NULL_TRACER, Stats, Tracer
from repro.telemetry.trace import COMPILER

SELECTED = "selected"
REJECTED = "rejected"

# Rejection vocabulary.  Enumeration-time reasons (infeasible subgraphs
# never become candidates):
REJECT_CONVEXITY = "non-convex"
REJECT_INPUTS = "input-port-budget"
REJECT_OUTPUTS = "output-port-budget"
# Selection-time reasons (feasible candidates that lost):
REJECT_MAX_PER_BLOCK = "max-per-block"
REJECT_OVERLAP = "overlaps-selected"
REJECT_IMM_POOL = "imm-pool-pressure"
REJECT_UNMAPPABLE = "unmappable"
REJECT_UNSCHEDULABLE = "unschedulable"


class PhaseSpan:
    """One timed compile phase."""

    __slots__ = ("name", "start", "seconds")

    def __init__(self, name, start, seconds):
        self.name = name
        self.start = start          # seconds since the report's origin
        self.seconds = seconds

    def to_dict(self):
        return {"name": self.name, "seconds": self.seconds}

    def __repr__(self):
        return f"PhaseSpan({self.name}, {self.seconds:.4f}s)"


class EnumerationLog:
    """Tally of one ESU sweep over one block's DFG.

    ``visited`` counts connected subgraphs the search examined;
    ``rejections`` buckets the infeasible ones by reason (non-convex,
    input/output port budget).  Feasible candidates are the difference —
    their individual fates are the surrounding block record's business.
    """

    __slots__ = ("visited", "rejections", "truncated")

    def __init__(self):
        self.visited = 0
        self.rejections = {}
        self.truncated = False

    def note_visited(self):
        self.visited += 1

    def note_rejected(self, reason):
        self.rejections[reason] = self.rejections.get(reason, 0) + 1

    def note_truncated(self):
        self.truncated = True

    def total_rejected(self):
        return sum(self.rejections.values())

    def to_dict(self):
        return {
            "visited": self.visited,
            "rejections": dict(sorted(self.rejections.items())),
            "truncated": self.truncated,
        }


class CandidateRecord:
    """The fate of one feasible ISE candidate during selection."""

    __slots__ = ("signature", "node_ids", "size", "n_inputs", "n_outputs",
                 "status", "reason", "target")

    def __init__(self, signature, node_ids, size, n_inputs, n_outputs,
                 status, reason=None, target=None):
        self.signature = signature
        self.node_ids = tuple(node_ids)
        self.size = size
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.status = status
        self.reason = reason          # rejected: why; selected: None
        self.target = target          # selected: mapped patch target name

    @classmethod
    def of(cls, candidate, status, reason=None, target=None):
        return cls(
            candidate.signature(), sorted(candidate.node_ids), candidate.size,
            len(candidate.inputs), len(candidate.outputs),
            status, reason=reason, target=target,
        )

    def to_dict(self):
        record = {
            "signature": self.signature,
            "node_ids": list(self.node_ids),
            "size": self.size,
            "inputs": self.n_inputs,
            "outputs": self.n_outputs,
            "status": self.status,
        }
        if self.reason is not None:
            record["reason"] = self.reason
        if self.target is not None:
            record["target"] = self.target
        return record

    def __repr__(self):
        tail = self.target if self.status == SELECTED else self.reason
        return f"CandidateRecord({self.signature}, {self.status}: {tail})"


class BlockRecord:
    """Provenance of one hot block under one patch option."""

    def __init__(self, block_index, weight):
        self.block_index = block_index
        self.weight = weight
        self.enumeration = EnumerationLog()
        self.candidates = []          # CandidateRecord, decision order
        self.enumerated = None        # len() of the feasible candidate set

    # -- selection observer protocol -----------------------------------------

    def decide(self, candidate, status, reason=None, target=None):
        self.candidates.append(
            CandidateRecord.of(candidate, status, reason=reason, target=target)
        )

    # -- queries -------------------------------------------------------------

    def selected(self):
        return [c for c in self.candidates if c.status == SELECTED]

    def rejected(self):
        return [c for c in self.candidates if c.status == REJECTED]

    def rejection_counts(self):
        counts = {}
        for record in self.rejected():
            reason = record.reason or "<missing>"
            counts[reason] = counts.get(reason, 0) + 1
        return counts

    def accounted(self):
        """Every enumerated candidate selected or rejected-with-reason."""
        if self.enumerated is None:
            return False
        decided = len(self.selected()) + len(self.rejected())
        if decided != self.enumerated or decided != len(self.candidates):
            return False
        return all(record.reason for record in self.rejected())

    def to_dict(self):
        return {
            "block": self.block_index,
            "weight": self.weight,
            "enumeration": self.enumeration.to_dict(),
            "enumerated_candidates": self.enumerated,
            "selected": len(self.selected()),
            "rejected": self.rejection_counts(),
            "accounted": self.accounted(),
            "candidates": [record.to_dict() for record in self.candidates],
        }


class VersionRecord:
    """One executable version of the kernel (one patch option)."""

    def __init__(self, option_name, fused):
        self.option = option_name
        self.fused = fused            # the option *offers* fusion
        self.blocks = []              # BlockRecord per hot block
        self.phases = []              # PhaseSpan per compile sub-phase
        self.cycles = None
        self.baseline_cycles = None
        self.mappings = 0
        self.fused_mappings = 0
        self.fallback_single = False  # fused option, no mapping crossed
        self.replicated_regions = ()
        self.validated = None         # bit-exact verdict (None = not run)
        self.wall_seconds = 0.0

    # -- driver hooks --------------------------------------------------------

    def block(self, block_index, weight):
        record = BlockRecord(block_index, weight)
        self.blocks.append(record)
        return record

    def measured(self, cycles, baseline_cycles, mappings,
                 replicated_regions=()):
        self.cycles = cycles
        self.baseline_cycles = baseline_cycles
        self.mappings = len(mappings)
        self.fused_mappings = sum(1 for m in mappings if m.is_fused)
        self.fallback_single = bool(
            self.fused and mappings and self.fused_mappings == 0
        )
        self.replicated_regions = tuple(
            region.name for region in replicated_regions
        )

    def note_validation(self, ok):
        self.validated = bool(ok)

    # -- queries -------------------------------------------------------------

    @property
    def speedup(self):
        if not self.cycles or not self.baseline_cycles:
            return 1.0
        return self.baseline_cycles / self.cycles

    def candidate_totals(self):
        """Aggregated {selected, rejected, enumerated} over all blocks."""
        totals = {"selected": 0, "rejected": 0, "enumerated": 0}
        for block in self.blocks:
            totals["selected"] += len(block.selected())
            totals["rejected"] += len(block.rejected())
            totals["enumerated"] += block.enumerated or 0
        return totals

    def accounted(self):
        return all(block.accounted() for block in self.blocks)

    def to_dict(self):
        return {
            "option": self.option,
            "fused_option": self.fused,
            "cycles": self.cycles,
            "baseline_cycles": self.baseline_cycles,
            "speedup": round(self.speedup, 4),
            "mappings": self.mappings,
            "fused_mappings": self.fused_mappings,
            "fallback_single": self.fallback_single,
            "replicated_regions": list(self.replicated_regions),
            "validated": self.validated,
            "wall_seconds": self.wall_seconds,
            "phases": [span.to_dict() for span in self.phases],
            "blocks": [block.to_dict() for block in self.blocks],
        }

    def __repr__(self):
        return (
            f"VersionRecord({self.option}: {self.cycles} cyc, "
            f"validated={self.validated})"
        )


class CompileReport:
    """Full decision provenance of one kernel's compilation."""

    def __init__(self, kernel_name, stats=None, tracer=None):
        self.kernel_name = kernel_name
        self.stats = stats if stats is not None else Stats()
        self.tracer = tracer if tracer is not None else Tracer()
        self.origin = time.perf_counter()
        self.phases = []              # kernel-level PhaseSpan
        self.versions = {}            # option name -> VersionRecord
        self.baseline_cycles = None

    @contextmanager
    def phase(self, name, owner=None):
        """Time a compile phase; attach it to ``owner`` (a version) or
        the report itself, and mirror it into stats + tracer."""
        start = time.perf_counter()
        try:
            yield
        finally:
            end = time.perf_counter()
            span = PhaseSpan(name, start - self.origin, end - start)
            holder = owner if owner is not None else self
            holder.phases.append(span)
            label = (
                f"{owner.option}.{name}" if owner is not None else name
            )
            self.stats.observe(
                f"compile.{self.kernel_name}.{label}.seconds", span.seconds
            )
            self.tracer.span(
                (COMPILER, self.kernel_name), label,
                int(span.start * 1e6), int((end - self.origin) * 1e6),
                category="compile",
            )

    def version(self, option):
        record = self.versions.get(option.name)
        if record is None:
            record = VersionRecord(option.name, option.fused)
            self.versions[option.name] = record
        return record

    # -- queries -------------------------------------------------------------

    def accounted(self):
        """The V600 invariant over every version and block."""
        return all(v.accounted() for v in self.versions.values())

    def candidate_totals(self):
        totals = {"selected": 0, "rejected": 0, "enumerated": 0}
        for version in self.versions.values():
            for key, value in version.candidate_totals().items():
                totals[key] += value
        return totals

    def best_version(self):
        measured = [v for v in self.versions.values() if v.cycles]
        return max(measured, key=lambda v: v.speedup) if measured else None

    def total_wall_seconds(self):
        return (
            sum(span.seconds for span in self.phases)
            + sum(v.wall_seconds for v in self.versions.values())
        )

    def to_dict(self):
        return {
            "kernel": self.kernel_name,
            "baseline_cycles": self.baseline_cycles,
            "accounted": self.accounted(),
            "candidate_totals": self.candidate_totals(),
            "phases": [span.to_dict() for span in self.phases],
            "versions": {
                name: record.to_dict()
                for name, record in sorted(self.versions.items())
            },
        }

    def render(self):
        from repro.provenance.narrative import render_compile_report

        return render_compile_report(self)

    def __repr__(self):
        return (
            f"CompileReport({self.kernel_name}, "
            f"{len(self.versions)} versions)"
        )


# -- disabled path -------------------------------------------------------------


class _NullVersionRecord:
    """Swallows every driver hook; ``block`` yields no observer."""

    option = None
    phases = ()
    wall_seconds = 0.0

    def block(self, block_index, weight):
        return None

    def measured(self, cycles, baseline_cycles, mappings,
                 replicated_regions=()):
        pass

    def note_validation(self, ok):
        pass

    def __setattr__(self, name, value):
        pass  # shared singleton: ignore stray attribute writes


class NullCompileReport:
    """Disabled provenance: the driver's default report sink."""

    kernel_name = None
    baseline_cycles = None
    stats = NULL_STATS
    tracer = NULL_TRACER
    phases = ()
    versions = {}

    @contextmanager
    def phase(self, name, owner=None):
        yield

    def version(self, option):
        return NULL_VERSION

    def accounted(self):
        return True

    def candidate_totals(self):
        return {"selected": 0, "rejected": 0, "enumerated": 0}

    def best_version(self):
        return None

    def total_wall_seconds(self):
        return 0.0

    def to_dict(self):
        return {}

    def render(self):
        return ""

    def __setattr__(self, name, value):
        pass  # shared singleton: ignore stray attribute writes


NULL_VERSION = _NullVersionRecord()
NULL_REPORT = NullCompileReport()
