"""Graphviz dumps for ``repro explain --dot``.

Two pictures, both plain DOT text (no graphviz dependency — render with
``dot -Tsvg`` / ``neato -Tsvg`` wherever graphviz is installed):

* :func:`dfg_dot` — the hot-block dataflow graphs of one compiled
  kernel version, with the nodes of every selected custom instruction
  highlighted and grouped,
* :func:`plan_dot` — a stitch plan overlaid on the 4x4 mesh: tiles
  labelled with their patch type and assigned stage, mesh links in
  light gray, reserved inter-patch paths in bold color.
"""

_ISE_COLORS = (
    "#aec7e8", "#ffbb78", "#98df8a", "#ff9896",
    "#c5b0d5", "#c49c94", "#f7b6d2", "#dbdb8d",
)

_PATH_COLORS = ("#d62728", "#1f77b4", "#2ca02c", "#9467bd",
                "#8c564b", "#e377c2", "#17becf", "#bcbd22")


def _esc(text):
    return str(text).replace('"', r'\"')


def dfg_dot(compiled):
    """DOT digraph of a :class:`CompiledKernel`'s hot-block DFGs.

    Nodes belonging to a selected ISE are filled with that custom
    instruction's color; plain nodes stay white.  One cluster per
    rewritten basic block.
    """
    # Selected mappings share their block's DFG object; group by block.
    by_block = {}
    for mapping in compiled.mappings:
        dfg = mapping.candidate.dfg
        by_block.setdefault(dfg.block.index, (dfg, []))[1].append(mapping)

    lines = [
        f'digraph "{_esc(compiled.kernel.name)}@{_esc(compiled.option.name)}" {{',
        "  rankdir=TB;",
        '  node [shape=box, style=filled, fillcolor=white, '
        'fontname="monospace"];',
    ]
    for block_index in sorted(by_block):
        dfg, mappings = by_block[block_index]
        member_color = {}
        for index, mapping in enumerate(mappings):
            color = _ISE_COLORS[index % len(_ISE_COLORS)]
            for node_id in mapping.candidate.node_ids:
                member_color[node_id] = (index, color)
        lines.append(f"  subgraph cluster_block{block_index} {{")
        lines.append(f'    label="block {block_index}";')
        for node in dfg.nodes:
            name = f"b{block_index}n{node.id}"
            label = f"#{node.id} {node.op.value}"
            if node.out_reg is not None:
                label += f" r{node.out_reg}"
            attrs = [f'label="{_esc(label)}"']
            hit = member_color.get(node.id)
            if hit is not None:
                index, color = hit
                attrs.append(f'fillcolor="{color}"')
                attrs.append(f'tooltip="cix {index}"')
            lines.append(f"    {name} [{', '.join(attrs)}];")
        for node in dfg.nodes:
            for pred in node.value_pred_ids():
                lines.append(
                    f"    b{block_index}n{pred} -> b{block_index}n{node.id};"
                )
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"


def plan_dot(plan, placement):
    """DOT graph of a :class:`StitchPlan` over the placement's mesh.

    Positions are pinned (``pos=...!``), so render with ``neato -n`` or
    ``fdp``; plain ``dot`` ignores them but keeps the topology.
    """
    mesh = placement.mesh
    assignments = {a.tile: a for a in plan.assignments.values()}
    remote_of = {
        a.remote_tile: a for a in plan.assignments.values()
        if a.remote_tile is not None
    }

    lines = [
        f'graph "{_esc(plan.app_name)}" {{',
        "  layout=neato; overlap=false; splines=true;",
        '  node [shape=box, style=filled, fillcolor=white, '
        'fontname="monospace", width=1.1, height=0.6];',
    ]
    for tile in range(mesh.num_tiles):
        col, row = mesh.coords(tile)
        label = f"tile {tile}\\n{placement.type_of(tile).name}"
        fill = "white"
        assignment = assignments.get(tile)
        if assignment is not None:
            label += f"\\nstage {assignment.stage_id}: {assignment.option}"
            fill = "#e6f2e6" if assignment.option != "baseline" else "#f2f2f2"
        if tile in remote_of:
            label += f"\\nremote of stage {remote_of[tile].stage_id}"
            fill = "#fff2cc"
        lines.append(
            f'  t{tile} [label="{label}", fillcolor="{fill}", '
            f'pos="{col * 1.6:.1f},{-row * 1.1:.1f}!"];'
        )
    drawn = set()
    for tile in range(mesh.num_tiles):
        for neighbor in mesh.neighbors(tile):
            key = tuple(sorted((tile, neighbor)))
            if key in drawn:
                continue
            drawn.add(key)
            lines.append(f'  t{key[0]} -- t{key[1]} [color="#cccccc"];')
    for index, assignment in enumerate(sorted(
        plan.fused_pairs(), key=lambda a: a.stage_id
    )):
        color = _PATH_COLORS[index % len(_PATH_COLORS)]
        for a, b in zip(assignment.path, assignment.path[1:]):
            lines.append(
                f'  t{a} -- t{b} [color="{color}", penwidth=3, '
                f'label="s{assignment.stage_id}", fontcolor="{color}"];'
            )
    lines.append("}")
    return "\n".join(lines) + "\n"
