"""Human-readable decision narratives for ``python -m repro explain``.

Renders a :class:`~repro.provenance.records.CompileReport` (per-kernel
compile provenance) or a :class:`~repro.provenance.stitch.StitchTrace`
(chip-wide stitching provenance) as indented text a person can read to
answer "why did this kernel/app end up with this plan?".
"""

from repro.provenance.records import SELECTED
from repro.provenance.stitch import CHOSEN


def _fmt_seconds(seconds):
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def render_compile_report(report, verbose=False):
    """The per-kernel decision narrative.

    ``verbose`` additionally lists every rejected candidate; the default
    keeps rejections aggregated by reason (they can number thousands).
    """
    lines = [
        f"compile provenance for {report.kernel_name} "
        f"(baseline {report.baseline_cycles} cycles)"
    ]
    if report.phases:
        phases = ", ".join(
            f"{span.name} {_fmt_seconds(span.seconds)}"
            for span in report.phases
        )
        lines.append(f"  kernel phases: {phases}")
    totals = report.candidate_totals()
    lines.append(
        f"  candidates across all versions: {totals['enumerated']} "
        f"enumerated = {totals['selected']} selected "
        f"+ {totals['rejected']} rejected"
        + ("" if report.accounted() else "  [NOT FULLY ACCOUNTED]")
    )
    best = report.best_version()
    for name in sorted(report.versions):
        version = report.versions[name]
        verdict = {
            True: "bit-exact ok",
            False: "VALIDATION FAILED",
            None: "not validated",
        }[version.validated]
        marks = []
        if best is not None and version is best:
            marks.append("best")
        if version.fallback_single:
            marks.append("fused option fell back to single-patch mappings")
        if version.replicated_regions:
            marks.append(
                "replicates " + ",".join(version.replicated_regions)
            )
        tag = f"  [{'; '.join(marks)}]" if marks else ""
        lines.append(
            f"  version {version.option}: {version.cycles} cycles "
            f"({version.speedup:.2f}x), {version.mappings} cix "
            f"({version.fused_mappings} fused), {verdict}, "
            f"{_fmt_seconds(version.wall_seconds)}{tag}"
        )
        if version.phases:
            phases = ", ".join(
                f"{span.name} {_fmt_seconds(span.seconds)}"
                for span in version.phases
            )
            lines.append(f"    phases: {phases}")
        for block in version.blocks:
            enum = block.enumeration
            lines.append(
                f"    block {block.block_index} "
                f"(weight {block.weight:.2f}): {enum.visited} subgraphs "
                f"visited, {enum.total_rejected()} infeasible, "
                f"{block.enumerated} candidates"
                + (" [truncated]" if enum.truncated else "")
            )
            if enum.rejections:
                detail = ", ".join(
                    f"{reason} {count}"
                    for reason, count in sorted(enum.rejections.items())
                )
                lines.append(f"      infeasible subgraphs: {detail}")
            selected = block.selected()
            rejections = block.rejection_counts()
            detail = ", ".join(
                f"{reason} {count}"
                for reason, count in sorted(rejections.items())
            )
            lines.append(
                f"      selected {len(selected)} / rejected "
                f"{sum(rejections.values())}"
                + (f" ({detail})" if detail else "")
            )
            for record in selected:
                lines.append(
                    f"      cix {record.signature} over nodes "
                    f"{list(record.node_ids)} -> {record.target} "
                    f"({record.n_inputs} in / {record.n_outputs} out)"
                )
            if verbose:
                for record in block.candidates:
                    if record.status == SELECTED:
                        continue
                    lines.append(
                        f"      rejected {record.signature} "
                        f"{list(record.node_ids)}: {record.reason}"
                    )
    return "\n".join(lines)


def render_stitch_trace(trace, plan=None):
    """The chip-wide stitching narrative."""
    lines = [f"stitching provenance for {trace.app_name}"]
    for variant in trace.variants:
        mark = "  << winner" if variant.winner else ""
        lines.append(
            f"  variant {variant.name}: bottleneck "
            f"{variant.bottleneck_cycles} cycles, "
            f"{len(variant.placements())} placements, "
            f"stopped: {variant.stopped}{mark}"
        )
        for index, round_rec in enumerate(variant.rounds):
            outcome = (
                f"placed {round_rec.placed} "
                f"({round_rec.cycles_before} -> {round_rec.cycles_after} cyc)"
                if round_rec.placed is not None else "no option placed"
            )
            lines.append(
                f"    round {index}: bottleneck stage "
                f"{round_rec.stage_id} ({round_rec.cycles_before} cyc) "
                f"-> {outcome}"
            )
            for attempt in round_rec.attempts:
                lines.append(
                    f"      option {attempt.name} "
                    f"({attempt.cycles} cyc): {attempt.outcome}"
                )
                for alt in attempt.alternatives:
                    where = (
                        f"tile {alt.origin} + tile {alt.remote}"
                        if alt.remote is not None else f"tile {alt.origin}"
                    )
                    path = (
                        f", path {alt.path} "
                        f"({alt.hops} hop{'s' if alt.hops != 1 else ''})"
                        if alt.path else ""
                    )
                    marker = ">>" if alt.outcome == CHOSEN else "--"
                    detail = f": {alt.detail}" if alt.detail else ""
                    lines.append(
                        f"        {marker} {where}{path} "
                        f"[{alt.outcome}{detail}]"
                    )
        if variant.winner and plan is not None:
            lines.append("")
            lines.append(
                "\n".join("  " + ln for ln in plan.describe().splitlines())
            )
    return "\n".join(lines)


def explain_summary(trace):
    """One-line summary per variant, for quick CLI output."""
    parts = []
    for variant in trace.variants:
        placed = sum(
            1 for r in variant.rounds
            if r.placed is not None and r.placed.count("+")
        )
        parts.append(
            f"{variant.name}={variant.bottleneck_cycles}cyc"
            f"({placed} fused)" + ("*" if variant.winner else "")
        )
    return " ".join(parts)


__all__ = [
    "render_compile_report",
    "render_stitch_trace",
    "explain_summary",
]
