"""Decision provenance for the compiler tool chain.

Two record families, both with telemetry-style null objects so the
instrumented code paths never branch on "is provenance on":

* :class:`CompileReport` — per-kernel compile provenance: phase
  wall-time spans, the fate of every enumerated ISE candidate, one
  :class:`VersionRecord` per patch option with the bit-exact validation
  verdict (threaded through :class:`repro.compiler.KernelCompiler`),
* :class:`StitchTrace` — chip-wide stitching provenance: every plan
  variant, bottleneck-relief round and placement alternative Algorithm 1
  considered (threaded through :func:`repro.core.stitching.stitch_best`).

``python -m repro explain`` renders either as a human narrative
(:mod:`repro.provenance.narrative`), machine JSON (``to_dict``) or
Graphviz pictures (:mod:`repro.provenance.dot`).
"""

from repro.provenance.records import (
    NULL_REPORT,
    NULL_VERSION,
    REJECTED,
    REJECT_CONVEXITY,
    REJECT_IMM_POOL,
    REJECT_INPUTS,
    REJECT_MAX_PER_BLOCK,
    REJECT_OUTPUTS,
    REJECT_OVERLAP,
    REJECT_UNMAPPABLE,
    REJECT_UNSCHEDULABLE,
    SELECTED,
    BlockRecord,
    CandidateRecord,
    CompileReport,
    EnumerationLog,
    NullCompileReport,
    PhaseSpan,
    VersionRecord,
)
from repro.provenance.stitch import (
    CHOSEN,
    INFEASIBLE,
    LOST,
    NO_FEASIBLE_TILE,
    NO_FREE_PAIR,
    NO_IMPROVEMENT,
    NULL_ATTEMPT,
    NULL_ROUND,
    NULL_VARIANT,
    PLACED,
    AlternativeRecord,
    NullVariantTrace,
    OptionAttempt,
    RoundRecord,
    StitchTrace,
    VariantTrace,
)
from repro.provenance.narrative import (
    explain_summary,
    render_compile_report,
    render_stitch_trace,
)
from repro.provenance.dot import dfg_dot, plan_dot

__all__ = [
    "BlockRecord",
    "CandidateRecord",
    "CompileReport",
    "EnumerationLog",
    "NullCompileReport",
    "PhaseSpan",
    "VersionRecord",
    "NULL_REPORT",
    "NULL_VERSION",
    "SELECTED",
    "REJECTED",
    "REJECT_CONVEXITY",
    "REJECT_INPUTS",
    "REJECT_OUTPUTS",
    "REJECT_MAX_PER_BLOCK",
    "REJECT_OVERLAP",
    "REJECT_IMM_POOL",
    "REJECT_UNMAPPABLE",
    "REJECT_UNSCHEDULABLE",
    "AlternativeRecord",
    "NullVariantTrace",
    "OptionAttempt",
    "RoundRecord",
    "StitchTrace",
    "VariantTrace",
    "NULL_ATTEMPT",
    "NULL_ROUND",
    "NULL_VARIANT",
    "PLACED",
    "CHOSEN",
    "LOST",
    "INFEASIBLE",
    "NO_FEASIBLE_TILE",
    "NO_FREE_PAIR",
    "NO_IMPROVEMENT",
    "explain_summary",
    "render_compile_report",
    "render_stitch_trace",
    "dfg_dot",
    "plan_dot",
]
