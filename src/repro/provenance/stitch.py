"""Stitching decision provenance: why Algorithm 1 placed what it did.

A :class:`StitchTrace` records every plan variant :func:`stitch_best`
generates; within a variant, every bottleneck-relief round, every patch
option tried for the bottleneck, and — for fused options — every
(origin, remote) placement alternative the pair search examined, with
its path cost and why it lost to the winner.  Path searches delegated
to :func:`repro.interpatch.pathfinder.find_path` are captured through
its ``probe`` hook.

Like the compile report, the disabled path is a shared null object
(:data:`NULL_VARIANT`), so the stitcher's hot loops never branch on
"is tracing on".
"""

# Attempt outcomes.
PLACED = "placed"
NO_FEASIBLE_TILE = "no-feasible-tile"
NO_FREE_PAIR = "no-free-pair"
NO_IMPROVEMENT = "no-improvement"

# Alternative outcomes.
CHOSEN = "chosen"
LOST = "lost"
INFEASIBLE = "infeasible"

# Variant stop reasons.
STOP_ALL_PLACED = "all-stages-placed"
STOP_PATCHES_EXHAUSTED = "patches-exhausted"
STOP_BOTTLENECK_DONE = "bottleneck-fully-accelerated"
STOP_BOTTLENECK_STUCK = "bottleneck-unimprovable"
STOP_CONVERGED = "upgrade-converged"


class AlternativeRecord:
    """One placement alternative examined for one option attempt."""

    __slots__ = ("origin", "remote", "path", "outcome", "detail")

    def __init__(self, origin, remote, path, outcome, detail=""):
        self.origin = origin
        self.remote = remote          # None for single-patch placements
        self.path = list(path) if path is not None else None
        self.outcome = outcome
        self.detail = detail

    @property
    def hops(self):
        return len(self.path) - 1 if self.path else None

    def to_dict(self):
        return {
            "origin": self.origin,
            "remote": self.remote,
            "path": self.path,
            "hops": self.hops,
            "outcome": self.outcome,
            "detail": self.detail,
        }

    def __repr__(self):
        where = (
            f"{self.origin}+{self.remote}" if self.remote is not None
            else f"{self.origin}"
        )
        return f"AlternativeRecord({where}: {self.outcome} {self.detail})"


class OptionAttempt:
    """One patch option tried for the round's bottleneck stage."""

    __slots__ = ("name", "cycles", "outcome", "alternatives", "path_probes")

    def __init__(self, name, cycles):
        self.name = name
        self.cycles = cycles          # the option's table cycles
        self.outcome = None           # PLACED / NO_FEASIBLE_TILE / ...
        self.alternatives = []
        self.path_probes = []         # (src, dst, hops-or-None)

    def alternative(self, origin, remote, path, outcome, detail=""):
        record = AlternativeRecord(origin, remote, path, outcome, detail)
        self.alternatives.append(record)
        return record

    def probe(self, src, dst, path):
        """``find_path`` provenance hook."""
        self.path_probes.append(
            (src, dst, len(path) - 1 if path is not None else None)
        )

    def chosen(self):
        return next(
            (a for a in self.alternatives if a.outcome == CHOSEN), None
        )

    def to_dict(self):
        return {
            "option": self.name,
            "cycles": self.cycles,
            "outcome": self.outcome,
            "alternatives": [a.to_dict() for a in self.alternatives],
            "path_probes": [
                {"src": s, "dst": d, "hops": h}
                for s, d, h in self.path_probes
            ],
        }


class RoundRecord:
    """One bottleneck-relief iteration (Algorithm 1's outer loop)."""

    __slots__ = ("stage_id", "cycles_before", "attempts", "placed",
                 "cycles_after")

    def __init__(self, stage_id, cycles_before):
        self.stage_id = stage_id
        self.cycles_before = cycles_before
        self.attempts = []
        self.placed = None            # winning option name or None
        self.cycles_after = None

    def attempt(self, name, cycles):
        record = OptionAttempt(name, cycles)
        self.attempts.append(record)
        return record

    def to_dict(self):
        return {
            "stage": self.stage_id,
            "cycles_before": self.cycles_before,
            "cycles_after": self.cycles_after,
            "placed": self.placed,
            "attempts": [a.to_dict() for a in self.attempts],
        }


class VariantTrace:
    """One greedy run (stitch_application or an upgrade pass)."""

    def __init__(self, name):
        self.name = name
        self.rounds = []
        self.stopped = None
        self.bottleneck_cycles = None
        self.winner = False

    def round(self, stage_id, cycles_before):
        record = RoundRecord(stage_id, cycles_before)
        self.rounds.append(record)
        return record

    def stop(self, reason):
        # Keep the first (most specific) stop reason.
        if self.stopped is None:
            self.stopped = reason

    def finish(self, bottleneck_cycles):
        self.bottleneck_cycles = bottleneck_cycles
        if self.stopped is None:
            self.stopped = STOP_ALL_PLACED

    def placements(self):
        return [r for r in self.rounds if r.placed is not None]

    def to_dict(self):
        return {
            "variant": self.name,
            "bottleneck_cycles": self.bottleneck_cycles,
            "stopped": self.stopped,
            "winner": self.winner,
            "rounds": [r.to_dict() for r in self.rounds],
        }

    def __repr__(self):
        return (
            f"VariantTrace({self.name}: {len(self.rounds)} rounds, "
            f"bottleneck={self.bottleneck_cycles})"
        )


class StitchTrace:
    """Provenance of one :func:`stitch_best` version selection."""

    def __init__(self, app_name):
        self.app_name = app_name
        self.variants = []

    def variant(self, name):
        record = VariantTrace(name)
        self.variants.append(record)
        return record

    def chose(self, variant):
        for record in self.variants:
            record.winner = record is variant

    def winner(self):
        return next((v for v in self.variants if v.winner), None)

    def to_dict(self):
        return {
            "app": self.app_name,
            "winner": getattr(self.winner(), "name", None),
            "variants": [v.to_dict() for v in self.variants],
        }

    def render(self, plan=None):
        from repro.provenance.narrative import render_stitch_trace

        return render_stitch_trace(self, plan=plan)

    def __repr__(self):
        return f"StitchTrace({self.app_name}, {len(self.variants)} variants)"


# -- disabled path -------------------------------------------------------------


class _NullAlternative:
    __slots__ = ()
    outcome = None

    def to_dict(self):
        return {}

    def __setattr__(self, name, value):
        pass


class _NullAttempt:
    __slots__ = ()
    alternatives = ()
    path_probes = ()

    def alternative(self, origin, remote, path, outcome, detail=""):
        return _NULL_ALTERNATIVE

    def probe(self, src, dst, path):
        pass

    def chosen(self):
        return None

    def __setattr__(self, name, value):
        pass


class _NullRound:
    __slots__ = ()
    attempts = ()

    def attempt(self, name, cycles):
        return NULL_ATTEMPT

    def __setattr__(self, name, value):
        pass


class NullVariantTrace:
    """Disabled stitch tracing: every hook is a no-op."""

    name = None
    rounds = ()
    winner = False

    def round(self, stage_id, cycles_before):
        return NULL_ROUND

    def stop(self, reason):
        pass

    def finish(self, bottleneck_cycles):
        pass

    def placements(self):
        return []

    def to_dict(self):
        return {}

    def __setattr__(self, name, value):
        pass


_NULL_ALTERNATIVE = _NullAlternative()
NULL_ATTEMPT = _NullAttempt()
NULL_ROUND = _NullRound()
NULL_VARIANT = NullVariantTrace()
