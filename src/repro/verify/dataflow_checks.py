"""Dataflow checks (``V8xx``): the abstract-interpretation rule family.

Built on :mod:`repro.verify.absint` — a forward fixed point computing,
for every program point, each register's value interval and whether it
was written on every path from the entry.  Unlike the structural
``V1xx`` lint these rules are *per-path*: a register initialized on one
side of a branch but read after the join is invisible to the
read-never-written rule (V101) yet caught here, and every diagnostic
carries a feasible entry-to-fault block trace as its witness.

Rules:

* ``V800`` — a register is read although some feasible path from the
  entry reaches the read without writing it first (error).
* ``V801`` — a load/store address provably falls inside the tile's
  scratchpad segment but outside the backed ``spm_bytes`` window
  (error).  Only *provable* violations fire: the address interval must
  lie entirely in the segment and miss the window entirely, so loop
  widening can never produce a false positive on in-bounds code.
* ``V802`` — a ``cix`` control word provably exceeds the 19-bit patch
  control encoding (38 bits for a fused pair): the encoded
  ``cfg_table`` entry when one is attached, else the raw inline config
  immediate (error).
* ``V803`` — dead store: the value written is on every path
  overwritten before any read (warning).
* ``V804`` — a block the CFG reaches but no *feasible* path does: a
  branch is provably one-sided (warning; graph-unreachable blocks are
  the lint's V102).
* ``V805`` — a natural loop with no varying exit: either no exit edge
  at all or every exit branch tests only registers the loop body never
  changes, so no bound on its trip count is provable (warning).
"""

from repro.compiler.liveness import liveness
from repro.isa.instructions import Op
from repro.verify.absint.cfg import render_trace
from repro.verify.absint.domains import interval, meet
from repro.verify.absint.solver import analyze_program
from repro.verify.diagnostics import Report, Severity, register_rule

register_rule("V800", Severity.ERROR,
              "register read before any write on some feasible path",
              "dataflow-checks")
register_rule("V801", Severity.ERROR,
              "SPM access provably outside the backed scratchpad window",
              "dataflow-checks")
register_rule("V802", Severity.ERROR,
              "cix control word provably exceeds the 19-bit encoding",
              "dataflow-checks")
register_rule("V803", Severity.WARNING,
              "dead store: value overwritten before any read",
              "dataflow-checks")
register_rule("V804", Severity.WARNING,
              "block unreachable under abstract interpretation",
              "dataflow-checks")
register_rule("V805", Severity.WARNING,
              "loop with no provable bound (no varying exit condition)",
              "dataflow-checks")

# The tile's address decoder routes a full naturally-aligned segment at
# ``spm_base`` toward the scratchpad port; only ``spm_bytes`` of it are
# backed.  An address provably inside the segment but outside the
# backed window can never be a legal cache/DRAM access.
SPM_SEGMENT_BYTES = 1 << 24

CONTROL_BITS = 19
FUSED_CONTROL_BITS = 38


def _loc(program, index):
    return f"{program.name}@{index}"


def check_dataflow(program, mem=None, cfg_table=None, allowed_live_in=(),
                   exit_live=frozenset(), report=None):
    """Run the V800 family over one assembled program.

    ``mem`` is a :class:`repro.platform.MemParams` (defaults to the
    stitch preset) supplying the scratchpad geometry for V801.
    ``cfg_table`` resolves ``cix`` control words for V802 (defaults to
    the program's attached table, as compiled artifacts carry one).
    ``allowed_live_in`` registers are treated as defined at entry;
    ``exit_live`` names registers the harness reads after ``halt``
    (keeps final result writes out of the dead-store rule).
    """
    report = report if report is not None else Report(program.name)
    if mem is None:
        from repro.platform import DEFAULT_PLATFORM

        mem = DEFAULT_PLATFORM.mem
    if cfg_table is None:
        cfg_table = getattr(program, "cfg_table", None)

    analysis = analyze_program(program, allowed_live_in=allowed_live_in)
    if analysis is None:
        # Empty program or broken branch targets: V104 territory, the
        # CFG rules would only pile noise on top.
        return report

    _check_init_before_use(analysis, report)
    if mem.has_spm:
        _check_spm_bounds(analysis, mem, report)
    _check_control_words(analysis, cfg_table, report)
    _check_dead_stores(analysis, exit_live, report)
    _check_semantic_reachability(analysis, report)
    _check_loop_bounds(analysis, report)
    return report


# -- V800 ------------------------------------------------------------------

def _check_init_before_use(analysis, report):
    program = analysis.program
    flagged = set()  # (pc, reg): one diagnostic per faulting read site
    for block_index in sorted(analysis.block_in):
        for pc, instr, state in analysis.instruction_states(block_index):
            for reg in instr.reads():
                if reg == 0 or reg in state.defined or (pc, reg) in flagged:
                    continue
                flagged.add((pc, reg))
                trace = _undefined_witness(analysis, block_index, reg)
                report.emit(
                    "V800", _loc(program, pc),
                    f"`{instr.text()}` reads r{reg}, which is not written "
                    f"on every path from the entry; witness path "
                    f"{render_trace(trace)}",
                )


def _undefined_witness(analysis, block_index, reg):
    """A feasible entry-to-read path along which ``reg`` stays unwritten."""
    cfg = analysis.cfg

    def avoids_definition(index):
        if index == block_index:
            return True
        return all(
            reg not in instr.writes()
            for instr in cfg.blocks[index].instructions
        )

    trace = cfg.block_trace(
        block_index,
        allowed_edges=analysis.feasible_edges,
        block_filter=avoids_definition,
    )
    # The dataflow guarantees such a path exists; fall back to any
    # feasible path should the block-granularity filter be too strict.
    return trace if trace is not None else analysis.trace_to(block_index)


# -- V801 ------------------------------------------------------------------

def _check_spm_bounds(analysis, mem, report):
    program = analysis.program
    segment = interval(mem.spm_base, mem.spm_base + SPM_SEGMENT_BYTES - 1)
    window = interval(mem.spm_base, mem.spm_end - 1)
    for block_index in sorted(analysis.block_in):
        for pc, instr, state in analysis.instruction_states(block_index):
            if instr.op not in (Op.LW, Op.SW):
                continue
            base = state.get(instr.ra)
            if base is None:
                continue
            addr = interval(base[0] + instr.imm, base[1] + instr.imm)
            if addr is None or meet(addr, segment) != addr:
                continue  # not provably an SPM-segment access
            if meet(addr, window) is None:
                trace = analysis.trace_to(block_index)
                report.emit(
                    "V801", _loc(program, pc),
                    f"`{instr.text()}` address in "
                    f"[{addr[0]:#x}, {addr[1]:#x}] is inside the scratchpad "
                    f"segment but provably outside the backed "
                    f"{mem.spm_bytes}-byte window "
                    f"[{mem.spm_base:#x}, {mem.spm_end:#x}); witness path "
                    f"{render_trace(trace)}",
                )


# -- V802 ------------------------------------------------------------------

def _control_word_bits(config):
    """(bits, limit) of one cfg-table entry, or None when it does not
    encode at all (V203's territory)."""
    from repro.core.fusion import FusedConfig

    if isinstance(config, FusedConfig):
        try:
            return config.control_bits(), FUSED_CONTROL_BITS
        except (TypeError, ValueError):
            return None
    if not getattr(getattr(config, "ptype", None), "has_lmau", False):
        return None  # conventional SFU configs live outside the encoding
    try:
        return config.encode(), CONTROL_BITS
    except (TypeError, ValueError):
        return None


def _check_control_words(analysis, cfg_table, report):
    program = analysis.program
    for block_index in sorted(analysis.block_in):
        block = analysis.cfg.blocks[block_index]
        for offset, instr in enumerate(block.instructions):
            if instr.op is not Op.CIX:
                continue
            pc = block.start + offset
            if cfg_table:
                if not 0 <= (instr.cfg or 0) < len(cfg_table):
                    continue  # V205 flags the dangling index
                resolved = _control_word_bits(cfg_table[instr.cfg])
                if resolved is None:
                    continue
                word, limit = resolved
                source = f"cfg_table[{instr.cfg}] encodes to"
            else:
                word, limit = instr.cfg or 0, CONTROL_BITS
                source = "inline config immediate is"
            if word >= (1 << limit):
                trace = analysis.trace_to(block_index)
                report.emit(
                    "V802", _loc(program, pc),
                    f"`{instr.text()}`: {source} {word:#x}, which exceeds "
                    f"the {limit}-bit patch control encoding; witness path "
                    f"{render_trace(trace)}",
                )


# -- V803 ------------------------------------------------------------------

def _check_dead_stores(analysis, exit_live, report):
    program = analysis.program
    _, live_out = liveness(program, exit_live=exit_live)
    for block_index in sorted(analysis.block_in):
        block = analysis.cfg.blocks[block_index]
        live = set(live_out.get(block_index, ()))
        dead_writes = []
        for offset in range(len(block) - 1, -1, -1):
            instr = block.instructions[offset]
            writes = [r for r in instr.writes() if r != 0]
            for reg in writes:
                if reg not in live:
                    dead_writes.append((offset, instr, reg))
            live.difference_update(writes)
            live.update(r for r in instr.reads() if r != 0)
        for offset, instr, reg in sorted(dead_writes):
            pc = block.start + offset
            if not _rewritten_later(analysis, block_index, offset, reg):
                continue  # never touched again: unused, not a dead store
            report.emit(
                "V803", _loc(program, pc),
                f"`{instr.text()}` stores to r{reg}, but every path "
                f"overwrites it before any read",
            )


def _rewritten_later(analysis, block_index, offset, reg):
    """Does any feasible path from this write reach another write of
    ``reg``?  (Distinguishes a *dead* store from a merely unused one.)"""
    cfg = analysis.cfg
    block = cfg.blocks[block_index]
    for instr in block.instructions[offset + 1:]:
        if reg in instr.writes():
            return True
    seen = set()
    frontier = [
        e.dst for e in cfg.out_edges[block_index]
        if (block_index, e.dst) in analysis.feasible_edges
    ]
    while frontier:
        index = frontier.pop()
        if index in seen:
            continue
        seen.add(index)
        if any(reg in i.writes() for i in cfg.blocks[index].instructions):
            return True
        frontier.extend(
            e.dst for e in cfg.out_edges[index]
            if (index, e.dst) in analysis.feasible_edges
        )
    return False


# -- V804 ------------------------------------------------------------------

def _check_semantic_reachability(analysis, report):
    program = analysis.program
    for block_index in analysis.semantically_unreachable():
        block = analysis.cfg.blocks[block_index]
        report.emit(
            "V804", _loc(program, block.start),
            f"basic block #{block_index} [{block.start}:{block.end}) is "
            f"reachable in the CFG but no feasible path reaches it "
            f"(a branch is provably one-sided)",
        )


# -- V805 ------------------------------------------------------------------

def _check_loop_bounds(analysis, report):
    program = analysis.program
    cfg = analysis.cfg
    for loop in cfg.loops:
        if loop.header not in analysis.block_in:
            continue  # the whole loop is unreachable (V804 covers it)
        loop_writes = {
            reg
            for index in loop.blocks
            for instr in cfg.blocks[index].instructions
            for reg in instr.writes()
        }
        exits = loop.exits(cfg)
        varying_exit = False
        for edge in exits:
            if edge.branch is None:
                # jr or plain jmp out of the loop: the loop body can
                # leave unconditionally, so a bound is not in question.
                varying_exit = True
                break
            reads = set(edge.branch.reads())
            if reads & loop_writes:
                varying_exit = True
                break
        if varying_exit:
            continue
        header = cfg.blocks[loop.header]
        detail = (
            "it has no exit edge"
            if not exits else
            "every exit branch tests only loop-invariant registers"
        )
        report.emit(
            "V805", _loc(program, header.start),
            f"loop at block #{loop.header} "
            f"({len(loop.blocks)} block(s)) has no provable bound: "
            f"{detail}",
        )
