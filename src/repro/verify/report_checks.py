"""Compile-provenance consistency checks (``V6xx``).

A :class:`~repro.provenance.CompileReport` claims to account for every
decision the tool chain made; these rules prove the claim instead of
trusting it:

* **V600** — candidate accounting: per hot block, selected plus
  rejected decisions must equal the enumerated candidate total, so no
  candidate silently disappears between enumeration and selection,
* **V601** — every rejected candidate must carry a reason from the
  documented rejection vocabulary (an empty reason means the selector
  grew a new rejection path without naming it),
* **V602** — plan cross-check: a stitch plan's accelerated assignment
  must point at a version the report measured, with matching cycles
  and a passing bit-exact validation verdict.

Like the V5xx telemetry rules these inspect dynamic artifacts, but the
checks themselves are pure: nothing is compiled or simulated here.
"""

from repro.provenance.records import (
    REJECT_CONVEXITY,
    REJECT_IMM_POOL,
    REJECT_INPUTS,
    REJECT_MAX_PER_BLOCK,
    REJECT_OUTPUTS,
    REJECT_OVERLAP,
    REJECT_UNMAPPABLE,
    REJECT_UNSCHEDULABLE,
    REJECTED,
    SELECTED,
)
from repro.verify.diagnostics import Report, Severity, register_rule

register_rule(
    "V600", Severity.ERROR,
    "compile report does not account for every enumerated ISE candidate",
    "report-checks",
)
register_rule(
    "V601", Severity.ERROR,
    "rejected ISE candidate without a documented reason",
    "report-checks",
)
register_rule(
    "V602", Severity.ERROR,
    "stitch plan assignment disagrees with the compile report",
    "report-checks",
)

# The complete selection-time rejection vocabulary; enumeration-time
# reasons are included because EnumerationLog buckets use them too.
KNOWN_REASONS = frozenset({
    REJECT_CONVEXITY,
    REJECT_INPUTS,
    REJECT_OUTPUTS,
    REJECT_MAX_PER_BLOCK,
    REJECT_OVERLAP,
    REJECT_IMM_POOL,
    REJECT_UNMAPPABLE,
    REJECT_UNSCHEDULABLE,
})


def check_compile_report(compile_report, report=None):
    """Verify one kernel's provenance record (V600 + V601)."""
    subject = f"compile report {compile_report.kernel_name}"
    report = report if report is not None else Report(subject)
    for name, version in sorted(compile_report.versions.items()):
        for block in version.blocks:
            loc = f"{compile_report.kernel_name}@{name} block {block.block_index}"
            decided = len(block.candidates)
            if block.enumerated is None:
                report.emit(
                    "V600", loc,
                    "no enumerated-candidate total recorded (driver did "
                    "not close the block record)",
                )
            elif decided != block.enumerated:
                report.emit(
                    "V600", loc,
                    f"{block.enumerated} candidates enumerated but only "
                    f"{decided} decided ({len(block.selected())} selected + "
                    f"{len(block.rejected())} rejected)",
                )
            for record in block.candidates:
                if record.status == SELECTED:
                    continue
                if record.status != REJECTED or not record.reason:
                    report.emit(
                        "V601", loc,
                        f"candidate {record.signature} over nodes "
                        f"{list(record.node_ids)} is "
                        f"{record.status or 'undecided'} without a reason",
                    )
                elif record.reason not in KNOWN_REASONS:
                    report.emit(
                        "V601", loc,
                        f"candidate {record.signature} rejected with "
                        f"unknown reason {record.reason!r} (extend the "
                        f"vocabulary in repro.provenance.records)",
                    )
    return report


def check_report_against_plan(plan, compile_reports, stage_kernels,
                              report=None):
    """Cross-check a stitch plan against per-kernel provenance (V602).

    ``compile_reports`` maps kernel name to its
    :class:`~repro.provenance.CompileReport`; ``stage_kernels`` maps
    stage id to kernel name (several stages may share one structurally
    identical kernel and hence one report).
    """
    subject = f"plan {plan.app_name}"
    report = report if report is not None else Report(subject)
    for stage_id in sorted(plan.assignments):
        assignment = plan.assignments[stage_id]
        if assignment.option == "baseline":
            continue
        kernel_name = stage_kernels.get(stage_id)
        loc = f"stage {stage_id} ({kernel_name}@{assignment.option})"
        compile_report = compile_reports.get(kernel_name)
        if compile_report is None:
            report.emit(
                "V602", loc,
                f"no compile report for kernel {kernel_name!r}",
            )
            continue
        version = compile_report.versions.get(assignment.option)
        if version is None:
            report.emit(
                "V602", loc,
                f"plan uses option {assignment.option!r} but the report "
                f"measured only {sorted(compile_report.versions)}",
            )
            continue
        if version.cycles != assignment.cycles:
            report.emit(
                "V602", loc,
                f"plan assumes {assignment.cycles} cycles but the report "
                f"measured {version.cycles}",
            )
        if version.validated is not True:
            report.emit(
                "V602", loc,
                "assigned version has no passing bit-exact validation "
                f"verdict (validated={version.validated})",
            )
    return report
