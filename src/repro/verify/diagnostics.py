"""Diagnostics framework for the static verifier (``stitch-lint``).

A :class:`Diagnostic` is one finding: a registered rule code, a
severity, a location string (program + instruction index, stage id,
path, ...) and a human message.  A :class:`Report` aggregates the
findings of one or several passes and renders them as pretty text or a
machine-readable dict.

Rules are declared once in a global registry so every diagnostic code
has a stable severity and a one-line summary (rendered by
``python -m repro verify --rules`` and the DESIGN.md table).
"""

import enum


class Severity(enum.IntEnum):
    """Ordered so comparisons (``>= ERROR``) read naturally."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self):
        return self.name.lower()


class Rule:
    """One registered verifier rule."""

    __slots__ = ("code", "severity", "summary", "pass_name")

    def __init__(self, code, severity, summary, pass_name):
        self.code = code
        self.severity = Severity(severity)
        self.summary = summary
        self.pass_name = pass_name

    def __repr__(self):
        return f"Rule({self.code}, {self.severity}, {self.pass_name})"


RULES = {}


def register_rule(code, severity, summary, pass_name):
    """Declare a rule; codes are unique across all passes."""
    if code in RULES:
        raise ValueError(f"duplicate rule code {code!r}")
    rule = Rule(code, severity, summary, pass_name)
    RULES[code] = rule
    return rule


class Diagnostic:
    """One finding of a verifier pass."""

    __slots__ = ("code", "severity", "loc", "message")

    def __init__(self, code, severity, loc, message):
        if code not in RULES:
            raise ValueError(f"unregistered rule code {code!r}")
        self.code = code
        self.severity = Severity(severity)
        self.loc = loc
        self.message = message

    def render(self):
        return f"{self.severity}: {self.code}: {self.loc}: {self.message}"

    def to_dict(self):
        return {
            "code": self.code,
            "severity": str(self.severity),
            "loc": self.loc,
            "message": self.message,
        }

    def __repr__(self):
        return f"Diagnostic({self.render()})"


class Report:
    """Findings of one verification run."""

    def __init__(self, subject="artifact"):
        self.subject = subject
        self.diagnostics = []

    def emit(self, code, loc, message, severity=None):
        """Add a finding; severity defaults to the rule's registered one."""
        rule = RULES[code]
        severity = rule.severity if severity is None else Severity(severity)
        diagnostic = Diagnostic(code, severity, loc, message)
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other):
        self.diagnostics.extend(other.diagnostics)
        return self

    def errors(self):
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self):
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def codes(self):
        return sorted({d.code for d in self.diagnostics})

    def ok(self, strict=False):
        """True when the artifact passes.

        Non-strict ignores warnings/infos; strict requires a completely
        clean report.
        """
        if strict:
            return not self.diagnostics
        return not self.errors()

    def render(self):
        lines = [f"verify {self.subject}: " + (
            "clean" if not self.diagnostics else
            f"{len(self.errors())} error(s), {len(self.warnings())} warning(s)"
        )]
        for diagnostic in self.diagnostics:
            lines.append("  " + diagnostic.render())
        return "\n".join(lines)

    def to_dict(self):
        return {
            "subject": self.subject,
            "ok": self.ok(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def __len__(self):
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __repr__(self):
        return f"Report({self.subject}, {len(self.diagnostics)} findings)"


class VerificationError(ValueError):
    """Raised by ``verify=True`` entry points when an artifact fails."""

    def __init__(self, report):
        self.report = report
        super().__init__(report.render())
